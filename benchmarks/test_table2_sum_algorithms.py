"""Table 2: algorithm comparison for SUM over a tuple stream.

Paper setup: per-tuple Gaussian-mixture distributions, tumbling window
of 100 tuples; algorithms = histogram-based sampling, CF inversion
(exact reference), CF approximation.  Reported columns: throughput
(windows of 100 tuples per second, i.e. tuples/second = 100x) and the
variance distance to the exact result distribution.

Paper values (Intel Xeon 2.13 GHz, authors' implementation):

    Histogram        throughput 3382    variance distance 0.083
    CF (inversion)   throughput  466    variance distance 0
    CF (approx.)     throughput 10593   variance distance 0.012

We reproduce the *ordering* (approx > histogram > inversion in speed;
approx ~ exact and histogram clearly worse in accuracy), not the
absolute tuples/second of the authors' C++/Java prototype.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFApproximationSum, CFInversionSum, HistogramSamplingSum
from repro.distributions import variance_distance
from repro.workloads import gmm_tuple_stream

WINDOW_SIZE = 100
N_WINDOWS = 4

ALGORITHMS = {
    "histogram": lambda: HistogramSamplingSum(bins_per_input=32, n_samples=512, rng=17),
    "cf_inversion": lambda: CFInversionSum(),
    "cf_approx": lambda: CFApproximationSum(),
}


@pytest.fixture(scope="module")
def windows():
    stream = gmm_tuple_stream(WINDOW_SIZE * N_WINDOWS, rng=7)
    dists = [t.distribution("value") for t in stream]
    return [dists[i * WINDOW_SIZE : (i + 1) * WINDOW_SIZE] for i in range(N_WINDOWS)]


@pytest.fixture(scope="module")
def exact_references(windows):
    reference = CFInversionSum(n_bins=512, n_frequencies=4096)
    return [reference.result_distribution(window) for window in windows]


@pytest.fixture(scope="module")
def table(result_table_factory):
    return result_table_factory(
        "table2_sum_algorithms",
        f"{'algorithm':<14} {'windows/s':>12} {'tuples/s':>12} {'variance distance':>20}",
    )


@pytest.mark.parametrize("name", list(ALGORITHMS), ids=list(ALGORITHMS))
def test_table2_sum_algorithm(benchmark, name, windows, exact_references, table):
    strategy = ALGORITHMS[name]()

    def run_all_windows():
        return [strategy.result_distribution(window) for window in windows]

    results = benchmark(run_all_windows)

    distances = [
        variance_distance(exact, result)
        for exact, result in zip(exact_references, results)
    ]
    mean_distance = float(np.mean(distances))
    seconds_per_window = benchmark.stats.stats.mean / N_WINDOWS
    windows_per_second = 1.0 / seconds_per_window
    benchmark.extra_info["variance_distance"] = mean_distance
    benchmark.extra_info["tuples_per_second"] = windows_per_second * WINDOW_SIZE
    table.add_row(
        f"{name:<14} {windows_per_second:>12.2f} {windows_per_second * WINDOW_SIZE:>12.1f} "
        f"{mean_distance:>20.4f}"
    )

    # Shape assertions mirroring the paper's conclusions.
    if name == "cf_inversion":
        assert mean_distance < 0.01
    if name == "cf_approx":
        assert mean_distance < 0.05
    if name == "histogram":
        assert mean_distance > 0.01
