"""Figure 3(b): CPU time per RFID event vs. number of objects and particles.

Paper setup: same highly noisy trace as Figure 3(a); y-axis is the
processing time per reading event in milliseconds (0.5 - 3.5 ms in the
authors' prototype), growing with the number of objects and with the
particle budget.

The pure-Python reproduction is slower in absolute terms, but the two
trends -- more objects cost more per event, more particles cost more per
event -- are the reproduced shape.  Set ``REPRO_FULL_BENCH=1`` to extend
the object sweep.
"""

from __future__ import annotations

import os

import pytest

from repro.workloads import build_rfid_workload

PARTICLE_COUNTS = (50, 200)
OBJECT_COUNTS = (100, 300, 1000)
if os.environ.get("REPRO_FULL_BENCH"):
    OBJECT_COUNTS = (100, 300, 1000, 3000, 10000)

WARMUP_READINGS = 60
MEASURED_READINGS = 40


@pytest.fixture(scope="module")
def table(result_table_factory):
    return result_table_factory(
        "figure3b_cpu_time",
        f"{'objects':>8} {'particles':>10} {'ms/event':>10}",
    )


@pytest.mark.parametrize("n_particles", PARTICLE_COUNTS)
@pytest.mark.parametrize("n_objects", OBJECT_COUNTS)
def test_figure3b_time_per_event(benchmark, n_objects, n_particles, table):
    workload = build_rfid_workload(n_objects=n_objects, n_particles=n_particles)
    workload.run(WARMUP_READINGS)

    def process_batch():
        workload.run(MEASURED_READINGS)

    benchmark.pedantic(process_batch, rounds=1, iterations=1)

    ms_per_event = benchmark.stats.stats.mean / MEASURED_READINGS * 1000.0
    benchmark.extra_info["ms_per_event"] = ms_per_event
    table.add_row(f"{n_objects:>8d} {n_particles:>10d} {ms_per_event:>10.2f}")

    assert ms_per_event > 0.0
