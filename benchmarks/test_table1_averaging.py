"""Table 1: tornado detection quality vs. pulse-averaging size.

Paper setup: 38 seconds of raw tornadic radar data (4 sector scans),
averaging sizes 40..1000; columns = moment data size (MB), detection
running time, number of reported tornados (averaged over the 4 scans),
and false negatives relative to the size-40 (fine-grained) reference.

Paper values (May 9th 2007 CASA trace):

    size   MB     time(s)  reported  false-neg
      40   9.22     27       3.75       0
      60   6.15     23       1.5        2.25
      80   4.62     21       0.5        3.25
     100   3.7      21       0.25       3.75
     200   1.87     20       0          3.75
     500   0.76     20       0          3.75
    1000   0.39     20       0          3.75

Our substitute is a synthetic tornadic scene at laptop scale (see
``repro.workloads.build_table1_workload``), so absolute megabytes and
seconds differ; the monotone shrinkage of data volume / runtime and the
collapse of detections with heavier averaging are the reproduced shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.radar import compute_moments, run_detection
from repro.workloads import TABLE1_AVERAGING_SIZES, build_table1_workload


@pytest.fixture(scope="module")
def workload():
    return build_table1_workload()


@pytest.fixture(scope="module")
def reference_counts(workload):
    """Detections at the finest averaging size (the paper's size-40 reference)."""
    counts = []
    for scan in workload.scans:
        moments = compute_moments(scan, workload.site, TABLE1_AVERAGING_SIZES[0])
        counts.append(
            run_detection(
                moments, workload.site, delta_v_threshold=workload.detection_threshold
            ).count
        )
    return counts


@pytest.fixture(scope="module")
def table(result_table_factory):
    return result_table_factory(
        "table1_averaging",
        f"{'avg size':>8} {'moment MB':>12} {'detect time (s)':>16} "
        f"{'reported tornados':>18} {'false negatives':>16}",
    )


@pytest.mark.parametrize("averaging_size", TABLE1_AVERAGING_SIZES)
def test_table1_averaging_size(benchmark, averaging_size, workload, reference_counts, table):
    moment_fields = [
        compute_moments(scan, workload.site, averaging_size) for scan in workload.scans
    ]

    def run_detection_over_all_scans():
        return [
            run_detection(
                moments, workload.site, delta_v_threshold=workload.detection_threshold
            )
            for moments in moment_fields
        ]

    results = benchmark(run_detection_over_all_scans)

    counts = [r.count for r in results]
    reported = float(np.mean(counts))
    false_negatives = float(
        np.mean([max(ref - got, 0) for ref, got in zip(reference_counts, counts)])
    )
    size_mb = float(np.mean([m.size_megabytes for m in moment_fields]))
    detection_time = benchmark.stats.stats.mean

    benchmark.extra_info.update(
        {
            "moment_megabytes": size_mb,
            "reported_tornados": reported,
            "false_negatives": false_negatives,
        }
    )
    table.add_row(
        f"{averaging_size:>8d} {size_mb:>12.3f} {detection_time:>16.4f} "
        f"{reported:>18.2f} {false_negatives:>16.2f}"
    )

    # Shape assertions mirroring the paper's conclusions.
    if averaging_size == TABLE1_AVERAGING_SIZES[0]:
        assert reported >= 3.0, "fine-grained averaging must resolve (nearly) all vortices"
    if averaging_size >= 500:
        assert reported == 0.0, "heavy averaging must miss every tornado"
        assert false_negatives >= 3.0
