"""Micro-benchmark: per-tuple vs bulk window insertion (`WindowBuffer`).

Batch execution hands whole :class:`~repro.streams.batch.TupleBatch`
containers to the windowed aggregates, which forward them to
``WindowBuffer.add_many`` — one call per batch instead of one ``add``
per tuple (ROADMAP follow-up to PR 1).  This benchmark measures that
difference in isolation for the two buffers with bulk kernels
(tumbling count and tumbling time windows) and asserts that both paths
close *identical* windows.

The speedup assertion is intentionally loose (bulk must not be slower
than ~0.8x the per-tuple loop) because the win is modest for small
batches and this guards the mechanism, not a marketing number; see
``benchmarks/results/window_bulk_insert.txt`` for measured figures.
"""

from __future__ import annotations

import time

import pytest

from repro.streams import StreamTuple, TumblingCountWindow, TumblingTimeWindow
from repro.streams.batch import TupleBatch

N_TUPLES = 60_000
BATCH_SIZE = 4096
REPEATS = 3
WINDOW_TUPLES = 100
WINDOW_SECONDS = 1.0
TUPLES_PER_SECOND = 100.0
MIN_RELATIVE_SPEED = 0.8


def make_stream(n: int):
    return [
        StreamTuple(timestamp=i / TUPLES_PER_SECOND, values={"i": i}) for i in range(n)
    ]


def run_per_tuple(spec, stream):
    buffer = spec.new_buffer()
    closed = []
    started = time.perf_counter()
    for item in stream:
        closed.extend(buffer.add(item))
    elapsed = time.perf_counter() - started
    closed.extend(buffer.flush())
    return elapsed, closed


def run_bulk(spec, batches):
    buffer = spec.new_buffer()
    closed = []
    started = time.perf_counter()
    for batch in batches:
        closed.extend(buffer.extend(batch))
    elapsed = time.perf_counter() - started
    closed.extend(buffer.flush())
    return elapsed, closed


def best_of(fn, *args):
    fn(*args)  # warmup
    best, closed = float("inf"), None
    for _ in range(REPEATS):
        elapsed, closed = fn(*args)
        best = min(best, elapsed)
    return best, closed


def assert_same_windows(per_tuple, bulk):
    assert len(per_tuple) == len(bulk)
    for a, b in zip(per_tuple, bulk):
        assert a.start == b.start
        assert a.end == b.end
        assert [t.tuple_id for t in a.items] == [t.tuple_id for t in b.items]


@pytest.fixture(scope="module")
def table(result_table_factory):
    return result_table_factory(
        "window_bulk_insert",
        f"{'window':>22} {'path':>10} {'tuples/s':>12} {'speedup':>9}",
    )


@pytest.mark.parametrize(
    "label,spec",
    [
        ("TumblingCountWindow", TumblingCountWindow(WINDOW_TUPLES)),
        ("TumblingTimeWindow", TumblingTimeWindow(WINDOW_SECONDS)),
    ],
)
def test_bulk_insert_matches_and_keeps_pace(label, spec, table):
    stream = make_stream(N_TUPLES)
    batches = [
        TupleBatch(stream[start : start + BATCH_SIZE])
        for start in range(0, len(stream), BATCH_SIZE)
    ]

    per_tuple_s, per_tuple_windows = best_of(run_per_tuple, spec, stream)
    bulk_s, bulk_windows = best_of(run_bulk, spec, batches)

    assert_same_windows(per_tuple_windows, bulk_windows)

    speedup = per_tuple_s / bulk_s
    table.add_row(
        f"{label:>22} {'per-tuple':>10} {N_TUPLES / per_tuple_s:>12.0f} {1.0:>9.2f}"
    )
    table.add_row(f"{label:>22} {'bulk':>10} {N_TUPLES / bulk_s:>12.0f} {speedup:>9.2f}")
    assert speedup >= MIN_RELATIVE_SPEED, (
        f"{label}: bulk insertion fell to {speedup:.2f}x of the per-tuple loop"
    )


def test_bulk_insert_out_of_order_falls_back():
    """Out-of-order bulk input raises exactly like the per-tuple loop."""
    spec = TumblingTimeWindow(WINDOW_SECONDS)
    buffer = spec.new_buffer()
    buffer.extend([StreamTuple(timestamp=5.0)])
    with pytest.raises(ValueError, match="out-of-order"):
        buffer.extend([StreamTuple(timestamp=9.0), StreamTuple(timestamp=0.5)])
