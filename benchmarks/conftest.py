"""Shared helpers for the benchmark harness.

Every benchmark writes the rows it reproduces (the paper's table/figure
content) to ``benchmarks/results/<experiment>.txt`` in addition to the
pytest-benchmark timing table, so a ``pytest benchmarks/ --benchmark-only``
run leaves behind both the timing data and the reproduced tables.
"""

from __future__ import annotations

import pathlib
from typing import List

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class ResultTable:
    """Accumulates formatted rows for one experiment and writes them on close."""

    def __init__(self, name: str, header: str):
        self.name = name
        self.header = header
        self.rows: List[str] = []

    def add_row(self, row: str) -> None:
        self.rows.append(row)

    def write(self) -> pathlib.Path:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        content = "\n".join([self.header] + self.rows) + "\n"
        path.write_text(content)
        return path


@pytest.fixture(scope="session")
def result_table_factory():
    """Session factory creating result tables that are written at teardown."""
    tables: List[ResultTable] = []

    def make(name: str, header: str) -> ResultTable:
        table = ResultTable(name, header)
        tables.append(table)
        return table

    yield make
    for table in tables:
        path = table.write()
        # Also echo to stdout so the tee'd benchmark log carries the rows.
        print(f"\n=== {table.name} ({path}) ===")
        print(table.header)
        for row in table.rows:
            print(row)
