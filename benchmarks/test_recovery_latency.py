"""Checkpoint and recovery latency for the paper's Q1.

How long does durability cost?  Q1 (windowed per-area weight totals
with a probabilistic HAVING) runs over a warehouse workload until it
holds real state — open windows, per-group accumulators, a replay log
of emitted alerts — then:

* a **full** checkpoint is committed, timed, and sized;
* after a little more ingest, a **delta** checkpoint (unchanged blobs
  become refs into the full file) is committed, timed, and sized;
* the session is torn down and :meth:`QuerySession.recover` rebuilds
  it from the delta, timed end-to-end (load + re-register + operator
  state restore + worker respawn for the sharded config).

Reported for the single-process engine and for workers=4 over forked
shm-ring shards.  Asserted: recovery is lossless (the recovered
session continues to the same results) and completes within a loose
wall-clock bound.
"""

from __future__ import annotations

import time

import numpy as np

from repro import QuerySession
from repro.distributions import Gaussian
from repro.streams import StreamTuple

N_TUPLES = 8_000
N_EXTRA = 1_000  # ingested between the full and the delta checkpoint
MAX_RECOVER_SECONDS = 30.0

Q1 = """
    SELECT weight_of(tag_id) AS weight, zone(x) AS area, SUM(weight)
    FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]
    WHERE in_catalog(tag_id)
    GROUP BY area
    HAVING SUM(weight) > 200 WITH CONFIDENCE 0.5
"""

CONFIGS = (
    ("single", {}),
    ("workers=4", {"workers": 4, "shard_backend": "process"}),
)


def make_catalog():
    rng = np.random.default_rng(7)
    return {
        f"O{i:03d}": {"weight": float(rng.uniform(30.0, 80.0))} for i in range(40)
    }


def make_tuples(n):
    rng = np.random.default_rng(11)
    tuples = []
    for i in range(n):
        shelf = int(rng.integers(0, 3))
        tuples.append(
            StreamTuple(
                timestamp=float(i) * 0.05,
                values={"tag_id": f"O{i % 50:03d}"},
                uncertain={
                    "x": Gaussian(10.0 + 20.0 * shelf + float(rng.normal(0, 0.5)), 0.8),
                    "y": Gaussian(10.0 + float(rng.normal(0, 0.5)), 0.8),
                },
            )
        )
    return tuples


def q1_functions(catalog):
    return {
        "weight_of": lambda tag: catalog.get(tag, {}).get("weight", 0.0),
        "in_catalog": lambda tag: tag in catalog,
        "zone": lambda x: int(x.mean() // 20.0),
    }


def build_session(functions, **kwargs):
    session = QuerySession(functions=functions, **kwargs)
    session.create_stream(
        "rfid", values=("tag_id",), uncertain=("x", "y"), family="gaussian",
        rate_hint=20.0,
    )
    session.register("q1", Q1)
    # A second query on an idle stream: its blob is byte-identical
    # between checkpoints, so the delta stores a ref, not a rewrite.
    session.create_stream("aux", uncertain=("v",), family="gaussian")
    session.register(
        "aux_totals", "SELECT SUM(v) AS total FROM aux [RANGE 5 SECONDS SLIDE 5 SECONDS]"
    )
    return session


def run_config(functions, directory, **kwargs):
    tuples = make_tuples(N_TUPLES + N_EXTRA)
    session = build_session(functions, **kwargs)
    try:
        session.push_many("rfid", tuples[:N_TUPLES])

        started = time.perf_counter()
        full = session.checkpoint(directory, mode="full")
        full_seconds = time.perf_counter() - started

        session.push_many("rfid", tuples[N_TUPLES:])
        started = time.perf_counter()
        delta = session.checkpoint(directory, mode="delta")
        delta_seconds = time.perf_counter() - started

        session.flush()
        expected = len(session.results("q1"))
    finally:
        session.close()

    started = time.perf_counter()
    recovered = QuerySession.recover(directory, functions=functions, **kwargs)
    recover_seconds = time.perf_counter() - started
    try:
        recovered.flush()
        got = len(recovered.results("q1"))
    finally:
        recovered.close()
    assert got == expected, f"recovered run found {got} alerts, expected {expected}"
    assert recover_seconds < MAX_RECOVER_SECONDS
    return full, full_seconds, delta, delta_seconds, recover_seconds


def test_q1_checkpoint_and_recover_latency(result_table_factory, tmp_path):
    catalog = make_catalog()
    functions = q1_functions(catalog)
    table = result_table_factory(
        "recovery_latency",
        f"# Q1 checkpoint+recover latency, {N_TUPLES} tuples of state "
        f"(+{N_EXTRA} before the delta)\n"
        f"{'config':>12} {'full ms':>9} {'full KiB':>9} {'delta ms':>9} "
        f"{'delta KiB':>10} {'recover ms':>11}",
    )
    for name, kwargs in CONFIGS:
        directory = str(tmp_path / name)
        full, full_s, delta, delta_s, recover_s = run_config(
            functions, directory, **kwargs
        )
        table.add_row(
            f"{name:>12} {full_s * 1e3:>9.1f} {full.bytes_written / 1024:>9.1f} "
            f"{delta_s * 1e3:>9.1f} {delta.bytes_written / 1024:>10.1f} "
            f"{recover_s * 1e3:>11.1f}"
        )
        # The delta's unchanged blobs became refs, not rewrites.
        assert delta.mode == "delta"
        assert delta.blobs_referenced >= 1
        assert delta.blobs_written < full.blobs_written
