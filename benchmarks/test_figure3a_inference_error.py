"""Figure 3(a): RFID inference error vs. number of objects and particles.

Paper setup: a highly noisy mobile-RFID trace; x-axis is the number of
tracked objects (100 to 10 000, log scale), one curve per particle
budget (50 / 100 / 200 particles); y-axis is the inference error in the
XY plane, in feet.  The paper's errors fall between ~0.1 and ~0.7 ft
and (i) grow with the number of objects and (ii) shrink with more
particles.

Our substitute trace (synthetic warehouse, tag-contention noise) yields
larger absolute errors, but reproduces both trends.  The object-count
sweep is truncated relative to the paper so the benchmark stays
laptop-sized; set ``REPRO_FULL_BENCH=1`` to extend it.
"""

from __future__ import annotations

import os

import pytest

from repro.workloads import build_rfid_workload

PARTICLE_COUNTS = (50, 100, 200)
OBJECT_COUNTS = (100, 300, 1000)
if os.environ.get("REPRO_FULL_BENCH"):
    OBJECT_COUNTS = (100, 300, 1000, 3000, 10000)

WARMUP_READINGS = 200
MEASURED_READINGS = 25


@pytest.fixture(scope="module")
def table(result_table_factory):
    return result_table_factory(
        "figure3a_inference_error",
        f"{'objects':>8} {'particles':>10} {'error (ft)':>12} {'ms/event':>10}",
    )


@pytest.mark.parametrize("n_particles", PARTICLE_COUNTS)
@pytest.mark.parametrize("n_objects", OBJECT_COUNTS)
def test_figure3a_inference_error(benchmark, n_objects, n_particles, table):
    workload = build_rfid_workload(n_objects=n_objects, n_particles=n_particles)
    # Warm up: let the reader sweep the area once so estimates are informed.
    workload.run(WARMUP_READINGS)

    def process_batch():
        workload.run(MEASURED_READINGS)

    benchmark.pedantic(process_batch, rounds=1, iterations=1)

    error = workload.mean_error()
    ms_per_event = benchmark.stats.stats.mean / MEASURED_READINGS * 1000.0
    benchmark.extra_info.update(
        {"inference_error_ft": error, "ms_per_event": ms_per_event}
    )
    table.add_row(f"{n_objects:>8d} {n_particles:>10d} {error:>12.2f} {ms_per_event:>10.2f}")

    assert error < 60.0, "inference must do better than the uninformed prior"
