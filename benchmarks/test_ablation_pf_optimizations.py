"""Ablation (Section 4.1): particle-filter optimisations.

The paper reports that factorisation + spatial indexing + compression
take inference from 0.1 readings/second for 20 objects to over 1000
readings/second for 20 000 objects.  This ablation toggles the
optimisations on a fixed workload and reports readings/second and mean
inference error for each configuration:

* ``joint``         -- one particle set over the joint state (no optimisations)
* ``factorized``    -- per-object filters, every object touched per event
* ``+spatial_index``-- only objects near the reader touched per event
* ``+compression``  -- stable particle clouds shrunk (full optimisation set)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.inference import CompressionConfig, FactorizedParticleFilter, JointParticleFilter
from repro.rfid import DetectionObservation, MobileReaderSimulator, build_object_model
from repro.workloads import build_rfid_workload, noisy_detection_model

N_OBJECTS = 150
N_PARTICLES = 60
WARMUP_READINGS = 40
MEASURED_READINGS = 30

CONFIGURATIONS = ("joint", "factorized", "factorized+index", "factorized+index+compression")


def build_filter(configuration, world, detection, rng_seed=5):
    bounds = world.bounds()
    model = build_object_model(bounds, detection=detection, walk_sigma=0.2, jump_rate=0.0)
    if configuration == "joint":
        flt = JointParticleFilter(n_particles=N_PARTICLES, rng=rng_seed)
    else:
        flt = FactorizedParticleFilter(
            n_particles=N_PARTICLES,
            use_spatial_index="index" in configuration,
            index_cell_size=detection.effective_range(),
            compression=CompressionConfig() if "compression" in configuration else None,
            rng=rng_seed,
        )
    for tag_id in world.object_ids():
        flt.add_variable(tag_id, model)
    return flt


def drive(flt, simulator, detection, n_readings, use_region):
    """Push ``n_readings`` scans through a filter (joint or factorised)."""
    sensing_range = detection.effective_range()
    last_time = None
    for reading in simulator.readings(n_readings):
        dt = 0.0 if last_time is None else max(reading.timestamp - last_time, 0.0)
        last_time = reading.timestamp
        detected = set(reading.detected_object_ids)

        def observation_for(tag_id):
            return DetectionObservation(reading.reader_x, reading.reader_y, tag_id in detected)

        region = (reading.reader_x, reading.reader_y, sensing_range) if use_region else None
        flt.step(dt, observation_for, region=region)


@pytest.fixture(scope="module")
def table(result_table_factory):
    return result_table_factory(
        "ablation_pf_optimizations",
        f"{'configuration':<32} {'readings/s':>12} {'mean error (ft)':>16}",
    )


@pytest.mark.parametrize("configuration", CONFIGURATIONS)
def test_pf_optimization_ablation(benchmark, configuration, table):
    workload = build_rfid_workload(n_objects=N_OBJECTS, n_particles=N_PARTICLES)
    world = workload.world
    detection = noisy_detection_model()
    simulator = workload.simulator
    flt = build_filter(configuration, world, detection)
    use_region = "index" in configuration

    drive(flt, simulator, detection, WARMUP_READINGS, use_region)

    def measured():
        drive(flt, simulator, detection, MEASURED_READINGS, use_region)

    benchmark.pedantic(measured, rounds=1, iterations=1)

    readings_per_second = MEASURED_READINGS / benchmark.stats.stats.mean
    errors = [
        float(np.linalg.norm(flt.estimate(tag)[:2] - world.true_position(tag)))
        for tag in world.object_ids()
    ]
    mean_error = float(np.mean(errors))
    benchmark.extra_info.update(
        {"readings_per_second": readings_per_second, "mean_error_ft": mean_error}
    )
    table.add_row(f"{configuration:<32} {readings_per_second:>12.2f} {mean_error:>16.2f}")

    assert readings_per_second > 0.0
