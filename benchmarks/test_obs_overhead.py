"""Observability overhead: an attached exporter must cost ≤ ``MAX_OVERHEAD``.

The registry's design claim (see :mod:`repro.obs.registry`) is that the
ingest hot path pays only plain array increments — snapshotting,
percentile estimation and rendering all run on the reader's side.  This
smoke check measures it: the same select→aggregate session workload
runs bare and then with an aggressive exporter attached (a thread
snapshotting the registry and rendering the Prometheus text format
every 10 ms — ~100× a production scrape rate), and the instrumented
run must stay within ``MAX_OVERHEAD`` of the bare one.

Both runs execute identical code (trace stamping and instruments are
always on); only the exporter differs, so the measured delta is the
cost of *exposition under load*, the ISSUE's ≤3% budget.  The assert
allows ``NOISE_SLACK`` on top because best-of-N wall clocks on a shared
box still jitter by a few percent.

The span layer (:mod:`repro.obs.spans`) adds a second budget check:
the same workload runs with span sampling off, at the default 1/64,
and always-on; the *default* must stay within the same ≤3% budget
(always-on is reported for the perf trajectory but not asserted — it
is a debugging mode, priced accordingly).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro import QuerySession, obs
from repro.distributions import Gaussian
from repro.obs import render_prometheus
from repro.streams import StreamTuple

N_TUPLES = 150_000
BATCH_SIZE = 2048
REPEATS = 5
MAX_OVERHEAD = 0.03
NOISE_SLACK = 0.04

QUERY = "SELECT SUM(value) AS total FROM s [RANGE 2 SECONDS SLIDE 2 SECONDS]"


def make_tuples(n):
    rng = np.random.default_rng(41)
    return [
        StreamTuple(
            timestamp=i * 0.01,
            values={"tag_id": f"T{i % 16}"},
            uncertain={"value": Gaussian(float(rng.uniform(10.0, 90.0)), 2.0)},
        )
        for i in range(n)
    ]


def run_once(stream):
    session = QuerySession(batch_size=BATCH_SIZE)
    session.create_stream(
        "s", values=("tag_id",), uncertain=("value",), family="gaussian",
        rate_hint=100.0,
    )
    session.register("totals", QUERY)
    started = time.perf_counter()
    session.push_many("s", stream)
    session.flush()
    return time.perf_counter() - started


def interleaved_best(stream, exporter_factory, repeats=REPEATS):
    """Best bare/instrumented times and the per-pair time ratios.

    Runs alternate bare/instrumented so machine drift (cache warmup, a
    background process, CPU frequency shifts) never lands entirely on
    one side.  The overhead estimate is the *minimum per-pair ratio*:
    noise only ever inflates a run, so the cleanest adjacent pair is
    the best estimate of the true cost — the same best-of-N logic the
    other benchmarks apply to absolute times, applied to the ratio.
    """
    run_once(stream)  # warmup: numpy dispatch, allocator, caches
    bare = instrumented = float("inf")
    ratios = []
    polls = 0
    for _ in range(repeats):
        bare_run = run_once(stream)
        with exporter_factory() as exporter:
            instrumented_run = run_once(stream)
        bare = min(bare, bare_run)
        instrumented = min(instrumented, instrumented_run)
        ratios.append(instrumented_run / bare_run)
        polls += exporter.polls
    return bare, instrumented, ratios, polls


class _Exporter:
    """Snapshot + render the registry on a Prometheus-like poll cadence.

    A zero-interval spin loop would measure GIL contention with the
    worker thread, not exposition cost; 10 ms is already ~100× more
    aggressive than a production scraper.
    """

    POLL_INTERVAL = 0.010

    def __init__(self):
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self.polls = 0

    def _loop(self):
        registry = obs.get_registry()
        while not self._stop.is_set():
            render_prometheus(registry.snapshot())
            self.polls += 1
            self._stop.wait(self.POLL_INTERVAL)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=5.0)


def timed_with_sampling(stream, sample, repeats=REPEATS):
    """Best-of-N wall time of the workload at a given span-sample rate."""
    previous = obs.set_trace_sample(sample)
    try:
        obs.local_spans().clear()
        best = float("inf")
        for _ in range(repeats):
            best = min(best, run_once(stream))
            obs.local_spans().clear()  # bound memory across always-on runs
        return best
    finally:
        obs.set_trace_sample(previous)


def test_exporter_overhead_within_budget(result_table_factory):
    stream = make_tuples(N_TUPLES)

    # Exposition overhead is measured with spans off, isolating the two
    # costs: exporter polling here, span recording below.
    previous_sample = obs.set_trace_sample(0)
    try:
        bare, instrumented, ratios, polls = interleaved_best(stream, _Exporter)
    finally:
        obs.set_trace_sample(previous_sample)
    assert polls > 0, "the exporter thread never snapshotted"

    spans_off = timed_with_sampling(stream, 0)
    spans_default = timed_with_sampling(stream, obs.DEFAULT_TRACE_SAMPLE)
    spans_always = timed_with_sampling(stream, 1)
    span_overhead = spans_default / spans_off - 1.0
    always_overhead = spans_always / spans_off - 1.0

    overhead = min(ratios) - 1.0
    median_overhead = float(np.median(ratios)) - 1.0
    table = result_table_factory(
        "obs_overhead",
        f"# select->aggregate session, {N_TUPLES} tuples, batch {BATCH_SIZE}, "
        f"best of {REPEATS}\n"
        f"{'mode':>14} {'seconds':>10} {'tuples/s':>12}",
    )
    table.add_row(f"{'bare':>14} {bare:>10.4f} {N_TUPLES / bare:>12.0f}")
    table.add_row(
        f"{'exporter':>14} {instrumented:>10.4f} {N_TUPLES / instrumented:>12.0f}"
    )
    table.add_row(f"{'spans-off':>14} {spans_off:>10.4f} {N_TUPLES / spans_off:>12.0f}")
    table.add_row(
        f"{'spans-1-in-64':>14} {spans_default:>10.4f} {N_TUPLES / spans_default:>12.0f}"
    )
    table.add_row(
        f"{'spans-always':>14} {spans_always:>10.4f} {N_TUPLES / spans_always:>12.0f}"
    )
    table.add_row(
        f"# exporter overhead: best pair {overhead * 100.0:+.2f}%, "
        f"median {median_overhead * 100.0:+.2f}% "
        f"(budget {MAX_OVERHEAD * 100.0:.0f}%, snapshots: {polls})"
    )
    table.add_row(
        f"# span overhead vs spans-off: 1/64 {span_overhead * 100.0:+.2f}%, "
        f"always {always_overhead * 100.0:+.2f}% "
        f"(budget {MAX_OVERHEAD * 100.0:.0f}% at the default rate)"
    )

    assert overhead <= MAX_OVERHEAD + NOISE_SLACK, (
        f"exporter overhead {overhead * 100.0:.2f}% exceeds the "
        f"{MAX_OVERHEAD * 100.0:.0f}% budget (+{NOISE_SLACK * 100.0:.0f}% noise slack)"
    )
    assert span_overhead <= MAX_OVERHEAD + NOISE_SLACK, (
        f"default 1/64 span sampling costs {span_overhead * 100.0:.2f}%, over the "
        f"{MAX_OVERHEAD * 100.0:.0f}% budget (+{NOISE_SLACK * 100.0:.0f}% noise slack)"
    )
