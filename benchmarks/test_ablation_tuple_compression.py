"""Ablation (Section 4.3): tuple-level distribution compression.

A T operator can ship each tuple's distribution as (a) the raw particle
set, (b) the KL-optimal single Gaussian, or (c) an AIC/BIC-selected
Gaussian mixture.  This ablation measures, for unimodal and bimodal
particle clouds (the latter modelling an object that just moved):

* compression time per tuple,
* the size of the shipped representation (number of parameters), and
* the fidelity of the compressed distribution (KL divergence of the
  particle cloud from the compressed form).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressionPolicy
from repro.distributions import ParticleDistribution, kl_divergence_samples

N_PARTICLES = 200
N_CLOUDS = 40

POLICIES = {
    "particles": CompressionPolicy(mode="particles"),
    "gaussian": CompressionPolicy(mode="gaussian"),
    "mixture_bic": CompressionPolicy(mode="mixture", max_components=3, criterion="bic"),
}


def make_clouds(kind: str, rng: np.random.Generator):
    clouds = []
    for _ in range(N_CLOUDS):
        if kind == "unimodal":
            values = rng.normal(rng.uniform(0, 100), rng.uniform(0.3, 2.0), size=N_PARTICLES)
        else:
            centre_a = rng.uniform(0, 50)
            centre_b = centre_a + rng.uniform(10, 40)
            split = rng.integers(N_PARTICLES // 4, 3 * N_PARTICLES // 4)
            values = np.concatenate(
                [
                    rng.normal(centre_a, 0.8, size=split),
                    rng.normal(centre_b, 0.8, size=N_PARTICLES - split),
                ]
            )
        clouds.append(ParticleDistribution(values))
    return clouds


def representation_size(dist) -> int:
    """Number of scalar parameters shipped inside the tuple."""
    if isinstance(dist, ParticleDistribution):
        return 2 * dist.n_particles
    if hasattr(dist, "n_components"):
        return 3 * dist.n_components
    return 2  # plain Gaussian


@pytest.fixture(scope="module")
def table(result_table_factory):
    return result_table_factory(
        "ablation_tuple_compression",
        f"{'cloud':<10} {'policy':<14} {'params/tuple':>13} {'KL(p_hat||q)':>14} {'ms/tuple':>10}",
    )


@pytest.mark.parametrize("policy_name", list(POLICIES), ids=list(POLICIES))
@pytest.mark.parametrize("cloud_kind", ("unimodal", "bimodal"))
def test_tuple_compression(benchmark, cloud_kind, policy_name, table):
    rng = np.random.default_rng(13)
    clouds = make_clouds(cloud_kind, rng)
    policy = POLICIES[policy_name]

    def compress_all():
        return [policy.compress(cloud, rng=rng) for cloud in clouds]

    compressed = benchmark(compress_all)

    kls = [
        kl_divergence_samples(cloud.values, cloud.weights, dist)
        for cloud, dist in zip(clouds, compressed)
    ]
    mean_kl = float(np.mean(kls))
    mean_params = float(np.mean([representation_size(d) for d in compressed]))
    ms_per_tuple = benchmark.stats.stats.mean / N_CLOUDS * 1000.0
    benchmark.extra_info.update(
        {"mean_kl": mean_kl, "params_per_tuple": mean_params, "ms_per_tuple": ms_per_tuple}
    )
    table.add_row(
        f"{cloud_kind:<10} {policy_name:<14} {mean_params:>13.1f} {mean_kl:>14.4f} {ms_per_tuple:>10.3f}"
    )

    # Shape assertions: particles are the fidelity ceiling but cost the most
    # space; for bimodal clouds the mixture must beat the single Gaussian.
    if policy_name == "particles":
        assert mean_params > 100
    if cloud_kind == "bimodal" and policy_name == "mixture_bic":
        gaussian_kl = np.mean(
            [
                kl_divergence_samples(
                    cloud.values, cloud.weights, POLICIES["gaussian"].compress(cloud)
                )
                for cloud in clouds
            ]
        )
        assert mean_kl < gaussian_kl
