"""Shard scaling: ShardedEngine throughput on the select->aggregate workload.

The paper's motivating claim is stream rates a single process cannot
sustain.  This benchmark runs the canonical monitoring shape — a chain
of probabilistic selections feeding a tumbling time-window SUM — through

* the single-process engine on its tuple-at-a-time path (the repo's
  correctness baseline and the reference for every speedup figure),
* the single-process batch path (the fastest one-process configuration,
  reported for honesty: on a single core it beats sharding, which pays
  serialization per tuple), and
* :class:`~repro.runtime.ShardedEngine` with 1, 2 and 4 forked workers
  (batch kernels inside each worker, columnar wire format, round-robin
  chunks).

Two properties are asserted:

* the 4-shard engine produces results identical (1e-9) to the single
  engine, and
* it sustains at least ``MIN_SPEEDUP`` times the tuple-path baseline.
  The speedup has two independent sources — each worker runs the
  vectorised batch kernels, and workers run on separate cores — so a
  reduced floor applies on single-core machines, where only the first
  source exists.  The result table records the core count next to the
  rates so the numbers are interpretable.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.plan import Stream
from repro.runtime import ShardedEngine
from repro.streams import TumblingTimeWindow
from repro.workloads import gaussian_tuple_stream

N_TUPLES = 30_000
CHUNK_SIZE = 4096
REPEATS = 3
SHARD_COUNTS = (1, 2, 4)
MIN_SPEEDUP = 2.0  # 4 shards vs the single-process tuple path
MIN_SPEEDUP_SINGLE_CORE = 1.4  # no parallel term, kernel term only (margin)
EQUIVALENCE_TOLERANCE = 1e-9
SCALING_NOISE_TOLERANCE = 0.9  # >= 2 cores: a doubling must not cost throughput
SCALING_NOISE_TOLERANCE_SINGLE_CORE = 0.7  # one core: only bound the contention loss


def effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_query():
    """Select (3 probabilistic predicates) -> tumbling-window SUM."""
    stream = Stream.source(
        "s", uncertain=("value",), family="gaussian", rate_hint=100.0
    )
    stream = stream.where_probably("value", ">", 20.0, min_probability=0.2, annotate=None)
    stream = stream.where_probably(
        "value", "between", 10.0, upper=95.0, min_probability=0.3, annotate=None
    )
    stream = stream.where_probably("value", ">", 45.0, min_probability=0.5, annotate=None)
    return stream.window(TumblingTimeWindow(2.0)).aggregate("value")


def run_single(stream, mode):
    query = build_query().compile(
        mode=mode, batch_size=CHUNK_SIZE if mode == "batch" else None
    )
    started = time.perf_counter()
    query.push_many("s", stream)
    results = query.finish()
    return len(stream) / (time.perf_counter() - started), results, {}


def run_sharded(stream, workers):
    with ShardedEngine(
        build_query(),
        workers=workers,
        backend="process",
        chunk_size=CHUNK_SIZE,
        mode="batch",
    ) as engine:
        started = time.perf_counter()
        engine.push_many("s", stream)
        results = engine.finish()
        elapsed = time.perf_counter() - started
        stages = engine.stage_timings()
        return len(stream) / elapsed, results, stages


def best_of(fn, *args):
    best = None
    for _ in range(REPEATS):
        run = fn(*args)
        if best is None or run[0] > best[0]:
            best = run
    return best


def assert_equivalent(expected, got):
    assert len(expected) == len(got)
    for a, b in zip(expected, got):
        assert a.value("window_start") == b.value("window_start")
        assert a.value("window_count") == b.value("window_count")
        da, db = a.distribution("sum_value"), b.distribution("sum_value")
        assert abs(float(da.mean()) - float(db.mean())) <= EQUIVALENCE_TOLERANCE
        assert abs(float(da.variance()) - float(db.variance())) <= EQUIVALENCE_TOLERANCE


@pytest.fixture(scope="module")
def table(result_table_factory):
    return result_table_factory(
        "shard_scaling",
        f"# select->aggregate, {N_TUPLES} tuples, chunk={CHUNK_SIZE}, "
        f"cores={os.cpu_count()}, affinity={effective_cores()}\n"
        f"{'configuration':>22} {'tuples/s':>12} {'vs tuple path':>14}",
    )


def test_shard_scaling_and_equivalence(table):
    stream = gaussian_tuple_stream(N_TUPLES, rng=9)

    base_rate, reference, _ = best_of(run_single, stream, "tuple")
    batch_rate, batch_results, _ = best_of(run_single, stream, "batch")
    assert_equivalent(reference, batch_results)
    table.add_row(f"{'single (tuple path)':>22} {base_rate:>12.0f} {1.0:>13.2f}x")
    table.add_row(
        f"{'single (batch path)':>22} {batch_rate:>12.0f} {batch_rate / base_rate:>13.2f}x"
    )

    sharded_rates = {}
    stage_rows = []
    for workers in SHARD_COUNTS:
        rate, results, stages = best_of(run_sharded, stream, workers)
        assert_equivalent(reference, results)
        sharded_rates[workers] = rate
        table.add_row(
            f"{f'sharded x{workers} (process)':>22} {rate:>12.0f} "
            f"{rate / base_rate:>13.2f}x"
        )
        stage_rows.append(
            f"# stages x{workers}: " + " ".join(
                f"{name}={stages.get(name, 0.0):.3f}s"
                for name in ("encode", "transport", "decode", "merge")
            )
        )
    for row in stage_rows:
        table.add_row(row)

    # Adding shards must not cost throughput.  On a single shared core the
    # workers and coordinator contend for cycles, so only the overhead is
    # bounded; with real parallelism available the bound is near-monotonic.
    cores = effective_cores()
    tolerance = (
        SCALING_NOISE_TOLERANCE if cores >= 2 else SCALING_NOISE_TOLERANCE_SINGLE_CORE
    )
    assert sharded_rates[2] >= tolerance * sharded_rates[1], (
        f"sharded x2 ({sharded_rates[2]:.0f} tuples/s) fell more than "
        f"{1 - tolerance:.0%} below x1 ({sharded_rates[1]:.0f}) on {cores} core(s)"
    )
    assert sharded_rates[4] >= tolerance * sharded_rates[2], (
        f"sharded x4 ({sharded_rates[4]:.0f} tuples/s) fell more than "
        f"{1 - tolerance:.0%} below x2 ({sharded_rates[2]:.0f}) on {cores} core(s)"
    )

    speedup = sharded_rates[4] / base_rate
    floor = MIN_SPEEDUP if cores >= 2 else MIN_SPEEDUP_SINGLE_CORE
    assert speedup >= floor, (
        f"4-shard engine reached only {speedup:.2f}x the single-process "
        f"tuple-path throughput ({sharded_rates[4]:.0f} vs {base_rate:.0f} "
        f"tuples/s) on {cores} core(s); expected >= {floor}x"
    )
