"""Engine-overhead throughput: batch-at-a-time vs tuple-at-a-time execution.

Both paths run the same select -> aggregate plan (probabilistic
selection over a per-tuple Gaussian, then a tumbling-window SUM with
the CF-approximation strategy -- the paper's fastest accurate
algorithm) over the same synthetic stream.  The tuple path pushes one
tuple at a time through the iterative scheduler; the batch path moves
:class:`~repro.streams.batch.TupleBatch` containers and runs the
vectorised operator kernels.

Two properties are asserted, mirroring the paper's "high-volume stream
processing" claim:

* the batch path sustains at least ``MIN_SPEEDUP`` times the tuple-path
  throughput on the Gaussian workload, and
* both paths produce numerically identical query results (within
  ``EQUIVALENCE_TOLERANCE``) on the Q1-shaped Gaussian-mixture
  workload, where the batch kernels fall back to generic per-tuple
  moment extraction.

Both paths carry the same per-``accept`` timing instrumentation (two
``perf_counter`` calls, ~1% of the tuple path's per-tuple cost), so
the reported speedup is engine+operator work, not instrumentation
asymmetry.
"""

from __future__ import annotations

import time

import pytest

from repro.core import (
    CFApproximationSum,
    Comparison,
    ProbabilisticSelect,
    UncertainAggregate,
    UncertainPredicate,
)
from repro.streams import CollectSink, StreamEngine, TumblingCountWindow
from repro.workloads import gaussian_tuple_stream, gmm_tuple_stream

N_TUPLES = 30_000
WINDOW_SIZE = 100
BATCH_SIZE = 4096
REPEATS = 3
MIN_SPEEDUP = 5.0
EQUIVALENCE_TOLERANCE = 1e-9


def build_plan(batch_size):
    """Build a fresh select -> aggregate -> sink plan."""
    select = ProbabilisticSelect(
        UncertainPredicate("value", Comparison.GREATER, 50.0), min_probability=0.5
    )
    aggregate = UncertainAggregate(
        TumblingCountWindow(WINDOW_SIZE), "value", CFApproximationSum(), function="sum"
    )
    sink = CollectSink(name="sink")
    engine = StreamEngine(batch_size=batch_size)
    engine.add_source("in", select)
    select.connect(aggregate)
    aggregate.connect(sink)
    return engine, sink


def run_once(stream, batch_size):
    """Run the plan over ``stream``; return (seconds, results)."""
    engine, sink = build_plan(batch_size)
    started = time.perf_counter()
    engine.push_many("in", stream)
    engine.finish()
    return time.perf_counter() - started, sink.results


def best_throughput(stream, batch_size):
    """Best-of-``REPEATS`` throughput in tuples/s, plus one result list."""
    run_once(stream, batch_size)  # warmup: numpy/scipy dispatch, allocator, caches
    best = float("inf")
    results = None
    for _ in range(REPEATS):
        elapsed, results = run_once(stream, batch_size)
        best = min(best, elapsed)
    return len(stream) / best, results


@pytest.fixture(scope="module")
def table(result_table_factory):
    return result_table_factory(
        "engine_throughput",
        f"{'path':>12} {'batch':>8} {'tuples/s':>12} {'speedup':>8}",
    )


def test_batch_path_speedup_and_equivalence(table):
    stream = gaussian_tuple_stream(N_TUPLES, rng=3)

    tuple_rate, tuple_results = best_throughput(stream, batch_size=None)
    batch_rate, batch_results = best_throughput(stream, batch_size=BATCH_SIZE)
    speedup = batch_rate / tuple_rate

    table.add_row(f"{'tuple':>12} {'-':>8} {tuple_rate:>12.0f} {1.0:>8.2f}")
    table.add_row(f"{'batch':>12} {BATCH_SIZE:>8} {batch_rate:>12.0f} {speedup:>8.2f}")

    _assert_equivalent(tuple_results, batch_results)
    assert speedup >= MIN_SPEEDUP, (
        f"batch path reached only {speedup:.2f}x the tuple-path throughput "
        f"({batch_rate:.0f} vs {tuple_rate:.0f} tuples/s); expected >= {MIN_SPEEDUP}x"
    )


def test_q1_workload_results_identical():
    """Q1-shaped GMM workload: both paths, identical window results."""
    stream = gmm_tuple_stream(6_000, mean_range=(0.0, 100.0), rng=7)
    _, tuple_results = run_once(stream, batch_size=None)
    _, batch_results = run_once(stream, batch_size=512)
    assert tuple_results, "expected at least one closed window"
    _assert_equivalent(tuple_results, batch_results)


def _assert_equivalent(tuple_results, batch_results):
    assert len(tuple_results) == len(batch_results)
    for expected, actual in zip(tuple_results, batch_results):
        assert expected.value("window_start") == actual.value("window_start")
        assert expected.value("window_end") == actual.value("window_end")
        assert expected.value("window_count") == actual.value("window_count")
        dist_expected = expected.distribution("sum_value")
        dist_actual = actual.distribution("sum_value")
        assert abs(dist_expected.mu - dist_actual.mu) <= EQUIVALENCE_TOLERANCE
        assert abs(dist_expected.sigma - dist_actual.sigma) <= EQUIVALENCE_TOLERANCE
