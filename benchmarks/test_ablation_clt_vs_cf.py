"""Ablation (Sections 4.4 / 5.1): aggregation strategies and correlation handling.

Two questions the paper's design hinges on:

1. For independent summands, how do the strategies trade speed against
   accuracy as the window grows?  (CLT ~ free, CF approximation ~ cheap
   and accurate, CF inversion exact but slow, pairwise convolution the
   infeasible baseline.)
2. For *correlated* (MA) series, how badly does the i.i.d. CLT
   understate the variance of an average, and does the time-series CLT
   fix it?
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CFApproximationSum, CFInversionSum, CLTSum, ConvolutionSum
from repro.distributions import variance_distance
from repro.radar import MAModel
from repro.workloads import gmm_tuple_stream

STRATEGIES = {
    "clt": CLTSum,
    "cf_approx": CFApproximationSum,
    "cf_inversion": CFInversionSum,
    "convolution": ConvolutionSum,
}

WINDOW_SIZES = {"clt": 100, "cf_approx": 100, "cf_inversion": 100, "convolution": 20}


@pytest.fixture(scope="module")
def table(result_table_factory):
    return result_table_factory(
        "ablation_clt_vs_cf",
        f"{'strategy':<14} {'window':>7} {'ms/window':>11} {'variance distance':>19}",
    )


@pytest.mark.parametrize("name", list(STRATEGIES), ids=list(STRATEGIES))
def test_independent_sum_strategies(benchmark, name, table):
    window = WINDOW_SIZES[name]
    stream = gmm_tuple_stream(window, rng=23)
    summands = [t.distribution("value") for t in stream]
    exact = CFInversionSum(n_bins=512, n_frequencies=4096).result_distribution(summands)
    strategy = STRATEGIES[name]()

    result = benchmark(strategy.result_distribution, summands)

    distance = variance_distance(exact, result)
    ms_per_window = benchmark.stats.stats.mean * 1000.0
    benchmark.extra_info.update({"variance_distance": distance, "ms_per_window": ms_per_window})
    table.add_row(f"{name:<14} {window:>7d} {ms_per_window:>11.3f} {distance:>19.4f}")

    assert distance < 0.1


@pytest.mark.parametrize("ma_coefficient", (0.0, 0.5, 0.9), ids=lambda c: f"theta={c}")
def test_correlated_average_coverage(benchmark, ma_coefficient, table):
    """Do the claimed 90% intervals for the window average actually hold?

    For each simulated MA window we build a 90% interval around the
    realised window mean with (a) the i.i.d. CLT and (b) the time-series
    CLT using the sample autocovariances, and count how often the true
    process mean (10.0) lies inside.  With positive correlation the
    i.i.d. intervals are too narrow -- exactly the error the paper's MA
    treatment avoids.
    """
    coefficients = (ma_coefficient,) if ma_coefficient else ()
    model = MAModel(mean=10.0, coefficients=coefficients, noise_std=1.0)
    window = 200
    n_trials = 150
    rng = np.random.default_rng(31)
    series_list = [model.simulate(window, rng=rng) for _ in range(n_trials)]

    def analyse_all():
        from repro.radar import mean_distribution_from_series

        covered_iid = 0
        covered_ts = 0
        for series in series_list:
            iid = mean_distribution_from_series(series, ma_order=0)
            ts = mean_distribution_from_series(series, ma_order=2)
            lo, hi = iid.confidence_region(0.9)
            covered_iid += int(lo <= 10.0 <= hi)
            lo, hi = ts.confidence_region(0.9)
            covered_ts += int(lo <= 10.0 <= hi)
        return covered_iid / n_trials, covered_ts / n_trials

    coverage_iid, coverage_ts = benchmark.pedantic(analyse_all, rounds=1, iterations=1)
    benchmark.extra_info.update({"coverage_iid": coverage_iid, "coverage_ts": coverage_ts})
    table.add_row(
        f"{'ma_coverage':<14} {window:>7d} {'theta=' + str(ma_coefficient):>11} "
        f"iid={coverage_iid:.2f} ts={coverage_ts:.2f}"
    )

    if ma_coefficient >= 0.5:
        # With real correlation the time-series CLT interval must cover the
        # true mean clearly more often than the too-narrow i.i.d. interval.
        assert coverage_ts > coverage_iid
        assert coverage_ts >= 0.8
