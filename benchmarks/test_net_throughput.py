"""Localhost ingest throughput through the network service layer.

The paper's motivating workloads are *remote* receptors (RFID readers,
radar sites) pushing high-volume uncertain streams at a central
processor; this benchmark measures what the TCP path actually
sustains: a :class:`~repro.net.StreamClient` pipelining encoded tuple
batches into a :class:`~repro.net.StreamServer` whose session runs a
registered select→aggregate query on the batch execution path.

Reported per configuration (ingest batch size × ack window):

* end-to-end tuples/s as seen by the client (encode + TCP + decode +
  query execution + ack),
* the p95 ingest→ACK round-trip latency the client observed (from
  ``StreamClient.last_ingest_ack_latencies``; pipelined, so one sample
  may cover several in-flight frames), and
* the wire bytes per tuple of the columnar batch codec.

Asserted: the best configuration sustains at least ``MIN_TUPLES_PER_S``
(the ROADMAP's remote-ingest floor) on localhost, single core.
"""

from __future__ import annotations

import time

import numpy as np

from repro import QuerySession
from repro.distributions import Gaussian
from repro.net import StreamClient, serve_in_thread
from repro.streams import StreamTuple
from repro.streams.batch import TupleBatch
from repro.streams.serialization import encode_batch_wire

N_TUPLES = 30_000
REPEATS = 2
CONFIGS = ((256, 8), (1024, 16), (4096, 16))  # (ingest batch, ack window)
MIN_TUPLES_PER_S = 50_000

QUERY = "SELECT SUM(value) AS total FROM s [RANGE 2 SECONDS SLIDE 2 SECONDS]"


def make_tuples(n, offset=0.0):
    """Timestamps advance across runs: windows never see time move backwards."""
    rng = np.random.default_rng(29)
    return [
        StreamTuple(
            timestamp=offset + i * 0.01,
            values={"tag_id": f"T{i % 16}"},
            uncertain={"value": Gaussian(float(rng.uniform(10.0, 90.0)), 2.0)},
        )
        for i in range(n)
    ]


def run_config(address, offset, batch_size, window):
    tuples = make_tuples(N_TUPLES, offset=offset)  # built outside the timer
    with StreamClient(address, timeout=60.0) as client:
        started = time.perf_counter()
        acked = client.ingest("s", tuples, batch_size=batch_size, window=window)
        elapsed = time.perf_counter() - started
        latencies = list(client.last_ingest_ack_latencies)
    assert acked == len(tuples)
    return len(tuples) / elapsed, latencies


def test_localhost_ingest_throughput(result_table_factory):
    wire_bytes = len(encode_batch_wire(TupleBatch(make_tuples(1024))))
    bytes_per_tuple = wire_bytes / 1024.0

    session = QuerySession(batch_size=2048)
    handle = serve_in_thread(session)
    table = result_table_factory(
        "net_throughput",
        f"# localhost ingest, {N_TUPLES} tuples/run, select->aggregate "
        f"registered, columnar wire ({bytes_per_tuple:.1f} B/tuple)\n"
        f"{'batch':>8} {'window':>8} {'tuples/s':>12} {'ack p95 (ms)':>14}",
    )
    best = 0.0
    try:
        with StreamClient(handle.address, timeout=60.0) as setup:
            setup.declare_stream(
                "s", values=("tag_id",), uncertain=("value",), family="gaussian",
                rate_hint=100.0,
            )
            setup.register("totals", QUERY)
        span = N_TUPLES * 0.01 + 10.0
        run_index = 0
        for batch_size, window in CONFIGS:
            rate = 0.0
            latencies = []
            for _ in range(REPEATS):
                run_rate, run_latencies = run_config(
                    handle.address, run_index * span, batch_size, window
                )
                rate = max(rate, run_rate)
                latencies.extend(run_latencies)
                run_index += 1
            best = max(best, rate)
            ack_p95_ms = float(np.percentile(latencies, 95)) * 1000.0
            table.add_row(
                f"{batch_size:>8} {window:>8} {rate:>12.0f} {ack_p95_ms:>14.3f}"
            )
    finally:
        handle.stop()

    table.add_row(f"# floor: {MIN_TUPLES_PER_S} tuples/s, best: {best:.0f}")
    assert best >= MIN_TUPLES_PER_S, (
        f"localhost ingest sustained only {best:.0f} tuples/s "
        f"(floor {MIN_TUPLES_PER_S})"
    )
