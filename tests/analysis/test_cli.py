"""The ``python -m repro.analysis`` gate: exit codes and output."""

import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


class TestMain:
    def test_repo_is_clean(self, capsys):
        assert main([]) == 0
        err = capsys.readouterr().err
        assert "0 error(s)" in err

    def test_query_errors_gate(self, capsys):
        assert main(["--query", "SELECT x FROM s [RANGE 5 SLIDE 10]"]) == 1
        out = capsys.readouterr().out
        assert "SLIDE 10.0 exceeds RANGE 5.0" in out

    def test_clean_query_passes(self):
        assert main(["--query", "SELECT x FROM s WHERE x > 1"]) == 0

    def test_strict_turns_warnings_into_failures(self, capsys):
        # A deterministic probability qualifier is warning-severity:
        # fine by default, fatal under --strict.
        query = "SELECT SUM(x) FROM s [ROWS 5] HAVING SUM(x) > 1 WITH PROBABILITY 2.0"
        assert main(["--query", query]) == 1  # probability out of range: error


class TestModuleEntryPoint:
    def test_python_dash_m_exits_zero_on_the_repo(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
            timeout=120,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 error(s)" in result.stderr
