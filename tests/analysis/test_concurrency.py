"""Concurrency lint: self-lint cleanliness + synthetic offenders.

Each rule gets a minimal synthetic source that trips it and a close
sibling that does not, so the checks stay sharp in both directions.
"""

import textwrap

from repro.analysis.concurrency import lint_concurrency, lint_source
from repro.analysis.diagnostics import errors


def _lint(source, owner_names=None):
    return lint_source(textwrap.dedent(source), "synthetic.py", owner_names)


def _rules(source, owner_names=None):
    return [d.rule for d in _lint(source, owner_names)]


class TestImportTimeThread:
    def test_module_scope_thread_start_is_caught(self):
        assert "import-time-thread" in _rules(
            """
            from threading import Thread
            Thread(target=print).start()
            """
        )

    def test_thread_inside_function_is_fine(self):
        assert (
            _rules(
                """
                from threading import Thread

                def go():
                    Thread(target=print).start()
                """
            )
            == []
        )


class TestThreadBeforeFork:
    def test_thread_created_before_process_is_caught(self):
        assert "thread-before-fork" in _rules(
            """
            def start(self):
                reader = Thread(target=self._loop)
                reader.start()
                worker = Process(target=main)
                worker.start()
            """
        )

    def test_process_first_is_fine(self):
        assert (
            _rules(
                """
                def start(self):
                    worker = Process(target=main)
                    worker.start()
                    reader = Thread(target=self._loop)
                    reader.start()
                """
            )
            == []
        )


class TestForkUnderLock:
    def test_process_created_under_lock_is_caught(self):
        assert "fork-under-lock" in _rules(
            """
            def start(self):
                with self._lock:
                    worker = Process(target=main)
            """
        )

    def test_process_outside_critical_section_is_fine(self):
        assert (
            _rules(
                """
                def start(self):
                    with self._lock:
                        n = self._count
                    worker = Process(target=main)
                """
            )
            == []
        )

    def test_nested_function_does_not_inherit_the_lock(self):
        # The inner def runs later, not under the with; no finding.
        assert (
            _rules(
                """
                def start(self):
                    with self._lock:
                        def later():
                            return Process(target=main)
                """
            )
            == []
        )


class TestSinkDeliveryThread:
    def test_reader_thread_reaching_delivery_is_caught(self):
        found = _lint(
            """
            class Engine:
                def start(self):
                    self._reader = Thread(target=self._loop)

                def _loop(self):
                    self._apply_reply()
                    self._flush_ready()

                def _apply_reply(self):
                    pass

                def _flush_ready(self):
                    pass
            """
        )
        assert [d.rule for d in found] == ["sink-delivery-thread"]
        assert "_flush_ready" in found[0].message

    def test_transitive_reachability_is_caught(self):
        assert "sink-delivery-thread" in _rules(
            """
            class Engine:
                def start(self):
                    self._reader = Thread(target=self._loop)

                def _loop(self):
                    self._step()

                def _step(self):
                    self._deliver(1)

                def _deliver(self, item):
                    pass
            """
        )

    def test_reader_thread_without_delivery_is_fine(self):
        assert (
            _rules(
                """
                class Engine:
                    def start(self):
                        self._reader = Thread(target=self._loop)

                    def _loop(self):
                        self._apply_reply()

                    def _apply_reply(self):
                        pass

                    def _deliver(self, item):
                        pass
                """
            )
            == []
        )


class TestSharedDictSlot:
    def test_unlocked_slot_augassign_on_reader_thread_is_caught(self):
        found = _lint(
            """
            class Engine:
                def start(self):
                    self._reader = Thread(target=self._loop)

                def _loop(self):
                    self._apply_reply()

                def _apply_reply(self):
                    self._stage["decode"] += 0.5
            """
        )
        assert [d.rule for d in found] == ["shared-dict-slot"]
        assert "_stage" in found[0].message

    def test_locked_slot_augassign_is_fine(self):
        assert (
            _rules(
                """
                class Engine:
                    def start(self):
                        self._reader = Thread(target=self._loop)

                    def _loop(self):
                        with self._reply_cv:
                            self._stage["decode"] += 0.5
                """
            )
            == []
        )

    def test_slot_augassign_off_the_thread_path_is_fine(self):
        # finish() is never a thread target nor reachable from one.
        assert (
            _rules(
                """
                class Engine:
                    def start(self):
                        self._reader = Thread(target=self._loop)

                    def _loop(self):
                        pass

                    def finish(self):
                        self._stage["merge"] += 0.5
                """
            )
            == []
        )

    def test_transitive_reachability_is_caught(self):
        assert "shared-dict-slot" in _rules(
            """
            class Engine:
                def start(self):
                    self._reader = Thread(target=self._loop)

                def _loop(self):
                    self._step()

                def _step(self):
                    self._done[0] += 1
            """
        )

    def test_plain_attribute_augassign_is_not_flagged(self):
        # Only container slots race here; whole-attribute += is covered
        # by single-writer discipline and stays out of this rule.
        assert (
            _rules(
                """
                class Engine:
                    def start(self):
                        self._reader = Thread(target=self._loop)

                    def _loop(self):
                        self._count += 1
                """
            )
            == []
        )


class TestShmFinalize:
    def test_bare_shared_memory_creation_is_caught(self):
        assert "shm-finalize" in _rules(
            """
            def scratch():
                return SharedMemory(create=True, size=4096)
            """
        )

    def test_owner_class_creation_is_fine(self):
        assert (
            _rules(
                """
                class Ring:
                    def __init__(self):
                        self._shm = SharedMemory(create=True, size=4096)

                    def close(self):
                        self._shm.close()

                    def unlink(self):
                        self._shm.unlink()
                """
            )
            == []
        )

    def test_owner_construction_without_finalize_net_is_caught(self):
        assert "shm-finalize" in _rules(
            """
            def build():
                return ShmRing(1 << 20)
            """,
            owner_names={"ShmRing"},
        )

    def test_owner_construction_with_finalize_net_is_fine(self):
        assert (
            _rules(
                """
                import weakref

                def build(engine):
                    ring = ShmRing(1 << 20)
                    weakref.finalize(engine, ring.unlink)
                    return ring
                """,
                owner_names={"ShmRing"},
            )
            == []
        )


class TestSelfLint:
    def test_repro_runtime_is_clean(self):
        diagnostics = lint_concurrency()
        assert errors(diagnostics) == [], "\n".join(
            d.render() for d in errors(diagnostics)
        )

    def test_parse_failure_is_a_diagnostic(self):
        assert _rules("def broken(:\n") == ["parse-failure"]
