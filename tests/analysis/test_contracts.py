"""Contract linter: self-lint cleanliness + scratch-offender detection.

The self-lint test is the load-bearing one: it runs the full linter
over ``src/repro`` and asserts zero errors, which keeps every future
PR honest about ``supports_batch``, the snapshot protocol, wire magics
and the worker verb tables.
"""

import textwrap

import pytest

from repro.analysis.contracts import (
    lint_contracts,
    lint_magic_registry,
    lint_operator_classes,
    lint_verb_tables,
)
from repro.analysis.diagnostics import errors
from repro.streams.operators.base import Operator


class DishonestBatchOperator(Operator):
    """Scratch offender: advertises a kernel it does not have."""

    supports_batch = True


class HonestBatchOperator(Operator):
    supports_batch = True

    def process_batch(self, batch):
        return batch


class ForgetfulStatefulOperator(Operator):
    """Scratch offender: accumulates state, forgets the snapshot protocol."""

    def __init__(self):
        super().__init__()
        self.seen = []

    def process(self, item):
        self.seen.append(item)
        return ()


class RememberingStatefulOperator(Operator):
    def __init__(self):
        super().__init__()
        self.seen = []

    def process(self, item):
        self.seen.append(item)
        return ()

    def state_snapshot(self):
        return {"seen": list(self.seen)}

    def state_restore(self, state):
        self.seen = list(state["seen"])


class TestOperatorContracts:
    def test_dishonest_supports_batch_is_caught(self):
        diagnostics = lint_operator_classes([DishonestBatchOperator])
        assert [d.rule for d in errors(diagnostics)] == ["batch-honesty"]
        (diag,) = errors(diagnostics)
        assert "DishonestBatchOperator" in diag.message
        assert diag.file and diag.file.endswith("test_contracts.py")
        assert diag.line > 0

    def test_honest_supports_batch_passes(self):
        assert errors(lint_operator_classes([HonestBatchOperator])) == []

    def test_stateful_without_snapshot_is_caught(self):
        diagnostics = lint_operator_classes([ForgetfulStatefulOperator])
        assert [d.rule for d in errors(diagnostics)] == ["stateful-snapshot"]
        (diag,) = errors(diagnostics)
        assert "seen" in diag.message
        assert "state_snapshot" in diag.message

    def test_stateful_with_snapshot_passes(self):
        assert errors(lint_operator_classes([RememberingStatefulOperator])) == []

    def test_allowlist_suppresses_stateful_finding(self):
        qualname = (
            f"{ForgetfulStatefulOperator.__module__}."
            f"{ForgetfulStatefulOperator.__qualname__}"
        )
        diagnostics = lint_operator_classes(
            [ForgetfulStatefulOperator],
            state_allowlist={qualname: "scratch operator for this test"},
        )
        assert errors(diagnostics) == []


class TestMagicRegistry:
    def test_repo_magics_are_unique(self):
        assert errors(lint_magic_registry()) == []

    def test_colliding_magics_are_caught(self, tmp_path):
        (tmp_path / "a.py").write_text('FRAME_MAGIC = b"XY"\n')
        (tmp_path / "b.py").write_text('_MAGIC = b"XY"\n')
        diagnostics = lint_magic_registry(tmp_path)
        assert [d.rule for d in errors(diagnostics)] == ["magic-uniqueness"]
        assert "b'XY'" in errors(diagnostics)[0].message

    def test_colliding_frame_kinds_are_caught(self, tmp_path):
        (tmp_path / "net").mkdir()
        (tmp_path / "net" / "protocol.py").write_text(
            "HELLO = 0x01\nREGISTER = 0x01\n"
        )
        diagnostics = lint_magic_registry(tmp_path)
        assert [d.rule for d in errors(diagnostics)] == ["magic-uniqueness"]
        assert "REGISTER" in errors(diagnostics)[0].message


def _write_verb_tree(tmp_path, engine_src, worker_src, protocol_src):
    (tmp_path / "runtime").mkdir()
    (tmp_path / "net").mkdir()
    (tmp_path / "runtime" / "engine.py").write_text(textwrap.dedent(engine_src))
    (tmp_path / "runtime" / "worker.py").write_text(textwrap.dedent(worker_src))
    (tmp_path / "net" / "protocol.py").write_text(textwrap.dedent(protocol_src))
    return tmp_path


_WORKER_OK = """
    def serve_shard_messages(conn):
        kind = "?"
        if kind == "chunk":
            pass
        elif kind == "stop":
            send(("stats", 1))

    def serve_shard_rings(conn):
        message = ("?",)
        if message[0] == "chunk":
            pass
        elif message[0] == "stop":
            reply(encode_worker_message(("stats", 1)))
"""

_PROTOCOL_OK = """
    def encode_worker_message(message):
        verb = message[0]
        if verb == "chunk":
            return b"c"
        if verb == "stop":
            return b"s"
        if verb == "stats":
            return b"t"

    def decode_worker_message(frame):
        if frame == b"c":
            return ("chunk", 1)
        if frame == b"s":
            return ("stop",)
        return ("stats", 1)
"""


class TestVerbTables:
    def test_repo_verb_tables_are_in_sync(self):
        assert errors(lint_verb_tables()) == []

    def test_synced_synthetic_tree_passes(self, tmp_path):
        root = _write_verb_tree(
            tmp_path,
            """
            class Engine:
                def run(self):
                    self._send(0, ("chunk", 1))
                    self._send(0, ("stop",))
            """,
            _WORKER_OK,
            _PROTOCOL_OK,
        )
        assert errors(lint_verb_tables(root)) == []

    def test_unhandled_coordinator_verb_is_caught(self, tmp_path):
        root = _write_verb_tree(
            tmp_path,
            """
            class Engine:
                def run(self):
                    self._send(0, ("chunk", 1))
                    self._send(0, ("vanish",))
            """,
            _WORKER_OK,
            _PROTOCOL_OK,
        )
        found = errors(lint_verb_tables(root))
        assert any("'vanish'" in d.message for d in found)

    def test_loop_divergence_is_caught(self, tmp_path):
        root = _write_verb_tree(
            tmp_path,
            """
            class Engine:
                def run(self):
                    self._send(0, ("chunk", 1))
            """,
            """
            def serve_shard_messages(conn):
                kind = "?"
                if kind == "chunk":
                    pass
                elif kind == "flush":
                    pass

            def serve_shard_rings(conn):
                message = ("?",)
                if message[0] == "chunk":
                    pass
            """,
            """
            def encode_worker_message(message):
                verb = message[0]
                if verb == "chunk":
                    return b"c"
                if verb == "flush":
                    return b"f"

            def decode_worker_message(frame):
                return ("chunk", 1)
            """,
        )
        found = errors(lint_verb_tables(root))
        assert any(
            "'flush'" in d.message and "serve_shard_rings" in d.message
            for d in found
        )


class TestSelfLint:
    def test_src_repro_is_clean(self):
        """The whole point: src/repro passes its own contract linter."""
        diagnostics = lint_contracts()
        assert errors(diagnostics) == [], "\n".join(
            d.render() for d in errors(diagnostics)
        )

    @pytest.mark.parametrize("rule", ["batch-honesty", "stateful-snapshot"])
    def test_repo_operators_pass_rule(self, rule):
        diagnostics = [d for d in lint_contracts() if d.rule == rule]
        assert errors(diagnostics) == []
