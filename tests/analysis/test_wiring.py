"""Analyzer wiring: strict registration, session.analyze, server headers.

The tentpole's acceptance path: a seeded typo'd-column query is
*rejected* under ``strict=True`` with a spanned diagnostic, and the
server surfaces analyzer findings in the REGISTER reply header.
"""

import pytest

from repro import QuerySession
from repro.analysis import AnalysisError
from repro.net import RemoteError, StreamClient, serve_in_thread

TYPO = "SELECT SUM(wt) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"
# Warning-severity only (WITH PROBABILITY over a deterministic SUM):
# the analyzer flags it, but lowering accepts it.
SLOPPY = (
    "SELECT SUM(n) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS] "
    "HAVING SUM(n) > 1 WITH PROBABILITY 0.9"
)
CLEAN = "SELECT SUM(w) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"


@pytest.fixture
def session():
    s = QuerySession()
    s.create_stream(
        "rfid", values=("tag_id", "n"), uncertain=("w",), family="gaussian"
    )
    yield s
    s.close()


class TestStrictRegistration:
    def test_typo_is_rejected_with_a_spanned_diagnostic(self, session):
        with pytest.raises(AnalysisError) as excinfo:
            session.register("totals", TYPO, strict=True)
        error = excinfo.value
        assert "did you mean 'w'" in str(error)
        # The span anchors at the aggregate call containing the typo.
        assert error.line == 1
        assert error.column == 8
        assert error.token == "wt"
        (diag,) = error.diagnostics
        assert diag.rule == "unknown-column"
        assert "totals" not in session.queries  # nothing half-registered

    def test_clean_query_registers_strictly(self, session):
        session.register("totals", CLEAN, strict=True)
        assert session.queries == ["totals"]

    def test_default_registration_stays_lenient(self, session):
        # Without strict, warnings-only queries register as before.
        session.register("hot", SLOPPY)
        assert session.queries == ["hot"]

    def test_analyze_reports_without_registering(self, session):
        diagnostics = session.analyze(SLOPPY)
        assert [d.rule for d in diagnostics] == ["probability-on-deterministic"]
        assert session.queries == []


class TestServerWarnings:
    @pytest.fixture
    def server(self):
        handle = serve_in_thread(QuerySession())
        yield handle
        handle.stop()

    @pytest.fixture
    def client(self, server):
        with StreamClient(server.address, timeout=15.0) as connected:
            connected.declare_stream(
                "rfid", values=("tag_id", "n"), uncertain=("w",), family="gaussian"
            )
            yield connected

    def test_register_returns_warnings_in_header(self, client):
        client.register("hot", SLOPPY)
        assert len(client.last_register_warnings) == 1
        assert "WITH PROBABILITY" in client.last_register_warnings[0]

    def test_clean_register_has_no_warnings(self, client):
        client.register("totals", CLEAN)
        assert client.last_register_warnings == []

    def test_strict_register_of_typo_is_a_remote_error(self, client):
        with pytest.raises(RemoteError, match="did you mean 'w'"):
            client.register("totals", TYPO, strict=True)
        # The query must not exist server-side after the refusal.
        assert client.hello()["queries"] == []
