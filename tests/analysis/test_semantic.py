"""Golden-message tests for the CQL semantic analyzer.

Mirrors ``tests/cql/test_errors.py``: each rule pins the *exact*
rendered diagnostic (severity, span, message) so the analyzer's error
surface stays stable — update goldens deliberately, not accidentally.
"""

import pytest

from repro.analysis import Severity
from repro.analysis.semantic import analyze_query
from repro.cql.errors import CQLSyntaxError
from repro.plan.nodes import SourceNode

SOURCES = {
    "readings": SourceNode(
        name="readings",
        values=frozenset({"tag_id"}),
        uncertain=frozenset({"x", "y"}),
    ),
    "shelf": SourceNode(
        name="shelf",
        values=frozenset({"sid", "sx"}),
        uncertain=frozenset(),
    ),
}

#: (query, rule, exact rendered diagnostic)
GOLDEN_DIAGNOSTICS = [
    (
        "SELECT tag_idd FROM readings [RANGE 5]",
        "unknown-column",
        "CQL semantic error at line 1, column 8: unknown attribute 'tag_idd' "
        "(known: tag_id, x, y); did you mean 'tag_id'? (near 'tag_idd')",
    ),
    (
        "SELECT tag_id FROM readings [RANGE 5] WHERE x = 3",
        "uncertain-equality",
        "CQL semantic error at line 1, column 47: deterministic '=' on "
        "uncertain attribute 'x' matches with probability zero; use BETWEEN, "
        "a '~=' band match, or WITH PROBABILITY on a range comparison "
        "(near '=')",
    ),
    (
        "SELECT tag_id FROM readings [RANGE 5 SLIDE 10]",
        "window-sanity",
        "CQL semantic error at line 1, column 29: SLIDE 10.0 exceeds RANGE "
        "5.0: tuples arriving between window hops would be silently dropped",
    ),
    (
        "SELECT COUNT(*) FROM readings [ROWS 0]",
        "window-sanity",
        "CQL semantic error at line 1, column 31: [ROWS n] needs a positive "
        "whole number of rows, got 0.0",
    ),
    (
        "SELECT tag_id FROM readings [RANGE 5] "
        "WHERE tag_id = 'a' WITH PROBABILITY 0.5",
        "probability-on-deterministic",
        "CQL semantic warning at line 1, column 45: WITH PROBABILITY on "
        "deterministic attribute 'tag_id': the comparison is exact and the "
        "qualifier has no effect (near 'tag_id')",
    ),
    (
        "SELECT r.tag_id FROM readings AS r [RANGE 5] "
        "JOIN shelf AS s [RANGE 5] ON r.x ~= s.sid WITHIN 0",
        "band-match-width",
        "CQL semantic error at line 1, column 75: a '~=' band match needs a "
        "positive WITHIN width, got 0.0",
    ),
    (
        "SELECT AVG(x) FROM readings [RANGE 5] GROUP BY tag_id "
        "HAVING AVG(tag_id) > 1 WITH PROBABILITY 0.9",
        "having-mismatch",
        "CQL semantic error at line 1, column 62: HAVING aggregate "
        "avg(tag_id) does not match the SELECT aggregate avg(x) "
        "(near 'avg(tag_id)')",
    ),
    (
        "SELECT zz FROM nosuch [RANGE 5]",
        "unknown-stream",
        "CQL semantic error at line 1, column 16: stream 'nosuch' is not "
        "declared and would run as an open-schema source "
        "(declared: readings, shelf) (near 'nosuch')",
    ),
]


class TestGoldenDiagnostics:
    @pytest.mark.parametrize(
        "query,rule,rendered",
        GOLDEN_DIAGNOSTICS,
        ids=[case[1] for case in GOLDEN_DIAGNOSTICS],
    )
    def test_exact_rendering(self, query, rule, rendered):
        diagnostics = analyze_query(query, sources=SOURCES)
        matching = [d for d in diagnostics if d.rule == rule]
        assert matching, f"rule {rule} did not fire; got {diagnostics}"
        assert matching[0].render() == rendered
        assert str(matching[0]) == rendered


class TestRuleBehaviour:
    def test_clean_query_has_no_diagnostics(self):
        assert (
            analyze_query(
                "SELECT tag_id, AVG(x) FROM readings [RANGE 5] GROUP BY tag_id",
                sources=SOURCES,
            )
            == []
        )

    def test_open_schema_without_sources_stays_silent(self):
        # No declared streams at all: everything is open-schema; the
        # analyzer cannot know any better and must not guess.
        assert analyze_query("SELECT zz FROM nosuch [RANGE 5]") == []

    def test_unknown_column_span_is_one_based(self):
        (diag,) = [
            d
            for d in analyze_query(
                "SELECT tag_idd FROM readings [RANGE 5]", sources=SOURCES
            )
            if d.rule == "unknown-column"
        ]
        assert (diag.line, diag.column, diag.token) == (1, 8, "tag_idd")
        assert diag.severity is Severity.ERROR

    def test_unknown_function_is_reported(self):
        diagnostics = analyze_query(
            "SELECT tag_id FROM readings [RANGE 5] WHERE mystery(x) > 1",
            sources=SOURCES,
        )
        assert any(d.rule == "unknown-function" for d in diagnostics)

    def test_builtin_functions_are_known(self):
        assert (
            analyze_query(
                "SELECT tag_id FROM readings [RANGE 5] WHERE abs(x) > 1",
                sources=SOURCES,
            )
            == []
        )

    def test_probability_on_function_comparison_is_misuse(self):
        # Mirrors the lowering rule: WITH PROBABILITY applies only to
        # constant comparisons on uncertain attributes.
        diagnostics = analyze_query(
            "SELECT tag_id FROM readings [RANGE 5] WHERE abs(x) > 1 "
            "WITH PROBABILITY 0.5",
            sources=SOURCES,
        )
        assert any(d.rule == "probability-misuse" for d in diagnostics)

    def test_probability_out_of_range(self):
        diagnostics = analyze_query(
            "SELECT tag_id FROM readings [RANGE 5] WHERE x > 1 "
            "WITH PROBABILITY 1.5",
            sources=SOURCES,
        )
        assert any(
            d.rule == "probability-misuse" and d.is_error for d in diagnostics
        )

    def test_slide_below_range_is_tumbling_only(self):
        diagnostics = analyze_query(
            "SELECT AVG(x) FROM readings [RANGE 10 SLIDE 5]", sources=SOURCES
        )
        assert any(d.rule == "window-sanity" for d in diagnostics)

    def test_band_match_on_deterministic_operand_warns(self):
        diagnostics = analyze_query(
            "SELECT r.tag_id FROM readings AS r [RANGE 5] "
            "JOIN shelf AS s [RANGE 5] ON r.x ~= s.sid WITHIN 2",
            sources=SOURCES,
        )
        assert any(
            d.rule == "band-match-deterministic" and not d.is_error
            for d in diagnostics
        )

    def test_unknown_alias_in_select(self):
        diagnostics = analyze_query(
            "SELECT zz.tag_id FROM readings AS r [RANGE 5] "
            "JOIN shelf AS s [RANGE 5] ON r.x ~= s.sx WITHIN 2",
            sources=SOURCES,
        )
        assert any(d.rule == "unknown-alias" for d in diagnostics)

    def test_unqualified_band_match_side_is_reported(self):
        diagnostics = analyze_query(
            "SELECT r.tag_id FROM readings AS r [RANGE 5] "
            "JOIN shelf AS s [RANGE 5] ON zz.x ~= s.sx WITHIN 2",
            sources=SOURCES,
        )
        assert any(d.rule == "band-match-operands" for d in diagnostics)

    def test_syntax_errors_still_raise(self):
        with pytest.raises(CQLSyntaxError):
            analyze_query("SELEC * FROM readings", sources=SOURCES)

    def test_accepts_parsed_ast(self):
        from repro.cql.parser import parse

        ast = parse("SELECT tag_idd FROM readings [RANGE 5]")
        diagnostics = analyze_query(ast, sources=SOURCES)
        assert any(d.rule == "unknown-column" for d in diagnostics)
