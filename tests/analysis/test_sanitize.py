"""REPRO_SANITIZE runtime mode: armed invariants catch seeded corruption.

The sanitizer must be off by default (zero-cost in production), latch
at object construction, and turn seeded ring/replay corruption into
:class:`SanitizerError` instead of silent garbage.
"""

import struct

import pytest

from repro.analysis.sanitize import SanitizerError, sanitizer_enabled
from repro.recovery.replay import ReplayLog
from repro.runtime.shm import _HEAD, ShmRing
from repro.streams.tuples import StreamTuple

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


@pytest.fixture
def armed(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


@pytest.fixture
def disarmed(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)


def _make_ring(request, data_bytes=1 << 12):
    ring = ShmRing(data_bytes)
    def cleanup():
        ring.close()
        ring.unlink()
    request.addfinalizer(cleanup)
    return ring


class TestSwitch:
    def test_off_by_default(self, disarmed):
        assert sanitizer_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_values_arm(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitizer_enabled() is True

    @pytest.mark.parametrize("value", ["", "0", "false", "no", "off"])
    def test_falsy_values_disarm(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert sanitizer_enabled() is False

    def test_latched_at_construction(self, monkeypatch, request):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        ring = _make_ring(request)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert ring._sanitize is False  # flipping env never re-arms live rings
        assert ShmRing.__init__  # (documented contract, checked above)


class TestRingInvariants:
    def test_armed_ring_round_trips_normally(self, armed, request):
        ring = _make_ring(request)
        assert ring.try_write(b"hello")
        view = ring.next_view()
        assert bytes(view) == b"hello"
        ring.release()
        assert ring.next_view() is None

    def test_corrupt_length_word_is_caught(self, armed, request):
        ring = _make_ring(request)
        ring.try_write(b"hello")
        # Smash the record's length word to an impossible value.
        _U32.pack_into(ring._buf, 256, ring.max_record + 1)
        with pytest.raises(SanitizerError, match="corrupt length word"):
            ring.next_view()

    def test_head_regression_is_caught(self, armed, request):
        ring = _make_ring(request)
        ring.try_write(b"hello")
        view = ring.next_view()  # latches the observed head
        assert view is not None
        ring.release()
        _U64.pack_into(ring._buf, _HEAD, 0)  # head goes backwards
        with pytest.raises(SanitizerError, match="head moved backwards"):
            ring.next_view()

    def test_record_past_published_head_is_caught(self, armed, request):
        ring = _make_ring(request)
        ring.try_write(b"hello")
        # Claim a longer record than the producer published.
        _U32.pack_into(ring._buf, 256, 100)
        with pytest.raises(SanitizerError, match="past"):
            ring.next_view()

    def test_disarmed_ring_skips_the_checks(self, disarmed, request):
        ring = _make_ring(request)
        ring.try_write(b"hello")
        _U32.pack_into(ring._buf, 256, 100)  # same corruption as above
        view = ring.next_view()  # garbage, but no sanitizer in the way
        assert view is not None


def _tuple(ts):
    return StreamTuple(timestamp=ts, values={"n": ts})


class TestReplayInvariants:
    def test_armed_log_round_trips_normally(self, armed):
        log = ReplayLog(capacity=4, query="q")
        for ts in range(1, 7):
            log.append(_tuple(float(ts)))
        entries = log.replay_from(3)
        assert [seq for seq, _ in entries] == [4, 5, 6]

    def test_seq_jump_on_append_is_caught(self, armed):
        log = ReplayLog(capacity=8, query="q")
        log.append(_tuple(1.0))
        log._base += 5  # seed corruption: base drifts without a trim
        with pytest.raises(SanitizerError, match="append moved last_seq"):
            log.append(_tuple(2.0))

    def test_disarmed_log_skips_the_checks(self, disarmed):
        log = ReplayLog(capacity=8, query="q")
        log.append(_tuple(1.0))
        log._base += 5
        log.append(_tuple(2.0))  # silently wrong, but not the sanitizer's job
        assert log.last_seq == 7
