"""Operator state protocol + state codec round trips."""

import math

import pytest

from repro.core import Comparison
from repro.distributions import Gaussian
from repro.plan import Stream
from repro.recovery import (
    StateError,
    decode_state,
    encode_state,
    restore_engine_ops,
    snapshot_engine_ops,
)
from repro.streams import StreamTuple, TumblingTimeWindow


def make_tuples(n=20, start=0):
    return [
        StreamTuple(
            timestamp=float(start + i),
            values={"tag": f"T{(start + i) % 3}"},
            uncertain={"v": Gaussian(10.0 + start + i, 2.0)},
        )
        for i in range(n)
    ]


class TestStateCodec:
    def test_scalar_dict_round_trips(self):
        state = {
            "count": 7,
            "label": "window",
            "nested": {"flag": True, "ratio": 0.25, "nothing": None},
            "plain_list": [1, 2, 3],
        }
        assert decode_state(encode_state(state)) == state

    def test_nonfinite_floats_round_trip(self):
        state = {"watermark": float("-inf"), "high": float("inf"), "nan": float("nan")}
        decoded = decode_state(encode_state(state))
        assert decoded["watermark"] == float("-inf")
        assert decoded["high"] == float("inf")
        assert math.isnan(decoded["nan"])

    def test_tuple_lists_round_trip_exactly(self):
        tuples = make_tuples(15)
        state = {"buffer": tuples, "groups": {"a": tuples[:4], "b": []}}
        decoded = decode_state(encode_state(state))
        assert decoded["groups"]["b"] == []
        for original, restored in zip(tuples, decoded["buffer"]):
            assert restored.tuple_id == original.tuple_id
            assert restored.timestamp == original.timestamp
            assert restored.values == original.values
            assert restored.lineage == original.lineage
            da, db = original.distribution("v"), restored.distribution("v")
            assert float(db.mean()) == float(da.mean())
            assert float(db.variance()) == float(da.variance())

    def test_bare_stream_tuple_is_rejected(self):
        with pytest.raises(StateError, match="bare StreamTuple"):
            encode_state({"loose": make_tuples(1)[0]})

    def test_bad_magic_is_rejected(self):
        with pytest.raises(StateError, match="magic"):
            decode_state(b"NOPE" + b"\x00" * 16)

    def test_trailing_bytes_are_rejected(self):
        payload = encode_state({"x": 1}) + b"junk"
        with pytest.raises(StateError, match="trailing"):
            decode_state(payload)


def aggregate_engine():
    return (
        Stream.source("s", values=("tag",), uncertain=("v",))
        .window(TumblingTimeWindow(5.0))
        .group_by(lambda t: t.value("tag"))
        .aggregate("v")
        .compile()
    )


def join_engine():
    left = Stream.source("l", uncertain=("x",))
    right = Stream.source("r", uncertain=("x",))
    return left.join(
        right,
        on=lambda a, b: 1.0 if abs(a.distribution("x").mean() - b.distribution("x").mean()) < 5.0 else 0.0,
        window_length=30.0,
        min_probability=0.5,
    ).compile()


class TestEngineSnapshot:
    """snapshot_engine_ops/restore_engine_ops over real operator chains."""

    def test_open_windows_survive_the_round_trip(self, assert_tuples_equivalent):
        tuples = make_tuples(23)
        uninterrupted = aggregate_engine()
        uninterrupted.push_many("s", tuples)

        first = aggregate_engine()
        first.push_many("s", tuples[:9])  # mid-window: state is live
        entries = snapshot_engine_ops(first.engine)
        # A lossless wire trip, exactly as the checkpoint file stores it.
        entries = decode_state(encode_state({"ops": entries}))["ops"]

        second = aggregate_engine()
        restore_engine_ops(second.engine, entries)
        second.push_many("s", tuples[9:])

        assert_tuples_equivalent(uninterrupted.finish(), second.finish())

    def test_join_build_side_survives_the_round_trip(self, assert_tuples_equivalent):
        lefts = [
            StreamTuple(timestamp=float(i), uncertain={"x": Gaussian(float(i), 1.0)})
            for i in range(12)
        ]
        rights = [
            StreamTuple(
                timestamp=float(i) + 0.5, uncertain={"x": Gaussian(float(i), 1.0)}
            )
            for i in range(12)
        ]
        uninterrupted = join_engine()
        uninterrupted.push_many("l", lefts)
        uninterrupted.push_many("r", rights)

        first = join_engine()
        first.push_many("l", lefts)  # build side populated, probe pending
        entries = decode_state(
            encode_state({"ops": snapshot_engine_ops(first.engine)})
        )["ops"]
        second = join_engine()
        restore_engine_ops(second.engine, entries)
        second.push_many("r", rights)

        assert uninterrupted.finish()
        assert_tuples_equivalent(uninterrupted.results, second.finish())

    def test_restore_rejects_a_different_plan(self):
        entries = snapshot_engine_ops(aggregate_engine().engine)
        other = (
            Stream.source("s", uncertain=("v",))
            .where_probably("v", Comparison.GREATER, 0.0, min_probability=0.5)
            .compile()
        )
        with pytest.raises(StateError):
            restore_engine_ops(other.engine, entries)
