"""Recovered sessions continue exactly where the checkpoint left off.

The acceptance bar of the subsystem: for Q1 (sharded aggregate) and Q2
(probabilistic join, engine-hosted), ``checkpoint → recover → push the
rest`` must equal an uninterrupted run to 1e-9 — on the single-process
engine and on workers=4 with both the inline and forked (shm ring)
backends.
"""

import pytest

from repro import QuerySession
from repro.recovery import CheckpointStore
from repro.service import ServiceError


def run_uninterrupted(factory, objects, sensors, **session_kwargs):
    with factory(**session_kwargs) as session:
        session.push_many("temperature", sensors)
        session.push_many("rfid", objects[:45])
        session.push_many("objects", objects[:45])
        session.push_many("rfid", objects[45:])
        session.push_many("objects", objects[45:])
        session.flush()
        return session.results("q1"), session.results("q2")


def run_with_recovery(factory, udfs, objects, sensors, tmp_path, checkpoints=1,
                      **session_kwargs):
    directory = str(tmp_path / "ckpts")
    session = factory(**session_kwargs)
    try:
        session.push_many("temperature", sensors)
        if checkpoints > 1:  # earlier checkpoints make the final one a delta
            for i in range(checkpoints - 1):
                session.push_many("rfid", objects[i : i + 1])
                session.push_many("objects", objects[i : i + 1])
                session.checkpoint(directory)
            session.push_many("rfid", objects[checkpoints - 1 : 45])
            session.push_many("objects", objects[checkpoints - 1 : 45])
        else:
            session.push_many("rfid", objects[:45])
            session.push_many("objects", objects[:45])
        info = session.checkpoint(directory)
    finally:
        session.close()

    recovered = QuerySession.recover(directory, functions=udfs, **session_kwargs)
    try:
        recovered.push_many("rfid", objects[45:])
        recovered.push_many("objects", objects[45:])
        recovered.flush()
        return recovered.results("q1"), recovered.results("q2"), info
    finally:
        recovered.close()


class TestRecoverEqualsUninterrupted:
    def test_single_engine(self, warehouse, paper_session_factory, paper_udfs,
                           assert_tuples_equivalent, tmp_path):
        _, objects, sensors = warehouse
        q1, q2 = run_uninterrupted(paper_session_factory, objects, sensors)
        r1, r2, info = run_with_recovery(
            paper_session_factory, paper_udfs, objects, sensors, tmp_path
        )
        assert info.mode == "full"
        assert q1 and q2, "both paper queries must produce alerts"
        assert_tuples_equivalent(q1, r1)
        assert_tuples_equivalent(q2, r2)

    def test_workers_4_inline(self, warehouse, paper_session_factory, paper_udfs,
                              assert_tuples_equivalent, tmp_path):
        _, objects, sensors = warehouse
        kwargs = dict(workers=4, shard_backend="inline")
        q1, q2 = run_uninterrupted(paper_session_factory, objects, sensors, **kwargs)
        r1, r2, _ = run_with_recovery(
            paper_session_factory, paper_udfs, objects, sensors, tmp_path, **kwargs
        )
        assert q1 and q2
        assert_tuples_equivalent(q1, r1)
        assert_tuples_equivalent(q2, r2)

    def test_workers_4_forked_shm(self, warehouse, paper_session_factory,
                                  paper_udfs, assert_tuples_equivalent, tmp_path):
        """The real thing: forked shard workers over shm ring transports."""
        _, objects, sensors = warehouse
        kwargs = dict(workers=4, shard_backend="process")
        q1, q2 = run_uninterrupted(paper_session_factory, objects, sensors, **kwargs)
        r1, r2, _ = run_with_recovery(
            paper_session_factory, paper_udfs, objects, sensors, tmp_path, **kwargs
        )
        assert q1 and q2
        assert_tuples_equivalent(q1, r1)
        assert_tuples_equivalent(q2, r2)

    def test_delta_checkpoint_chain(self, warehouse, paper_session_factory,
                                    paper_udfs, assert_tuples_equivalent, tmp_path):
        """Recovery from the newest delta of a checkpoint chain."""
        _, objects, sensors = warehouse
        q1, q2 = run_uninterrupted(paper_session_factory, objects, sensors)
        r1, r2, info = run_with_recovery(
            paper_session_factory, paper_udfs, objects, sensors, tmp_path,
            checkpoints=3,
        )
        assert info.mode == "delta"
        assert info.parent == 2
        assert_tuples_equivalent(q1, r1)
        assert_tuples_equivalent(q2, r2)

    def test_collected_results_survive(self, warehouse, paper_session_factory,
                                       paper_udfs, tmp_path):
        """Results emitted before the checkpoint are still readable after."""
        _, objects, _ = warehouse
        directory = str(tmp_path / "ckpts")
        with paper_session_factory() as session:
            session.push_many("rfid", objects)  # past the last full window
            before = list(session.results("q1"))
            assert before, "the workload must emit before the checkpoint"
            session.checkpoint(directory)
        with QuerySession.recover(directory, functions=paper_udfs) as recovered:
            assert len(recovered.results("q1")) == len(before)
            assert recovered.last_result_seq("q1") == len(before)


class TestCheckpointErrors:
    def test_worker_mismatch_is_rejected(self, warehouse, paper_session_factory,
                                         paper_udfs, tmp_path):
        _, objects, _ = warehouse
        directory = str(tmp_path / "ckpts")
        with paper_session_factory(workers=4, shard_backend="inline") as s:
            s.push_many("rfid", objects[:10])
            s.checkpoint(directory)
        with pytest.raises(ServiceError, match="worker configuration"):
            QuerySession.recover(directory, functions=paper_udfs, workers=0)

    def test_programmatic_queries_cannot_checkpoint(self, tmp_path):
        session = QuerySession()
        stream = session.create_stream("s", uncertain=("v",))
        session.register("fluent", stream.where_probably("v", ">", 0.0))
        with pytest.raises(ServiceError, match="CQL"):
            session.checkpoint(str(tmp_path / "ckpts"))

    def test_closed_session_cannot_checkpoint(self, tmp_path):
        session = QuerySession()
        session.close()
        with pytest.raises(ServiceError, match="closed"):
            session.checkpoint(str(tmp_path / "ckpts"))

    def test_missing_udfs_fail_recovery(self, warehouse, paper_session_factory,
                                        tmp_path):
        _, objects, _ = warehouse
        directory = str(tmp_path / "ckpts")
        with paper_session_factory() as session:
            session.push_many("rfid", objects[:10])
            session.checkpoint(directory)
        with pytest.raises(Exception):  # UDFs are code, not state
            QuerySession.recover(directory)

    def test_checkpoint_files_accumulate_with_stable_names(
        self, warehouse, paper_session_factory, tmp_path
    ):
        _, objects, _ = warehouse
        directory = str(tmp_path / "ckpts")
        with paper_session_factory() as session:
            session.push_many("rfid", objects[:10])
            session.checkpoint(directory)
            session.push_many("rfid", objects[10:20])
            session.checkpoint(directory)
        assert CheckpointStore(directory).checkpoint_ids() == [1, 2]
