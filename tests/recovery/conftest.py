"""Shared fixtures for the durability & recovery suite.

The session-level tests run the paper's Q1 (sharded aggregate split)
and Q2 (probabilistic join, engine-hosted) over the same warehouse
workload as ``tests/cql/test_paper_queries.py``, split at a checkpoint
boundary, and require the recovered run to match an uninterrupted one
to 1e-9.
"""

import numpy as np
import pytest

from repro import QuerySession
from repro.distributions import Gaussian
from repro.streams import StreamTuple

Q1 = """
    SELECT weight_of(tag_id) AS weight, zone(x) AS area, SUM(weight)
    FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]
    WHERE in_catalog(tag_id)
    GROUP BY area
    HAVING SUM(weight) > 200 WITH CONFIDENCE 0.5
"""

Q2 = """
    SELECT *
    FROM objects AS obj
    JOIN temperature AS temp [RANGE 30 SECONDS]
      ON obj.x ~= temp.x WITHIN 4 AND obj.y ~= temp.y WITHIN 4
      MIN PROBABILITY 0.05
    WHERE object_type(obj.tag_id) = 'flammable'
      AND temp.temp > 60 WITH PROBABILITY 0.5
"""


def make_catalog(seed=7):
    rng = np.random.default_rng(seed)
    catalog = {}
    for i in range(40):
        catalog[f"O{i:03d}"] = {
            "weight": float(rng.uniform(30.0, 80.0)),
            "type": "flammable" if rng.random() < 0.4 else "general",
        }
    return catalog, rng


def make_objects(rng, n=80):
    objects = []
    for i in range(n):
        tag = f"O{i % 50:03d}"  # some tags are ghost reads (not in catalog)
        shelf = int(rng.integers(0, 3))
        objects.append(
            StreamTuple(
                timestamp=float(i) * 0.2,
                values={"tag_id": tag},
                uncertain={
                    "x": Gaussian(10.0 + 20.0 * shelf + float(rng.normal(0, 0.5)), 0.8),
                    "y": Gaussian(10.0 + float(rng.normal(0, 0.5)), 0.8),
                },
            )
        )
    return objects


def make_sensors(rng, n=40):
    sensors = []
    for i in range(n):
        sensors.append(
            StreamTuple(
                timestamp=float(i) * 0.4,
                values={"sensor_id": i},
                uncertain={
                    "x": Gaussian(float(rng.uniform(0.0, 70.0)), 1.0),
                    "y": Gaussian(float(rng.uniform(0.0, 20.0)), 1.0),
                    "temp": Gaussian(float(rng.uniform(30.0, 95.0)), 4.0),
                },
            )
        )
    return sensors


@pytest.fixture(scope="module")
def warehouse():
    """Catalog plus object/sensor streams shared by Q1 and Q2."""
    catalog, rng = make_catalog()
    objects = make_objects(rng)
    sensors = make_sensors(rng)
    return catalog, objects, sensors


def warehouse_functions(catalog):
    """The UDFs Q1/Q2 reference, closed over the catalog."""

    def weight_of(tag):
        return catalog.get(tag, {}).get("weight", 0.0)

    def in_catalog(tag):
        return tag in catalog

    def zone(x):
        return int(x.mean() // 20.0)

    def object_type(tag):
        return catalog.get(tag, {}).get("type", "unknown")

    return {
        "weight_of": weight_of,
        "in_catalog": in_catalog,
        "zone": zone,
        "object_type": object_type,
    }


def build_paper_session(catalog, **session_kwargs):
    """A session with Q1 and Q2 registered over declared streams."""
    session = QuerySession(
        functions=warehouse_functions(catalog), **session_kwargs
    )
    session.create_stream(
        "rfid", values=("tag_id",), uncertain=("x", "y"), family="gaussian",
        rate_hint=5.0,
    )
    session.create_stream("objects", values=("tag_id",), uncertain=("x", "y"))
    session.create_stream(
        "temperature", values=("sensor_id",), uncertain=("x", "y", "temp")
    )
    session.register("q1", Q1)
    session.register("q2", Q2)
    return session


def _assert_tuples_equivalent(left, right, tolerance=1e-9):
    """Result lists must agree: values exactly/1e-9, uncertain by moments."""
    assert len(left) == len(right), f"{len(left)} results vs {len(right)}"
    for a, b in zip(left, right):
        assert set(a.values) == set(b.values), (sorted(a.values), sorted(b.values))
        for key, value in a.values.items():
            other = b.values[key]
            if isinstance(value, float):
                assert other == pytest.approx(value, abs=tolerance), key
            else:
                assert other == value, key
        assert set(a.uncertain) == set(b.uncertain)
        for key in a.uncertain:
            da, db = a.distribution(key), b.distribution(key)
            assert float(db.mean()) == pytest.approx(float(da.mean()), abs=tolerance)
            assert float(db.variance()) == pytest.approx(
                float(da.variance()), abs=tolerance
            )


@pytest.fixture
def assert_tuples_equivalent():
    return _assert_tuples_equivalent


# The test directories are not packages, so helpers travel as fixtures.
@pytest.fixture(scope="module")
def paper_udfs(warehouse):
    catalog, _, _ = warehouse
    return warehouse_functions(catalog)


@pytest.fixture(scope="module")
def paper_session_factory(warehouse):
    catalog, _, _ = warehouse

    def build(**session_kwargs):
        return build_paper_session(catalog, **session_kwargs)

    return build
