"""SUBSCRIBE ... RESUME, replay gaps, token auth, END seq, CHECKPOINT verb."""

import threading
import time

import numpy as np
import pytest

from repro import QuerySession
from repro.distributions import Gaussian
from repro.net import (
    AuthError,
    ConnectionClosed,
    ReplayGapError,
    StreamClient,
    serve_in_thread,
)
from repro.streams import StreamTuple

TOTALS = "SELECT SUM(w) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"


def rfid_tuples(n=400, seed=17):
    rng = np.random.default_rng(seed)
    return [
        StreamTuple(
            timestamp=i * 0.2,
            values={"tag_id": f"T{i % 5}"},
            uncertain={"w": Gaussian(float(rng.uniform(20.0, 60.0)), 2.0)},
        )
        for i in range(n)
    ]


def declare_and_register(client):
    client.declare_stream(
        "rfid", values=("tag_id",), uncertain=("w",), family="gaussian", rate_hint=5.0
    )
    client.register("totals", TOTALS)


@pytest.fixture
def server():
    handle = serve_in_thread(QuerySession())
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with StreamClient(server.address, timeout=15.0) as connected:
        yield connected


def drain_counted(sub, want_last_seq, timeout=15.0):
    """Collect results until ``last_seq`` reaches the target, verifying
    that every batch's seq advance matches its row count (no dupes, no
    gaps)."""
    collected = []
    deadline = time.monotonic() + timeout
    while sub.last_seq < want_last_seq:
        before = sub.last_seq
        items = sub.recv(timeout=max(0.1, deadline - time.monotonic()))
        assert sub.last_seq - before == len(items), "seq advance != batch size"
        collected.extend(items)
    assert sub.last_seq == want_last_seq
    return collected


class TestResume:
    # 400 tuples at 0.2s spacing = 80s = 16 tumbling windows of 5s.
    def test_resume_is_exactly_once_under_concurrent_ingest(self, server, client):
        declare_and_register(client)
        tuples = rfid_tuples()

        # A first subscriber sees the early results, then disconnects.
        sub1 = client.subscribe("totals")
        client.ingest("rfid", tuples[:200], batch_size=50)
        part1 = drain_counted(sub1, want_last_seq=7)
        resume_at = sub1.last_seq
        sub1.close()

        # Results emitted while nobody is subscribed go to the replay log.
        client.ingest("rfid", tuples[200:300], batch_size=50)

        # Reconnect with RESUME while a writer keeps ingesting concurrently.
        def keep_ingesting():
            with StreamClient(server.address, timeout=15.0) as writer:
                for start in range(300, 400, 25):
                    writer.ingest("rfid", tuples[start : start + 25])
                    time.sleep(0.01)
                writer.flush()

        writer_thread = threading.Thread(target=keep_ingesting)
        writer_thread.start()
        try:
            with client.subscribe("totals", resume_from=resume_at) as sub2:
                part2 = drain_counted(sub2, want_last_seq=16)
        finally:
            writer_thread.join()

        # Every result exactly once: the two halves equal a from-scratch
        # replay of the full run.
        assert len(part1) + len(part2) == 16
        with client.subscribe("totals", resume_from=0) as replayed:
            full = drain_counted(replayed, want_last_seq=16)
        got = [float(t.distribution("total").mean()) for t in part1 + part2]
        expected = [float(t.distribution("total").mean()) for t in full]
        assert got == pytest.approx(expected, abs=1e-9)

    def test_resume_from_zero_replays_from_the_beginning(self, client):
        declare_and_register(client)
        client.ingest("rfid", rfid_tuples(100))
        client.flush()
        with client.subscribe("totals", resume_from=0) as sub:
            results = drain_counted(sub, want_last_seq=4)
        assert len(results) == 4

    def test_subscribe_ok_reports_current_seq(self, client):
        declare_and_register(client)
        client.ingest("rfid", rfid_tuples(100))
        client.flush()
        with client.subscribe("totals") as sub:
            # A plain subscribe attaches at the live position.
            assert sub.last_seq == 4

    def test_resume_past_the_trim_point_is_a_replay_gap(self):
        handle = serve_in_thread(QuerySession(replay_capacity=2))
        try:
            with StreamClient(handle.address, timeout=15.0) as client:
                declare_and_register(client)
                client.ingest("rfid", rfid_tuples())
                client.flush()  # 16 results; the log retains only 15..16
                with pytest.raises(ReplayGapError):
                    client.subscribe("totals", resume_from=1)
                # The failed resume must not leave a half-attached
                # subscriber behind: a valid resume still works.
                with client.subscribe("totals", resume_from=15) as sub:
                    assert len(drain_counted(sub, want_last_seq=16)) == 1
        finally:
            handle.stop()

    def test_end_frame_carries_the_final_seq(self, server, client):
        """DROP with an active subscriber: END reports the last delivered
        seq, so the client knows it is current, not cut off."""
        declare_and_register(client)
        with client.subscribe("totals") as sub:
            client.ingest("rfid", rfid_tuples(200), batch_size=50)
            drain_counted(sub, want_last_seq=7)
            client.drop("totals")
            with pytest.raises(ConnectionClosed, match="dropped"):
                while True:
                    sub.recv(timeout=10.0)
            assert sub.last_seq == 7


class TestAuth:
    @pytest.fixture
    def auth_server(self):
        handle = serve_in_thread(QuerySession(), auth_token="sesame")
        yield handle
        handle.stop()

    def test_correct_token_is_accepted(self, auth_server):
        with StreamClient(auth_server.address, timeout=15.0, token="sesame") as client:
            declare_and_register(client)
            assert client.hello()["streams"] == ["rfid"]

    def test_wrong_token_is_rejected_at_connect(self, auth_server):
        with pytest.raises(AuthError):
            StreamClient(auth_server.address, timeout=15.0, token="open says me")

    def test_missing_token_is_rejected_on_first_verb(self, auth_server):
        client = StreamClient(auth_server.address, timeout=15.0)
        with pytest.raises(AuthError):
            declare_and_register(client)

    def test_subscription_carries_the_token(self, auth_server):
        with StreamClient(auth_server.address, timeout=15.0, token="sesame") as client:
            declare_and_register(client)
            client.ingest("rfid", rfid_tuples(100))
            client.flush()
            with client.subscribe("totals", resume_from=0) as sub:
                assert len(drain_counted(sub, want_last_seq=4)) == 4

    def test_unauthenticated_subscribe_is_rejected(self, auth_server):
        with pytest.raises(AuthError):
            StreamClient(auth_server.address, timeout=15.0).subscribe("totals")


class TestCheckpointVerb:
    def test_checkpoint_over_the_wire_then_recover_offline(self, server, client,
                                                           tmp_path):
        declare_and_register(client)
        client.ingest("rfid", rfid_tuples(200), batch_size=50)
        directory = str(tmp_path / "ckpts")
        assert client.checkpoint(directory) == 1
        assert client.checkpoint(directory, mode="full") == 2
        with QuerySession.recover(directory) as recovered:
            assert "totals" in recovered.queries
            assert recovered.last_result_seq("totals") == 7
