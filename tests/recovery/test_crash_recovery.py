"""SIGKILL a serving process mid-ingest; recover from its checkpoint.

The child process runs a sharded session (forked workers, shm ring
transports), checkpoints, keeps ingesting, then is killed — process
group and all — without any chance to clean up.  The parent recovers
from the checkpoint into a fresh process, re-pushes everything after
the checkpoint cut, and must match an uninterrupted run to 1e-9.
Recovery also reaps the shm segments the dead coordinator leaked.
"""

import glob
import os
import pathlib
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro import QuerySession
from repro.distributions import Gaussian
from repro.recovery import reap_stale_segments
from repro.streams import StreamTuple

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

TOTALS = "SELECT SUM(w) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"

CHILD_SCRIPT = textwrap.dedent(
    """
    import sys, time
    import numpy as np
    from repro import QuerySession
    from repro.distributions import Gaussian
    from repro.streams import StreamTuple

    directory = sys.argv[1]
    rng = np.random.default_rng(41)
    tuples = [
        StreamTuple(
            timestamp=i * 0.2,
            values={"tag_id": f"T{i % 5}"},
            uncertain={"w": Gaussian(float(rng.uniform(20.0, 60.0)), 2.0)},
        )
        for i in range(400)
    ]
    session = QuerySession(workers=2, shard_backend="process")
    session.create_stream(
        "rfid", values=("tag_id",), uncertain=("w",), family="gaussian",
        rate_hint=5.0,
    )
    session.register("totals", @TOTALS@)
    session.push_many("rfid", tuples[:150])
    session.checkpoint(directory)
    # Ingest past the checkpoint: everything from here dies with us.
    session.push_many("rfid", tuples[150:250])
    print("CHECKPOINTED", flush=True)
    time.sleep(120)  # killed long before this expires
    """
).replace("@TOTALS@", repr(TOTALS))


def make_tuples():
    rng = np.random.default_rng(41)
    return [
        StreamTuple(
            timestamp=i * 0.2,
            values={"tag_id": f"T{i % 5}"},
            uncertain={"w": Gaussian(float(rng.uniform(20.0, 60.0)), 2.0)},
        )
        for i in range(400)
    ]


def child_segments(pid):
    return glob.glob(f"/dev/shm/repro-ring-{pid}-*")


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a /dev/shm tmpfs"
)
class TestCrashRecovery:
    def test_sigkill_recover_matches_uninterrupted(
        self, tmp_path, assert_tuples_equivalent
    ):
        directory = str(tmp_path / "ckpts")
        tuples = make_tuples()

        # The reference: the same workload, never interrupted.
        with QuerySession(workers=2, shard_backend="process") as reference:
            reference.create_stream(
                "rfid", values=("tag_id",), uncertain=("w",), family="gaussian",
                rate_hint=5.0,
            )
            reference.register("totals", TOTALS)
            reference.push_many("rfid", tuples)
            reference.flush()
            expected = reference.results("totals")
        assert expected, "the reference run must emit results"

        # Serve in a child process (own process group, so the SIGKILL
        # takes the forked shard workers down with the coordinator).
        env = dict(os.environ, PYTHONPATH=SRC)
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, directory],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            start_new_session=True,
            text=True,
        )
        try:
            marker = child.stdout.readline().strip()
            assert marker == "CHECKPOINTED", child.stderr.read()
            leaked = child_segments(child.pid)
            assert leaked, "the forked backend must be using shm ring segments"
            os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                os.killpg(child.pid, signal.SIGKILL)
            child.stdout.close()
            child.stderr.close()

        # SIGKILL skipped every unlink path: the segments are leaked ...
        deadline = time.monotonic() + 5.0
        while child_segments(child.pid) != leaked and time.monotonic() < deadline:
            time.sleep(0.05)
        assert child_segments(child.pid) == leaked

        # ... until recovery reaps them as part of coming back up.
        recovered = QuerySession.recover(directory, workers=2,
                                         shard_backend="process")
        try:
            assert child_segments(child.pid) == []
            # The post-checkpoint ingest died with the child; re-push
            # everything after the checkpoint cut, then the rest.
            recovered.push_many("rfid", tuples[150:])
            recovered.flush()
            got = recovered.results("totals")
        finally:
            recovered.close()
        assert_tuples_equivalent(expected, got)

        # Our own teardown leaks nothing either.
        assert child_segments(os.getpid()) == []

    def test_reap_ignores_live_owners(self):
        """reap_stale_segments never touches a living process's rings."""
        with QuerySession(workers=2, shard_backend="process") as session:
            session.create_stream("rfid", values=("tag_id",), uncertain=("w",),
                                  family="gaussian", rate_hint=5.0)
            session.register("totals", TOTALS)
            mine = child_segments(os.getpid())
            assert mine, "a forked sharded session must create ring segments"
            reap_stale_segments()
            assert child_segments(os.getpid()) == mine
        assert child_segments(os.getpid()) == []
