"""CheckpointStore file format, delta refs, atomicity; ReplayLog units."""

import os
from pathlib import Path

import pytest

from repro.distributions import Gaussian
from repro.recovery import (
    CheckpointError,
    CheckpointStore,
    ReplayGapError,
    ReplayLog,
)
from repro.streams import StreamTuple


class TestCheckpointStore:
    def test_full_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        blobs = {"meta": b"{}", "query/q": b"\x00\x01state"}
        info = store.save(blobs, mode="full")
        assert info.checkpoint_id == 1
        assert info.mode == "full"
        assert info.parent is None
        assert info.blobs_written == 2
        header, loaded = store.load_latest()
        assert header["id"] == 1
        assert loaded == blobs

    def test_auto_mode_is_full_then_delta(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.save({"a": b"1"}, mode="auto").mode == "full"
        assert store.save({"a": b"1"}, mode="auto").mode == "delta"

    def test_delta_references_unchanged_blobs(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"stable": b"same", "hot": b"v1"}, mode="full")
        info = store.save({"stable": b"same", "hot": b"v2"}, mode="delta")
        assert info.blobs_written == 1
        assert info.blobs_referenced == 1
        _, blobs = store.load_latest()
        assert blobs == {"stable": b"same", "hot": b"v2"}

    def test_delta_refs_point_at_the_original_writer(self, tmp_path):
        """A chain of deltas never needs more than one hop to resolve."""
        store = CheckpointStore(tmp_path)
        store.save({"stable": b"same", "hot": b"v1"}, mode="full")
        for version in (b"v2", b"v3", b"v4"):
            store.save({"stable": b"same", "hot": version}, mode="delta")
        header = store._read_header(4)
        # The third delta still references checkpoint 1, not its parent.
        assert header["blobs"]["stable"]["ref"] == 1
        _, blobs = store.load(4)
        assert blobs == {"stable": b"same", "hot": b"v4"}

    def test_crash_leaves_previous_checkpoint_valid(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"a": b"good"}, mode="full")
        # A crash mid-write leaves only a temp file behind; the directory
        # scan must ignore it and load_latest must still see checkpoint 1.
        (tmp_path / "ckpt-00000002.rckp.tmp").write_bytes(b"partial garbage")
        assert store.latest_id() == 1
        _, blobs = store.load_latest()
        assert blobs == {"a": b"good"}

    def test_corrupt_blob_fails_integrity_check(self, tmp_path):
        store = CheckpointStore(tmp_path)
        info = store.save({"a": b"x" * 64}, mode="full")
        raw = bytearray(Path(info.path).read_bytes())
        raw[-1] ^= 0xFF  # flip a blob byte, leave the header intact
        Path(info.path).write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="integrity"):
            store.load_latest()

    def test_missing_parent_of_a_delta_is_reported(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"a": b"same"}, mode="full")
        store.save({"a": b"same"}, mode="delta")
        os.remove(os.path.join(store.directory, "ckpt-00000001.rckp"))
        with pytest.raises(CheckpointError, match="missing"):
            store.load_latest()

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoints"):
            CheckpointStore(tmp_path).load_latest()

    def test_unknown_mode_is_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="mode"):
            CheckpointStore(tmp_path).save({}, mode="sideways")


def result(i):
    return StreamTuple(
        timestamp=float(i), values={"n": i}, uncertain={"v": Gaussian(float(i), 1.0)}
    )


class TestReplayLog:
    def test_seqs_start_at_one_and_are_monotonic(self):
        log = ReplayLog(capacity=10, query="q")
        assert log.last_seq == 0
        assert [log.append(result(i)) for i in range(3)] == [1, 2, 3]

    def test_replay_from_returns_exactly_the_missed_entries(self):
        log = ReplayLog(capacity=10, query="q")
        for i in range(5):
            log.append(result(i))
        pairs = log.replay_from(2)
        assert [seq for seq, _ in pairs] == [3, 4, 5]
        assert [item.value("n") for _, item in pairs] == [2, 3, 4]
        assert log.replay_from(5) == []

    def test_trimming_keeps_the_newest_entries(self):
        log = ReplayLog(capacity=3, query="q")
        for i in range(8):
            log.append(result(i))
        assert log.last_seq == 8
        assert log.first_retained == 6
        assert [seq for seq, _ in log.replay_from(5)] == [6, 7, 8]

    def test_resume_past_the_trim_point_is_a_gap(self):
        log = ReplayLog(capacity=3, query="q")
        for i in range(8):
            log.append(result(i))
        with pytest.raises(ReplayGapError) as excinfo:
            log.replay_from(2)
        assert excinfo.value.query == "q"
        assert excinfo.value.after_seq == 2
        assert excinfo.value.first_retained == 6

    def test_resume_from_the_future_is_a_gap(self):
        log = ReplayLog(capacity=3, query="q")
        log.append(result(0))
        with pytest.raises(ReplayGapError):
            log.replay_from(99)

    def test_state_round_trip_preserves_numbering(self):
        log = ReplayLog(capacity=4, query="q")
        for i in range(9):
            log.append(result(i))
        other = ReplayLog(capacity=4, query="q")
        other.state_restore(log.state_snapshot())
        assert other.last_seq == 9
        assert other.first_retained == 6
        assert [s for s, _ in other.replay_from(7)] == [8, 9]

    def test_restore_into_a_smaller_capacity_trims(self):
        log = ReplayLog(capacity=8, query="q")
        for i in range(8):
            log.append(result(i))
        small = ReplayLog(capacity=2, query="q")
        small.state_restore(log.state_snapshot())
        assert small.last_seq == 8
        assert small.first_retained == 7
