"""StreamServer + clients: verbs, subscriptions, slow consumers, errors."""

import asyncio

import numpy as np
import pytest

from repro import QuerySession
from repro.distributions import Gaussian
from repro.net.errors import ConnectionClosed
from repro.streams import StreamTuple
from repro.net import (
    AsyncStreamClient,
    RemoteError,
    SlowConsumerError,
    StreamClient,
    StreamServer,
    serve_in_thread,
)
from repro.net.server import _Subscriber

TOTALS = "SELECT SUM(w) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"
HOT = "SELECT * FROM rfid WHERE w > 40 WITH PROBABILITY 0.5"


@pytest.fixture
def server():
    handle = serve_in_thread(QuerySession())
    yield handle
    handle.stop()


@pytest.fixture
def client(server):
    with StreamClient(server.address, timeout=15.0) as connected:
        yield connected


def declare_rfid(client):
    client.declare_stream(
        "rfid", values=("tag_id",), uncertain=("w",), family="gaussian", rate_hint=5.0
    )


class TestVerbs:
    def test_hello_reports_streams_and_queries(self, client):
        assert client.hello() == {"server": "repro.net", "streams": [], "queries": []}
        declare_rfid(client)
        client.register("totals", TOTALS)
        info = client.hello()
        assert info["streams"] == ["rfid"]
        assert info["queries"] == ["totals"]

    def test_ingest_flush_and_results_via_subscription(self, client, rfid_tuples):
        declare_rfid(client)
        client.register("totals", TOTALS)
        with client.subscribe("totals") as sub:
            acked = client.ingest("rfid", rfid_tuples, batch_size=64, window=4)
            assert acked == len(rfid_tuples)
            client.flush()
            # 400 tuples at 0.2s spacing = 80s = 16 windows of 5s.
            results = sub.take(16, timeout=15.0)
        assert len(results) == 16
        assert all(r.has_uncertain("total") for r in results)

    def test_declared_stream_schema_survives_the_wire(self, client, rfid_tuples):
        client.declare_stream(
            "rfid",
            values=("tag_id",),
            uncertain={"w": ("gaussian", 40.0, 10.0)},
            family="gaussian",
            rate_hint=5.0,
        )
        client.register("totals", TOTALS)
        assert "totals" in client.explain()

    def test_pause_resume_drop(self, client, rfid_tuples):
        declare_rfid(client)
        client.register("hot", HOT)
        client.pause("hot")
        client.ingest("rfid", rfid_tuples[:50])
        client.resume("hot")
        client.ingest("rfid", rfid_tuples[50:100])
        stats = client.statistics("hot")
        assert stats["stats"], "a registered query must report its boxes"
        assert all("hot" in row["owners"] for row in stats["stats"])
        client.drop("hot")
        assert client.hello()["queries"] == []

    def test_drop_ends_active_subscriptions(self, client, rfid_tuples):
        """A dropped query's subscribers get END, not a silent hang."""
        declare_rfid(client)
        client.register("hot", HOT)
        with client.subscribe("hot") as sub:
            client.ingest("rfid", rfid_tuples[:40], batch_size=40)
            delivered = sub.recv(timeout=10.0)  # pre-drop results arrive
            assert delivered
            client.drop("hot")
            with pytest.raises(ConnectionClosed, match="dropped"):
                while True:
                    sub.recv(timeout=10.0)

    def test_statistics_carry_server_counters(self, client, rfid_tuples):
        declare_rfid(client)
        client.register("totals", TOTALS)
        client.ingest("rfid", rfid_tuples, batch_size=100)
        stats = client.statistics()
        assert stats["tuples_ingested"] == len(rfid_tuples)
        assert stats["frames_in"] >= 4  # declare, register, 4 ingest frames

    def test_explain_whole_session_and_single_query(self, client):
        declare_rfid(client)
        client.register("totals", TOTALS)
        assert "QuerySession" in client.explain()
        assert "Logical plan" in client.explain("totals")


class TestErrors:
    def test_register_bad_cql_is_a_remote_error(self, client):
        declare_rfid(client)
        with pytest.raises(RemoteError) as excinfo:
            client.register("bad", "SELEKT nothing FROM nowhere")
        assert excinfo.value.code == "CQLSyntaxError"
        # The connection survives a failed request.
        assert client.hello()["queries"] == []

    def test_duplicate_stream_reports_service_error(self, client):
        declare_rfid(client)
        with pytest.raises(RemoteError) as excinfo:
            declare_rfid(client)
        assert excinfo.value.code == "ServiceError"

    def test_ingest_into_unknown_source_fails(self, client, rfid_tuples):
        with pytest.raises(RemoteError) as excinfo:
            client.ingest("nowhere", rfid_tuples[:10])
        assert excinfo.value.code == "ServiceError"

    def test_failed_pipelined_ingest_leaves_the_connection_aligned(
        self, client, rfid_tuples
    ):
        """Every in-flight frame's ERROR reply must be consumed on failure."""
        declare_rfid(client)
        client.register("totals", TOTALS)
        with pytest.raises(RemoteError):
            # 10 batches pipelined into a window of 8: several frames
            # are in flight when the first ERROR ack comes back.
            client.ingest("nowhere", rfid_tuples[:100], batch_size=10, window=8)
        # The connection must still serve unrelated requests correctly.
        assert "QuerySession" in client.explain()
        assert client.ingest("rfid", rfid_tuples[:50], batch_size=10) == 50

    def test_subscribe_to_unknown_query_fails(self, client):
        with pytest.raises(RemoteError):
            client.subscribe("ghost")


class TestSlowConsumer:
    def _serve(self, policy, buffer):
        return serve_in_thread(
            QuerySession(), subscriber_buffer=buffer, slow_consumer=policy
        )

    def test_drop_oldest_reports_cumulative_drops(self, rfid_tuples):
        handle = self._serve("drop-oldest", buffer=8)
        try:
            with StreamClient(handle.address) as client:
                declare_rfid(client)
                client.register("hot", HOT)
                with client.subscribe("hot") as sub:
                    # One big ingest: every result of it lands in the
                    # subscriber buffer before the writer task runs, so
                    # the overflow policy triggers deterministically.
                    client.ingest("rfid", rfid_tuples, batch_size=400)
                    rows = sub.recv(timeout=10.0)
                    assert len(rows) <= 8
                    assert sub.dropped > 0
        finally:
            handle.stop()

    def test_disconnect_policy_kills_the_subscription(self, rfid_tuples):
        handle = self._serve("disconnect", buffer=8)
        try:
            with StreamClient(handle.address) as client:
                declare_rfid(client)
                client.register("hot", HOT)
                with client.subscribe("hot") as sub:
                    client.ingest("rfid", rfid_tuples, batch_size=400)
                    with pytest.raises(SlowConsumerError):
                        for _ in range(1000):
                            sub.recv(timeout=10.0)
        finally:
            handle.stop()

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            StreamServer(QuerySession(), slow_consumer="shrug")

    def test_subscriber_overflow_is_bounded(self):
        sub = _Subscriber("q", writer=None, buffer_limit=4, policy="drop-oldest")
        rng = np.random.default_rng(0)
        items = [
            StreamTuple(timestamp=float(i), uncertain={"w": Gaussian(rng.uniform(1, 2), 1.0)})
            for i in range(20)
        ]
        for item in items:
            sub.on_result(item)
        assert len(sub.pending) == 4
        assert sub.dropped == 16


class TestAsyncClient:
    def test_full_cycle(self, server, rfid_tuples):
        async def scenario():
            client = await AsyncStreamClient.connect(server.address)
            try:
                await client.declare_stream(
                    "rfid", values=("tag_id",), uncertain=("w",), family="gaussian"
                )
                sharded = await client.register("totals", TOTALS)
                assert sharded is False
                sub = await client.subscribe("totals")
                acked = await client.ingest(
                    "rfid", rfid_tuples, batch_size=64, window=4
                )
                assert acked == len(rfid_tuples)
                await client.flush()
                collected = []
                while len(collected) < 16:
                    collected.extend(await sub.recv())
                await sub.close()
                assert (await client.explain("totals")).startswith("query totals")
                stats = await client.statistics()
                assert stats["tuples_ingested"] == len(rfid_tuples)
                return collected
            finally:
                await client.close()

        results = asyncio.run(scenario())
        assert len(results) == 16

    def test_remote_error_surfaces(self, server):
        async def scenario():
            async with await AsyncStreamClient.connect(server.address) as client:
                with pytest.raises(RemoteError):
                    await client.register("bad", "SELEKT")

        asyncio.run(scenario())
