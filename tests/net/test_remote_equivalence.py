"""Acceptance: the paper's Q1/Q2 served over TCP match the in-process session.

Q1 (per-area weight totals with a probabilistic HAVING) and Q2
(flammable objects near hot sensors via a probabilistic join) are
registered as CQL text through :class:`~repro.net.StreamClient`, fed by
a remote ingest client, and their results collected through
subscriptions — and must agree with a local
:class:`~repro.service.QuerySession` to 1e-9.  A second scenario runs
the same comparison with the server session sharded (``workers=2``) and
one shard living in a remote :class:`~repro.net.ShardServer` process
reached over the socket transport.
"""

import numpy as np
import pytest

from repro import QuerySession
from repro.distributions import Gaussian
from repro.net import ShardServer, StreamClient, serve_in_thread
from repro.plan import Stream
from repro.streams import StreamTuple

Q1 = """
    SELECT weight_of(tag_id) AS weight, zone(x) AS area, SUM(weight)
    FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]
    WHERE in_catalog(tag_id)
    GROUP BY area
    HAVING SUM(weight) > 200 WITH CONFIDENCE 0.5
"""

Q2 = """
    SELECT *
    FROM objects AS obj
    JOIN temperature AS temp [RANGE 30 SECONDS]
      ON obj.x ~= temp.x WITHIN 4 AND obj.y ~= temp.y WITHIN 4
      MIN PROBABILITY 0.05
    WHERE object_type(obj.tag_id) = 'flammable'
      AND temp.temp > 60 WITH PROBABILITY 0.5
"""


@pytest.fixture(scope="module")
def warehouse():
    """Catalog, UDFs and the three input streams both queries read."""
    rng = np.random.default_rng(7)
    catalog = {}
    for i in range(40):
        catalog[f"O{i:03d}"] = {
            "weight": float(rng.uniform(30.0, 80.0)),
            "type": "flammable" if rng.random() < 0.4 else "general",
        }
    rfid = []
    for i in range(120):
        tag = f"O{i % 50:03d}"  # some tags are ghost reads (not in catalog)
        shelf = int(rng.integers(0, 3))
        rfid.append(
            StreamTuple(
                timestamp=float(i) * 0.2,
                values={"tag_id": tag},
                uncertain={
                    "x": Gaussian(10.0 + 20.0 * shelf + float(rng.normal(0, 0.5)), 0.8),
                    "y": Gaussian(10.0 + float(rng.normal(0, 0.5)), 0.8),
                },
            )
        )
    sensors = []
    for i in range(40):
        sensors.append(
            StreamTuple(
                timestamp=float(i) * 0.4,
                values={"sensor_id": i},
                uncertain={
                    "x": Gaussian(float(rng.uniform(0.0, 70.0)), 1.0),
                    "y": Gaussian(float(rng.uniform(0.0, 20.0)), 1.0),
                    "temp": Gaussian(float(rng.uniform(30.0, 95.0)), 4.0),
                },
            )
        )
    functions = {
        "weight_of": lambda tag: catalog.get(tag, {}).get("weight", 0.0),
        "in_catalog": lambda tag: tag in catalog,
        "zone": lambda x: int(x.mean() // 20.0),
        "object_type": lambda tag: catalog.get(tag, {}).get("type", "unknown"),
    }
    return functions, rfid, sensors


def declare_streams(target):
    """Identical declarations for the session, the client and ShardServer."""
    target("rfid", values=("tag_id",), uncertain=("x", "y"), family="gaussian",
           rate_hint=5.0)
    target("objects", values=("tag_id",), uncertain=("x", "y"))
    target("temperature", values=("sensor_id",), uncertain=("x", "y", "temp"))


def run_in_process(warehouse, workers=0, shard_backend="process"):
    """The reference: everything in one process through QuerySession."""
    functions, rfid, sensors = warehouse
    session = QuerySession(functions=functions, workers=workers,
                           shard_backend=shard_backend)
    declare_streams(session.create_stream)
    session.register("q1", Q1)
    session.register("q2", Q2)
    session.push_many("temperature", sensors)
    session.push_many("objects", rfid)
    session.push_many("rfid", rfid)
    session.flush()
    results = session.results("q1"), session.results("q2")
    session.close()
    return results


def run_over_wire(warehouse, address):
    """Register, ingest and collect everything through the wire protocol."""
    functions, rfid, sensors = warehouse
    with StreamClient(address, timeout=30.0) as client:
        declare_streams(client.declare_stream)
        client.register("q1", Q1)
        client.register("q2", Q2)
        with client.subscribe("q1") as sub1, client.subscribe("q2") as sub2:
            assert client.ingest("temperature", sensors, batch_size=16) == len(sensors)
            assert client.ingest("objects", rfid, batch_size=32) == len(rfid)
            assert client.ingest("rfid", rfid, batch_size=32, window=4) == len(rfid)
            client.flush()
            expected_q1, expected_q2 = run_in_process(warehouse)
            got_q1 = sub1.take(len(expected_q1), timeout=30.0)
            got_q2 = sub2.take(len(expected_q2), timeout=30.0)
    return (expected_q1, expected_q2), (got_q1, got_q2)


class TestWireEquivalence:
    def test_q1_q2_over_the_wire_match_in_process(
        self, warehouse, assert_tuples_equivalent
    ):
        handle = serve_in_thread(QuerySession(functions=warehouse[0]))
        try:
            expected, got = run_over_wire(warehouse, handle.address)
        finally:
            handle.stop()
        assert expected[0], "Q1 must produce overloaded-area windows"
        assert expected[1], "Q2 must produce join matches"
        assert_tuples_equivalent(expected[0], got[0])
        assert_tuples_equivalent(expected[1], got[1])

    def test_with_a_remote_socket_shard_in_the_mix(
        self, warehouse, assert_tuples_equivalent
    ):
        """Server session sharded x2, one shard remote over TCP.

        Q1 (aggregate split) runs across one forked worker plus the
        remote ShardServer; Q2 (join) falls back to the shared engine —
        both still match the single-process reference to 1e-9.
        """
        functions = warehouse[0]
        sources = {
            "rfid": Stream.source(
                "rfid", values=("tag_id",), uncertain=("x", "y"),
                family="gaussian", rate_hint=5.0,
            )
        }
        shard_server = ShardServer(
            Q1, sources=sources, functions=functions
        ).start_in_thread()
        session = QuerySession(
            functions=functions,
            workers=2,
            shard_backend="process",
            shard_chunk_size=16,
            shard_remote_shards=[shard_server.address],
        )
        handle = serve_in_thread(session)
        try:
            with StreamClient(handle.address, timeout=30.0) as client:
                declare_streams(client.declare_stream)
                assert client.register("q1", Q1) is True, "Q1 must run sharded"
                assert client.register("q2", Q2) is False, "Q2 must fall back"
                with client.subscribe("q1") as sub1, client.subscribe("q2") as sub2:
                    client.ingest("temperature", warehouse[2], batch_size=16)
                    client.ingest("objects", warehouse[1], batch_size=32)
                    client.ingest("rfid", warehouse[1], batch_size=32)
                    client.flush()
                    expected_q1, expected_q2 = run_in_process(warehouse)
                    got_q1 = sub1.take(len(expected_q1), timeout=30.0)
                    got_q2 = sub2.take(len(expected_q2), timeout=30.0)
        finally:
            handle.stop()
            shard_server.close()
        assert_tuples_equivalent(expected_q1, got_q1)
        assert_tuples_equivalent(expected_q2, got_q2)
