"""Shared helpers for the network service tests."""

import numpy as np
import pytest

from repro.distributions import Gaussian
from repro.streams import StreamTuple


def make_rfid_tuples(n=400, seed=17):
    """Deterministic source tuples shaped like the RFID workload."""
    rng = np.random.default_rng(seed)
    return [
        StreamTuple(
            timestamp=i * 0.2,
            values={"tag_id": f"T{i % 5}"},
            uncertain={"w": Gaussian(float(rng.uniform(20.0, 60.0)), 2.0)},
        )
        for i in range(n)
    ]


@pytest.fixture
def rfid_tuples():
    return make_rfid_tuples()


def _assert_tuples_equivalent(left, right, tolerance=1e-9):
    """Result lists must agree: values exactly/1e-9, uncertain by moments."""
    assert len(left) == len(right), f"{len(left)} results vs {len(right)}"
    for a, b in zip(left, right):
        assert set(a.values) == set(b.values), (sorted(a.values), sorted(b.values))
        for key, value in a.values.items():
            other = b.values[key]
            if isinstance(value, float):
                assert other == pytest.approx(value, abs=tolerance), key
            else:
                assert other == value, key
        assert set(a.uncertain) == set(b.uncertain)
        for key in a.uncertain:
            da, db = a.distribution(key), b.distribution(key)
            assert float(db.mean()) == pytest.approx(float(da.mean()), abs=tolerance)
            assert float(db.variance()) == pytest.approx(
                float(da.variance()), abs=tolerance
            )


@pytest.fixture
def assert_tuples_equivalent():
    return _assert_tuples_equivalent
