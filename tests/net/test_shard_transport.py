"""Socket shard transport: remote shards behave exactly like forked ones."""

import numpy as np
import pytest

from repro.distributions import Gaussian
from repro.net import ShardServer, spawn_shard_server
from repro.plan import Stream
from repro.plan.nodes import PlanError
from repro.runtime import ShardedEngine, ShardError
from repro.streams import StreamTuple, TumblingTimeWindow


def aggregate_query():
    """Select -> tumbling-window SUM: the aggregate-split sharding shape."""
    stream = Stream.source("s", uncertain=("value",), family="gaussian", rate_hint=100.0)
    stream = stream.where_probably("value", ">", 20.0, min_probability=0.2, annotate=None)
    return stream.window(TumblingTimeWindow(2.0)).aggregate("value")


def rowwise_query():
    """A pure filter chain: the ordered-chunk-merge sharding shape."""
    stream = Stream.source("s", uncertain=("value",), family="gaussian", rate_hint=100.0)
    return stream.where_probably("value", ">", 40.0, min_probability=0.4, annotate=None)


def make_tuples(n=4000, seed=3):
    rng = np.random.default_rng(seed)
    return [
        StreamTuple(
            timestamp=i * 0.01,
            uncertain={"value": Gaussian(float(rng.uniform(10.0, 90.0)), 2.0)},
        )
        for i in range(n)
    ]


def run_reference(build, tuples):
    query = build().compile()
    query.push_many("s", tuples)
    return query.finish()


def assert_equivalent(expected, got, assert_tuples_equivalent):
    assert_tuples_equivalent(expected, got)


class TestRemoteShardEquivalence:
    @pytest.mark.parametrize("build", [aggregate_query, rowwise_query])
    def test_single_remote_shard_matches_single_engine(
        self, build, assert_tuples_equivalent
    ):
        tuples = make_tuples()
        expected = run_reference(build, tuples)
        server = ShardServer(build()).start_in_thread()
        try:
            with ShardedEngine(
                build(),
                workers=1,
                backend="process",
                chunk_size=512,
                remote_shards=[server.address],
            ) as engine:
                assert engine.sharded
                engine.push_many("s", tuples)
                got = engine.finish()
        finally:
            server.close()
        assert_tuples_equivalent(expected, got)

    def test_mixed_forked_and_remote_shards(self, assert_tuples_equivalent):
        tuples = make_tuples()
        expected = run_reference(aggregate_query, tuples)
        process, address = spawn_shard_server(aggregate_query())
        try:
            with ShardedEngine(
                aggregate_query(),
                workers=2,
                backend="process",
                chunk_size=512,
                remote_shards=[address],
            ) as engine:
                engine.push_many("s", tuples)
                got = engine.finish()
                transports = {
                    shard: report.transport
                    for shard, report in engine.shard_statistics().items()
                }
                assert transports == {0: "shm", 1: "socket"}
        finally:
            process.terminate()
            process.join(timeout=5)
        assert_tuples_equivalent(expected, got)

    def test_remote_shard_serves_statistics(self):
        tuples = make_tuples(1000)
        server = ShardServer(aggregate_query()).start_in_thread()
        try:
            with ShardedEngine(
                aggregate_query(),
                workers=1,
                backend="process",
                chunk_size=256,
                remote_shards=[server.address],
            ) as engine:
                engine.push_many("s", tuples)
                engine.finish()
                stats = engine.statistics()
                assert 0 in stats.shards and stats.shards[0]
                assert stats.backpressure[0].transport == "socket"
                assert stats.backpressure[0].chunks_sent > 0
                assert stats.backpressure[0].in_flight_chunks == 0
        finally:
            server.close()

    def test_reconnect_gets_fresh_shard_state(self, assert_tuples_equivalent):
        """Each attach builds a new runner — no leakage across coordinators."""
        tuples = make_tuples(2000)
        expected = run_reference(aggregate_query, tuples)
        server = ShardServer(aggregate_query()).start_in_thread()
        try:
            for _ in range(2):
                with ShardedEngine(
                    aggregate_query(),
                    workers=1,
                    backend="process",
                    chunk_size=512,
                    remote_shards=[server.address],
                ) as engine:
                    engine.push_many("s", tuples)
                    got = engine.finish()
                assert_tuples_equivalent(expected, got)
            assert server.served_coordinators >= 1
        finally:
            server.close()


class TestValidation:
    def test_remote_requires_process_backend(self):
        with pytest.raises(PlanError, match="process"):
            ShardedEngine(
                aggregate_query(),
                workers=1,
                backend="inline",
                remote_shards=["127.0.0.1:1"],
            )

    def test_more_addresses_than_slots_rejected(self):
        with pytest.raises(PlanError, match="shard slots"):
            ShardedEngine(
                aggregate_query(),
                workers=1,
                remote_shards=["127.0.0.1:1", "127.0.0.1:2"],
            )

    def test_unreachable_address_fails_at_construction(self):
        with pytest.raises(OSError):
            ShardedEngine(
                aggregate_query(),
                workers=1,
                backend="process",
                remote_shards=["127.0.0.1:1"],  # nothing listens on port 1
            )

    def test_shard_server_rejects_unshardable_plans(self):
        join_left = Stream.source("l", uncertain=("x",))
        join_right = Stream.source("r", uncertain=("x",))
        joined = join_left.join(
            join_right,
            on=lambda a, b: 1.0,
            window_length=10.0,
            min_probability=0.0,
        )
        with pytest.raises(PlanError, match="remote shard"):
            ShardServer(joined)

    def test_attach_to_a_server_hosting_a_different_plan_fails(self):
        """The plan-signature handshake turns silent wrong-merge into an error."""
        server = ShardServer(rowwise_query()).start_in_thread()
        try:
            with pytest.raises(ConnectionError, match="plan mismatch"):
                ShardedEngine(
                    aggregate_query(),
                    workers=1,
                    backend="process",
                    remote_shards=[server.address],
                )
        finally:
            server.close()

    def test_dead_remote_shard_surfaces_as_shard_error(self):
        tuples = make_tuples(3000)
        server = ShardServer(aggregate_query()).start_in_thread()
        engine = ShardedEngine(
            aggregate_query(),
            workers=1,
            backend="process",
            chunk_size=128,
            remote_shards=[server.address],
        )
        try:
            server.close()  # kill the shard under the engine
            with pytest.raises(ShardError):
                engine.push_many("s", tuples)
                engine.finish()
        finally:
            engine.close()
