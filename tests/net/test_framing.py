"""Framing and protocol codecs: round trips, limits, corruption."""

import math
import socket
import struct
import threading

import pytest

from repro.net import ProtocolError
from repro.net.framing import (
    MAX_HEADER,
    BufferedFrameSocket,
    FrameReader,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.net.protocol import (
    INGEST,
    OK,
    decode_worker_message,
    encode_worker_message,
    kind_name,
    parse_address,
)


class TestFrameRoundTrip:
    def test_header_and_payload_round_trip(self):
        frame = encode_frame(INGEST, {"source": "rfid", "seq": 7}, b"\x00\x01binary")
        reader = FrameReader()
        reader.feed(frame)
        kind, header, payload = reader.next_frame()
        assert kind == INGEST
        assert header == {"source": "rfid", "seq": 7}
        assert payload == b"\x00\x01binary"
        assert reader.next_frame() is None
        assert reader.buffered == 0

    def test_empty_header_and_payload(self):
        reader = FrameReader()
        reader.feed(encode_frame(OK))
        assert reader.next_frame() == (OK, {}, b"")

    def test_byte_at_a_time_reassembly(self):
        frame = encode_frame(INGEST, {"seq": 1}, b"x" * 100)
        reader = FrameReader()
        for i, byte in enumerate(frame):
            reader.feed(bytes((byte,)))
            result = reader.next_frame()
            if i < len(frame) - 1:
                assert result is None
            else:
                assert result is not None

    def test_back_to_back_frames_split_correctly(self):
        frames = encode_frame(OK, {"n": 1}) + encode_frame(OK, {"n": 2}, b"p")
        reader = FrameReader()
        reader.feed(frames)
        assert reader.next_frame()[1] == {"n": 1}
        kind, header, payload = reader.next_frame()
        assert header == {"n": 2} and payload == b"p"
        assert reader.next_frame() is None

    def test_large_frame_round_trips(self):
        payload = bytes(range(256)) * 1024  # 256 KiB, > the 64 KiB edge
        reader = FrameReader()
        reader.feed(encode_frame(INGEST, {"seq": 1}, payload))
        assert reader.next_frame()[2] == payload


class TestFrameLimits:
    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(OK))
        frame[0:2] = b"XX"
        reader = FrameReader()
        reader.feed(bytes(frame))
        with pytest.raises(ProtocolError, match="magic"):
            reader.next_frame()

    def test_bad_version_rejected(self):
        frame = bytearray(encode_frame(OK))
        frame[2] = 99
        reader = FrameReader()
        reader.feed(bytes(frame))
        with pytest.raises(ProtocolError, match="version"):
            reader.next_frame()

    def test_oversized_payload_rejected_before_allocation(self):
        frame = bytearray(encode_frame(OK, None, b"1234"))
        # Patch the payload length field to a huge value.
        struct.pack_into("<I", frame, 8, 1 << 31)
        reader = FrameReader(max_payload=1024)
        reader.feed(bytes(frame))
        with pytest.raises(ProtocolError, match="payload"):
            reader.next_frame()

    def test_oversized_header_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="header"):
            encode_frame(OK, {"blob": "x" * (MAX_HEADER + 1)})


class TestSocketHelpers:
    def test_send_recv_over_a_real_socket(self):
        server, client = socket.socketpair()
        try:
            thread = threading.Thread(
                target=lambda: send_frame(server, INGEST, {"seq": 3}, b"abc")
            )
            thread.start()
            kind, header, payload = recv_frame(client)
            thread.join()
            assert (kind, header, payload) == (INGEST, {"seq": 3}, b"abc")
        finally:
            server.close()
            client.close()

    def test_buffered_reader_survives_a_mid_frame_timeout(self):
        """A timed-out read must keep its partial frame and resume cleanly."""
        server, client = socket.socketpair()
        try:
            buffered = BufferedFrameSocket(client)
            frame = encode_frame(INGEST, {"seq": 9}, b"payload-bytes")
            server.sendall(frame[:7])  # half a prelude, then stall
            with pytest.raises(TimeoutError):
                buffered.recv_frame(timeout=0.1)
            server.sendall(frame[7:])  # the rest arrives later
            kind, header, payload = buffered.recv_frame(timeout=5.0)
            assert (kind, header, payload) == (INGEST, {"seq": 9}, b"payload-bytes")
            # Back-to-back frames split correctly through the buffer.
            server.sendall(encode_frame(OK, {"n": 1}) + encode_frame(OK, {"n": 2}))
            assert buffered.recv_frame(timeout=5.0)[1] == {"n": 1}
            assert buffered.recv_frame(timeout=5.0)[1] == {"n": 2}
        finally:
            server.close()
            client.close()


class TestWorkerMessageCodec:
    @pytest.mark.parametrize(
        "message",
        [
            ("chunk", "rfid", 42, b"\x01\x02payload"),
            ("flush", 7),
            ("stats",),
            ("stop",),
            ("results", 3, 42, b"results-bytes", 12.5, []),
            ("flushed", 1, 7, b""),
            ("stats", 2, [("box", 1, 2, 3, 0.5)]),
            ("error", 0, "Traceback ..."),
        ],
    )
    def test_round_trip(self, message):
        reader = FrameReader()
        reader.feed(encode_worker_message(message))
        decoded = decode_worker_message(*reader.next_frame())
        assert decoded == message

    def test_results_accepts_legacy_five_tuple(self):
        """A span-less 5-tuple encodes fine and decodes to the 6-tuple shape."""
        reader = FrameReader()
        reader.feed(encode_worker_message(("results", 3, 42, b"results-bytes", 12.5)))
        decoded = decode_worker_message(*reader.next_frame())
        assert decoded == ("results", 3, 42, b"results-bytes", 12.5, [])

    def test_results_carries_spans(self):
        span = {
            "name": "shard.exec",
            "cat": "shard",
            "trace": 128,
            "span": "t80/s3/c42/exec",
            "parent": "t80/s3/c42",
            "pid": 123,
            "t0": 1.0,
            "t1": 2.0,
        }
        reader = FrameReader()
        reader.feed(encode_worker_message(("results", 3, 42, b"", 12.5, [span])))
        decoded = decode_worker_message(*reader.next_frame())
        assert decoded[5] == [span]

    def test_infinite_watermarks_survive_json(self):
        for watermark in (-math.inf, math.inf):
            frame = encode_worker_message(("results", 0, 1, b"", watermark))
            reader = FrameReader()
            reader.feed(frame)
            decoded = decode_worker_message(*reader.next_frame())
            assert decoded[4] == watermark

    def test_unknown_kind_raises(self):
        with pytest.raises(ProtocolError):
            decode_worker_message(0xFF, {}, b"")
        assert "UNKNOWN" in kind_name(0xFF)


class TestParseAddress:
    def test_host_port_string(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)

    def test_tuple_passthrough(self):
        assert parse_address(("localhost", 1234)) == ("localhost", 1234)

    def test_bracketed_ipv6(self):
        assert parse_address("[::1]:9000") == ("::1", 9000)

    @pytest.mark.parametrize("bad", ["no-port", "host:", "host:abc", 42, ("a",)])
    def test_rejects_unparsable(self, bad):
        with pytest.raises(ProtocolError):
            parse_address(bad)
