"""Tests for scalar and multivariate Gaussian distributions."""

import math

import numpy as np
import pytest

from repro.distributions import DistributionError, Gaussian, MultivariateGaussian


class TestGaussian:
    def test_pdf_integrates_to_one(self):
        g = Gaussian(2.0, 3.0)
        xs = np.linspace(-40, 44, 20001)
        assert np.trapezoid(g.pdf(xs), xs) == pytest.approx(1.0, abs=1e-6)

    def test_pdf_peak_at_mean(self):
        g = Gaussian(-1.5, 0.7)
        assert g.pdf(-1.5) == pytest.approx(1.0 / (0.7 * math.sqrt(2 * math.pi)))

    def test_cdf_known_values(self):
        g = Gaussian(0.0, 1.0)
        assert g.cdf(0.0) == pytest.approx(0.5)
        assert g.cdf(1.96) == pytest.approx(0.975, abs=1e-3)

    def test_quantile_inverts_cdf(self):
        g = Gaussian(5.0, 2.0)
        for q in (0.05, 0.25, 0.5, 0.9):
            assert g.cdf(g.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_moments(self):
        g = Gaussian(4.0, 0.5)
        assert g.mean() == 4.0
        assert g.variance() == pytest.approx(0.25)
        assert g.std() == pytest.approx(0.5)

    def test_sampling_matches_moments(self, rng):
        g = Gaussian(10.0, 2.0)
        samples = g.sample(50_000, rng=rng)
        assert samples.mean() == pytest.approx(10.0, abs=0.05)
        assert samples.std() == pytest.approx(2.0, abs=0.05)

    def test_characteristic_function_at_zero_is_one(self):
        g = Gaussian(3.0, 1.5)
        assert g.characteristic_function(0.0) == pytest.approx(1.0)

    def test_characteristic_function_matches_numeric(self):
        g = Gaussian(1.0, 0.8)
        ts = np.array([0.3, 1.1, 2.4])
        closed = g.characteristic_function(ts)
        xs = np.linspace(*g.support(), 20001)
        dens = g.pdf(xs)
        for i, t in enumerate(ts):
            numeric = np.trapezoid(dens * np.exp(1j * t * xs), xs)
            assert closed[i] == pytest.approx(numeric, abs=1e-6)

    def test_convolve_adds_means_and_variances(self):
        a, b = Gaussian(1.0, 2.0), Gaussian(-3.0, 1.5)
        c = a.convolve(b)
        assert c.mu == pytest.approx(-2.0)
        assert c.sigma**2 == pytest.approx(4.0 + 2.25)

    def test_shift_and_scale(self):
        g = Gaussian(2.0, 1.0)
        assert g.shift(3.0).mu == pytest.approx(5.0)
        scaled = g.scale(-2.0)
        assert scaled.mu == pytest.approx(-4.0)
        assert scaled.sigma == pytest.approx(2.0)

    def test_scale_by_zero_rejected(self):
        with pytest.raises(DistributionError):
            Gaussian(0.0, 1.0).scale(0.0)

    def test_kl_divergence_zero_for_identical(self):
        g = Gaussian(1.0, 2.0)
        assert g.kl_divergence(Gaussian(1.0, 2.0)) == pytest.approx(0.0, abs=1e-12)

    def test_kl_divergence_positive_for_different(self):
        assert Gaussian(0.0, 1.0).kl_divergence(Gaussian(2.0, 1.0)) > 0

    def test_invalid_sigma_rejected(self):
        with pytest.raises(DistributionError):
            Gaussian(0.0, 0.0)
        with pytest.raises(DistributionError):
            Gaussian(0.0, -1.0)
        with pytest.raises(DistributionError):
            Gaussian(float("nan"), 1.0)

    def test_confidence_region_symmetric(self):
        g = Gaussian(0.0, 1.0)
        lo, hi = g.confidence_region(0.95)
        assert lo == pytest.approx(-1.96, abs=1e-2)
        assert hi == pytest.approx(1.96, abs=1e-2)

    def test_prob_helpers(self):
        g = Gaussian(0.0, 1.0)
        assert g.prob_greater_than(0.0) == pytest.approx(0.5)
        assert g.prob_less_than(0.0) == pytest.approx(0.5)
        assert g.prob_in_interval(-1.0, 1.0) == pytest.approx(0.6827, abs=1e-3)


class TestMultivariateGaussian:
    def test_pdf_matches_product_of_independent_marginals(self):
        mvg = MultivariateGaussian([0.0, 1.0], [[4.0, 0.0], [0.0, 9.0]])
        gx, gy = Gaussian(0.0, 2.0), Gaussian(1.0, 3.0)
        point = np.array([1.0, -2.0])
        assert mvg.pdf(point) == pytest.approx(gx.pdf(1.0) * gy.pdf(-2.0))

    def test_marginals(self):
        mvg = MultivariateGaussian([1.0, 2.0], [[1.0, 0.3], [0.3, 4.0]])
        mx = mvg.marginal(0)
        assert mx.mu == pytest.approx(1.0)
        assert mx.sigma == pytest.approx(1.0)
        my = mvg.marginal(1)
        assert my.sigma == pytest.approx(2.0)

    def test_sampling_covariance(self, rng):
        cov = [[2.0, 0.8], [0.8, 1.0]]
        mvg = MultivariateGaussian([0.0, 0.0], cov)
        samples = mvg.sample(40_000, rng=rng)
        estimated = np.cov(samples.T)
        assert np.allclose(estimated, cov, atol=0.08)

    def test_mahalanobis_zero_at_mean(self):
        mvg = MultivariateGaussian([3.0, -1.0], [[1.0, 0.0], [0.0, 1.0]])
        assert mvg.mahalanobis([3.0, -1.0]) == pytest.approx(0.0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(DistributionError):
            MultivariateGaussian([0.0, 0.0], [[1.0]])

    def test_rejects_non_symmetric_covariance(self):
        with pytest.raises(DistributionError):
            MultivariateGaussian([0.0, 0.0], [[1.0, 0.5], [0.1, 1.0]])

    def test_rejects_non_positive_definite(self):
        with pytest.raises(DistributionError):
            MultivariateGaussian([0.0, 0.0], [[1.0, 2.0], [2.0, 1.0]])

    def test_confidence_region_per_dimension(self):
        mvg = MultivariateGaussian([0.0, 0.0], [[1.0, 0.0], [0.0, 4.0]])
        regions = mvg.confidence_region(0.95)
        assert regions[0][1] == pytest.approx(1.96, abs=1e-2)
        assert regions[1][1] == pytest.approx(3.92, abs=2e-2)
