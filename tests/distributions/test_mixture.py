"""Tests for Gaussian mixtures, EM fitting, and AIC/BIC model selection."""

import numpy as np
import pytest

from repro.distributions import (
    DistributionError,
    Gaussian,
    GaussianMixture,
    fit_gmm_em,
    select_components,
)


class TestGaussianMixture:
    def test_weights_are_normalised(self):
        mix = GaussianMixture([2.0, 2.0], [0.0, 10.0], [1.0, 1.0])
        assert np.allclose(mix.weights, [0.5, 0.5])

    def test_pdf_is_weighted_sum_of_components(self):
        mix = GaussianMixture([0.3, 0.7], [0.0, 5.0], [1.0, 2.0])
        x = 1.7
        expected = 0.3 * Gaussian(0.0, 1.0).pdf(x) + 0.7 * Gaussian(5.0, 2.0).pdf(x)
        assert mix.pdf(x) == pytest.approx(expected)

    def test_pdf_integrates_to_one(self):
        mix = GaussianMixture([0.5, 0.5], [-3.0, 3.0], [1.0, 0.5])
        xs = np.linspace(-20, 20, 40001)
        assert np.trapezoid(mix.pdf(xs), xs) == pytest.approx(1.0, abs=1e-6)

    def test_mean_and_variance_formulas(self):
        mix = GaussianMixture([0.4, 0.6], [0.0, 10.0], [1.0, 2.0])
        assert mix.mean() == pytest.approx(6.0)
        expected_var = 0.4 * (1.0 + 0.0) + 0.6 * (4.0 + 100.0) - 36.0
        assert mix.variance() == pytest.approx(expected_var)

    def test_cdf_monotone(self):
        mix = GaussianMixture([0.5, 0.5], [0.0, 8.0], [1.0, 1.0])
        xs = np.linspace(-5, 13, 200)
        cdf = mix.cdf(xs)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_characteristic_function_at_zero(self):
        mix = GaussianMixture([0.5, 0.5], [1.0, -1.0], [2.0, 0.3])
        assert mix.characteristic_function(0.0) == pytest.approx(1.0)

    def test_sampling_matches_mean(self, rng):
        mix = GaussianMixture([0.25, 0.75], [0.0, 4.0], [1.0, 1.0])
        samples = mix.sample(50_000, rng=rng)
        assert samples.mean() == pytest.approx(3.0, abs=0.05)

    def test_single_component_wraps_gaussian(self):
        g = Gaussian(2.0, 0.5)
        mix = GaussianMixture.single(g)
        assert mix.n_components == 1
        assert mix.mean() == pytest.approx(2.0)
        assert mix.pdf(2.3) == pytest.approx(g.pdf(2.3))

    def test_from_components(self):
        mix = GaussianMixture.from_components([(0.2, Gaussian(0, 1)), (0.8, Gaussian(5, 2))])
        assert mix.n_components == 2
        assert mix.mean() == pytest.approx(4.0)

    def test_convolve_gaussian(self):
        mix = GaussianMixture([0.5, 0.5], [0.0, 10.0], [1.0, 2.0])
        shifted = mix.convolve_gaussian(Gaussian(3.0, 4.0))
        assert shifted.mean() == pytest.approx(mix.mean() + 3.0)
        assert shifted.variance() == pytest.approx(mix.variance() + 16.0)

    def test_convolve_mixtures_component_count(self):
        a = GaussianMixture([0.5, 0.5], [0.0, 1.0], [1.0, 1.0])
        b = GaussianMixture([0.3, 0.3, 0.4], [0.0, 1.0, 2.0], [1.0, 1.0, 1.0])
        c = a.convolve(b)
        assert c.n_components == 6
        assert c.mean() == pytest.approx(a.mean() + b.mean())
        assert c.variance() == pytest.approx(a.variance() + b.variance(), rel=1e-9)

    def test_shift_scale(self):
        mix = GaussianMixture([0.5, 0.5], [0.0, 2.0], [1.0, 1.0])
        assert mix.shift(5.0).mean() == pytest.approx(6.0)
        assert mix.scale(2.0).variance() == pytest.approx(4.0 * mix.variance())

    def test_invalid_construction(self):
        with pytest.raises(DistributionError):
            GaussianMixture([], [], [])
        with pytest.raises(DistributionError):
            GaussianMixture([1.0], [0.0], [0.0])
        with pytest.raises(DistributionError):
            GaussianMixture([1.0, 1.0], [0.0], [1.0])


class TestEMFitting:
    def test_single_component_fit_matches_moments(self, rng):
        data = rng.normal(3.0, 2.0, size=2000)
        mix = fit_gmm_em(data, 1)
        assert mix.mean() == pytest.approx(data.mean(), abs=1e-9)
        assert mix.variance() == pytest.approx(data.var(), rel=1e-6)

    def test_recovers_two_well_separated_modes(self, rng):
        data = np.concatenate([rng.normal(-10.0, 1.0, 1500), rng.normal(10.0, 1.0, 500)])
        mix = fit_gmm_em(data, 2, rng=rng)
        means = np.sort(mix.means)
        assert means[0] == pytest.approx(-10.0, abs=0.3)
        assert means[1] == pytest.approx(10.0, abs=0.5)
        weights = mix.weights[np.argsort(mix.means)]
        assert weights[0] == pytest.approx(0.75, abs=0.05)

    def test_weighted_fit_respects_weights(self, rng):
        # Two atoms; weights heavily favour the first.
        data = np.concatenate([rng.normal(0.0, 0.5, 500), rng.normal(20.0, 0.5, 500)])
        weights = np.concatenate([np.full(500, 9.0), np.full(500, 1.0)])
        mix = fit_gmm_em(data, 1, weights=weights)
        assert mix.mean() == pytest.approx(2.0, abs=0.3)

    def test_em_increases_likelihood_over_initial(self, rng):
        data = np.concatenate([rng.normal(-4, 1, 300), rng.normal(4, 1, 300)])
        fitted = fit_gmm_em(data, 2, rng=rng)
        naive = GaussianMixture([0.5, 0.5], [data.mean(), data.mean()], [data.std(), data.std()])
        assert fitted.log_likelihood(data) >= naive.log_likelihood(data)

    def test_rejects_empty_data(self):
        with pytest.raises(DistributionError):
            fit_gmm_em([], 2)


class TestModelSelection:
    def test_selects_one_component_for_unimodal_data(self, rng):
        data = rng.normal(0.0, 1.0, size=800)
        mix = select_components(data, max_components=3, rng=rng)
        assert mix.n_components == 1

    def test_selects_two_components_for_bimodal_data(self, rng):
        data = np.concatenate([rng.normal(-8, 1, 400), rng.normal(8, 1, 400)])
        mix = select_components(data, max_components=3, rng=rng)
        assert mix.n_components >= 2

    def test_aic_and_bic_prefer_true_model(self, rng):
        data = np.concatenate([rng.normal(-8, 1, 400), rng.normal(8, 1, 400)])
        one = fit_gmm_em(data, 1, rng=rng)
        two = fit_gmm_em(data, 2, rng=rng)
        assert two.bic(data) < one.bic(data)
        assert two.aic(data) < one.aic(data)

    def test_invalid_criterion_rejected(self):
        with pytest.raises(ValueError):
            select_components([1.0, 2.0, 3.0], criterion="dic")
