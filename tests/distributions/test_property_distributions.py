"""Property-based tests (hypothesis) on the distribution substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import (
    Gaussian,
    GaussianMixture,
    ParticleDistribution,
    SumCharacteristicFunction,
    Uniform,
    fit_gaussian,
    fit_gaussian_to_cf,
    normalize_weights,
)

finite_means = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, allow_infinity=False)
positive_sigmas = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)


@given(mu=finite_means, sigma=positive_sigmas, q=st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=60, deadline=None)
def test_gaussian_quantile_cdf_roundtrip(mu, sigma, q):
    g = Gaussian(mu, sigma)
    assert abs(g.cdf(g.quantile(q)) - q) < 1e-7


@given(mu=finite_means, sigma=positive_sigmas, x=finite_means)
@settings(max_examples=60, deadline=None)
def test_gaussian_pdf_nonnegative_and_cdf_monotone(mu, sigma, x):
    g = Gaussian(mu, sigma)
    assert g.pdf(x) >= 0.0
    assert g.cdf(x) <= g.cdf(x + abs(sigma))


@given(
    mus=st.lists(finite_means, min_size=1, max_size=5),
    sigmas=st.lists(positive_sigmas, min_size=1, max_size=5),
    raw_weights=st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_mixture_moments_consistent_with_sampling_free_formulas(mus, sigmas, raw_weights):
    k = min(len(mus), len(sigmas), len(raw_weights))
    mix = GaussianMixture(raw_weights[:k], mus[:k], sigmas[:k])
    # Variance must equal E[X^2] - mean^2 and be non-negative.
    assert mix.variance() >= -1e-9
    # CF at 0 is 1 and |CF| <= 1 everywhere.
    assert abs(mix.characteristic_function(0.0) - 1.0) < 1e-12
    ts = np.linspace(-3, 3, 7)
    assert np.all(np.abs(mix.characteristic_function(ts)) <= 1.0 + 1e-9)


@given(
    values=st.lists(finite_means, min_size=1, max_size=30),
    raw_weights=st.lists(st.floats(min_value=1e-3, max_value=5.0), min_size=1, max_size=30),
)
@settings(max_examples=40, deadline=None)
def test_weight_normalisation_and_particle_moments(values, raw_weights):
    n = min(len(values), len(raw_weights))
    values, raw_weights = values[:n], raw_weights[:n]
    weights = normalize_weights(raw_weights)
    assert abs(weights.sum() - 1.0) < 1e-9
    particles = ParticleDistribution(values, raw_weights)
    assert particles.variance() >= -1e-9
    lo, hi = min(values), max(values)
    assert lo - 1e-9 <= particles.mean() <= hi + 1e-9


@given(
    params=st.lists(
        st.tuples(finite_means, st.floats(min_value=0.1, max_value=50.0)),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=40, deadline=None)
def test_cf_gaussian_fit_matches_exact_moments_of_sum(params):
    summands = [Gaussian(mu, sigma) for mu, sigma in params]
    cf = SumCharacteristicFunction(summands)
    fit = fit_gaussian_to_cf(cf)
    assert np.isclose(fit.mu, sum(mu for mu, _ in params), rtol=1e-9, atol=1e-6)
    assert np.isclose(fit.sigma**2, sum(s**2 for _, s in params), rtol=1e-9, atol=1e-6)


@given(
    low=st.floats(min_value=-100, max_value=99, allow_nan=False),
    width=st.floats(min_value=0.1, max_value=100),
    n=st.integers(min_value=10, max_value=200),
)
@settings(max_examples=40, deadline=None)
def test_kl_optimal_gaussian_mean_within_sample_range(low, width, n):
    rng = np.random.default_rng(42)
    values = rng.uniform(low, low + width, size=n)
    g = fit_gaussian(values)
    assert values.min() - 1e-9 <= g.mu <= values.max() + 1e-9
    assert g.sigma > 0


@given(
    low=st.floats(min_value=-50, max_value=50),
    width=st.floats(min_value=0.5, max_value=20),
    x=st.floats(min_value=-100, max_value=100),
)
@settings(max_examples=60, deadline=None)
def test_uniform_cdf_bounds(low, width, x):
    u = Uniform(low, low + width)
    c = u.cdf(x)
    assert 0.0 <= c <= 1.0
    assert u.prob_in_interval(low, low + width) > 0.999
