"""Tests for characteristic-function algebra, inversion and approximation."""

import numpy as np
import pytest

from repro.distributions import (
    DistributionError,
    Exponential,
    GammaDistribution,
    Gaussian,
    GaussianMixture,
    SumCharacteristicFunction,
    Uniform,
    cf_distance,
    fit_gaussian_to_cf,
    fit_mixture_to_cf,
    invert_cf_to_histogram,
    ks_distance,
    variance_distance,
)


class TestSumCharacteristicFunction:
    def test_value_at_zero_is_one(self):
        cf = SumCharacteristicFunction([Gaussian(0, 1), Uniform(0, 2), Exponential(1.0)])
        assert cf(0.0) == pytest.approx(1.0)

    def test_product_of_gaussians_is_gaussian_cf(self):
        summands = [Gaussian(1.0, 1.0), Gaussian(2.0, 2.0)]
        cf = SumCharacteristicFunction(summands)
        combined = Gaussian(3.0, np.sqrt(5.0))
        ts = np.linspace(-2, 2, 11)
        assert np.allclose(cf(ts), combined.characteristic_function(ts))

    def test_mean_and_variance_are_sums(self):
        cf = SumCharacteristicFunction([Gaussian(1, 1), Exponential(0.5), Uniform(0, 6)])
        assert cf.mean == pytest.approx(1.0 + 2.0 + 3.0)
        assert cf.variance == pytest.approx(1.0 + 4.0 + 3.0)

    def test_empty_summands_rejected(self):
        with pytest.raises(DistributionError):
            SumCharacteristicFunction([])

    def test_magnitude_bounded_by_one(self):
        cf = SumCharacteristicFunction([GammaDistribution(2, 1), Gaussian(0, 1)])
        ts = np.linspace(-5, 5, 101)
        assert np.all(np.abs(cf(ts)) <= 1.0 + 1e-12)


class TestInversion:
    def test_inverting_gaussian_sum_recovers_gaussian(self):
        summands = [Gaussian(float(i), 1.0) for i in range(10)]
        cf = SumCharacteristicFunction(summands)
        hist = invert_cf_to_histogram(cf)
        exact = Gaussian(sum(range(10)), np.sqrt(10.0))
        assert variance_distance(hist, exact) < 1e-3
        assert ks_distance(hist, exact) < 5e-3

    def test_inverting_uniform_sum_matches_monte_carlo(self, rng):
        summands = [Uniform(0.0, 1.0) for _ in range(5)]
        cf = SumCharacteristicFunction(summands)
        hist = invert_cf_to_histogram(cf)
        samples = sum(rng.uniform(0, 1, size=100_000) for _ in range(5))
        assert hist.mean() == pytest.approx(2.5, abs=0.01)
        assert hist.variance() == pytest.approx(samples.var(), rel=0.05)

    def test_inversion_of_mixture_sum_preserves_moments(self):
        mix = GaussianMixture([0.5, 0.5], [0.0, 20.0], [1.0, 2.0])
        summands = [mix, Gaussian(5.0, 1.0)]
        cf = SumCharacteristicFunction(summands)
        hist = invert_cf_to_histogram(cf, n_bins=512)
        assert hist.mean() == pytest.approx(mix.mean() + 5.0, rel=1e-2)
        assert hist.variance() == pytest.approx(mix.variance() + 1.0, rel=0.05)

    def test_invalid_grid_sizes(self):
        cf = SumCharacteristicFunction([Gaussian(0, 1)])
        with pytest.raises(ValueError):
            invert_cf_to_histogram(cf, n_bins=2)
        with pytest.raises(ValueError):
            invert_cf_to_histogram(cf, n_frequencies=8)


class TestCFApproximation:
    def test_gaussian_fit_matches_exact_for_gaussian_summands(self):
        summands = [Gaussian(2.0, 1.0), Gaussian(3.0, 2.0)]
        cf = SumCharacteristicFunction(summands)
        fit = fit_gaussian_to_cf(cf)
        assert fit.mu == pytest.approx(5.0)
        assert fit.sigma**2 == pytest.approx(5.0)

    def test_gaussian_fit_close_to_inversion_for_large_windows(self, rng):
        summands = [
            GaussianMixture(
                rng.dirichlet(np.ones(2)),
                rng.uniform(0, 100, 2),
                rng.uniform(1, 10, 2),
            )
            for _ in range(100)
        ]
        cf = SumCharacteristicFunction(summands)
        exact = invert_cf_to_histogram(cf)
        approx = fit_gaussian_to_cf(cf)
        assert variance_distance(exact, approx) < 0.05

    def test_mixture_fit_beats_or_matches_gaussian_for_bimodal_sum(self):
        # A two-summand sum dominated by one bimodal mixture stays bimodal.
        bimodal = GaussianMixture([0.5, 0.5], [0.0, 50.0], [1.0, 1.0])
        summands = [bimodal, Gaussian(0.0, 1.0)]
        cf = SumCharacteristicFunction(summands)
        exact = invert_cf_to_histogram(cf, n_bins=512)
        gauss = fit_gaussian_to_cf(cf)
        mixture = fit_mixture_to_cf(cf, n_components=2)
        assert variance_distance(exact, mixture) <= variance_distance(exact, gauss)
        assert variance_distance(exact, mixture) < 0.1

    def test_single_component_mixture_fit_reduces_to_gaussian(self):
        cf = SumCharacteristicFunction([Gaussian(1, 1), Gaussian(2, 2)])
        mix = fit_mixture_to_cf(cf, n_components=1)
        assert mix.n_components == 1
        assert mix.mean() == pytest.approx(3.0)

    def test_cf_distance_zero_for_identical(self):
        g = Gaussian(0.0, 2.0)
        assert cf_distance(g, Gaussian(0.0, 2.0), scale=2.0) == pytest.approx(0.0, abs=1e-12)

    def test_cf_distance_orders_by_similarity(self):
        target = Gaussian(0.0, 1.0)
        near = Gaussian(0.1, 1.0)
        far = Gaussian(3.0, 1.0)
        assert cf_distance(target, near, scale=1.0) < cf_distance(target, far, scale=1.0)
