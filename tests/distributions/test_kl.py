"""Tests for KL-divergence compression of particle clouds (Section 4.3)."""

import numpy as np
import pytest

from repro.distributions import (
    DistributionError,
    Gaussian,
    GaussianMixture,
    ParticleDistribution,
    compress_particles,
    fit_gaussian,
    fit_mixture,
    fit_multivariate_gaussian,
    kl_divergence_grid,
    kl_divergence_samples,
)


class TestFitGaussian:
    def test_matches_paper_formula(self):
        # mu = sum w_i x_i ; sigma^2 = sum w_i (x_i - mu)^2
        values = np.array([1.0, 3.0, 5.0])
        weights = np.array([0.2, 0.3, 0.5])
        g = fit_gaussian(values, weights)
        mu = float(np.dot(weights, values))
        var = float(np.dot(weights, (values - mu) ** 2))
        assert g.mu == pytest.approx(mu)
        assert g.sigma**2 == pytest.approx(var)

    def test_unweighted_defaults_to_uniform(self, rng):
        values = rng.normal(2.0, 3.0, size=5000)
        g = fit_gaussian(values)
        assert g.mu == pytest.approx(values.mean())
        assert g.sigma**2 == pytest.approx(values.var(), rel=1e-9)

    def test_fit_is_kl_optimal_among_gaussians(self, rng):
        values = rng.normal(0.0, 1.0, size=400)
        weights = rng.random(400)
        weights /= weights.sum()
        best = fit_gaussian(values, weights)
        best_kl = kl_divergence_samples(values, weights, best)
        for candidate in (Gaussian(best.mu + 0.5, best.sigma), Gaussian(best.mu, best.sigma * 2)):
            assert kl_divergence_samples(values, weights, candidate) > best_kl

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            fit_gaussian([])


class TestFitMultivariateGaussian:
    def test_recovers_mean_and_covariance(self, rng):
        cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        points = rng.multivariate_normal([1.0, -1.0], cov, size=20_000)
        mvg = fit_multivariate_gaussian(points)
        assert np.allclose(mvg.mean(), [1.0, -1.0], atol=0.05)
        assert np.allclose(mvg.covariance(), cov, atol=0.08)

    def test_weighted_points(self):
        points = [[0.0, 0.0], [10.0, 10.0]]
        mvg = fit_multivariate_gaussian(points, weights=[3.0, 1.0])
        assert np.allclose(mvg.mean(), [2.5, 2.5])

    def test_rejects_bad_shapes(self):
        with pytest.raises(DistributionError):
            fit_multivariate_gaussian(np.zeros((0, 2)))
        with pytest.raises(DistributionError):
            fit_multivariate_gaussian([[0.0, 0.0]], weights=[1.0, 2.0])


class TestKLDivergences:
    def test_grid_kl_zero_for_identical(self):
        g = Gaussian(0.0, 1.0)
        assert kl_divergence_grid(g, Gaussian(0.0, 1.0)) == pytest.approx(0.0, abs=1e-6)

    def test_grid_kl_matches_closed_form(self):
        p, q = Gaussian(0.0, 1.0), Gaussian(1.0, 2.0)
        assert kl_divergence_grid(p, q) == pytest.approx(p.kl_divergence(q), abs=1e-3)

    def test_sample_kl_prefers_closer_target(self, rng):
        values = rng.normal(5.0, 1.0, size=1000)
        close = Gaussian(5.0, 1.0)
        far = Gaussian(0.0, 1.0)
        assert kl_divergence_samples(values, None, close) < kl_divergence_samples(values, None, far)


class TestCompression:
    def test_unimodal_cloud_compresses_to_gaussian(self, rng):
        particles = ParticleDistribution(rng.normal(3.0, 0.5, size=400))
        compressed = compress_particles(particles, max_components=3, rng=rng)
        assert isinstance(compressed, Gaussian)
        assert compressed.mu == pytest.approx(3.0, abs=0.1)

    def test_bimodal_cloud_compresses_to_mixture(self, rng):
        # An object that recently moved: particles spread over two locations.
        values = np.concatenate([rng.normal(0.0, 0.4, 300), rng.normal(12.0, 0.4, 150)])
        particles = ParticleDistribution(values)
        compressed = compress_particles(particles, max_components=3, rng=rng)
        assert isinstance(compressed, GaussianMixture)
        assert compressed.n_components >= 2

    def test_max_components_one_forces_gaussian(self, rng):
        values = np.concatenate([rng.normal(0.0, 0.4, 200), rng.normal(12.0, 0.4, 200)])
        particles = ParticleDistribution(values)
        compressed = compress_particles(particles, max_components=1)
        assert isinstance(compressed, Gaussian)

    def test_compression_preserves_mean(self, rng):
        values = np.concatenate([rng.normal(-5.0, 0.5, 300), rng.normal(5.0, 0.5, 300)])
        particles = ParticleDistribution(values)
        compressed = compress_particles(particles, max_components=3, rng=rng)
        assert compressed.mean() == pytest.approx(particles.mean(), abs=0.3)

    def test_fit_mixture_with_fixed_components(self, rng):
        values = rng.normal(0.0, 1.0, size=500)
        mix = fit_mixture(values, n_components=2, rng=rng)
        assert mix.n_components == 2
