"""Tests for particle (weighted sample) and histogram distributions."""

import numpy as np
import pytest

from repro.distributions import (
    DistributionError,
    Gaussian,
    HistogramDistribution,
    ParticleDistribution,
)


class TestParticleDistribution:
    def test_uniform_weights_by_default(self):
        p = ParticleDistribution([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(p.weights, 0.25)

    def test_weighted_mean_and_variance(self):
        p = ParticleDistribution([0.0, 10.0], [0.25, 0.75])
        assert p.mean() == pytest.approx(7.5)
        assert p.variance() == pytest.approx(0.25 * 7.5**2 + 0.75 * 2.5**2)

    def test_cdf_steps_at_atoms(self):
        p = ParticleDistribution([1.0, 2.0, 3.0])
        assert p.cdf(0.5) == 0.0
        assert p.cdf(1.5) == pytest.approx(1 / 3)
        assert p.cdf(3.5) == pytest.approx(1.0)

    def test_quantile_from_weighted_atoms(self):
        p = ParticleDistribution([5.0, 1.0, 3.0], [0.2, 0.5, 0.3])
        assert p.quantile(0.4) == pytest.approx(1.0)
        assert p.quantile(0.95) == pytest.approx(5.0)

    def test_effective_sample_size(self):
        uniform = ParticleDistribution([1.0, 2.0, 3.0, 4.0])
        assert uniform.effective_sample_size() == pytest.approx(4.0)
        degenerate = ParticleDistribution([1.0, 2.0], [1.0, 1e-12])
        assert degenerate.effective_sample_size() == pytest.approx(1.0, rel=1e-6)

    def test_resample_preserves_mean(self, rng):
        values = rng.normal(5.0, 2.0, size=400)
        weights = rng.random(400)
        p = ParticleDistribution(values, weights)
        resampled = p.resample(rng=rng)
        assert np.allclose(resampled.weights, 1.0 / 400)
        assert resampled.mean() == pytest.approx(p.mean(), abs=0.4)

    def test_compress_reduces_particle_count(self, rng):
        p = ParticleDistribution(rng.normal(size=500))
        small = p.compress(50, rng=rng)
        assert small.n_particles == 50
        assert p.compress(1000, rng=rng) is p

    def test_sampling_draws_existing_atoms(self, rng):
        p = ParticleDistribution([1.0, 2.0, 3.0])
        samples = p.sample(100, rng=rng)
        assert set(np.unique(samples)).issubset({1.0, 2.0, 3.0})

    def test_pdf_is_positive_near_atoms(self):
        p = ParticleDistribution([0.0, 1.0, 2.0])
        assert p.pdf(1.0) > 0.0

    def test_rejects_empty_or_mismatched(self):
        with pytest.raises(DistributionError):
            ParticleDistribution([])
        with pytest.raises(DistributionError):
            ParticleDistribution([1.0, 2.0], [1.0])


class TestHistogramDistribution:
    def test_pdf_normalised(self):
        h = HistogramDistribution([0.0, 1.0, 2.0], [3.0, 1.0])
        xs = np.linspace(0, 2, 2001)
        assert np.trapezoid(h.pdf(xs), xs) == pytest.approx(1.0, abs=1e-3)

    def test_pdf_zero_outside_support(self):
        h = HistogramDistribution([0.0, 1.0], [1.0])
        assert h.pdf(-0.1) == 0.0
        assert h.pdf(1.5) == 0.0

    def test_cdf_piecewise_linear(self):
        h = HistogramDistribution([0.0, 1.0, 2.0], [1.0, 1.0])
        assert h.cdf(0.5) == pytest.approx(0.25)
        assert h.cdf(1.0) == pytest.approx(0.5)
        assert h.cdf(2.0) == pytest.approx(1.0)

    def test_mean_and_variance_of_uniform_histogram(self):
        h = HistogramDistribution([0.0, 1.0], [1.0])
        assert h.mean() == pytest.approx(0.5)
        assert h.variance() == pytest.approx(1.0 / 12.0, rel=1e-6)

    def test_from_samples_recovers_gaussian_moments(self, rng):
        samples = rng.normal(3.0, 1.5, size=20_000)
        h = HistogramDistribution.from_samples(samples, n_bins=100)
        assert h.mean() == pytest.approx(3.0, abs=0.05)
        assert np.sqrt(h.variance()) == pytest.approx(1.5, abs=0.05)

    def test_from_distribution_close_to_source(self):
        g = Gaussian(0.0, 1.0)
        h = HistogramDistribution.from_distribution(g, n_bins=400)
        assert h.mean() == pytest.approx(0.0, abs=1e-2)
        assert h.variance() == pytest.approx(1.0, abs=2e-2)
        assert h.cdf(0.0) == pytest.approx(0.5, abs=1e-2)

    def test_sampling_within_support(self, rng):
        h = HistogramDistribution([0.0, 1.0, 2.0], [1.0, 3.0])
        samples = h.sample(2000, rng=rng)
        assert samples.min() >= 0.0
        assert samples.max() <= 2.0
        # Second bin has three times the density of the first.
        assert np.mean(samples > 1.0) == pytest.approx(0.75, abs=0.05)

    def test_bin_probabilities_sum_to_one(self):
        h = HistogramDistribution([0.0, 0.5, 1.5, 2.0], [0.5, 1.0, 2.0])
        assert h.bin_probabilities().sum() == pytest.approx(1.0)

    def test_rejects_bad_edges_and_densities(self):
        with pytest.raises(DistributionError):
            HistogramDistribution([0.0], [])
        with pytest.raises(DistributionError):
            HistogramDistribution([0.0, 0.0, 1.0], [1.0, 1.0])
        with pytest.raises(DistributionError):
            HistogramDistribution([0.0, 1.0], [-1.0])
        with pytest.raises(DistributionError):
            HistogramDistribution([0.0, 1.0], [0.0])
