"""Tests for the uniform, exponential, and gamma distributions."""

import numpy as np
import pytest

from repro.distributions import DistributionError, Exponential, GammaDistribution, Uniform


class TestUniform:
    def test_pdf_constant_inside_support(self):
        u = Uniform(2.0, 6.0)
        assert u.pdf(3.0) == pytest.approx(0.25)
        assert u.pdf(1.9) == 0.0
        assert u.pdf(6.1) == 0.0

    def test_cdf_linear(self):
        u = Uniform(0.0, 10.0)
        assert u.cdf(2.5) == pytest.approx(0.25)
        assert u.cdf(-1.0) == 0.0
        assert u.cdf(11.0) == 1.0

    def test_moments(self):
        u = Uniform(-1.0, 3.0)
        assert u.mean() == pytest.approx(1.0)
        assert u.variance() == pytest.approx(16.0 / 12.0)

    def test_quantile(self):
        u = Uniform(0.0, 8.0)
        assert u.quantile(0.5) == pytest.approx(4.0)
        assert u.quantile(0.125) == pytest.approx(1.0)

    def test_characteristic_function_at_zero(self):
        assert Uniform(0.0, 1.0).characteristic_function(0.0) == pytest.approx(1.0)

    def test_characteristic_function_matches_numeric(self):
        u = Uniform(-2.0, 5.0)
        t = 0.7
        xs = np.linspace(-2.0, 5.0, 40001)
        numeric = np.trapezoid(u.pdf(xs) * np.exp(1j * t * xs), xs)
        assert u.characteristic_function(t) == pytest.approx(numeric, abs=1e-6)

    def test_sampling_within_bounds(self, rng):
        u = Uniform(10.0, 12.0)
        samples = u.sample(1000, rng=rng)
        assert samples.min() >= 10.0
        assert samples.max() <= 12.0

    def test_shift_scale(self):
        u = Uniform(0.0, 2.0)
        assert u.shift(1.0).support() == (1.0, 3.0)
        assert u.scale(-1.0).support() == (-2.0, 0.0)

    def test_invalid_bounds(self):
        with pytest.raises(DistributionError):
            Uniform(3.0, 3.0)
        with pytest.raises(DistributionError):
            Uniform(5.0, 1.0)


class TestExponential:
    def test_moments(self):
        e = Exponential(0.5)
        assert e.mean() == pytest.approx(2.0)
        assert e.variance() == pytest.approx(4.0)

    def test_cdf_and_quantile_roundtrip(self):
        e = Exponential(1.5)
        for q in (0.1, 0.5, 0.95):
            assert e.cdf(e.quantile(q)) == pytest.approx(q)

    def test_pdf_zero_for_negative(self):
        assert Exponential(1.0).pdf(-0.5) == 0.0

    def test_characteristic_function_matches_numeric(self):
        e = Exponential(2.0)
        t = 1.3
        xs = np.linspace(0, 20, 200001)
        numeric = np.trapezoid(e.pdf(xs) * np.exp(1j * t * xs), xs)
        assert e.characteristic_function(t) == pytest.approx(numeric, abs=1e-4)

    def test_sampling_mean(self, rng):
        e = Exponential(0.25)
        assert e.sample(50_000, rng=rng).mean() == pytest.approx(4.0, rel=0.05)

    def test_invalid_rate(self):
        with pytest.raises(DistributionError):
            Exponential(0.0)
        with pytest.raises(DistributionError):
            Exponential(-1.0)


class TestGamma:
    def test_moments(self):
        g = GammaDistribution(3.0, 2.0)
        assert g.mean() == pytest.approx(6.0)
        assert g.variance() == pytest.approx(12.0)

    def test_pdf_integrates_to_one(self):
        g = GammaDistribution(2.5, 1.5)
        xs = np.linspace(0, 60, 60001)
        assert np.trapezoid(g.pdf(xs), xs) == pytest.approx(1.0, abs=1e-4)

    def test_mode(self):
        assert GammaDistribution(3.0, 2.0).mode() == pytest.approx(4.0)
        assert GammaDistribution(0.5, 1.0).mode() == 0.0

    def test_skewness_decreases_with_shape(self):
        assert GammaDistribution(1.0, 1.0).skewness() > GammaDistribution(10.0, 1.0).skewness()

    def test_characteristic_function_matches_numeric(self):
        g = GammaDistribution(4.0, 0.5)
        t = 0.9
        xs = np.linspace(0, 30, 100001)
        numeric = np.trapezoid(g.pdf(xs) * np.exp(1j * t * xs), xs)
        assert g.characteristic_function(t) == pytest.approx(numeric, abs=1e-5)

    def test_quantile_cdf_roundtrip(self):
        g = GammaDistribution(2.0, 3.0)
        for q in (0.05, 0.5, 0.99):
            assert g.cdf(g.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_invalid_parameters(self):
        with pytest.raises(DistributionError):
            GammaDistribution(0.0, 1.0)
        with pytest.raises(DistributionError):
            GammaDistribution(1.0, -2.0)
