"""Tests for the pairwise numerical convolution baseline (Cheng et al. style)."""

import numpy as np
import pytest

from repro.distributions import (
    DistributionError,
    Gaussian,
    Uniform,
    convolve_pair,
    convolve_sequence,
    ks_distance,
    variance_distance,
)


class TestConvolvePair:
    def test_gaussian_pair_matches_closed_form(self):
        a, b = Gaussian(1.0, 1.0), Gaussian(2.0, 2.0)
        numeric = convolve_pair(a, b)
        exact = a.convolve(b)
        assert variance_distance(numeric, exact) < 1e-3
        assert numeric.mean() == pytest.approx(3.0, abs=0.02)
        assert numeric.variance() == pytest.approx(5.0, rel=0.02)

    def test_uniform_pair_gives_triangle(self):
        a, b = Uniform(0.0, 1.0), Uniform(0.0, 1.0)
        numeric = convolve_pair(a, b, n_points=1024)
        # The triangular density peaks at 1 with value 1.
        assert numeric.pdf(1.0) == pytest.approx(1.0, abs=0.05)
        assert numeric.pdf(0.1) == pytest.approx(0.1, abs=0.05)
        assert numeric.mean() == pytest.approx(1.0, abs=0.01)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            convolve_pair(Gaussian(0, 1), Gaussian(0, 1), n_points=4)


class TestConvolveSequence:
    def test_matches_cf_based_exact_for_gaussians(self):
        summands = [Gaussian(float(i), 1.0 + 0.1 * i) for i in range(6)]
        numeric = convolve_sequence(summands, n_points=256)
        exact = Gaussian(
            sum(g.mu for g in summands), np.sqrt(sum(g.sigma**2 for g in summands))
        )
        assert ks_distance(numeric, exact) < 0.01
        assert numeric.mean() == pytest.approx(exact.mu, rel=0.01)

    def test_single_distribution_returned_as_histogram(self):
        out = convolve_sequence([Gaussian(0.0, 1.0)])
        assert out.mean() == pytest.approx(0.0, abs=0.01)
        assert out.variance() == pytest.approx(1.0, rel=0.05)

    def test_rebins_when_growing_past_max_bins(self):
        summands = [Uniform(0.0, 1.0) for _ in range(5)]
        out = convolve_sequence(summands, n_points=512, max_bins=600)
        assert out.n_bins <= 1300  # one growth step past the cap is allowed
        assert out.mean() == pytest.approx(2.5, abs=0.02)

    def test_empty_sequence_rejected(self):
        with pytest.raises(DistributionError):
            convolve_sequence([])
