"""Tests for distribution distance metrics (variance distance, KS, TV, W1)."""

import pytest

from repro.distributions import (
    Gaussian,
    Uniform,
    ks_distance,
    total_variation_distance,
    variance_distance,
    wasserstein_distance,
)


class TestVarianceDistance:
    def test_zero_for_identical_distributions(self):
        g = Gaussian(1.0, 2.0)
        assert variance_distance(g, Gaussian(1.0, 2.0)) == pytest.approx(0.0, abs=1e-9)

    def test_one_for_disjoint_supports(self):
        a = Uniform(0.0, 1.0)
        b = Uniform(10.0, 11.0)
        assert variance_distance(a, b) == pytest.approx(1.0, abs=1e-6)

    def test_bounded_and_monotone_in_separation(self):
        base = Gaussian(0.0, 1.0)
        near = variance_distance(base, Gaussian(0.5, 1.0))
        far = variance_distance(base, Gaussian(3.0, 1.0))
        assert 0.0 < near < far <= 1.0

    def test_symmetry(self):
        a, b = Gaussian(0.0, 1.0), Gaussian(2.0, 3.0)
        assert variance_distance(a, b) == pytest.approx(variance_distance(b, a))


class TestOtherMetrics:
    def test_ks_distance_known_value(self):
        # Two unit-width uniforms offset by half a width overlap by half.
        a, b = Uniform(0.0, 1.0), Uniform(0.5, 1.5)
        assert ks_distance(a, b) == pytest.approx(0.5, abs=1e-3)

    def test_total_variation_bounds(self):
        a, b = Gaussian(0.0, 1.0), Gaussian(0.2, 1.0)
        tv = total_variation_distance(a, b)
        assert 0.0 < tv < 1.0

    def test_total_variation_one_for_disjoint(self):
        assert total_variation_distance(Uniform(0, 1), Uniform(5, 6)) == pytest.approx(1.0, abs=1e-6)

    def test_wasserstein_equals_mean_shift_for_translates(self):
        a = Gaussian(0.0, 1.0)
        b = Gaussian(2.0, 1.0)
        assert wasserstein_distance(a, b) == pytest.approx(2.0, abs=0.01)

    def test_all_metrics_symmetric(self):
        a, b = Gaussian(0.0, 1.0), Uniform(-1.0, 4.0)
        for metric in (ks_distance, total_variation_distance, wasserstein_distance):
            assert metric(a, b) == pytest.approx(metric(b, a), rel=1e-9)
