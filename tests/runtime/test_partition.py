"""Partitioner properties: completeness, determinism, order preservation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Gaussian
from repro.runtime import (
    HashPartitioner,
    RoundRobinPartitioner,
    compute_adaptive_weights,
    resolve_partitioner,
)
from repro.streams import StreamTuple


def make_tuples(keys):
    return [
        StreamTuple(
            timestamp=float(i),
            values={"key": key, "seq": i},
            uncertain={"w": Gaussian(1.0, 1.0)},
        )
        for i, key in enumerate(keys)
    ]


class TestRoundRobin:
    def test_whole_chunk_goes_to_one_shard_in_rotation(self):
        partitioner = RoundRobinPartitioner()
        items = make_tuples(["a"] * 5)
        for chunk_index in range(7):
            split = partitioner.split_chunk(chunk_index, items, 3)
            assert list(split) == [chunk_index % 3]
            assert split[chunk_index % 3] == items

    def test_preserves_order_flag(self):
        assert RoundRobinPartitioner().preserves_order
        assert not HashPartitioner("key").preserves_order


class TestHashPartitioner:
    @settings(max_examples=50, deadline=None)
    @given(
        keys=st.lists(
            st.one_of(st.integers(-1000, 1000), st.text(max_size=8)),
            min_size=1,
            max_size=40,
        ),
        n_shards=st.integers(1, 6),
    )
    def test_complete_deterministic_and_key_local(self, keys, n_shards):
        partitioner = HashPartitioner("key")
        items = make_tuples(keys)
        split = partitioner.split_chunk(0, items, n_shards)
        # Complete: every tuple lands on exactly one shard.
        seen = [t for shard in sorted(split) for t in split[shard]]
        assert sorted(t.value("seq") for t in seen) == list(range(len(items)))
        # Deterministic across calls.
        again = partitioner.split_chunk(0, items, n_shards)
        assert {s: [t.value("seq") for t in ts] for s, ts in split.items()} == {
            s: [t.value("seq") for t in ts] for s, ts in again.items()
        }
        # Key locality: all tuples of one key on one shard.
        shard_of_key = {}
        for shard, tuples in split.items():
            for t in tuples:
                assert shard_of_key.setdefault(t.value("key"), shard) == shard

    def test_relative_order_kept_within_shard(self):
        partitioner = HashPartitioner("key")
        items = make_tuples(["a", "b", "a", "b", "a"])
        split = partitioner.split_chunk(0, items, 4)
        for tuples in split.values():
            seqs = [t.value("seq") for t in tuples]
            assert seqs == sorted(seqs)

    def test_missing_attribute_raises(self):
        item = StreamTuple(timestamp=0.0, values={"other": 1})
        with pytest.raises(KeyError, match="no value 'key'"):
            HashPartitioner("key").shard_of(item, 2)


class TestResolvePartitioner:
    def test_names(self):
        assert isinstance(resolve_partitioner("round_robin"), RoundRobinPartitioner)
        assert isinstance(resolve_partitioner("rr"), RoundRobinPartitioner)
        hashed = resolve_partitioner("hash:tag_id")
        assert isinstance(hashed, HashPartitioner)
        assert hashed.attribute == "tag_id"

    def test_instance_passthrough(self):
        partitioner = HashPartitioner("x")
        assert resolve_partitioner(partitioner) is partitioner

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown partitioner"):
            resolve_partitioner("range")

    def test_weighted_round_robin_spec(self):
        weighted = resolve_partitioner("round_robin:2,1")
        assert isinstance(weighted, RoundRobinPartitioner)
        assert weighted.weights == (2, 1)


class TestWeightedRoundRobin:
    def test_chunks_follow_the_weighted_schedule(self):
        partitioner = RoundRobinPartitioner(weights=(2, 1))
        assert partitioner.preserves_order
        items = make_tuples(["a"])
        assigned = [
            next(iter(partitioner.split_chunk(i, items, 2))) for i in range(6)
        ]
        assert assigned == [0, 0, 1, 0, 0, 1]

    def test_weight_count_must_match_shards(self):
        partitioner = RoundRobinPartitioner(weights=(2, 1))
        with pytest.raises(ValueError, match="2 shards"):
            partitioner.split_chunk(0, make_tuples(["a"]), 3)

    def test_weights_must_be_positive_integers(self):
        for bad in ((0,), (-1, 2), (1.5, 1)):
            with pytest.raises(ValueError, match="positive integers"):
                RoundRobinPartitioner(weights=bad)

    def test_unweighted_default_unchanged(self):
        partitioner = RoundRobinPartitioner()
        assert [
            next(iter(partitioner.split_chunk(i, make_tuples(["a"]), 3)))
            for i in range(6)
        ] == [0, 1, 2, 0, 1, 2]

    def test_set_weights_retargets_the_schedule(self):
        partitioner = RoundRobinPartitioner()
        items = make_tuples(["a"])
        partitioner.set_weights((3, 1))
        assert partitioner.weights == (3, 1)
        assigned = [
            next(iter(partitioner.split_chunk(i, items, 2))) for i in range(8)
        ]
        assert assigned == [0, 0, 0, 1, 0, 0, 0, 1]
        partitioner.set_weights(())
        assert partitioner.weights == ()
        assert [
            next(iter(partitioner.split_chunk(i, items, 3))) for i in range(3)
        ] == [0, 1, 2]

    def test_set_weights_validates_like_the_constructor(self):
        with pytest.raises(ValueError, match="positive integers"):
            RoundRobinPartitioner().set_weights((1, 0))


class TestAdaptiveWeights:
    def test_uniform_progress_keeps_uniform_weights(self):
        assert compute_adaptive_weights([10, 10, 10], [0, 0, 0]) == [1, 1, 1]

    def test_fast_shard_anchors_the_max_weight(self):
        weights = compute_adaptive_weights([40, 10], [0, 0], max_weight=4)
        assert weights == [4, 1]

    def test_queued_chunks_discount_a_shard(self):
        # Equal completion, but one shard has a deep backlog: its score
        # drops, so the unloaded shard earns a heavier weight.
        weights = compute_adaptive_weights([20, 20], [0, 30], max_weight=4)
        assert weights[0] > weights[1]
        assert weights[1] == 1

    def test_no_progress_yet_means_uniform(self):
        assert compute_adaptive_weights([0, 0], [5, 5]) == [1, 1]

    def test_weights_never_drop_below_one(self):
        weights = compute_adaptive_weights([100, 1, 0], [0, 50, 90], max_weight=8)
        assert all(w >= 1 for w in weights)
        assert weights[0] == 8

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            compute_adaptive_weights([1, 2], [0])

    def test_bad_max_weight_rejected(self):
        with pytest.raises(ValueError):
            compute_adaptive_weights([1], [0], max_weight=0)
