"""Acceptance: sharded Q1/Q2 match single-engine results to 1e-9.

The paper's monitoring queries run twice — once on a single
``CompiledQuery`` engine, once through :class:`ShardedEngine` — over
identical input, for every shard count in {1, 2, 4} and both execution
paths (tuple-at-a-time and batch) inside the workers.  Results must
agree to 1e-9 in every deterministic value and in the first two moments
of every uncertain attribute, in the same order.

Q1 exercises the aggregate-split path (derive -> filter -> grouped
time-window SUM with HAVING -> moment merge in the coordinator); Q2's
probabilistic join is not shardable, so it exercises the single-engine
fallback behind the sharded interface.
"""

import numpy as np
import pytest

from repro.core import match_probability_band
from repro.distributions import Gaussian
from repro.plan import Stream
from repro.runtime import ShardedEngine
from repro.streams import TumblingTimeWindow, StreamTuple

SHARD_COUNTS = (1, 2, 4)
MODES = ("tuple", "batch")
TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def warehouse():
    """Catalog plus object/sensor streams (the CQL acceptance shapes)."""
    rng = np.random.default_rng(42)
    catalog = {}
    for i in range(40):
        catalog[f"O{i:03d}"] = {
            "weight": float(rng.uniform(30.0, 80.0)),
            "type": "flammable" if rng.random() < 0.4 else "general",
        }
    objects = []
    for i in range(400):
        tag = f"O{i % 50:03d}"  # some tags are ghost reads (not in catalog)
        shelf = int(rng.integers(0, 3))
        objects.append(
            StreamTuple(
                timestamp=float(i) * 0.2,
                values={"tag_id": tag},
                uncertain={
                    "x": Gaussian(10.0 + 20.0 * shelf + float(rng.normal(0, 0.5)), 0.8),
                    "y": Gaussian(10.0 + float(rng.normal(0, 0.5)), 0.8),
                },
            )
        )
    sensors = []
    for i in range(60):
        sensors.append(
            StreamTuple(
                timestamp=float(i) * 0.4,
                values={"sensor_id": i},
                uncertain={
                    "x": Gaussian(float(rng.uniform(0.0, 70.0)), 1.0),
                    "y": Gaussian(float(rng.uniform(0.0, 20.0)), 1.0),
                    "temp": Gaussian(float(rng.uniform(30.0, 95.0)), 4.0),
                },
            )
        )
    return catalog, objects, sensors


def q1_stream(catalog):
    def weight_of(tag):
        return catalog.get(tag, {}).get("weight", 0.0)

    def zone(dist):
        return int(dist.mean() // 20.0)

    return (
        Stream.source("rfid", values=("tag_id",), uncertain=("x", "y"), rate_hint=5.0)
        .derive(
            values={
                "weight": lambda t: weight_of(t.value("tag_id")),
                "area": lambda t: zone(t.distribution("x")),
            }
        )
        .where(
            lambda t: t.value("tag_id") in catalog,
            uses=("tag_id",),
            description="in catalog",
        )
        .window(TumblingTimeWindow(5.0))
        .group_by(lambda t: t.value("area"))
        .aggregate("weight")
        .having(200.0, min_probability=0.5)
    )


def q2_streams(catalog):
    def location_match(left, right):
        px = match_probability_band(left.distribution("x"), right.distribution("x"), 4.0)
        py = match_probability_band(left.distribution("y"), right.distribution("y"), 4.0)
        return px * py

    objects = Stream.source("objects", values=("tag_id",), uncertain=("x", "y"))
    sensors = Stream.source(
        "temperature", values=("sensor_id",), uncertain=("x", "y", "temp")
    )
    return (
        objects.join(
            sensors,
            on=location_match,
            window_length=30.0,
            min_probability=0.05,
            prefix_left="obj_",
            prefix_right="temp_",
        )
        .where(
            lambda t: catalog.get(t.value("obj_tag_id"), {}).get("type") == "flammable",
            uses=("obj_tag_id",),
            description="flammable",
        )
        .where_probably("temp_temp", ">", 60.0, min_probability=0.5, annotate=None)
    )


def assert_equivalent(expected, got):
    assert len(expected) == len(got), f"{len(expected)} results vs {len(got)}"
    for a, b in zip(expected, got):
        assert set(a.values) == set(b.values), (sorted(a.values), sorted(b.values))
        for key, value in a.values.items():
            other = b.values[key]
            if isinstance(value, float):
                assert other == pytest.approx(value, abs=TOLERANCE), key
            else:
                assert other == value, key
        assert set(a.uncertain) == set(b.uncertain)
        for key in a.uncertain:
            da, db = a.distribution(key), b.distribution(key)
            assert float(db.mean()) == pytest.approx(float(da.mean()), abs=TOLERANCE)
            assert float(db.variance()) == pytest.approx(
                float(da.variance()), abs=TOLERANCE
            )
        assert a.lineage == b.lineage


@pytest.fixture(scope="module")
def q1_reference(warehouse):
    catalog, objects, _ = warehouse
    query = q1_stream(catalog).compile(mode="tuple")
    query.push_many("rfid", objects)
    results = query.finish()
    assert results, "Q1 must produce overloaded-area windows"
    return results


@pytest.fixture(scope="module")
def q2_reference(warehouse):
    catalog, objects, sensors = warehouse
    query = q2_streams(catalog).compile(mode="tuple")
    query.push_many("temperature", sensors)
    query.push_many("objects", objects)
    results = query.finish()
    assert results, "Q2 must produce flammable-object alerts"
    return results


class TestQ1ShardedEquivalence:
    @pytest.mark.parametrize("workers", SHARD_COUNTS)
    @pytest.mark.parametrize("mode", MODES)
    def test_matches_single_engine(self, warehouse, q1_reference, workers, mode):
        catalog, objects, _ = warehouse
        with ShardedEngine(
            q1_stream(catalog),
            workers=workers,
            backend="process",
            chunk_size=64,
            mode=mode,
        ) as engine:
            assert engine.sharded
            engine.push_many("rfid", objects)
            got = engine.finish()
        assert_equivalent(q1_reference, got)


class TestQ2ShardedEquivalence:
    """Q2 does not shard (probabilistic join); the fallback must be exact."""

    @pytest.mark.parametrize("workers", SHARD_COUNTS)
    @pytest.mark.parametrize("mode", MODES)
    def test_matches_single_engine(self, warehouse, q2_reference, workers, mode):
        catalog, objects, sensors = warehouse
        with ShardedEngine(
            q2_streams(catalog), workers=workers, backend="process", mode=mode
        ) as engine:
            assert not engine.sharded
            assert "join" in engine.decision.reason.lower()
            engine.push_many("temperature", sensors)
            engine.push_many("objects", objects)
            got = engine.finish()
        assert_equivalent(q2_reference, got)


class TestInlineBackendEquivalence:
    """The inline backend runs the same protocol without processes."""

    @pytest.mark.parametrize("workers", SHARD_COUNTS)
    def test_q1_inline_matches(self, warehouse, q1_reference, workers):
        catalog, objects, _ = warehouse
        with ShardedEngine(
            q1_stream(catalog),
            workers=workers,
            backend="inline",
            chunk_size=64,
        ) as engine:
            engine.push_many("rfid", objects)
            got = engine.finish()
        assert_equivalent(q1_reference, got)
