"""Merge algebra and coordinator merge operators."""

import math

import numpy as np
import pytest

from repro.core.aggregation import (
    CFApproximationSum,
    CLTSum,
    HavingClause,
    MergeError,
    WindowPartial,
    merge_sum_distributions,
    merge_window_partials,
)
from repro.distributions import Gaussian, GaussianMixture
from repro.plan.sharding import MergeSpec
from repro.runtime import MergeProtocolError, OrderedChunkMerger, WindowPartialMerger
from repro.streams import StreamTuple


def gaussian_partial(start, end, mu, sigma, count=3, lineage=(), group=None):
    return WindowPartial(
        window_start=start,
        window_end=end,
        count=count,
        result=Gaussian(mu, sigma),
        lineage=frozenset(lineage) or frozenset({id(object())}),
        group=group,
    )


class TestMergeSumDistributions:
    def test_gaussian_partials_merge_to_total_moments(self):
        parts = [Gaussian(10.0, 2.0), Gaussian(20.0, 3.0), Gaussian(5.0, 1.0)]
        merged = merge_sum_distributions(parts, CFApproximationSum())
        assert merged.mean() == pytest.approx(35.0, abs=1e-12)
        assert merged.variance() == pytest.approx(4.0 + 9.0 + 1.0, abs=1e-12)

    def test_single_partial_is_identity(self):
        part = Gaussian(7.0, 2.0)
        assert merge_sum_distributions([part], CLTSum()) is part

    def test_mixture_partials_convolve_exactly(self):
        a = GaussianMixture([0.4, 0.6], [0.0, 10.0], [1.0, 2.0])
        b = Gaussian(5.0, 1.0)
        merged = merge_sum_distributions([a, b])
        # Sum of independent variables: means and variances add.
        assert float(merged.mean()) == pytest.approx(float(a.mean()) + 5.0, abs=1e-12)
        assert float(merged.variance()) == pytest.approx(
            float(a.variance()) + 1.0, abs=1e-12
        )
        assert isinstance(merged, GaussianMixture)
        assert merged.n_components == 2  # 2 components x 1 component

    def test_empty_refused(self):
        with pytest.raises(MergeError, match="empty"):
            merge_sum_distributions([])


class TestMergeWindowPartials:
    def test_sum_merge_matches_single_window(self):
        parts = [
            gaussian_partial(0.0, 5.0, 30.0, 2.0, count=3, lineage={1, 2, 3}),
            gaussian_partial(0.0, 5.0, 50.0, 3.0, count=5, lineage={4, 5, 6, 7, 8}),
        ]
        merged = merge_window_partials(
            parts, function="sum", output_attribute="sum_w", strategy=CFApproximationSum()
        )
        assert merged.value("window_count") == 8
        assert merged.value("window_start") == 0.0
        assert merged.lineage == frozenset(range(1, 9))
        dist = merged.distribution("sum_w")
        assert dist.mean() == pytest.approx(80.0, abs=1e-12)
        assert dist.variance() == pytest.approx(13.0, abs=1e-12)
        assert merged.value("sum_w_mean") == pytest.approx(80.0, abs=1e-12)

    def test_avg_scales_merged_sum_by_total_count(self):
        parts = [
            gaussian_partial(0.0, 5.0, 30.0, 2.0, count=2, lineage={1, 2}),
            gaussian_partial(0.0, 5.0, 10.0, 1.0, count=2, lineage={3, 4}),
        ]
        merged = merge_window_partials(
            parts, function="avg", output_attribute="avg_w", strategy=CLTSum()
        )
        dist = merged.distribution("avg_w")
        assert dist.mean() == pytest.approx(10.0, abs=1e-12)
        assert dist.variance() == pytest.approx(5.0 / 16.0, abs=1e-12)

    def test_count_partials_add(self):
        parts = [
            WindowPartial(0.0, 5.0, 3, 3, frozenset({1}), None),
            WindowPartial(0.0, 5.0, 4, 4, frozenset({2}), None),
        ]
        merged = merge_window_partials(parts, function="count", output_attribute="n")
        assert merged.value("n") == 7

    def test_having_filters_merged_result(self):
        parts = [gaussian_partial(0.0, 5.0, 10.0, 1.0, lineage={1})]
        merged = merge_window_partials(
            parts,
            function="sum",
            output_attribute="s",
            strategy=CLTSum(),
            having=HavingClause(threshold=100.0, min_probability=0.5),
        )
        assert merged is None
        kept = merge_window_partials(
            parts,
            function="sum",
            output_attribute="s",
            strategy=CLTSum(),
            having=HavingClause(threshold=5.0, min_probability=0.5),
        )
        assert kept is not None
        assert kept.value("having_probability") >= 0.5

    def test_overlapping_lineage_rejected(self):
        parts = [
            gaussian_partial(0.0, 5.0, 10.0, 1.0, lineage={1, 2}),
            gaussian_partial(0.0, 5.0, 10.0, 1.0, lineage={2, 3}),
        ]
        with pytest.raises(MergeError, match="share lineage"):
            merge_window_partials(parts, function="sum", output_attribute="s")
        # The check is advisory when the query disabled it.
        merged = merge_window_partials(
            parts, function="sum", output_attribute="s", check_independence=False
        )
        assert merged is not None

    def test_mismatched_windows_rejected(self):
        parts = [
            gaussian_partial(0.0, 5.0, 10.0, 1.0, lineage={1}),
            gaussian_partial(5.0, 10.0, 10.0, 1.0, lineage={2}),
        ]
        with pytest.raises(MergeError, match="different windows"):
            merge_window_partials(parts, function="sum", output_attribute="s")

    def test_unmergeable_function_rejected(self):
        parts = [gaussian_partial(0.0, 5.0, 10.0, 1.0, lineage={1})]
        with pytest.raises(MergeError, match="does not merge"):
            merge_window_partials(parts, function="max", output_attribute="m")


class TestOrderedChunkMerger:
    def test_reassembles_global_order(self):
        merger = OrderedChunkMerger()
        t = [StreamTuple(timestamp=float(i), values={"i": i}) for i in range(6)]
        assert merger.ingest(1, [t[2], t[3]]) == []
        assert merger.ingest(2, [t[4]]) == []
        out = merger.ingest(0, [t[0], t[1]])
        assert [x.value("i") for x in out] == [0, 1, 2, 3, 4]
        assert [x.value("i") for x in merger.ingest(3, [t[5]])] == [5]
        assert merger.drain() == []

    def test_duplicate_chunk_rejected(self):
        merger = OrderedChunkMerger()
        merger.ingest(0, [])
        with pytest.raises(MergeProtocolError, match="twice"):
            merger.ingest(0, [])

    def test_drain_with_gap_rejected(self):
        merger = OrderedChunkMerger()
        merger.ingest(1, [])
        with pytest.raises(MergeProtocolError, match="never delivered"):
            merger.drain()


def partial_tuple(start, end, mu, sigma, count, lineage, group=None):
    values = {"window_start": start, "window_end": end, "window_count": count}
    if group is not None:
        values["group"] = group
    return StreamTuple(
        timestamp=end,
        values=values,
        uncertain={"partial_s": Gaussian(mu, sigma)},
        lineage=frozenset(lineage),
    )


def spec(grouped=False, having=None):
    return MergeSpec(
        function="sum",
        output_attribute="s",
        partial_attribute="partial_s",
        strategy=CFApproximationSum(),
        having=having,
        grouped=grouped,
        check_independence=True,
        window_desc="TumblingTimeWindow(length=5.0)",
    )


class TestWindowPartialMerger:
    def test_waits_for_every_fed_shards_watermark(self):
        merger = WindowPartialMerger(spec(), n_shards=2)
        merger.mark_fed(0)
        merger.mark_fed(1)
        assert merger.ingest(0, [partial_tuple(0, 5, 10.0, 1.0, 2, {1, 2})], 7.0) == []
        # Shard 1 was fed but has not replied: nothing can be emitted yet.
        assert merger.pending_windows == 1
        out = merger.ingest(1, [partial_tuple(0, 5, 20.0, 2.0, 3, {3, 4, 5})], 6.0)
        assert len(out) == 1
        assert out[0].distribution("s").mean() == pytest.approx(30.0, abs=1e-12)
        assert out[0].value("window_count") == 5
        assert merger.pending_windows == 0

    def test_starved_shard_does_not_gate_emission(self):
        # Shard 1 never receives data (skewed hash keys): only fed
        # shards gate, so emission keeps streaming.
        merger = WindowPartialMerger(spec(), n_shards=2)
        merger.mark_fed(0)
        out = merger.ingest(0, [partial_tuple(0, 5, 10.0, 1.0, 2, {1, 2})], 7.0)
        assert len(out) == 1
        assert merger.pending_windows == 0

    def test_window_held_until_horizon_passes_its_end(self):
        merger = WindowPartialMerger(spec(), n_shards=2)
        merger.mark_fed(0)
        merger.mark_fed(1)
        merger.ingest(0, [partial_tuple(0, 5, 10.0, 1.0, 2, {1})], 9.0)
        # Shard 1 reports a watermark *inside* the window: hold.
        assert merger.ingest(1, [], 4.0) == []
        out = merger.ingest(1, [partial_tuple(0, 5, 1.0, 1.0, 1, {9})], 5.0)
        assert len(out) == 1

    def test_groups_emit_sorted_within_window(self):
        merger = WindowPartialMerger(spec(grouped=True), n_shards=1)
        out = merger.ingest(
            0,
            [
                partial_tuple(0, 5, 1.0, 1.0, 1, {1}, group=2),
                partial_tuple(0, 5, 2.0, 1.0, 1, {2}, group=0),
                partial_tuple(0, 5, 3.0, 1.0, 1, {3}, group=1),
            ],
            math.inf,
        )
        assert [t.value("group") for t in out] == [0, 1, 2]

    def test_drain_emits_pending_and_resets(self):
        merger = WindowPartialMerger(spec(), n_shards=2)
        merger.mark_fed(0)
        merger.mark_fed(1)
        merger.ingest(0, [partial_tuple(0, 5, 10.0, 1.0, 2, {1, 2})], 7.0)
        out = merger.drain()
        assert len(out) == 1 and merger.pending_windows == 0
        # After a drain the next epoch starts from fresh watermarks and
        # fed sets: a shard fed again this epoch gates emission anew.
        merger.mark_fed(1)
        assert merger.ingest(0, [partial_tuple(10, 15, 1.0, 1.0, 1, {7})], 20.0) == []

    def test_emission_order_is_window_time_order(self):
        merger = WindowPartialMerger(spec(), n_shards=1)
        out = merger.ingest(
            0,
            [
                partial_tuple(5, 10, 2.0, 1.0, 1, {2}),
                partial_tuple(0, 5, 1.0, 1.0, 1, {1}),
            ],
            np.inf,
        )
        assert [t.value("window_start") for t in out] == [0, 5]
