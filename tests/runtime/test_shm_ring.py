"""Shared-memory ring transport: layout, backpressure, wire fidelity, cleanup.

The ring is the byte substrate of the sharded runtime's zero-copy
transport, so these tests pin the properties the coordinator and the
workers rely on: FIFO delivery across wraparound (both pad flavours),
byte-space and record-count backpressure, a reader arbitrarily far
behind the writer, wire-format edge cases decoded straight out of ring
memory, and — because segments outlive processes — that no ``/dev/shm``
residue survives an engine shutdown, clean or crashed.
"""

import math
import os

import numpy as np
import pytest

from repro.distributions import Gaussian
from repro.plan import Stream
from repro.runtime import (
    RingFullError,
    ShardedEngine,
    ShardError,
    ShardShmTransport,
    ShmRing,
)
from repro.streams import StreamTuple, TumblingTimeWindow
from repro.streams.batch import TupleBatch
from repro.streams.serialization import decode_batch, encode_batch_wire


@pytest.fixture
def ring():
    ring = ShmRing(1 << 12)
    yield ring
    ring.close()
    ring.unlink()


def payload_of(i, size):
    return bytes([i % 251]) * size


class TestRingDataPath:
    def test_fifo_roundtrip(self, ring):
        frames = [payload_of(i, 16 + i) for i in range(5)]
        for frame in frames:
            assert ring.try_write(frame)
        assert ring.record_backlog == 5
        for frame in frames:
            view = ring.next_view()
            assert bytes(view) == frame
            ring.release()
        assert ring.next_view() is None
        assert ring.record_backlog == 0
        assert ring.used_bytes == 0

    def test_wraparound_survives_many_laps(self, ring):
        # Varying record sizes walk the write position across the
        # physical end many times, exercising both the explicit
        # 0xFFFFFFFF pad and the implicit <4-byte-remainder skip.
        for i in range(200):
            frame = payload_of(i, 900 + (i * 7) % 64)
            assert ring.try_write(frame)
            view = ring.next_view()
            assert bytes(view) == frame
            ring.release()
        assert ring.used_bytes == 0

    def test_reader_behind_writer_preserves_order(self, ring):
        written = 0
        while ring.try_write(payload_of(written, 100)):
            written += 1
        assert written > 2  # reader never ran; writer filled the ring
        for i in range(written):
            view = ring.next_view()
            assert bytes(view) == payload_of(i, 100)
            ring.release()
        assert ring.next_view() is None

    def test_full_ring_backpressure_clears_on_release(self, ring):
        frame = bytes(1500)
        assert ring.try_write(frame)
        assert ring.try_write(frame)
        assert not ring.try_write(frame)  # 3 * 1504 > 4096: no space
        ring.next_view()
        ring.release()
        assert ring.try_write(frame)  # the released bytes came back

    def test_blocking_write_times_out_when_nobody_drains(self, ring):
        frame = bytes(ring.max_record)
        assert ring.try_write(frame)
        assert ring.try_write(frame)  # two max records fill the ring exactly
        assert ring.used_bytes == ring.capacity
        with pytest.raises(TimeoutError, match="no space freed"):
            ring.write(frame, timeout=0.05)

    def test_oversized_record_rejected_outright(self, ring):
        with pytest.raises(RingFullError, match="can never fit"):
            ring.try_write(bytes(ring.max_record + 1))

    def test_view_must_be_released_before_the_next_read(self, ring):
        ring.try_write(b"abc")
        ring.next_view()
        with pytest.raises(RuntimeError, match="not released"):
            ring.next_view()
        ring.release()
        with pytest.raises(RuntimeError, match="no record pending"):
            ring.release()


def ring_roundtrip(batch, data_bytes=1 << 20):
    """Encode ``batch`` to wire bytes, pass them through a ring, decode."""
    ring = ShmRing(data_bytes)
    try:
        payload = encode_batch_wire(batch)
        assert ring.try_write(payload)
        view = ring.next_view()
        rows = decode_batch(view).to_tuples()
        ring.release()  # decode copied its columns out; safe to reclaim
        return payload, rows
    finally:
        ring.close()
        ring.unlink()


class TestWireFormatThroughRing:
    def test_empty_batch(self):
        _, rows = ring_roundtrip(TupleBatch([]))
        assert rows == []

    def test_non_finite_value_columns_round_trip(self):
        specials = [float("nan"), float("inf"), float("-inf"), 0.0, -1e300]
        batch = TupleBatch(
            [
                StreamTuple(
                    timestamp=i * 0.5,
                    values={"m": value, "tag": f"t{i}"},
                    uncertain={"v": Gaussian(1.0 + i, 2.0)},
                )
                for i, value in enumerate(specials)
            ]
        )
        _, rows = ring_roundtrip(batch)
        assert len(rows) == len(specials)
        for i, (row, value) in enumerate(zip(rows, specials)):
            got = row.value("m")
            if math.isnan(value):
                assert math.isnan(got)
            else:
                assert got == value
            assert row.value("tag") == f"t{i}"
            assert float(row.distribution("v").mean()) == 1.0 + i

    def test_payload_past_64kib_round_trips(self):
        rng = np.random.default_rng(17)
        batch = TupleBatch(
            [
                StreamTuple(
                    timestamp=i * 0.01,
                    uncertain={"v": Gaussian(float(rng.uniform(0, 100)), 2.0)},
                )
                for i in range(4000)
            ]
        )
        payload, rows = ring_roundtrip(batch)
        assert len(payload) > (64 << 10)
        assert len(rows) == 4000
        assert [r.timestamp for r in rows] == [i * 0.01 for i in range(4000)]


class TestShardShmTransport:
    def test_request_reply_roundtrip(self):
        transport = ShardShmTransport(0, 1 << 16, queue_capacity=4)
        try:
            transport.send(b"chunk-frame")
            assert transport.queue_depth == 1
            view = transport.recv_request(0.01)
            assert bytes(view) == b"chunk-frame"
            transport.release_request()
            assert transport.queue_depth == 0
            transport.reply(b"result-frame")
            view = transport.poll_reply(0.01)
            assert bytes(view) == b"result-frame"
            transport.release_reply()
            assert transport.poll_reply(0.0) is None
        finally:
            transport.close()
            transport.unlink()

    def test_send_stalls_at_the_record_cap(self):
        transport = ShardShmTransport(0, 1 << 16, queue_capacity=1)
        try:
            transport.send(b"first")
            stalls = []

            def bail():
                stalls.append(1)
                if len(stalls) >= 3:
                    raise TimeoutError("worker never drained")

            with pytest.raises(TimeoutError, match="never drained"):
                transport.send(b"second", on_stall=bail)
            assert len(stalls) == 3  # the cap, not ring space, blocked it
        finally:
            transport.close()
            transport.unlink()


def shm_residue():
    try:
        entries = os.listdir("/dev/shm")
    except FileNotFoundError:  # pragma: no cover - non-Linux
        pytest.skip("no /dev/shm on this platform")
    return sorted(entry for entry in entries if entry.startswith("repro-ring-"))


def make_tuples(n):
    return [
        StreamTuple(
            timestamp=i * 0.1,
            values={"k": i % 3},
            uncertain={"w": Gaussian(10.0 + i % 7, 1.0)},
        )
        for i in range(n)
    ]


def agg_query():
    return (
        Stream.source("s", values=("k",), uncertain=("w",), family="gaussian")
        .window(TumblingTimeWindow(1.0))
        .aggregate("w")
    )


class TestSegmentLifetime:
    def test_clean_shutdown_unlinks_every_segment(self):
        engine = ShardedEngine(agg_query(), workers=2, backend="process", chunk_size=64)
        try:
            assert len(shm_residue()) == 4  # two rings per shard while live
            engine.push_many("s", make_tuples(500))
            assert engine.finish()
        finally:
            engine.close()
        assert shm_residue() == []

    def test_worker_crash_mid_run_leaves_no_residue(self):
        def explode(t):
            if t.value("k") == 2:
                raise ValueError("boom in worker")
            return 1.0

        query = (
            Stream.source("s", values=("k",), uncertain=("w",))
            .derive(values={"x": explode})
            .window(TumblingTimeWindow(1.0))
            .aggregate("w")
        )
        with pytest.raises(ShardError, match="boom in worker"):
            with ShardedEngine(
                query, workers=2, backend="process", chunk_size=4
            ) as engine:
                engine.push_many("s", make_tuples(50))
                engine.finish()
        assert shm_residue() == []
