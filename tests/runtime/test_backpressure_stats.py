"""Backpressure observability: queue depth, in-flight chunks, stall counts."""

import numpy as np
import pytest

from repro import QuerySession
from repro.distributions import Gaussian
from repro.plan import Stream
from repro.plan.nodes import PlanError
from repro.runtime import ShardBackpressure, ShardedEngine
from repro.streams import StreamTuple, TumblingTimeWindow


def build_query():
    stream = Stream.source("s", uncertain=("value",), family="gaussian", rate_hint=100.0)
    stream = stream.where_probably("value", ">", 20.0, min_probability=0.2, annotate=None)
    return stream.window(TumblingTimeWindow(2.0)).aggregate("value")


def make_tuples(n):
    rng = np.random.default_rng(11)
    return [
        StreamTuple(
            timestamp=i * 0.01,
            uncertain={"value": Gaussian(float(rng.uniform(10.0, 90.0)), 2.0)},
        )
        for i in range(n)
    ]


class TestShardedEngineBackpressure:
    def test_process_backend_reports_per_shard_state(self):
        with ShardedEngine(
            build_query(), workers=2, backend="process", chunk_size=256
        ) as engine:
            engine.push_many("s", make_tuples(4000))
            engine.finish()
            report = engine.shard_statistics()
            assert set(report) == {0, 1}
            for shard, state in report.items():
                assert isinstance(state, ShardBackpressure)
                assert state.shard == shard
                assert state.transport == "shm"
                assert state.chunks_sent > 0
                # After finish() everything shipped has been answered.
                assert state.in_flight_chunks == 0
                assert state.queue_depth == 0
                assert state.stalls >= 0

    def test_stalls_accumulate_when_workers_lag(self):
        """A tiny queue bound forces the coordinator into its drain loop."""
        with ShardedEngine(
            build_query(),
            workers=1,
            backend="process",
            chunk_size=8,
            queue_capacity=1,
        ) as engine:
            engine.push_many("s", make_tuples(4000))
            engine.finish()
            report = engine.shard_statistics()
            assert report[0].chunks_sent == 500
            assert report[0].stalls > 0

    def test_inline_backend_reports_inline_transport(self):
        with ShardedEngine(
            build_query(), workers=2, backend="inline", chunk_size=64
        ) as engine:
            engine.push_many("s", make_tuples(500))
            engine.finish()
            report = engine.shard_statistics()
            assert {state.transport for state in report.values()} == {"inline"}
            assert all(state.in_flight_chunks == 0 for state in report.values())

    def test_statistics_carry_backpressure(self):
        with ShardedEngine(
            build_query(), workers=2, backend="inline", chunk_size=64
        ) as engine:
            engine.push_many("s", make_tuples(500))
            engine.finish()
            stats = engine.statistics()
            assert set(stats.backpressure) == {0, 1}
            assert stats.backpressure[0].chunks_sent > 0

    def test_fallback_engine_reports_empty(self):
        engine = ShardedEngine(build_query(), workers=0)
        assert engine.shard_statistics() == {}
        assert engine.statistics().backpressure == {}

    def test_weight_mismatch_fails_before_forking(self):
        with pytest.raises(PlanError, match="weights cover 2 shards"):
            ShardedEngine(
                build_query(), workers=3, backend="inline",
                partitioner="round_robin:2,1",
            )

    def test_weighted_partitioner_skews_chunk_counts(self):
        with ShardedEngine(
            build_query(), workers=2, backend="inline", chunk_size=64,
            partitioner="round_robin:3,1",
        ) as engine:
            engine.push_many("s", make_tuples(64 * 8))
            engine.finish()
            report = engine.shard_statistics()
            assert report[0].chunks_sent == 6
            assert report[1].chunks_sent == 2


class TestSessionBackpressure:
    def test_shard_statistics_exposes_backpressure(self):
        with QuerySession(workers=2, shard_backend="inline") as session:
            session.create_stream("s", uncertain=("value",), family="gaussian")
            session.register(
                "totals",
                "SELECT SUM(value) AS total FROM s [RANGE 2 SECONDS SLIDE 2 SECONDS]",
            )
            session.push_many("s", make_tuples(500))
            session.flush()
            stats = session.shard_statistics("totals")
            assert set(stats.backpressure) == {0, 1}
            assert all(
                state.in_flight_chunks == 0 for state in stats.backpressure.values()
            )

    def test_engine_hosted_query_has_no_shard_statistics(self):
        session = QuerySession()
        session.create_stream("s", uncertain=("value",), family="gaussian")
        session.register("hot", "SELECT * FROM s WHERE value > 40 WITH PROBABILITY 0.5")
        with pytest.raises(Exception, match="sharded"):
            session.shard_statistics("hot")
