"""ShardedEngine lifecycle: fallback, errors, statistics, backpressure."""

import pytest

from repro.distributions import Gaussian
from repro.plan import PlanError, Stream
from repro.runtime import HashPartitioner, ShardedEngine, ShardError
from repro.streams import StreamTuple, TumblingCountWindow, TumblingTimeWindow


def tuples(n, start=0.0):
    return [
        StreamTuple(
            timestamp=start + i * 0.1,
            values={"k": i % 3},
            uncertain={"w": Gaussian(10.0 + i % 7, 1.0)},
        )
        for i in range(n)
    ]


def agg_query():
    return (
        Stream.source("s", values=("k",), uncertain=("w",), family="gaussian")
        .window(TumblingTimeWindow(1.0))
        .aggregate("w")
    )


def rowwise_query():
    return Stream.source("s", values=("k",), uncertain=("w",)).where_probably(
        "w", ">", 11.0, min_probability=0.5
    )


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(PlanError, match="workers"):
            ShardedEngine(agg_query(), workers=-1)
        with pytest.raises(PlanError, match="backend"):
            ShardedEngine(agg_query(), backend="threads")
        with pytest.raises(PlanError, match="chunk_size"):
            ShardedEngine(agg_query(), chunk_size=0)

    def test_hash_partitioner_rejected_for_ordered_plans(self):
        with pytest.raises(PlanError, match="does not preserve the global input order"):
            ShardedEngine(rowwise_query(), workers=2, partitioner=HashPartitioner("k"))

    def test_workers_zero_pins_fallback(self):
        with ShardedEngine(agg_query(), workers=0) as engine:
            assert not engine.sharded
            assert "workers=0" in engine.decision.reason

    def test_unknown_source_rejected(self):
        with ShardedEngine(agg_query(), workers=2, backend="inline") as engine:
            with pytest.raises(PlanError, match="unknown source"):
                engine.push("nope", tuples(1)[0])


class TestFallback:
    def test_count_window_falls_back_but_runs(self):
        query = (
            Stream.source("s", uncertain=("w",), family="gaussian")
            .window(TumblingCountWindow(10))
            .aggregate("w")
        )
        with ShardedEngine(query, workers=2, backend="process") as engine:
            assert not engine.sharded
            assert "time" in engine.decision.reason
            engine.push_many("s", tuples(35))
            results = engine.finish()
        assert len(results) == 4  # 3 full windows + 1 flushed partial
        stats = engine.statistics()
        assert stats.shards == {}
        assert stats.coordinator, "fallback must still report engine boxes"
        assert "single-engine fallback" in engine.explain()

    def test_fallback_sink_receives_results_incrementally(self):
        query = rowwise_query()
        with ShardedEngine(query, workers=0) as engine:
            engine.push_many("s", tuples(50))
            mid = len(engine.results)
            engine.push_many("s", tuples(50, start=100.0))
            assert len(engine.results) > mid


class TestLifecycle:
    def test_close_is_idempotent_and_context_managed(self):
        engine = ShardedEngine(agg_query(), workers=2, backend="process")
        with engine:
            engine.push_many("s", tuples(100))
            engine.finish()
        engine.close()
        engine.close()

    def test_finish_then_more_pushes(self):
        with ShardedEngine(
            agg_query(), workers=2, backend="process", chunk_size=16
        ) as engine:
            engine.push_many("s", tuples(100))
            first = len(engine.finish())
            assert first > 0
            engine.push_many("s", tuples(100, start=1000.0))
            assert len(engine.finish()) > first

    def test_push_after_close_raises(self):
        engine = ShardedEngine(agg_query(), workers=2, backend="process")
        engine.push_many("s", tuples(20))
        engine.finish()
        engine.close()
        with pytest.raises(ShardError, match="closed"):
            engine.push("s", tuples(1)[0])
        with pytest.raises(ShardError, match="closed"):
            engine.finish()
        # Collected results stay readable after close.
        assert engine.results

    def test_take_drains_results(self):
        with ShardedEngine(agg_query(), workers=2, backend="inline") as engine:
            engine.push_many("s", tuples(60))
            engine.finish()
            drained = engine.take()
            assert drained and engine.results == []

    def test_backpressure_bounded_queues_complete(self):
        # Tiny queues + many chunks: the parent must drain results while
        # its sends block, or this deadlocks (the test would time out).
        with ShardedEngine(
            rowwise_query(),
            workers=2,
            backend="process",
            chunk_size=8,
            queue_capacity=1,
        ) as engine:
            stream = tuples(2000)
            engine.push_many("s", stream)
            results = engine.finish()
        survivors = [
            t for t in stream if t.distribution("w").prob_greater_than(11.0) >= 0.5
        ]
        assert len(results) == len(survivors)


class TestWorkerErrors:
    def test_worker_failure_surfaces_as_shard_error(self):
        def explode(t):
            if t.value("k") == 2:
                raise ValueError("boom in worker")
            return 1.0

        query = (
            Stream.source("s", values=("k",), uncertain=("w",))
            .derive(values={"x": explode})
            .window(TumblingTimeWindow(1.0))
            .aggregate("w")
        )
        with ShardedEngine(query, workers=2, backend="process", chunk_size=4) as engine:
            with pytest.raises(ShardError, match="boom in worker"):
                engine.push_many("s", tuples(50))
                engine.finish()


class TestStatistics:
    def test_per_shard_statistics_cover_all_shards(self):
        with ShardedEngine(
            agg_query(), workers=3, backend="process", chunk_size=16
        ) as engine:
            engine.push_many("s", tuples(300))
            engine.finish()
            stats = engine.statistics()
        assert sorted(stats.shards) == [0, 1, 2]
        for shard, rows in stats.shards.items():
            names = [row.name for row in rows]
            assert any("UncertainAggregate" in name for name in names)
            assert sum(row.tuples_in for row in rows) > 0
        # Every input tuple went to exactly one shard's source box.
        per_shard_in = [
            next(r.tuples_in for r in rows if r.name.startswith("source:"))
            for rows in stats.shards.values()
        ]
        assert sum(per_shard_in) == 300
        assert stats.coordinator[-1].name == "sink:sharded"

    def test_explain_reports_decision_and_runtime(self):
        with ShardedEngine(agg_query(), workers=2, backend="inline") as engine:
            report = engine.explain()
        assert "sharded: yes" in report
        assert "partial" in report
        assert "backend: inline" in report
