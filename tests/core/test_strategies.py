"""Tests for the SUM result-distribution strategies (Section 5.1)."""

import numpy as np
import pytest

from repro.core import (
    CFApproximationSum,
    CFInversionSum,
    CLTSum,
    ConvolutionSum,
    HistogramSamplingSum,
    MonteCarloSum,
    TimeSeriesCLTSum,
    strategy_by_name,
)
from repro.distributions import (
    DistributionError,
    Gaussian,
    GaussianMixture,
    Uniform,
    variance_distance,
)
from repro.workloads import gmm_tuple_stream


def gaussian_summands():
    return [Gaussian(1.0, 1.0), Gaussian(2.0, 2.0), Gaussian(-1.0, 0.5)]


def exact_gaussian_sum(summands):
    return Gaussian(sum(g.mu for g in summands), np.sqrt(sum(g.sigma**2 for g in summands)))


class TestStrategyCorrectness:
    @pytest.mark.parametrize(
        "strategy",
        [
            CFInversionSum(),
            CFApproximationSum(),
            CLTSum(),
            ConvolutionSum(),
            MonteCarloSum(n_samples=20_000, rng=3),
            HistogramSamplingSum(bins_per_input=64, n_samples=20_000, rng=3),
        ],
        ids=lambda s: s.name,
    )
    def test_gaussian_sum_moments_recovered(self, strategy):
        summands = gaussian_summands()
        exact = exact_gaussian_sum(summands)
        result = strategy.result_distribution(summands)
        assert float(np.asarray(result.mean())) == pytest.approx(exact.mu, abs=0.15)
        assert float(np.asarray(result.variance())) == pytest.approx(exact.variance(), rel=0.15)

    @pytest.mark.parametrize(
        "strategy",
        [CFInversionSum(), CFApproximationSum(), CLTSum()],
        ids=lambda s: s.name,
    )
    def test_gaussian_sum_full_distribution_close(self, strategy):
        summands = gaussian_summands()
        exact = exact_gaussian_sum(summands)
        result = strategy.result_distribution(summands)
        assert variance_distance(result, exact) < 0.01

    def test_empty_window_rejected(self):
        for strategy in (CFInversionSum(), CFApproximationSum(), CLTSum()):
            with pytest.raises(DistributionError):
                strategy.result_distribution([])

    def test_mixture_window_cf_approx_tracks_inversion(self):
        stream = gmm_tuple_stream(100, rng=5)
        summands = [t.distribution("value") for t in stream]
        exact = CFInversionSum().result_distribution(summands)
        approx = CFApproximationSum().result_distribution(summands)
        assert variance_distance(exact, approx) < 0.02

    def test_histogram_sampling_less_accurate_than_cf_approx(self):
        stream = gmm_tuple_stream(100, rng=6)
        summands = [t.distribution("value") for t in stream]
        exact = CFInversionSum().result_distribution(summands)
        approx_err = variance_distance(exact, CFApproximationSum().result_distribution(summands))
        hist_err = variance_distance(
            exact, HistogramSamplingSum(rng=7).result_distribution(summands)
        )
        assert approx_err < hist_err

    def test_cf_approx_with_mixture_components(self):
        bimodal = GaussianMixture([0.5, 0.5], [0.0, 40.0], [1.0, 1.0])
        summands = [bimodal, Gaussian(0.0, 1.0)]
        exact = CFInversionSum(n_bins=512).result_distribution(summands)
        two = CFApproximationSum(n_components=2).result_distribution(summands)
        one = CFApproximationSum(n_components=1).result_distribution(summands)
        assert variance_distance(exact, two) <= variance_distance(exact, one)

    def test_convolution_handles_uniform_inputs(self):
        summands = [Uniform(0, 1), Uniform(0, 1), Uniform(0, 1)]
        result = ConvolutionSum().result_distribution(summands)
        assert float(np.asarray(result.mean())) == pytest.approx(1.5, abs=0.02)
        assert float(np.asarray(result.variance())) == pytest.approx(0.25, rel=0.05)


class TestTimeSeriesCLT:
    def test_positive_correlation_inflates_variance(self):
        summands = [Gaussian(0.0, 1.0) for _ in range(50)]
        independent = TimeSeriesCLTSum([1.0]).result_distribution(summands)
        correlated = TimeSeriesCLTSum([1.0, 0.5, 0.25]).result_distribution(summands)
        assert correlated.variance() > independent.variance()

    def test_zero_lag_only_matches_clt(self):
        summands = [Gaussian(2.0, 1.5) for _ in range(20)]
        ts = TimeSeriesCLTSum([1.5**2]).result_distribution(summands)
        iid = CLTSum().result_distribution(summands)
        assert ts.mean() == pytest.approx(iid.mean())
        assert ts.variance() == pytest.approx(iid.variance())

    def test_requires_positive_gamma0(self):
        with pytest.raises(ValueError):
            TimeSeriesCLTSum([0.0])
        with pytest.raises(ValueError):
            TimeSeriesCLTSum([])


class TestStrategyRegistry:
    def test_lookup_by_name(self):
        assert isinstance(strategy_by_name("cf_inversion"), CFInversionSum)
        assert isinstance(strategy_by_name("cf_approx"), CFApproximationSum)
        assert isinstance(strategy_by_name("histogram"), HistogramSamplingSum)
        assert isinstance(strategy_by_name("clt"), CLTSum)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            strategy_by_name("magic")

    def test_kwargs_forwarded(self):
        strategy = strategy_by_name("cf_approx", n_components=3)
        assert strategy.n_components == 3
