"""Tests for the windowed uncertain aggregation operators."""

import numpy as np
import pytest

from repro.core import (
    CFApproximationSum,
    CLTSum,
    GroupByAggregate,
    HavingClause,
    UncertainAggregate,
)
from repro.distributions import Gaussian
from repro.streams import StreamTuple, TumblingCountWindow, TumblingTimeWindow
from repro.streams.operators.base import OperatorError


def value_tuple(i, mean, sigma=1.0, group=None, ts=None):
    values = {"i": i}
    if group is not None:
        values["area"] = group
    return StreamTuple(
        timestamp=float(i if ts is None else ts),
        values=values,
        uncertain={"weight": Gaussian(mean, sigma)},
    )


class TestUncertainAggregate:
    def test_sum_over_tumbling_count_window(self):
        op = UncertainAggregate(TumblingCountWindow(4), "weight", CFApproximationSum())
        outputs = []
        for i in range(8):
            outputs.extend(op.accept(value_tuple(i, mean=10.0)))
        assert len(outputs) == 2
        result = outputs[0].distribution("sum_weight")
        assert result.mean() == pytest.approx(40.0)
        assert result.variance() == pytest.approx(4.0)
        assert outputs[0].value("window_count") == 4

    def test_avg_scales_sum(self):
        op = UncertainAggregate(TumblingCountWindow(5), "weight", CLTSum(), function="avg")
        outputs = []
        for i in range(5):
            outputs.extend(op.accept(value_tuple(i, mean=float(i))))
        result = outputs[0].distribution("avg_weight")
        assert result.mean() == pytest.approx(2.0)
        assert result.variance() == pytest.approx(5.0 / 25.0)

    def test_count_is_deterministic(self):
        op = UncertainAggregate(TumblingCountWindow(3), "weight", CLTSum(), function="count")
        outputs = []
        for i in range(3):
            outputs.extend(op.accept(value_tuple(i, mean=1.0)))
        assert outputs[0].value("count_weight") == 3

    def test_max_uses_order_statistics(self):
        op = UncertainAggregate(TumblingCountWindow(2), "weight", CLTSum(), function="max")
        outputs = []
        outputs.extend(op.accept(value_tuple(0, mean=0.0, sigma=1.0)))
        outputs.extend(op.accept(value_tuple(1, mean=10.0, sigma=1.0)))
        result = outputs[0].distribution("max_weight")
        # Max of two well-separated Gaussians is essentially the larger one.
        assert result.mean() == pytest.approx(10.0, abs=0.2)

    def test_flush_emits_partial_window(self):
        op = UncertainAggregate(TumblingCountWindow(10), "weight", CLTSum())
        for i in range(3):
            assert op.accept(value_tuple(i, mean=1.0)) == []
        outputs = list(op.flush())
        assert len(outputs) == 1
        assert outputs[0].value("window_count") == 3

    def test_having_filters_results(self):
        having = HavingClause(threshold=100.0, min_probability=0.5)
        op = UncertainAggregate(
            TumblingCountWindow(2), "weight", CLTSum(), having=having
        )
        low = [value_tuple(0, 10.0), value_tuple(1, 10.0)]
        high = [value_tuple(2, 80.0), value_tuple(3, 80.0)]
        outputs = []
        for item in low + high:
            outputs.extend(op.accept(item))
        assert len(outputs) == 1
        assert outputs[0].value("having_probability") > 0.99

    def test_deterministic_numeric_attribute_promoted(self):
        op = UncertainAggregate(TumblingCountWindow(2), "const", CLTSum())
        items = [
            StreamTuple(timestamp=0.0, values={"const": 5.0}),
            StreamTuple(timestamp=1.0, values={"const": 7.0}),
        ]
        outputs = []
        for item in items:
            outputs.extend(op.accept(item))
        assert outputs[0].distribution("sum_const").mean() == pytest.approx(12.0)

    def test_missing_attribute_raises(self):
        op = UncertainAggregate(TumblingCountWindow(1), "missing", CLTSum())
        with pytest.raises(OperatorError):
            op.accept(value_tuple(0, mean=1.0))

    def test_correlated_window_rejected_by_default(self):
        op = UncertainAggregate(TumblingCountWindow(2), "weight", CLTSum())
        base = value_tuple(0, mean=1.0)
        sibling = base.derive(values={"i": 1})
        op.accept(base)
        with pytest.raises(OperatorError):
            op.accept(sibling)

    def test_correlated_window_allowed_when_check_disabled(self):
        op = UncertainAggregate(
            TumblingCountWindow(2), "weight", CLTSum(), check_independence=False
        )
        base = value_tuple(0, mean=1.0)
        op.accept(base)
        outputs = op.accept(base.derive(values={"i": 1}))
        assert len(outputs) == 1

    def test_invalid_function_rejected(self):
        with pytest.raises(OperatorError):
            UncertainAggregate(TumblingCountWindow(2), "weight", CLTSum(), function="median")

    def test_result_lineage_is_union_of_inputs(self):
        op = UncertainAggregate(TumblingCountWindow(2), "weight", CLTSum())
        a, b = value_tuple(0, 1.0), value_tuple(1, 2.0)
        op.accept(a)
        outputs = op.accept(b)
        assert outputs[0].lineage == a.lineage | b.lineage


class TestGroupByAggregate:
    def test_groups_within_time_window(self):
        op = GroupByAggregate(
            TumblingTimeWindow(5.0),
            key_function=lambda t: t.value("area"),
            attribute="weight",
            strategy=CLTSum(),
        )
        items = [
            value_tuple(0, 10.0, group="A", ts=0.5),
            value_tuple(1, 20.0, group="B", ts=1.0),
            value_tuple(2, 30.0, group="A", ts=2.0),
            value_tuple(3, 5.0, group="B", ts=6.0),  # next window
        ]
        outputs = []
        for item in items:
            outputs.extend(op.accept(item))
        outputs.extend(op.flush())
        by_group = {(t.value("group"), t.value("window_start")): t for t in outputs}
        assert by_group[("A", 0.0)].distribution("sum_weight").mean() == pytest.approx(40.0)
        assert by_group[("B", 0.0)].distribution("sum_weight").mean() == pytest.approx(20.0)
        assert by_group[("B", 5.0)].distribution("sum_weight").mean() == pytest.approx(5.0)

    def test_having_applied_per_group(self):
        op = GroupByAggregate(
            TumblingCountWindow(4),
            key_function=lambda t: t.value("area"),
            attribute="weight",
            strategy=CLTSum(),
            having=HavingClause(threshold=50.0),
        )
        items = [
            value_tuple(0, 40.0, group="hot"),
            value_tuple(1, 40.0, group="hot"),
            value_tuple(2, 1.0, group="cold"),
            value_tuple(3, 1.0, group="cold"),
        ]
        outputs = []
        for item in items:
            outputs.extend(op.accept(item))
        assert len(outputs) == 1
        assert outputs[0].value("group") == "hot"

    def test_having_probability_threshold(self):
        clause = HavingClause(threshold=0.0, min_probability=0.9)
        result = Gaussian(1.0, 1.0)  # P(>0) ~= 0.84 < 0.9
        assert not clause.accepts(result)
        assert clause.accepts(Gaussian(3.0, 1.0))

    def test_invalid_having_probability(self):
        with pytest.raises(ValueError):
            HavingClause(threshold=0.0, min_probability=1.5)
