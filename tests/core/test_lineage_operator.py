"""Tests for the archiving and lineage-aware aggregation operators."""

import pytest

from repro.core import ArchivingOperator, LineageAwareAggregate, UncertainAggregate, CLTSum
from repro.distributions import Gaussian
from repro.streams import StreamTuple, TumblingCountWindow, TupleArchive
from repro.streams.operators.base import OperatorError


def base_tuple(ts, mean, sigma=1.0):
    return StreamTuple(timestamp=ts, values={}, uncertain={"v": Gaussian(mean, sigma)})


class TestArchivingOperator:
    def test_archives_and_passes_through(self):
        archive = TupleArchive()
        op = ArchivingOperator(archive)
        item = base_tuple(0.0, 1.0)
        outputs = op.accept(item)
        assert outputs == [item]
        assert item.tuple_id in archive

    def test_retention_evicts_old_tuples(self):
        archive = TupleArchive()
        op = ArchivingOperator(archive, retention_seconds=5.0)
        old = base_tuple(0.0, 1.0)
        op.accept(old)
        op.accept(base_tuple(10.0, 2.0))
        assert old.tuple_id not in archive
        assert len(archive) == 1

    def test_invalid_retention(self):
        with pytest.raises(ValueError):
            ArchivingOperator(TupleArchive(), retention_seconds=0.0)


class TestLineageAwareAggregate:
    def test_independent_window_matches_plain_aggregate(self):
        archive = TupleArchive()
        archiver = ArchivingOperator(archive)
        lineage_agg = LineageAwareAggregate(
            TumblingCountWindow(4), "v", archive, rng=1
        )
        plain_agg = UncertainAggregate(TumblingCountWindow(4), "v", CLTSum(), output_attribute="sum_v")
        items = [base_tuple(float(i), float(i), 0.5) for i in range(4)]
        outputs_lineage, outputs_plain = [], []
        for item in items:
            archiver.accept(item)
            outputs_lineage.extend(lineage_agg.accept(item))
            outputs_plain.extend(plain_agg.accept(item))
        assert len(outputs_lineage) == 1 and len(outputs_plain) == 1
        a = outputs_lineage[0].distribution("sum_v")
        b = outputs_plain[0].distribution("sum_v")
        assert a.mean() == pytest.approx(b.mean(), rel=1e-6)
        assert a.variance() == pytest.approx(b.variance(), rel=1e-6)

    def test_correlated_window_gets_larger_variance_than_naive(self):
        archive = TupleArchive()
        base = base_tuple(0.0, 10.0, 2.0)
        archive.archive(base)
        # Two intermediates derived from the same base tuple (e.g. two join
        # outputs that both carry the same temperature reading).
        derived = [base.derive(values={"k": k}) for k in range(2)]

        lineage_agg = LineageAwareAggregate(
            TumblingCountWindow(2), "v", archive, n_samples=8000, rng=2
        )
        outputs = []
        for item in derived:
            outputs.extend(lineage_agg.accept(item))
        assert len(outputs) == 1
        result = outputs[0].distribution("sum_v")
        naive = UncertainAggregate(
            TumblingCountWindow(2), "v", CLTSum(), check_independence=False
        )
        naive_outputs = []
        for item in derived:
            naive_outputs.extend(naive.accept(item))
        naive_result = naive_outputs[0].distribution("sum_v")
        assert result.mean() == pytest.approx(20.0, rel=0.05)
        assert result.variance() > 1.5 * naive_result.variance()

    def test_plain_aggregate_rejects_what_lineage_aggregate_accepts(self):
        archive = TupleArchive()
        base = base_tuple(0.0, 1.0)
        archive.archive(base)
        derived = [base.derive(values={"k": k}) for k in range(2)]
        plain = UncertainAggregate(TumblingCountWindow(2), "v", CLTSum())
        plain.accept(derived[0])
        with pytest.raises(OperatorError):
            plain.accept(derived[1])
        lineage_agg = LineageAwareAggregate(TumblingCountWindow(2), "v", archive, rng=3)
        lineage_agg.accept(derived[0])
        assert lineage_agg.accept(derived[1])

    def test_flush_emits_partial_window(self):
        archive = TupleArchive()
        lineage_agg = LineageAwareAggregate(TumblingCountWindow(10), "v", archive, rng=4)
        item = base_tuple(0.0, 3.0)
        archive.archive(item)
        lineage_agg.accept(item)
        outputs = list(lineage_agg.flush())
        assert len(outputs) == 1
        assert outputs[0].value("window_count") == 1
