"""Tests for probabilistic selection (Section 5, selection operator)."""

import pytest

from repro.core import Comparison, ProbabilisticSelect, UncertainPredicate
from repro.distributions import Gaussian
from repro.streams import StreamTuple
from repro.streams.operators.base import OperatorError


def temp_tuple(mean, sigma=2.0):
    return StreamTuple(timestamp=0.0, values={"sensor": "T"}, uncertain={"temp": Gaussian(mean, sigma)})


class TestUncertainPredicate:
    def test_greater_probability(self):
        pred = UncertainPredicate("temp", Comparison.GREATER, 60.0)
        assert pred.probability(temp_tuple(60.0)) == pytest.approx(0.5)
        assert pred.probability(temp_tuple(80.0)) > 0.99
        assert pred.probability(temp_tuple(40.0)) < 0.01

    def test_less_probability(self):
        pred = UncertainPredicate("temp", Comparison.LESS, 0.0)
        assert pred.probability(temp_tuple(0.0)) == pytest.approx(0.5)

    def test_between_probability(self):
        pred = UncertainPredicate("temp", Comparison.BETWEEN, -1.0, upper=1.0)
        assert pred.probability(temp_tuple(0.0, sigma=1.0)) == pytest.approx(0.6827, abs=1e-3)

    def test_between_requires_upper(self):
        with pytest.raises(ValueError):
            UncertainPredicate("temp", Comparison.BETWEEN, 0.0)

    def test_missing_attribute_raises(self):
        pred = UncertainPredicate("humidity", Comparison.GREATER, 0.5)
        with pytest.raises(OperatorError):
            pred.probability(temp_tuple(10.0))


class TestProbabilisticSelect:
    def test_keeps_tuples_above_threshold(self):
        select = ProbabilisticSelect(
            UncertainPredicate("temp", Comparison.GREATER, 60.0), min_probability=0.5
        )
        assert select.accept(temp_tuple(70.0)) != []
        assert select.accept(temp_tuple(50.0)) == []

    def test_annotates_probability(self):
        select = ProbabilisticSelect(
            UncertainPredicate("temp", Comparison.GREATER, 60.0), min_probability=0.0
        )
        out = select.accept(temp_tuple(62.0))[0]
        prob = out.value("selection_probability")
        assert 0.5 < prob < 1.0

    def test_annotation_can_be_disabled(self):
        select = ProbabilisticSelect(
            UncertainPredicate("temp", Comparison.GREATER, 60.0),
            min_probability=0.0,
            probability_attribute=None,
        )
        out = select.accept(temp_tuple(80.0))[0]
        assert not out.has_value("selection_probability")

    def test_zero_threshold_keeps_everything(self):
        select = ProbabilisticSelect(
            UncertainPredicate("temp", Comparison.GREATER, 1000.0), min_probability=0.0
        )
        assert select.accept(temp_tuple(0.0)) != []

    def test_invalid_threshold(self):
        with pytest.raises(OperatorError):
            ProbabilisticSelect(
                UncertainPredicate("temp", Comparison.GREATER, 0.0), min_probability=1.5
            )
