"""Tests for final-result summarisation (confidence regions, error bounds)."""

import pytest

from repro.core import ResultSummary, SummarizeResults, summarize
from repro.distributions import Gaussian
from repro.streams import StreamTuple
from repro.streams.operators.base import OperatorError


class TestSummarize:
    def test_gaussian_summary(self):
        summary = summarize(Gaussian(10.0, 2.0), confidence=0.95)
        assert summary.mean == pytest.approx(10.0)
        assert summary.variance == pytest.approx(4.0)
        assert summary.region[0] == pytest.approx(10.0 - 1.96 * 2.0, abs=0.02)
        assert summary.region[1] == pytest.approx(10.0 + 1.96 * 2.0, abs=0.02)
        assert summary.error_bound == pytest.approx(1.96 * 2.0, abs=0.02)
        assert summary.contains(10.0)
        assert not summary.contains(20.0)

    def test_std_property(self):
        assert summarize(Gaussian(0.0, 3.0)).std == pytest.approx(3.0)


class TestSummarizeResultsOperator:
    def make_tuple(self):
        return StreamTuple(
            timestamp=1.0,
            values={"area": (3, 4)},
            uncertain={"total_weight": Gaussian(250.0, 10.0)},
        )

    def test_replaces_distribution_with_statistics(self):
        op = SummarizeResults("total_weight", confidence=0.9)
        out = op.accept(self.make_tuple())[0]
        assert out.value("total_weight_mean") == pytest.approx(250.0)
        assert out.value("total_weight_variance") == pytest.approx(100.0)
        assert out.value("total_weight_lo") < 250.0 < out.value("total_weight_hi")
        assert not out.has_uncertain("total_weight")
        assert out.value("area") == (3, 4)

    def test_can_keep_distribution(self):
        op = SummarizeResults("total_weight", keep_distribution=True)
        out = op.accept(self.make_tuple())[0]
        assert out.has_uncertain("total_weight")

    def test_missing_attribute_raises(self):
        op = SummarizeResults("nope")
        with pytest.raises(OperatorError):
            op.accept(self.make_tuple())

    def test_invalid_confidence(self):
        with pytest.raises(OperatorError):
            SummarizeResults("x", confidence=1.0)
