"""Tests for the declarative query builder (Q1/Q2 shapes)."""

import pytest

from repro.core import (
    CLTSum,
    Comparison,
    HavingClause,
    QueryBuilder,
    match_probability_band,
)
from repro.core.selection import ProbabilisticSelect, UncertainPredicate
from repro.distributions import Gaussian
from repro.streams import StreamTuple, TumblingCountWindow, TumblingTimeWindow
from repro.streams.operators.base import OperatorError


def value_tuple(i, mean, group="A", ts=None):
    return StreamTuple(
        timestamp=float(i if ts is None else ts),
        values={"tag_id": f"O{i}", "group": group},
        uncertain={"weight": Gaussian(mean, 1.0)},
    )


class TestLinearQueries:
    def test_filter_aggregate_summarize_chain(self):
        query = (
            QueryBuilder("in")
            .where(lambda t: t.value("group") == "A")
            .aggregate(TumblingCountWindow(3), "weight", strategy=CLTSum())
            .summarize("sum_weight", confidence=0.9)
            .compile()
        )
        items = [value_tuple(i, 10.0, group="A" if i % 2 == 0 else "B") for i in range(6)]
        query.push_many("in", items)
        results = query.finish()
        assert len(results) == 1
        assert results[0].value("sum_weight_mean") == pytest.approx(30.0)
        assert results[0].value("sum_weight_lo") < 30.0 < results[0].value("sum_weight_hi")

    def test_derive_and_probabilistic_filter(self):
        query = (
            QueryBuilder("in")
            .derive(values={"double_id": lambda t: t.value("tag_id") * 2})
            .where_probably("weight", Comparison.GREATER, 15.0, min_probability=0.5)
            .compile()
        )
        query.push("in", value_tuple(0, 20.0))
        query.push("in", value_tuple(1, 5.0))
        results = query.finish()
        assert len(results) == 1
        assert results[0].value("double_id") == "O0O0"

    def test_group_aggregate_with_having(self):
        query = (
            QueryBuilder("in")
            .group_aggregate(
                window=TumblingTimeWindow(5.0),
                key=lambda t: t.value("group"),
                attribute="weight",
                strategy=CLTSum(),
                having=HavingClause(threshold=25.0),
            )
            .compile()
        )
        query.push_many(
            "in",
            [
                value_tuple(0, 20.0, group="hot", ts=0.5),
                value_tuple(1, 20.0, group="hot", ts=1.0),
                value_tuple(2, 1.0, group="cold", ts=1.5),
            ],
        )
        results = query.finish()
        assert len(results) == 1
        assert results[0].value("group") == "hot"

    def test_empty_query_rejected(self):
        with pytest.raises(OperatorError):
            QueryBuilder().compile()

    def test_cannot_extend_after_compile(self):
        builder = QueryBuilder().where(lambda t: True)
        builder.compile()
        with pytest.raises(OperatorError):
            builder.where(lambda t: True)
        with pytest.raises(OperatorError):
            builder.compile()


class TestJoinQueries:
    def test_two_stream_join_query(self):
        def match(left, right):
            return match_probability_band(
                left.distribution("weight"), right.distribution("weight"), tolerance=2.0
            )

        temp_filter = ProbabilisticSelect(
            UncertainPredicate("weight", Comparison.GREATER, 0.0), min_probability=0.0
        )
        query = (
            QueryBuilder("left")
            .where(lambda t: True)
            .join(
                other_source="right",
                other_stages=[temp_filter],
                match_probability=match,
                window_length=100.0,
                min_probability=0.5,
            )
            .compile()
        )
        assert set(query.sources) == {"left", "right"}
        query.push("right", value_tuple(0, 10.0))
        query.push("left", value_tuple(1, 10.2, ts=1.0))
        query.push("left", value_tuple(2, 50.0, ts=2.0))
        results = query.finish()
        assert len(results) == 1
        assert results[0].value("match_probability") > 0.5

    def test_only_one_join_allowed(self):
        builder = QueryBuilder("a").where(lambda t: True)
        builder.join("b", [], lambda l, r: 1.0, window_length=1.0)
        with pytest.raises(OperatorError):
            builder.join("c", [], lambda l, r: 1.0, window_length=1.0)


class TestDeprecationShim:
    def test_builder_warns_and_delegates_to_plan_layer(self):
        from repro.core.query import _reset_deprecation_warning

        _reset_deprecation_warning()
        with pytest.warns(DeprecationWarning, match="repro.plan.Stream"):
            builder = QueryBuilder("in")
        query = builder.aggregate(TumblingCountWindow(2), "weight", strategy=CLTSum()).compile()
        # The legacy surface now compiles through the planner on the
        # tuple path (matching the old per-tuple execution model).
        from repro.plan import CompiledQuery

        assert isinstance(query, CompiledQuery)
        assert query.execution.mode == "tuple"
        query.push_many("in", [value_tuple(i, 10.0) for i in range(2)])
        assert len(query.finish()) == 1

    def test_warning_fires_exactly_once_per_process(self):
        import warnings as warnings_module

        from repro.core.query import _reset_deprecation_warning

        _reset_deprecation_warning()
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            QueryBuilder("a")
            QueryBuilder("b")
            QueryBuilder("c")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.plan.Stream" in str(deprecations[0].message)

    def test_shim_results_match_stream_path(self):
        """The legacy builder and the Stream API agree to 1e-9."""
        from repro.plan import Stream

        items = [
            value_tuple(i, 10.0 + i, group="A" if i % 2 == 0 else "B")
            for i in range(9)
        ]
        legacy = (
            QueryBuilder("in")
            .where(lambda t: t.value("group") == "A")
            .aggregate(TumblingCountWindow(3), "weight", strategy=CLTSum())
            .summarize("sum_weight", confidence=0.9)
            .compile()
        )
        legacy.push_many("in", items)
        legacy_results = legacy.finish()

        fluent = (
            Stream.source("in")
            .where(lambda t: t.value("group") == "A")
            .window(TumblingCountWindow(3))
            .aggregate("weight", strategy=CLTSum())
            .summarize("sum_weight", confidence=0.9)
            .compile(mode="tuple")
        )
        fluent.push_many("in", items)
        fluent_results = fluent.finish()

        # 5 group-A tuples: one full 3-tuple window plus the flushed rest.
        assert len(legacy_results) == len(fluent_results) == 2
        for legacy_tuple, fluent_tuple in zip(legacy_results, fluent_results):
            assert set(legacy_tuple.values) == set(fluent_tuple.values)
            for key, value in legacy_tuple.values.items():
                other = fluent_tuple.values[key]
                if isinstance(value, float):
                    assert other == pytest.approx(value, abs=1e-9)
                else:
                    assert other == value
