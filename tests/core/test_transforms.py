"""Tests for affine transformations of result distributions."""

import pytest

from repro.core import affine_distribution, scale_distribution, shift_distribution
from repro.distributions import (
    Gaussian,
    GaussianMixture,
    HistogramDistribution,
    ParticleDistribution,
    Uniform,
)


DISTRIBUTIONS = [
    Gaussian(2.0, 1.0),
    GaussianMixture([0.5, 0.5], [0.0, 4.0], [1.0, 2.0]),
    Uniform(0.0, 4.0),
    HistogramDistribution([0.0, 1.0, 2.0], [1.0, 3.0]),
    ParticleDistribution([0.0, 1.0, 2.0, 5.0]),
]


@pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=lambda d: type(d).__name__)
class TestShiftScale:
    def test_shift_moves_mean_only(self, dist):
        shifted = shift_distribution(dist, 7.0)
        assert shifted.mean() == pytest.approx(dist.mean() + 7.0, rel=1e-6)
        assert shifted.variance() == pytest.approx(dist.variance(), rel=1e-6)

    def test_scale_scales_mean_and_variance(self, dist):
        scaled = scale_distribution(dist, 3.0)
        assert scaled.mean() == pytest.approx(3.0 * dist.mean(), rel=1e-6)
        assert scaled.variance() == pytest.approx(9.0 * dist.variance(), rel=1e-6)

    def test_negative_scale(self, dist):
        scaled = scale_distribution(dist, -2.0)
        assert scaled.mean() == pytest.approx(-2.0 * dist.mean(), rel=1e-6, abs=1e-9)
        assert scaled.variance() == pytest.approx(4.0 * dist.variance(), rel=1e-6)

    def test_affine_combines_scale_then_shift(self, dist):
        out = affine_distribution(dist, scale=2.0, offset=-1.0)
        assert out.mean() == pytest.approx(2.0 * dist.mean() - 1.0, rel=1e-6, abs=1e-9)

    def test_identity_operations_return_same_object(self, dist):
        assert shift_distribution(dist, 0.0) is dist
        assert scale_distribution(dist, 1.0) is dist


def test_scale_by_zero_rejected():
    with pytest.raises(ValueError):
        scale_distribution(Gaussian(0, 1), 0.0)


def test_unsupported_type_rejected():
    class Fake:
        pass

    with pytest.raises(TypeError):
        shift_distribution(Fake(), 1.0)  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        scale_distribution(Fake(), 2.0)  # type: ignore[arg-type]
