"""Tests for delta-method and Monte-Carlo propagation through complex functions."""

import numpy as np
import pytest

from repro.core import delta_method, monte_carlo_propagation, numerical_gradient
from repro.distributions import DistributionError, Gaussian


class TestNumericalGradient:
    def test_linear_function(self):
        grad = numerical_gradient(lambda x: 2.0 * x[0] - 3.0 * x[1], np.array([1.0, 2.0]))
        assert np.allclose(grad, [2.0, -3.0], atol=1e-6)

    def test_quadratic_function(self):
        grad = numerical_gradient(lambda x: x[0] ** 2 + x[1] ** 3, np.array([2.0, 1.0]))
        assert np.allclose(grad, [4.0, 3.0], atol=1e-4)


class TestDeltaMethod:
    def test_linear_function_is_exact(self):
        inputs = [Gaussian(1.0, 0.5), Gaussian(2.0, 1.0)]
        result = delta_method(lambda x: 3.0 * x[0] + 2.0 * x[1], inputs)
        assert result.mu == pytest.approx(7.0)
        assert result.sigma**2 == pytest.approx(9.0 * 0.25 + 4.0 * 1.0)

    def test_nonlinear_function_close_to_monte_carlo_for_small_spread(self, rng):
        inputs = [Gaussian(4.0, 0.05), Gaussian(2.0, 0.05)]
        fn = lambda x: x[0] * x[1] + np.sin(x[0])
        delta = delta_method(fn, inputs)
        mc = monte_carlo_propagation(fn, inputs, n_samples=40_000, rng=rng)
        assert delta.mu == pytest.approx(mc.mean(), rel=0.01)
        assert delta.sigma**2 == pytest.approx(mc.variance(), rel=0.1)

    def test_single_input_identity(self):
        result = delta_method(lambda x: x[0], [Gaussian(5.0, 2.0)])
        assert result.mu == pytest.approx(5.0)
        assert result.sigma == pytest.approx(2.0, rel=1e-6)

    def test_empty_inputs_rejected(self):
        with pytest.raises(DistributionError):
            delta_method(lambda x: 0.0, [])


class TestMonteCarloPropagation:
    def test_sum_function_matches_analytic(self, rng):
        inputs = [Gaussian(1.0, 1.0), Gaussian(2.0, 2.0)]
        result = monte_carlo_propagation(lambda x: x[0] + x[1], inputs, n_samples=50_000, rng=rng)
        assert result.mean() == pytest.approx(3.0, abs=0.05)
        assert result.variance() == pytest.approx(5.0, rel=0.05)

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError):
            monte_carlo_propagation(lambda x: x[0], [Gaussian(0, 1)], n_samples=4)

    def test_empty_inputs_rejected(self):
        with pytest.raises(DistributionError):
            monte_carlo_propagation(lambda x: 0.0, [])
