"""Property-based tests on the aggregation strategies and HAVING semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CFApproximationSum, CLTSum, HavingClause, max_distribution
from repro.distributions import Gaussian

gaussian_params = st.tuples(
    st.floats(min_value=-500.0, max_value=500.0),
    st.floats(min_value=0.1, max_value=50.0),
)


@given(params=st.lists(gaussian_params, min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_sum_strategies_preserve_exact_moments_for_gaussians(params):
    summands = [Gaussian(mu, sigma) for mu, sigma in params]
    expected_mean = sum(mu for mu, _ in params)
    expected_var = sum(sigma**2 for _, sigma in params)
    for strategy in (CLTSum(), CFApproximationSum()):
        result = strategy.result_distribution(summands)
        assert np.isclose(result.mean(), expected_mean, rtol=1e-9, atol=1e-6)
        assert np.isclose(result.variance(), expected_var, rtol=1e-9, atol=1e-6)


@given(
    params=st.lists(gaussian_params, min_size=1, max_size=8),
    threshold=st.floats(min_value=-500.0, max_value=500.0),
)
@settings(max_examples=50, deadline=None)
def test_having_probability_consistent_with_clause_decision(params, threshold):
    summands = [Gaussian(mu, sigma) for mu, sigma in params]
    result = CLTSum().result_distribution(summands)
    clause = HavingClause(threshold=threshold, min_probability=0.5)
    probability = clause.probability(result)
    assert 0.0 <= probability <= 1.0
    assert clause.accepts(result) == (probability >= 0.5)


@given(params=st.lists(gaussian_params, min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_max_distribution_dominates_every_input_mean(params):
    summands = [Gaussian(mu, sigma) for mu, sigma in params]
    result = max_distribution(summands, n_points=512)
    # E[max(X_1..X_n)] >= max_i E[X_i] for any joint distribution.  The
    # numerical result is a histogram, so allow discretisation slack
    # proportional to its bin width (a fixed 0.5 is too tight when the
    # summand supports span hundreds of units).
    lows, highs = zip(*(d.support() for d in summands))
    bin_width = (max(highs) - min(lows)) / 512
    tolerance = max(0.5, bin_width)
    assert result.mean() >= max(mu for mu, _ in params) - tolerance


@given(
    params=st.lists(gaussian_params, min_size=2, max_size=12),
    confidence=st.floats(min_value=0.5, max_value=0.99),
)
@settings(max_examples=40, deadline=None)
def test_confidence_regions_nest_with_confidence_level(params, confidence):
    summands = [Gaussian(mu, sigma) for mu, sigma in params]
    result = CFApproximationSum().result_distribution(summands)
    narrow = result.confidence_region(confidence * 0.5)
    wide = result.confidence_region(confidence)
    assert wide[0] <= narrow[0] <= narrow[1] <= wide[1]
