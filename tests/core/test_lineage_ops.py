"""Tests for lineage-aware aggregation over correlated intermediate tuples."""

import numpy as np
import pytest

from repro.core import CFApproximationSum, lineage_aware_sum
from repro.distributions import DistributionError, Gaussian
from repro.streams import StreamTuple, TupleArchive


def base_tuple(mean, sigma=1.0):
    return StreamTuple(timestamp=0.0, values={}, uncertain={"v": Gaussian(mean, sigma)})


class TestLineageAwareSum:
    def test_independent_tuples_match_cf_strategy(self):
        archive = TupleArchive()
        tuples = [base_tuple(float(i), 1.0) for i in range(5)]
        archive.archive_many(tuples)
        result = lineage_aware_sum(tuples, "v", archive, rng=1)
        direct = CFApproximationSum().result_distribution([t.distribution("v") for t in tuples])
        assert result.mean() == pytest.approx(direct.mean(), rel=1e-6)
        assert result.variance() == pytest.approx(direct.variance(), rel=1e-6)

    def test_duplicated_base_tuple_doubles_variance_scaling(self):
        # The same base tuple contributes twice through two intermediates:
        # the total is 2X, whose variance is 4 sigma^2, not 2 sigma^2.
        archive = TupleArchive()
        base = base_tuple(10.0, 2.0)
        archive.archive(base)
        intermediate_a = base.derive(values={"path": "a"})
        intermediate_b = base.derive(values={"path": "b"})
        result = lineage_aware_sum(
            [intermediate_a, intermediate_b], "v", archive, n_samples=8000, rng=2
        )
        assert result.mean() == pytest.approx(20.0, rel=0.05)
        assert result.variance() == pytest.approx(16.0, rel=0.15)

    def test_naive_independent_sum_understates_variance(self):
        archive = TupleArchive()
        base = base_tuple(0.0, 3.0)
        archive.archive(base)
        intermediates = [base.derive(values={"k": k}) for k in range(2)]
        correlated = lineage_aware_sum(intermediates, "v", archive, n_samples=8000, rng=3)
        naive = CFApproximationSum().result_distribution(
            [t.distribution("v") for t in intermediates]
        )
        assert correlated.variance() > 1.5 * naive.variance()

    def test_mixed_correlated_and_independent_groups(self):
        archive = TupleArchive()
        shared = base_tuple(1.0, 1.0)
        lone = base_tuple(5.0, 1.0)
        archive.archive_many([shared, lone])
        items = [shared.derive(values={"k": 0}), shared.derive(values={"k": 1}), lone]
        result = lineage_aware_sum(items, "v", archive, n_samples=8000, rng=4)
        assert result.mean() == pytest.approx(2.0 * 1.0 + 5.0, rel=0.05)
        # Var = 4 * 1 (correlated pair) + 1 (independent) = 5.
        assert result.variance() == pytest.approx(5.0, rel=0.2)

    def test_custom_contribution_function(self):
        archive = TupleArchive()
        base = base_tuple(4.0, 0.5)
        archive.archive(base)
        halves = [base.derive(values={"half": i}) for i in range(2)]

        def half_contribution(item, assignment):
            return 0.5 * sum(assignment[b] for b in item.lineage)

        result = lineage_aware_sum(
            halves, "v", archive, contribution=half_contribution, n_samples=8000, rng=5
        )
        assert result.mean() == pytest.approx(4.0, rel=0.05)

    def test_missing_base_tuple_raises(self):
        archive = TupleArchive()
        base = base_tuple(0.0)
        intermediates = [base.derive(values={"k": k}) for k in range(2)]
        with pytest.raises(KeyError):
            lineage_aware_sum(intermediates, "v", archive, rng=6)

    def test_empty_input_rejected(self):
        with pytest.raises(DistributionError):
            lineage_aware_sum([], "v", TupleArchive())
