"""Tests for the probabilistic sliding-window join (query Q2 style)."""

import numpy as np
import pytest

from repro.core import (
    ProbabilisticJoin,
    location_equality_probability,
    match_probability_band,
)
from repro.distributions import Gaussian, MultivariateGaussian, Uniform
from repro.streams import StreamTuple
from repro.streams.operators.base import OperatorError


def located_tuple(ts, x, y, sigma=0.5, **values):
    return StreamTuple(
        timestamp=ts,
        values=values,
        uncertain={"x": Gaussian(x, sigma), "y": Gaussian(y, sigma)},
    )


class TestMatchProbabilities:
    def test_identical_gaussians_match_with_high_probability(self):
        a = Gaussian(0.0, 0.1)
        assert match_probability_band(a, Gaussian(0.0, 0.1), tolerance=1.0) > 0.99

    def test_distant_gaussians_do_not_match(self):
        assert match_probability_band(Gaussian(0.0, 0.5), Gaussian(50.0, 0.5), 1.0) < 1e-6

    def test_tolerance_grows_probability(self):
        a, b = Gaussian(0.0, 1.0), Gaussian(2.0, 1.0)
        assert match_probability_band(a, b, 0.5) < match_probability_band(a, b, 3.0)

    def test_monte_carlo_fallback_close_to_gaussian_closed_form(self, rng):
        a, b = Gaussian(0.0, 1.0), Gaussian(1.0, 1.0)
        exact = match_probability_band(a, b, 1.0)
        approx = match_probability_band(Uniform(-3, 3), b, 1.0, n_samples=20_000, rng=rng)
        # Not the same distributions, just check the fallback returns a sane probability.
        assert 0.0 <= approx <= 1.0
        assert exact == pytest.approx(0.5, abs=0.2)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            match_probability_band(Gaussian(0, 1), Gaussian(0, 1), -0.1)

    def test_multivariate_location_equality(self):
        a = MultivariateGaussian([0.0, 0.0], [[0.01, 0.0], [0.0, 0.01]])
        b = MultivariateGaussian([0.1, 0.1], [[0.01, 0.0], [0.0, 0.01]])
        far = MultivariateGaussian([30.0, 30.0], [[0.01, 0.0], [0.0, 0.01]])
        assert location_equality_probability(a, b, tolerance=1.0) > 0.95
        assert location_equality_probability(a, far, tolerance=1.0) < 1e-6


def location_match(left, right, tolerance=2.0):
    px = match_probability_band(left.distribution("x"), right.distribution("x"), tolerance)
    py = match_probability_band(left.distribution("y"), right.distribution("y"), tolerance)
    return px * py


class TestProbabilisticJoin:
    def make_join(self, min_probability=0.3, window_length=3.0):
        return ProbabilisticJoin(
            window_length=window_length,
            match_probability=location_match,
            min_probability=min_probability,
        )

    def test_matching_pair_is_emitted_with_probability(self):
        join = self.make_join()
        left_port, right_port = join.left_port(), join.right_port()
        right_port.accept(located_tuple(0.0, 10.0, 10.0, sensor="T1"))
        outputs = left_port.accept(located_tuple(0.5, 10.2, 9.9, tag_id="O1"))
        assert len(outputs) == 1
        out = outputs[0]
        assert out.value("match_probability") > 0.5
        assert out.value("left_tag_id") == "O1"
        assert out.value("right_sensor") == "T1"

    def test_non_matching_pair_suppressed(self):
        join = self.make_join()
        join.right_port().accept(located_tuple(0.0, 50.0, 50.0))
        assert join.left_port().accept(located_tuple(0.1, 0.0, 0.0)) == []

    def test_window_expiry(self):
        join = self.make_join(window_length=1.0)
        join.right_port().accept(located_tuple(0.0, 0.0, 0.0))
        # Too late: the right tuple is outside the 1 s window.
        assert join.left_port().accept(located_tuple(5.0, 0.0, 0.0)) == []
        # The stale right tuple has been expired from its window.
        assert join.window_sizes() == (1, 0)

    def test_symmetric_matching_from_either_side(self):
        join = self.make_join()
        join.left_port().accept(located_tuple(0.0, 1.0, 1.0, tag_id="O1"))
        outputs = join.right_port().accept(located_tuple(0.2, 1.0, 1.0, sensor="T9"))
        assert len(outputs) == 1
        assert outputs[0].value("left_tag_id") == "O1"

    def test_one_to_many_matches(self):
        join = self.make_join()
        for i in range(3):
            join.right_port().accept(located_tuple(0.1 * i, 0.0, 0.0, sensor=f"T{i}"))
        outputs = join.left_port().accept(located_tuple(0.5, 0.0, 0.0, tag_id="O1"))
        assert len(outputs) == 3

    def test_lineage_union_in_outputs(self):
        join = self.make_join()
        right = located_tuple(0.0, 0.0, 0.0, sensor="T1")
        left = located_tuple(0.1, 0.0, 0.0, tag_id="O1")
        join.right_port().accept(right)
        out = join.left_port().accept(left)[0]
        assert right.lineage <= out.lineage
        assert left.lineage <= out.lineage

    def test_ports_cannot_be_connected_downstream(self):
        join = self.make_join()
        with pytest.raises(OperatorError):
            join.left_port().connect(join)

    def test_invalid_parameters(self):
        with pytest.raises(OperatorError):
            ProbabilisticJoin(window_length=0.0, match_probability=location_match)
        with pytest.raises(OperatorError):
            ProbabilisticJoin(
                window_length=1.0, match_probability=location_match, min_probability=2.0
            )
