"""Tests for existence-probability-aware aggregation."""

import numpy as np
import pytest

from repro.core import (
    WeightedContribution,
    existence_aware_sum,
    existence_aware_sum_exact,
)
from repro.distributions import DistributionError, Gaussian


class TestCLTForm:
    def test_certain_contributions_reduce_to_plain_sum(self):
        contributions = [
            WeightedContribution(Gaussian(10.0, 1.0), 1.0),
            WeightedContribution(Gaussian(5.0, 2.0), 1.0),
        ]
        total = existence_aware_sum(contributions)
        assert total.mu == pytest.approx(15.0)
        assert total.variance() == pytest.approx(5.0)

    def test_deterministic_values_accepted(self):
        contributions = [WeightedContribution(20.0, 0.5), WeightedContribution(10.0, 1.0)]
        total = existence_aware_sum(contributions)
        assert total.mu == pytest.approx(20.0)
        assert total.variance() == pytest.approx(0.5 * 0.5 * 400.0)

    def test_moments_match_monte_carlo(self, rng):
        contributions = [
            WeightedContribution(Gaussian(float(m), 1.0 + 0.1 * i), float(p))
            for i, (m, p) in enumerate(zip(rng.uniform(0, 20, 10), rng.uniform(0.1, 0.9, 10)))
        ]
        total = existence_aware_sum(contributions)
        draws = np.zeros(100_000)
        for c in contributions:
            included = rng.random(100_000) < c.probability
            draws += included * rng.normal(c.value.mu, c.value.sigma, 100_000)
        assert total.mu == pytest.approx(draws.mean(), rel=0.02)
        assert total.variance() == pytest.approx(draws.var(), rel=0.05)

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            existence_aware_sum([])

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            WeightedContribution(1.0, 1.5)


class TestExactForm:
    def test_exact_matches_clt_moments(self):
        contributions = [
            WeightedContribution(Gaussian(10.0, 1.0), 0.7),
            WeightedContribution(Gaussian(-4.0, 0.5), 0.3),
            WeightedContribution(5.0, 0.9),
        ]
        exact = existence_aware_sum_exact(contributions)
        clt = existence_aware_sum(contributions)
        assert exact.mean() == pytest.approx(clt.mu, rel=1e-9)
        assert exact.variance() == pytest.approx(clt.variance(), rel=1e-9)

    def test_exact_is_multimodal_for_large_rare_contribution(self):
        contributions = [
            WeightedContribution(Gaussian(0.0, 0.5), 1.0),
            WeightedContribution(Gaussian(100.0, 0.5), 0.5),
        ]
        exact = existence_aware_sum_exact(contributions)
        # Two clearly separated humps: near 0 and near 100.
        assert exact.pdf(0.0) > 0.1
        assert exact.pdf(100.0) > 0.1
        assert exact.pdf(50.0) < 1e-6

    def test_contributor_cap_enforced(self):
        contributions = [WeightedContribution(1.0, 0.5) for _ in range(20)]
        with pytest.raises(DistributionError):
            existence_aware_sum_exact(contributions, max_contributors=12)
