"""Tests for the T-operator base class and compression policies."""

import numpy as np
import pytest

from repro.core import CompressionPolicy, TransformOperator
from repro.distributions import Gaussian, GaussianMixture, ParticleDistribution
from repro.streams import StreamTuple


class DoublingTransform(TransformOperator):
    """Toy T operator: raw value -> tuple with a Gaussian around 2x the value."""

    def transform(self, observation, timestamp):
        yield StreamTuple(
            timestamp=timestamp,
            values={"raw": observation},
            uncertain={"value": Gaussian(2.0 * observation, 1.0)},
        )


class TestCompressionPolicy:
    def test_gaussian_mode(self, rng):
        particles = ParticleDistribution(rng.normal(5.0, 1.0, size=300))
        policy = CompressionPolicy(mode="gaussian")
        out = policy.compress(particles)
        assert isinstance(out, Gaussian)
        assert out.mu == pytest.approx(particles.mean())

    def test_particles_mode_passthrough(self, rng):
        particles = ParticleDistribution(rng.normal(size=50))
        assert CompressionPolicy(mode="particles").compress(particles) is particles

    def test_mixture_mode_on_bimodal_cloud(self, rng):
        values = np.concatenate([rng.normal(0, 0.3, 200), rng.normal(10, 0.3, 200)])
        particles = ParticleDistribution(values)
        out = CompressionPolicy(mode="mixture", max_components=3).compress(particles, rng=rng)
        assert isinstance(out, (Gaussian, GaussianMixture))
        assert out.mean() == pytest.approx(particles.mean(), abs=0.3)

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError):
            CompressionPolicy(mode="wavelet")
        with pytest.raises(ValueError):
            CompressionPolicy(max_components=0)
        with pytest.raises(ValueError):
            CompressionPolicy(criterion="xic")


class TestTransformOperator:
    def test_ingest_produces_tuples_with_distributions(self):
        op = DoublingTransform()
        outputs = list(op.ingest(3.0, timestamp=1.5))
        assert len(outputs) == 1
        assert outputs[0].timestamp == 1.5
        assert outputs[0].distribution("value").mu == pytest.approx(6.0)
        assert op.tuples_out == 1

    def test_process_unwraps_raw_attribute(self):
        op = DoublingTransform()
        wrapped = StreamTuple(timestamp=2.0, values={"raw": 5.0})
        outputs = op.accept(wrapped)
        assert outputs[0].distribution("value").mu == pytest.approx(10.0)
