"""Tests for order-statistics MAX/MIN result distributions."""

import numpy as np
import pytest

from repro.core import max_distribution, min_distribution
from repro.distributions import DistributionError, Gaussian, Uniform


class TestMaxDistribution:
    def test_single_input_returns_same_distribution(self):
        g = Gaussian(2.0, 1.0)
        result = max_distribution([g])
        assert result.mean() == pytest.approx(2.0, abs=0.02)
        assert result.variance() == pytest.approx(1.0, rel=0.05)

    def test_max_of_iid_uniforms_matches_theory(self):
        # Max of two U(0,1) has mean 2/3 and cdf x^2.
        result = max_distribution([Uniform(0, 1), Uniform(0, 1)], n_points=4096)
        assert result.mean() == pytest.approx(2.0 / 3.0, abs=0.01)
        assert result.cdf(0.5) == pytest.approx(0.25, abs=0.02)

    def test_max_of_separated_gaussians_tracks_larger(self):
        result = max_distribution([Gaussian(0.0, 1.0), Gaussian(20.0, 1.0)])
        assert result.mean() == pytest.approx(20.0, abs=0.1)

    def test_max_of_iid_gaussians_exceeds_common_mean(self, rng):
        dists = [Gaussian(0.0, 1.0) for _ in range(5)]
        result = max_distribution(dists)
        samples = rng.normal(0.0, 1.0, size=(50_000, 5)).max(axis=1)
        assert result.mean() == pytest.approx(samples.mean(), abs=0.05)

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            max_distribution([])


class TestMinDistribution:
    def test_min_of_iid_uniforms_matches_theory(self):
        result = min_distribution([Uniform(0, 1), Uniform(0, 1)], n_points=4096)
        assert result.mean() == pytest.approx(1.0 / 3.0, abs=0.01)

    def test_min_of_separated_gaussians_tracks_smaller(self):
        result = min_distribution([Gaussian(0.0, 1.0), Gaussian(20.0, 1.0)])
        assert result.mean() == pytest.approx(0.0, abs=0.1)

    def test_min_max_symmetry_for_symmetric_inputs(self):
        dists = [Gaussian(0.0, 1.0) for _ in range(3)]
        mx = max_distribution(dists)
        mn = min_distribution(dists)
        assert mx.mean() == pytest.approx(-mn.mean(), abs=0.05)

    def test_empty_rejected(self):
        with pytest.raises(DistributionError):
            min_distribution([])
