"""Cross-validation: the particle filter against the exact Kalman filter.

On a linear-Gaussian state-space model the Kalman filter computes the
exact posterior, so a correctly implemented bootstrap particle filter
must converge to the same posterior mean and a comparable variance.
This guards the particle-filter machinery that the RFID T operator
depends on.
"""

import numpy as np
import pytest

from repro.inference import KalmanFilter, ParticleFilter
from repro.inference.graphical_model import ObservationModel, StateSpaceModel, TransitionModel


class _RandomWalk1D(TransitionModel):
    def __init__(self, sigma: float):
        self.sigma = sigma

    def propagate(self, states, dt, rng):
        return states + rng.normal(0.0, self.sigma * np.sqrt(dt), size=states.shape)


class _NoisyPosition1D(ObservationModel):
    def __init__(self, sigma: float):
        self.sigma = sigma

    def likelihood(self, states, observation):
        z = (states[:, 0] - float(observation)) / self.sigma
        return np.exp(-0.5 * z * z) / (self.sigma * np.sqrt(2 * np.pi))


def build_models(process_sigma=0.5, obs_sigma=1.0, prior_mean=0.0, prior_sigma=5.0):
    def prior(n, rng):
        return rng.normal(prior_mean, prior_sigma, size=(n, 1))

    pf_model = StateSpaceModel(
        transition=_RandomWalk1D(process_sigma),
        observation=_NoisyPosition1D(obs_sigma),
        prior_sampler=prior,
        state_dim=1,
    )
    kf = KalmanFilter(
        transition=[[1.0]],
        observation=[[1.0]],
        process_noise=[[process_sigma**2]],
        observation_noise=[[obs_sigma**2]],
        initial_mean=[prior_mean],
        initial_covariance=[[prior_sigma**2]],
    )
    return pf_model, kf


class TestParticleFilterAgainstKalman:
    def test_posterior_mean_matches_kalman(self, rng):
        pf_model, kf = build_models()
        pf = ParticleFilter(pf_model, n_particles=4000, rng=rng)
        truth = 0.0
        true_rng = np.random.default_rng(77)
        for _ in range(25):
            truth += true_rng.normal(0.0, 0.5)
            measurement = truth + true_rng.normal(0.0, 1.0)
            pf.predict(1.0)
            pf.update(measurement)
            kf.step([measurement])
        assert float(pf.estimate()[0]) == pytest.approx(float(kf.mean[0]), abs=0.15)

    def test_posterior_variance_comparable_to_kalman(self, rng):
        pf_model, kf = build_models()
        pf = ParticleFilter(pf_model, n_particles=4000, rng=rng)
        true_rng = np.random.default_rng(88)
        truth = 0.0
        for _ in range(25):
            truth += true_rng.normal(0.0, 0.5)
            measurement = truth + true_rng.normal(0.0, 1.0)
            pf.predict(1.0)
            pf.update(measurement)
            kf.step([measurement])
        pf_var = float(pf.marginal(0).variance())
        kf_var = float(kf.covariance[0, 0])
        assert pf_var == pytest.approx(kf_var, rel=0.35)

    def test_more_particles_track_kalman_better(self, rng_factory):
        pf_model, _ = build_models()
        true_rng = np.random.default_rng(99)
        truth_path = np.cumsum(true_rng.normal(0.0, 0.5, size=30))
        measurements = truth_path + true_rng.normal(0.0, 1.0, size=30)

        def final_gap(n_particles, seed):
            _, kf = build_models()
            pf = ParticleFilter(pf_model, n_particles=n_particles, rng=rng_factory(seed))
            for z in measurements:
                pf.predict(1.0)
                pf.update(float(z))
                kf.step([float(z)])
            return abs(float(pf.estimate()[0]) - float(kf.mean[0]))

        coarse = np.mean([final_gap(50, s) for s in range(5)])
        fine = np.mean([final_gap(2000, s + 10) for s in range(5)])
        assert fine <= coarse + 0.05
