"""Tests for the factor-graph description of the data generation process."""

import numpy as np
import pytest

from repro.inference import Factor, FactorGraph, StateSpaceModel
from repro.rfid import build_object_model


class TestFactorGraph:
    def build_rfid_like_graph(self):
        graph = FactorGraph()
        graph.add_variable("loc_O1", "hidden")
        graph.add_variable("loc_O2", "hidden")
        graph.add_variable("reading_O1", "evidence")
        graph.add_variable("reading_O2", "evidence")
        graph.add_factor(
            Factor("sense_O1", ("loc_O1", "reading_O1"), lambda a: -float(a["loc_O1"][0] ** 2))
        )
        graph.add_factor(
            Factor("sense_O2", ("loc_O2", "reading_O2"), lambda a: -float(a["loc_O2"][0] ** 2))
        )
        return graph

    def test_variable_declaration_and_kinds(self):
        graph = self.build_rfid_like_graph()
        assert set(graph.hidden_variables()) == {"loc_O1", "loc_O2"}
        assert set(graph.evidence_variables()) == {"reading_O1", "reading_O2"}

    def test_duplicate_variable_rejected(self):
        graph = FactorGraph()
        graph.add_variable("x")
        with pytest.raises(ValueError):
            graph.add_variable("x")

    def test_factor_over_undeclared_variable_rejected(self):
        graph = FactorGraph()
        graph.add_variable("x")
        with pytest.raises(ValueError):
            graph.add_factor(Factor("bad", ("x", "y"), lambda a: 0.0))

    def test_log_joint_is_sum_of_factors(self):
        graph = self.build_rfid_like_graph()
        assignment = {
            "loc_O1": np.array([2.0]),
            "loc_O2": np.array([3.0]),
            "reading_O1": np.array([1.0]),
            "reading_O2": np.array([0.0]),
        }
        assert graph.log_joint(assignment) == pytest.approx(-(4.0 + 9.0))

    def test_markov_blanket(self):
        graph = self.build_rfid_like_graph()
        assert graph.markov_blanket("loc_O1") == ["reading_O1"]

    def test_independent_components_justify_factorisation(self):
        # Objects whose factors never share variables can be tracked by
        # independent particle filters (the factorisation optimisation).
        graph = self.build_rfid_like_graph()
        components = graph.independent_components()
        assert sorted(map(tuple, components)) == [("loc_O1",), ("loc_O2",)]

    def test_shared_factor_merges_components(self):
        graph = self.build_rfid_like_graph()
        graph.add_factor(
            Factor("collision", ("loc_O1", "loc_O2"), lambda a: 0.0)
        )
        components = graph.independent_components()
        assert len(components) == 1

    def test_missing_assignment_raises(self):
        graph = self.build_rfid_like_graph()
        with pytest.raises(KeyError):
            graph.log_joint({"loc_O1": np.array([0.0])})


class TestStateSpaceModel:
    def test_prior_shape_validated(self):
        model = build_object_model((0.0, 0.0, 10.0, 10.0))
        rng = np.random.default_rng(0)
        prior = model.sample_prior(64, rng)
        assert prior.shape == (64, 2)
        assert prior[:, 0].min() >= 0.0
        assert prior[:, 0].max() <= 10.0

    def test_bad_prior_sampler_rejected(self):
        model = StateSpaceModel(
            transition=build_object_model((0, 0, 1, 1)).transition,
            observation=build_object_model((0, 0, 1, 1)).observation,
            prior_sampler=lambda n, rng: np.zeros((n, 3)),
            state_dim=2,
        )
        with pytest.raises(ValueError):
            model.sample_prior(5, np.random.default_rng(0))
