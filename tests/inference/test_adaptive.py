"""Tests for the speed/accuracy feedback controller (Section 4.2)."""

import pytest

from repro.inference import ParticleCountController, ReferenceAccuracyMonitor


class TestReferenceAccuracyMonitor:
    def test_records_errors_against_known_positions(self):
        monitor = ReferenceAccuracyMonitor({"S1": (0.0, 0.0), "S2": (10.0, 0.0)})
        assert monitor.current_error() is None
        error = monitor.record_estimate("S1", (3.0, 4.0))
        assert error == pytest.approx(5.0)
        monitor.record_estimate("S2", (10.0, 1.0))
        assert monitor.current_error() == pytest.approx(3.0)

    def test_windowed_average(self):
        monitor = ReferenceAccuracyMonitor({"S1": (0.0, 0.0)}, window=2)
        monitor.record_estimate("S1", (10.0, 0.0))
        monitor.record_estimate("S1", (2.0, 0.0))
        monitor.record_estimate("S1", (4.0, 0.0))
        assert monitor.current_error() == pytest.approx(3.0)

    def test_unknown_reference_rejected(self):
        monitor = ReferenceAccuracyMonitor({"S1": (0.0, 0.0)})
        with pytest.raises(KeyError):
            monitor.record_estimate("S9", (0.0, 0.0))

    def test_requires_references(self):
        with pytest.raises(ValueError):
            ReferenceAccuracyMonitor({})


class TestParticleCountController:
    def test_doubles_until_accuracy_met(self):
        controller = ParticleCountController(target_error=1.0, initial_count=25)
        assert controller.count == 25
        controller.observe(5.0)
        assert controller.count == 50
        controller.observe(3.0)
        assert controller.count == 100
        assert controller.phase == "doubling"

    def test_decreases_by_constant_after_meeting_target(self):
        controller = ParticleCountController(target_error=1.0, initial_count=25, decrease_step=10)
        controller.observe(2.0)   # -> 50
        controller.observe(0.5)   # met at 50 -> switch to decreasing
        assert controller.phase == "decreasing"
        controller.observe(0.5)   # 50 met -> try 40
        assert controller.count == 40
        controller.observe(0.5)   # 40 met -> try 30
        assert controller.count == 30

    def test_settles_on_smallest_sufficient_count(self):
        controller = ParticleCountController(target_error=1.0, initial_count=40, decrease_step=10)
        controller.observe(0.5)   # met at 40 -> decreasing
        controller.observe(0.5)   # 40 good -> 30
        controller.observe(0.5)   # 30 good -> 20
        controller.observe(2.0)   # 20 too few -> back to 30, settled
        assert controller.count == 30
        assert controller.phase == "settled"
        # Further observations leave the settled count unchanged.
        controller.observe(5.0)
        assert controller.count == 30

    def test_respects_max_count(self):
        controller = ParticleCountController(target_error=0.001, initial_count=100, max_count=400)
        controller.observe(10.0)
        controller.observe(10.0)
        controller.observe(10.0)
        assert controller.count <= 400

    def test_none_measurement_is_ignored(self):
        controller = ParticleCountController(target_error=1.0)
        before = controller.count
        controller.observe(None)
        assert controller.count == before

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            ParticleCountController(target_error=0.0)
        with pytest.raises(ValueError):
            ParticleCountController(target_error=1.0, initial_count=5, min_count=10)
        with pytest.raises(ValueError):
            ParticleCountController(target_error=1.0, decrease_step=0)
