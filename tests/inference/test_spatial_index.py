"""Tests for the grid-based spatial index."""

import numpy as np
import pytest

from repro.inference import GridIndex


class TestGridIndex:
    def test_insert_and_query(self):
        index = GridIndex(cell_size=10.0)
        index.update("a", 5.0, 5.0)
        index.update("b", 55.0, 5.0)
        nearby = index.query_radius(6.0, 6.0, 5.0)
        assert "a" in nearby
        assert "b" not in nearby

    def test_query_is_conservative_superset(self, rng):
        index = GridIndex(cell_size=5.0)
        positions = {}
        for i in range(200):
            x, y = rng.uniform(0, 100, size=2)
            positions[i] = (x, y)
            index.update(i, x, y)
        cx, cy, radius = 40.0, 60.0, 12.0
        candidates = set(index.query_radius(cx, cy, radius))
        truly_inside = {
            i for i, (x, y) in positions.items() if np.hypot(x - cx, y - cy) <= radius
        }
        assert truly_inside <= candidates

    def test_moving_an_object_updates_its_cell(self):
        index = GridIndex(cell_size=1.0)
        index.update("obj", 0.5, 0.5)
        index.update("obj", 99.5, 99.5)
        assert "obj" not in index.query_radius(0.5, 0.5, 2.0)
        assert "obj" in index.query_radius(99.0, 99.0, 2.0)
        assert len(index) == 1

    def test_remove(self):
        index = GridIndex(cell_size=2.0)
        index.update("x", 1.0, 1.0)
        index.remove("x")
        assert "x" not in index
        assert index.query_radius(1.0, 1.0, 5.0) == []
        index.remove("x")  # idempotent

    def test_negative_coordinates_supported(self):
        index = GridIndex(cell_size=3.0)
        index.update("neg", -10.0, -20.0)
        assert "neg" in index.query_radius(-10.0, -20.0, 1.0)

    def test_cell_count(self):
        index = GridIndex(cell_size=10.0)
        index.update("a", 1.0, 1.0)
        index.update("b", 2.0, 2.0)
        index.update("c", 55.0, 55.0)
        assert index.cell_count() == 2
        assert set(index.all_objects()) == {"a", "b", "c"}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GridIndex(0.0)
        index = GridIndex(1.0)
        with pytest.raises(ValueError):
            index.query_radius(0, 0, -1.0)
