"""Tests for resampling schemes and effective sample size."""

import numpy as np
import pytest

from repro.distributions import DistributionError
from repro.inference import (
    effective_sample_size,
    multinomial_resample,
    residual_resample,
    stratified_resample,
    systematic_resample,
)

SCHEMES = [systematic_resample, stratified_resample, multinomial_resample, residual_resample]


class TestEffectiveSampleSize:
    def test_uniform_weights_give_full_ess(self):
        assert effective_sample_size(np.full(50, 0.02)) == pytest.approx(50.0)

    def test_degenerate_weights_give_ess_one(self):
        weights = np.zeros(10)
        weights[3] = 1.0
        assert effective_sample_size(weights) == pytest.approx(1.0)

    def test_unnormalised_weights_accepted(self):
        assert effective_sample_size(np.array([2.0, 2.0, 2.0, 2.0])) == pytest.approx(4.0)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(DistributionError):
            effective_sample_size(np.zeros(5))


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda f: f.__name__)
class TestResamplingSchemes:
    def test_returns_requested_count_of_valid_indices(self, scheme, rng):
        weights = rng.random(40)
        idx = scheme(weights, 25, rng)
        assert idx.shape == (25,)
        assert idx.min() >= 0
        assert idx.max() < 40

    def test_heavy_weight_dominates(self, scheme, rng):
        weights = np.full(20, 0.001)
        weights[7] = 1.0
        idx = scheme(weights, 1000, rng)
        assert np.mean(idx == 7) > 0.9

    def test_frequencies_proportional_to_weights(self, scheme, rng):
        weights = np.array([0.1, 0.2, 0.3, 0.4])
        idx = scheme(weights, 40_000, rng)
        freq = np.bincount(idx, minlength=4) / 40_000
        assert np.allclose(freq, weights, atol=0.02)

    def test_invalid_count_rejected(self, scheme, rng):
        with pytest.raises(ValueError):
            scheme(np.array([0.5, 0.5]), 0, rng)
