"""Tests for the particle filter and its stream-speed optimisations."""

import numpy as np
import pytest

from repro.inference import (
    CompressionConfig,
    FactorizedParticleFilter,
    JointParticleFilter,
    ParticleFilter,
)
from repro.rfid import DetectionModel, DetectionObservation, build_object_model

BOUNDS = (0.0, 0.0, 50.0, 30.0)


def make_model(detection=None):
    return build_object_model(BOUNDS, detection=detection, walk_sigma=0.1, jump_rate=0.0)


def observe_from(x, y, true_position, detection, rng):
    """Simulate whether a reader at (x, y) detects an object at true_position."""
    distance = float(np.hypot(true_position[0] - x, true_position[1] - y))
    detected = rng.random() < detection.probability(distance)
    return DetectionObservation(reader_x=x, reader_y=y, detected=detected)


class TestParticleFilter:
    def test_prior_particles_cover_the_area(self, rng):
        pf = ParticleFilter(make_model(), n_particles=200, rng=rng)
        assert pf.particles.shape == (200, 2)
        assert pf.particles[:, 0].min() >= BOUNDS[0]
        assert pf.particles[:, 0].max() <= BOUNDS[2]

    def test_repeated_detections_concentrate_particles_near_truth(self, rng):
        detection = DetectionModel(midpoint=8.0, steepness=0.8, max_rate=0.95)
        pf = ParticleFilter(make_model(detection), n_particles=400, rng=rng)
        truth = np.array([20.0, 15.0])
        # Readings from several vantage points around the object.
        for reader_x, reader_y in [(15, 15), (25, 15), (20, 10), (20, 20), (18, 17), (22, 13)]:
            pf.predict(0.5)
            pf.update(observe_from(reader_x, reader_y, truth, detection, rng))
        error = np.linalg.norm(pf.estimate() - truth)
        assert error < 6.0
        assert float(np.max(pf.spread())) < 12.0

    def test_non_detections_push_particles_away(self, rng):
        detection = DetectionModel(midpoint=10.0, steepness=0.9, max_rate=0.95)
        pf = ParticleFilter(make_model(detection), n_particles=400, rng=rng)
        # Repeated confident misses from a corner reader: the object is
        # unlikely to be near that corner.
        for _ in range(6):
            pf.predict(0.5)
            pf.update(DetectionObservation(reader_x=0.0, reader_y=0.0, detected=False))
        assert np.linalg.norm(pf.estimate()) > 12.0

    def test_update_returns_evidence_and_handles_zero_likelihood(self, rng):
        pf = ParticleFilter(make_model(), n_particles=50, rng=rng)

        class ZeroObservation:
            pass

        # Patch a model whose likelihood is all zeros via a conflicting observation.
        evidence = pf.update(DetectionObservation(0.0, 0.0, detected=True))
        assert evidence >= 0.0
        # Weights stay a valid simplex even under harsh evidence.
        assert pf.weights.sum() == pytest.approx(1.0)

    def test_resample_to_specific_size(self, rng):
        pf = ParticleFilter(make_model(), n_particles=128, rng=rng)
        pf.set_particle_count(32)
        assert pf.n_particles == 32
        pf.set_particle_count(256)
        assert pf.n_particles == 256

    def test_marginal_and_posterior_gaussian(self, rng):
        pf = ParticleFilter(make_model(), n_particles=100, rng=rng)
        marginal = pf.marginal(0)
        assert marginal.n_particles == 100
        posterior = pf.posterior_gaussian()
        assert posterior.ndim == 2

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            ParticleFilter(make_model(), n_particles=1)
        pf = ParticleFilter(make_model(), n_particles=10, rng=rng)
        with pytest.raises(ValueError):
            pf.predict(-1.0)


class TestFactorizedParticleFilter:
    def make_filter(self, rng, **kwargs):
        fpf = FactorizedParticleFilter(n_particles=60, rng=rng, **kwargs)
        model = make_model()
        for i in range(5):
            fpf.add_variable(f"O{i}", model)
        return fpf

    def test_tracks_independent_variables(self, rng):
        fpf = self.make_filter(rng)
        assert len(fpf) == 5
        assert fpf.total_particles() == 5 * 60
        assert fpf.estimate("O0").shape == (2,)

    def test_duplicate_variable_rejected(self, rng):
        fpf = self.make_filter(rng)
        with pytest.raises(ValueError):
            fpf.add_variable("O0", make_model())

    def test_spatial_index_limits_candidates(self, rng):
        fpf = FactorizedParticleFilter(
            n_particles=40, use_spatial_index=True, index_cell_size=5.0, rng=rng
        )
        model = make_model()
        for i in range(10):
            fpf.add_variable(f"O{i}", model)
        # Candidate list with a region is no larger than the full list.
        region = (10.0, 10.0, 5.0)
        assert len(fpf.candidates(region)) <= len(fpf.candidates(None))

    def test_step_updates_only_candidates(self, rng):
        fpf = self.make_filter(rng, use_spatial_index=False)
        processed = fpf.step(
            dt=0.5,
            observation_for=lambda var_id: DetectionObservation(5.0, 5.0, detected=False),
            region=None,
        )
        assert set(processed) == {f"O{i}" for i in range(5)}
        assert fpf.updates_performed == 5

    def test_compression_shrinks_stable_clouds(self, rng):
        detection = DetectionModel(midpoint=8.0, steepness=1.0, max_rate=0.95)
        config = CompressionConfig(
            stability_threshold=3.0, compressed_count=10, expansion_threshold=8.0
        )
        fpf = FactorizedParticleFilter(
            n_particles=120, compression=config, use_spatial_index=False, rng=rng
        )
        fpf.add_variable("O0", build_object_model(BOUNDS, detection=detection, walk_sigma=0.05, jump_rate=0.0))
        truth = np.array([20.0, 15.0])
        for reader in [(15, 15), (25, 15), (20, 10), (20, 20), (18, 16), (22, 14), (19, 15), (21, 15)]:
            fpf.step(
                dt=0.2,
                observation_for=lambda _vid: observe_from(reader[0], reader[1], truth, detection, rng),
                region=None,
            )
        assert fpf.filter_for("O0").n_particles <= 120
        # If the cloud stabilised it must have been compressed to 10.
        if float(np.max(fpf.filter_for("O0").spread())) < 3.0:
            assert fpf.filter_for("O0").n_particles == 10

    def test_compression_config_validation(self):
        with pytest.raises(ValueError):
            CompressionConfig(stability_threshold=0.0)
        with pytest.raises(ValueError):
            CompressionConfig(compressed_count=1)
        with pytest.raises(ValueError):
            CompressionConfig(stability_threshold=2.0, expansion_threshold=1.0)


class TestJointParticleFilter:
    def test_joint_filter_tracks_all_variables_per_event(self, rng):
        jpf = JointParticleFilter(n_particles=100, rng=rng)
        model = make_model()
        for i in range(3):
            jpf.add_variable(f"O{i}", model)
        processed = jpf.step(
            dt=0.5,
            observation_for=lambda var_id: DetectionObservation(5.0, 5.0, detected=False),
        )
        assert processed == ["O0", "O1", "O2"]
        assert jpf.estimate("O1").shape == (2,)

    def test_factorized_beats_joint_accuracy_with_equal_budget(self, rng):
        # With the same total particle budget, the factorised filter assigns
        # all of it to each variable's own space and localises better.
        detection = DetectionModel(midpoint=8.0, steepness=0.8, max_rate=0.9)
        model = build_object_model(BOUNDS, detection=detection, walk_sigma=0.05, jump_rate=0.0)
        truths = {f"O{i}": np.array([10.0 + 10.0 * i, 15.0]) for i in range(3)}

        def run(filter_obj):
            reader_points = [(8, 15), (18, 15), (28, 15), (12, 12), (22, 18), (30, 14)] * 3
            for rx, ry in reader_points:
                filter_obj.step(
                    dt=0.2,
                    observation_for=lambda vid: observe_from(rx, ry, truths[vid], detection, rng),
                    region=None,
                )
            return np.mean(
                [np.linalg.norm(filter_obj.estimate(vid) - truths[vid]) for vid in truths]
            )

        factorized = FactorizedParticleFilter(n_particles=90, use_spatial_index=False, rng=rng)
        joint = JointParticleFilter(n_particles=90, rng=np.random.default_rng(999))
        for vid in truths:
            factorized.add_variable(vid, model)
            joint.add_variable(vid, model)
        assert run(factorized) <= run(joint) + 2.0
