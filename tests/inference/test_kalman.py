"""Tests for the Kalman-filter baseline."""

import numpy as np
import pytest

from repro.inference import KalmanFilter


def scalar_filter(q=0.01, r=1.0):
    return KalmanFilter(
        transition=[[1.0]],
        observation=[[1.0]],
        process_noise=[[q]],
        observation_noise=[[r]],
        initial_mean=[0.0],
        initial_covariance=[[10.0]],
    )


class TestKalmanFilter:
    def test_update_moves_mean_towards_measurement(self):
        kf = scalar_filter()
        kf.step([5.0])
        assert 0.0 < kf.mean[0] <= 5.0

    def test_variance_shrinks_with_measurements(self):
        kf = scalar_filter()
        initial_var = kf.covariance[0, 0]
        for _ in range(10):
            kf.step([1.0])
        assert kf.covariance[0, 0] < initial_var

    def test_tracks_constant_signal(self, rng):
        kf = scalar_filter(q=1e-6, r=0.5)
        truth = 3.0
        for _ in range(200):
            kf.step([truth + rng.normal(0, np.sqrt(0.5))])
        assert kf.mean[0] == pytest.approx(truth, abs=0.2)

    def test_missing_measurement_only_predicts(self):
        kf = scalar_filter()
        var_before = kf.covariance[0, 0]
        kf.step(None)
        assert kf.covariance[0, 0] >= var_before

    def test_constant_velocity_model_tracks_ramp(self, rng):
        dt = 1.0
        kf = KalmanFilter(
            transition=[[1.0, dt], [0.0, 1.0]],
            observation=[[1.0, 0.0]],
            process_noise=[[1e-4, 0.0], [0.0, 1e-4]],
            observation_noise=[[0.25]],
            initial_mean=[0.0, 0.0],
            initial_covariance=np.eye(2) * 10.0,
        )
        for t in range(1, 60):
            kf.step([2.0 * t + rng.normal(0, 0.5)])
        assert kf.mean[1] == pytest.approx(2.0, abs=0.2)

    def test_filter_sequence_returns_states(self):
        kf = scalar_filter()
        states = kf.filter_sequence([[1.0], [1.5], None, [2.0]])
        assert len(states) == 4
        assert states[-1].mean.shape == (1,)

    def test_posterior_is_multivariate_gaussian(self):
        kf = scalar_filter()
        kf.step([1.0])
        posterior = kf.posterior()
        assert posterior.ndim == 1
        assert posterior.mean()[0] == pytest.approx(kf.mean[0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            KalmanFilter(
                transition=[[1.0, 0.0]],
                observation=[[1.0]],
                process_noise=[[1.0]],
                observation_noise=[[1.0]],
                initial_mean=[0.0],
                initial_covariance=[[1.0]],
            )
