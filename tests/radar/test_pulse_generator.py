"""Tests for synthetic raw pulse generation."""

import numpy as np
import pytest

from repro.radar import PulseGenerator, RadarSite, WeatherScene, RAW_BYTES_PER_GATE
from repro.radar.scene import StormCell, Vortex


def make_site(pulse_rate=400.0, rotation_rate=10.0, n_gates=64):
    return RadarSite(
        site_id="T1",
        n_gates=n_gates,
        gate_spacing=100.0,
        pulse_rate=pulse_rate,
        rotation_rate=rotation_rate,
        wavelength=0.6,
    )


def calm_scene():
    scene = WeatherScene(background_wind=(6.0, 0.0), base_dbz=8.0)
    scene.cells.append(StormCell(x=2000.0, y=2000.0, radius=3000.0, peak_dbz=45.0))
    return scene


class TestPulseGenerator:
    def test_scan_geometry(self):
        gen = PulseGenerator(make_site(), calm_scene(), sector=(0.0, 45.0), rng=0)
        assert gen.pulses_per_scan == pytest.approx(45.0 / 10.0 * 400.0, rel=0.01)
        assert gen.seconds_per_scan == pytest.approx(4.5, rel=0.01)
        assert gen.scans_in(38.0) == 8

    def test_scan_shapes_and_size(self):
        site = make_site(n_gates=32)
        gen = PulseGenerator(site, calm_scene(), sector=(0.0, 10.0), rng=1)
        scan = gen.generate_scan()
        block = scan.concatenated()
        assert block.iq.shape == (gen.pulses_per_scan, 32)
        assert block.azimuths_deg.shape == (gen.pulses_per_scan,)
        assert scan.raw_size_bytes == gen.pulses_per_scan * 32 * RAW_BYTES_PER_GATE

    def test_azimuths_span_the_sector(self):
        gen = PulseGenerator(make_site(), calm_scene(), sector=(10.0, 40.0), rng=2)
        scan = gen.generate_scan()
        azimuths = scan.concatenated().azimuths_deg
        assert azimuths.min() >= 10.0
        assert azimuths.max() < 40.0

    def test_signal_power_reflects_reflectivity(self):
        site = make_site(n_gates=64)
        scene = WeatherScene(background_wind=(0.0, 0.0), base_dbz=5.0)
        # A strong cell due north at gate ~30.
        scene.cells.append(StormCell(x=0.0, y=3000.0, radius=400.0, peak_dbz=50.0))
        gen = PulseGenerator(site, scene, sector=(0.0, 2.0), noise_power=0.01, rng=3)
        block = gen.generate_scan().concatenated()
        power = np.mean(np.abs(block.iq) ** 2, axis=0)
        gate_in_cell = int(3000.0 // 100.0)
        gate_outside = 10
        assert power[gate_in_cell] > 50.0 * power[gate_outside]

    def test_generate_multiple_scans_advance_time(self):
        gen = PulseGenerator(make_site(), calm_scene(), sector=(0.0, 10.0), rng=4)
        scans = gen.generate(duration_seconds=3.0)
        assert len(scans) == max(int(3.0 // gen.seconds_per_scan), 1)
        if len(scans) > 1:
            assert scans[1].blocks[0].start_time > scans[0].blocks[0].start_time

    def test_aliasing_guard(self):
        site = make_site(pulse_rate=100.0)  # Nyquist = 0.6*100/4 = 15 m/s
        scene = WeatherScene()
        scene.vortices.append(Vortex(0.0, 3000.0, 200.0, 40.0))
        with pytest.raises(ValueError):
            PulseGenerator(site, scene, rng=5)

    def test_invalid_sector(self):
        with pytest.raises(ValueError):
            PulseGenerator(make_site(), calm_scene(), sector=(30.0, 10.0))
