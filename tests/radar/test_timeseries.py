"""Tests for MA time-series modelling (autocovariances, order identification, fitting)."""

import numpy as np
import pytest

from repro.radar import (
    MAModel,
    fit_ma_innovations,
    identify_ma_order,
    ljung_box,
    sample_autocorrelation,
    sample_autocovariance,
)


class TestSampleAutocovariance:
    def test_lag_zero_is_variance(self, rng):
        x = rng.normal(0, 2, size=5000)
        gammas = sample_autocovariance(x, 3)
        assert gammas[0] == pytest.approx(x.var(), rel=1e-9)

    def test_white_noise_has_small_higher_lags(self, rng):
        x = rng.normal(0, 1, size=20_000)
        gammas = sample_autocovariance(x, 5)
        assert np.all(np.abs(gammas[1:]) < 0.05)

    def test_autocorrelation_normalised(self, rng):
        x = rng.normal(0, 3, size=1000)
        rho = sample_autocorrelation(x, 4)
        assert rho[0] == pytest.approx(1.0)
        assert np.all(np.abs(rho) <= 1.0 + 1e-9)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sample_autocovariance([1.0], 0)
        with pytest.raises(ValueError):
            sample_autocovariance([1.0, 2.0, 3.0], 5)
        with pytest.raises(ValueError):
            sample_autocorrelation([2.0, 2.0, 2.0], 1)


class TestMAModel:
    def test_theoretical_autocovariances(self):
        model = MAModel(mean=0.0, coefficients=(0.5,), noise_std=2.0)
        # gamma_0 = sigma^2 (1 + b^2), gamma_1 = sigma^2 b, gamma_2 = 0.
        assert model.autocovariance(0) == pytest.approx(4.0 * 1.25)
        assert model.autocovariance(1) == pytest.approx(4.0 * 0.5)
        assert model.autocovariance(2) == 0.0
        assert model.order == 1

    def test_simulation_matches_theory(self, rng):
        model = MAModel(mean=5.0, coefficients=(0.6, 0.3), noise_std=1.0)
        series = model.simulate(60_000, rng=rng)
        assert series.mean() == pytest.approx(5.0, abs=0.05)
        gammas = sample_autocovariance(series, 3)
        assert gammas[0] == pytest.approx(model.autocovariance(0), rel=0.05)
        assert gammas[1] == pytest.approx(model.autocovariance(1), rel=0.1)
        assert abs(gammas[3]) < 0.05

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            MAModel(mean=0.0, coefficients=(), noise_std=0.0)


class TestOrderIdentification:
    def test_white_noise_identified_as_order_zero(self, rng):
        x = rng.normal(0, 1, size=5000)
        assert identify_ma_order(x, max_order=6) == 0

    def test_ma1_identified(self, rng):
        series = MAModel(0.0, (0.8,), 1.0).simulate(20_000, rng=rng)
        assert identify_ma_order(series, max_order=6) == 1

    def test_ma2_identified(self, rng):
        series = MAModel(0.0, (0.7, 0.5), 1.0).simulate(40_000, rng=rng)
        assert identify_ma_order(series, max_order=6) == 2

    def test_short_series_returns_zero(self):
        assert identify_ma_order([1.0, 2.0, 1.5], max_order=5) == 0


class TestInnovationsFit:
    def test_recovers_ma1_coefficient(self, rng):
        series = MAModel(2.0, (0.6,), 1.5).simulate(40_000, rng=rng)
        fitted = fit_ma_innovations(series, order=1)
        assert fitted.mean == pytest.approx(2.0, abs=0.05)
        assert fitted.coefficients[0] == pytest.approx(0.6, abs=0.1)
        assert fitted.noise_std == pytest.approx(1.5, rel=0.1)

    def test_fitted_model_reproduces_autocovariance(self, rng):
        series = MAModel(0.0, (0.5, 0.3), 1.0).simulate(40_000, rng=rng)
        fitted = fit_ma_innovations(series, order=2)
        empirical = sample_autocovariance(series, 2)
        assert fitted.autocovariance(1) == pytest.approx(empirical[1], abs=0.08)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            fit_ma_innovations([1.0, 2.0, 3.0], order=0)
        with pytest.raises(ValueError):
            fit_ma_innovations([1.0, 2.0, 3.0], order=5)


class TestLjungBox:
    def test_white_noise_not_rejected(self, rng):
        x = rng.normal(0, 1, size=5000)
        _, p = ljung_box(x, lags=10)
        assert p > 0.01

    def test_correlated_series_rejected(self, rng):
        series = MAModel(0.0, (0.9,), 1.0).simulate(5000, rng=rng)
        _, p = ljung_box(series, lags=10)
        assert p < 1e-6
