"""Tests for synthetic weather scenes (vortices, storm cells, wind fields)."""

import numpy as np
import pytest

from repro.radar import StormCell, Vortex, WeatherScene


class TestVortex:
    def test_velocity_zero_at_centre(self):
        v = Vortex(x=0.0, y=0.0, core_radius=100.0, max_speed=40.0)
        u, w = v.velocity(np.array([0.0]), np.array([0.0]))
        assert abs(u[0]) < 1e-9 and abs(w[0]) < 1e-9

    def test_peak_speed_at_core_radius(self):
        v = Vortex(x=0.0, y=0.0, core_radius=100.0, max_speed=40.0)
        u, w = v.velocity(np.array([100.0]), np.array([0.0]))
        assert np.hypot(u[0], w[0]) == pytest.approx(40.0)

    def test_speed_decays_outside_core(self):
        v = Vortex(x=0.0, y=0.0, core_radius=100.0, max_speed=40.0)
        u, w = v.velocity(np.array([400.0]), np.array([0.0]))
        assert np.hypot(u[0], w[0]) == pytest.approx(10.0)

    def test_rotation_is_tangential(self):
        v = Vortex(x=0.0, y=0.0, core_radius=100.0, max_speed=40.0)
        u, w = v.velocity(np.array([100.0]), np.array([0.0]))
        # At a point due east of the centre, counterclockwise flow points north.
        assert u[0] == pytest.approx(0.0, abs=1e-9)
        assert w[0] > 0.0

    def test_invalid_core(self):
        with pytest.raises(ValueError):
            Vortex(0, 0, core_radius=0.0, max_speed=10.0)


class TestStormCell:
    def test_reflectivity_peaks_at_centre(self):
        cell = StormCell(x=0.0, y=0.0, radius=1000.0, peak_dbz=50.0)
        assert cell.reflectivity(np.array([0.0]), np.array([0.0]))[0] == pytest.approx(50.0)
        assert cell.reflectivity(np.array([3000.0]), np.array([0.0]))[0] < 1.0


class TestWeatherScene:
    def test_background_wind_everywhere(self):
        scene = WeatherScene(background_wind=(3.0, -4.0))
        u, v = scene.wind(np.array([100.0, -50.0]), np.array([0.0, 70.0]))
        assert np.allclose(u, 3.0)
        assert np.allclose(v, -4.0)

    def test_radial_velocity_projection(self):
        scene = WeatherScene(background_wind=(10.0, 0.0))
        # Point due east of the radar: wind blowing east is purely radial (away).
        vr = scene.radial_velocity(np.array([1000.0]), np.array([0.0]), 0.0, 0.0)
        assert vr[0] == pytest.approx(10.0)
        # Point due north: eastward wind is purely tangential.
        vr = scene.radial_velocity(np.array([0.0]), np.array([1000.0]), 0.0, 0.0)
        assert vr[0] == pytest.approx(0.0, abs=1e-9)

    def test_vortex_creates_radial_velocity_couplet(self):
        scene = WeatherScene(background_wind=(0.0, 0.0))
        scene.vortices.append(Vortex(x=0.0, y=5000.0, core_radius=200.0, max_speed=40.0))
        # Sample two points left/right of the vortex centre as seen from the radar.
        vr_left = scene.radial_velocity(np.array([-200.0]), np.array([5000.0]), 0.0, 0.0)
        vr_right = scene.radial_velocity(np.array([200.0]), np.array([5000.0]), 0.0, 0.0)
        assert vr_left[0] * vr_right[0] < 0  # opposite signs: inbound/outbound couplet
        assert abs(vr_left[0] - vr_right[0]) > 60.0

    def test_reflectivity_floor_and_cells(self):
        scene = WeatherScene(base_dbz=8.0, cells=[StormCell(0.0, 1000.0, 500.0, 45.0)])
        dbz = scene.reflectivity(np.array([0.0, 8000.0]), np.array([1000.0, 8000.0]))
        assert dbz[0] == pytest.approx(45.0)
        assert dbz[1] == pytest.approx(8.0)

    def test_tornadic_factory(self):
        scene = WeatherScene.tornadic(n_vortices=3)
        assert len(scene.vortices) == 3
        assert len(scene.cells) == 3
        with pytest.raises(ValueError):
            WeatherScene.tornadic(n_vortices=0)
