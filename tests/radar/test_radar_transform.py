"""Tests for the radar data capture and transformation (T) operator."""

import numpy as np
import pytest

from repro.distributions import Gaussian
from repro.radar import (
    PulseGenerator,
    RadarSite,
    RadarTransformOperator,
    WeatherScene,
    pulse_pair_velocity_series,
)
from repro.radar.scene import StormCell


def make_setup(averaging_size=40, **op_kwargs):
    site = RadarSite(
        site_id="T1", n_gates=48, gate_spacing=120.0,
        pulse_rate=300.0, rotation_rate=10.0, wavelength=0.6,
    )
    scene = WeatherScene(background_wind=(0.0, -10.0), base_dbz=5.0)
    scene.cells.append(StormCell(x=0.0, y=3000.0, radius=1500.0, peak_dbz=45.0))
    generator = PulseGenerator(site, scene, sector=(350.0, 358.0), noise_power=0.02, rng=31)
    operator = RadarTransformOperator(site, averaging_size=averaging_size, **op_kwargs)
    return site, scene, generator, operator


class TestPulsePairVelocitySeries:
    def test_constant_doppler_recovered(self):
        wavelength, pulse_rate, velocity = 0.6, 300.0, 12.0
        prt = 1.0 / pulse_rate
        phases = 4 * np.pi * velocity * prt / wavelength * np.arange(64)
        iq = np.exp(1j * phases)
        series = pulse_pair_velocity_series(iq, pulse_rate, wavelength)
        assert np.allclose(series, velocity, atol=1e-9)

    def test_requires_at_least_two_samples(self):
        with pytest.raises(ValueError):
            pulse_pair_velocity_series(np.array([1.0 + 0j]), 300.0, 0.6)


class TestRadarTransformOperator:
    def test_emits_voxel_tuples_with_velocity_distributions(self):
        site, scene, generator, operator = make_setup()
        scan = generator.generate_scan()
        outputs = list(operator.ingest(scan, timestamp=0.0))
        assert outputs, "storm voxels should be emitted"
        for item in outputs[:20]:
            assert item.value("site_id") == "T1"
            assert isinstance(item.distribution("velocity"), Gaussian)
            assert item.value("reflectivity_dbz") >= operator.min_reflectivity_dbz
            assert item.value("averaging_size") == operator.averaging_size

    def test_velocity_estimates_near_truth(self):
        site, scene, generator, operator = make_setup()
        scan = generator.generate_scan()
        outputs = list(operator.ingest(scan, timestamp=0.0))
        from repro.radar import polar_to_cartesian

        errors = []
        for item in outputs:
            x, y = polar_to_cartesian(item.value("azimuth_deg"), item.value("range_m"), site)
            truth = float(scene.radial_velocity(np.array([x]), np.array([y]), site.x, site.y)[0])
            errors.append(abs(item.distribution("velocity").mu - truth))
        assert np.median(errors) < 2.0

    def test_reflectivity_threshold_limits_volume(self):
        _, _, generator, low_thresh = make_setup(min_reflectivity_dbz=0.0)
        site2, _, generator2, high_thresh = make_setup(min_reflectivity_dbz=30.0)
        scan = generator.generate_scan()
        n_low = len(list(low_thresh.ingest(scan, 0.0)))
        n_high = len(list(high_thresh.ingest(generator2.generate_scan(), 0.0)))
        assert n_high < n_low

    def test_larger_averaging_reduces_tuple_count_and_uncertainty(self):
        _, _, generator_a, op_small = make_setup(averaging_size=20)
        _, _, generator_b, op_large = make_setup(averaging_size=100)
        scan_a = generator_a.generate_scan()
        scan_b = generator_b.generate_scan()
        out_small = list(op_small.ingest(scan_a, 0.0))
        out_large = list(op_large.ingest(scan_b, 0.0))
        assert len(out_large) < len(out_small)
        mean_sigma_small = np.mean([t.distribution("velocity").sigma for t in out_small])
        mean_sigma_large = np.mean([t.distribution("velocity").sigma for t in out_large])
        # Averaging over more pulses narrows the distribution of the mean.
        assert mean_sigma_large < mean_sigma_small

    def test_order_identification_mode_runs(self):
        _, _, generator, operator = make_setup(identify_order=True)
        outputs = list(operator.ingest(generator.generate_scan(), 0.0))
        assert outputs

    def test_rejects_wrong_observation_type(self):
        _, _, _, operator = make_setup()
        with pytest.raises(TypeError):
            list(operator.ingest("not a scan", 0.0))

    def test_invalid_parameters(self):
        site = RadarSite("X", pulse_rate=300.0, rotation_rate=10.0)
        with pytest.raises(ValueError):
            RadarTransformOperator(site, averaging_size=1)
        with pytest.raises(ValueError):
            RadarTransformOperator(site, ma_order=-1)
