"""Tests for multi-radar merging onto a Cartesian grid."""

import numpy as np
import pytest

from repro.radar import (
    CartesianGrid,
    PulseGenerator,
    RadarSite,
    WeatherScene,
    compute_moments,
    merge_moment_fields,
)
from repro.radar.scene import StormCell


def make_pair():
    scene = WeatherScene(background_wind=(10.0, 0.0), base_dbz=15.0)
    scene.cells.append(StormCell(x=0.0, y=6000.0, radius=6000.0, peak_dbz=45.0))
    site_a = RadarSite(
        "A", x=-4000.0, y=0.0, n_gates=100, gate_spacing=120.0,
        pulse_rate=300.0, rotation_rate=15.0, wavelength=0.6,
    )
    site_b = RadarSite(
        "B", x=4000.0, y=0.0, n_gates=100, gate_spacing=120.0,
        pulse_rate=300.0, rotation_rate=15.0, wavelength=0.6,
    )
    moments = []
    for seed, site in ((1, site_a), (2, site_b)):
        generator = PulseGenerator(site, scene, sector=(315.0, 360.0) if site.x > 0 else (0.0, 45.0), rng=seed)
        moments.append((compute_moments(generator.generate_scan(), site, 30), site))
    return scene, moments


class TestCartesianGrid:
    def test_cell_mapping_and_centers(self):
        grid = CartesianGrid(0.0, 0.0, 100.0, 50.0, resolution=10.0)
        assert grid.n_x == 10 and grid.n_y == 5
        ix, iy = grid.cell_of(np.array([15.0]), np.array([45.0]))
        assert (ix[0], iy[0]) == (1, 4)
        assert grid.center_of(1, 4) == (15.0, 45.0)

    def test_contains(self):
        grid = CartesianGrid(0.0, 0.0, 10.0, 10.0, resolution=1.0)
        ix, iy = grid.cell_of(np.array([-1.0, 5.0]), np.array([5.0, 5.0]))
        inside = grid.contains(ix, iy)
        assert list(inside) == [False, True]

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            CartesianGrid(0, 0, 0, 10, 1.0)
        with pytest.raises(ValueError):
            CartesianGrid(0, 0, 10, 10, 0.0)


class TestMergeMomentFields:
    def test_merge_produces_cells_from_both_radars(self):
        _, pairs = make_pair()
        grid = CartesianGrid(-8000.0, 0.0, 8000.0, 12000.0, resolution=500.0)
        merged = merge_moment_fields(pairs, grid)
        assert merged.n_cells > 0
        sites_seen = set()
        for cell in merged.cells:
            sites_seen.update(cell.contributing_sites)
        assert sites_seen == {"A", "B"}
        overlap = [c for c in merged.cells if len(c.contributing_sites) == 2]
        assert overlap, "the two sectors must overlap somewhere on the grid"

    def test_merged_velocity_close_to_truth_in_overlap(self):
        scene, pairs = make_pair()
        grid = CartesianGrid(-8000.0, 0.0, 8000.0, 12000.0, resolution=500.0)
        merged = merge_moment_fields(pairs, grid, min_reflectivity_dbz=25.0)
        # In overlap cells the merged radial velocities (w.r.t. different radars)
        # are both projections of the same wind; just check values are bounded
        # by the physical wind speed and variance is positive.
        for cell in merged.cells:
            assert abs(cell.velocity_mean) <= 15.0
            assert cell.velocity_variance > 0.0

    def test_density_imbalance_reported(self):
        _, pairs = make_pair()
        grid = CartesianGrid(-8000.0, 0.0, 8000.0, 12000.0, resolution=500.0)
        merged = merge_moment_fields(pairs, grid)
        assert merged.density_imbalance() >= 1.0
        assert 0.0 < merged.coverage_fraction() <= 1.0

    def test_velocity_distribution_exposed_as_gaussian(self):
        _, pairs = make_pair()
        grid = CartesianGrid(-8000.0, 0.0, 8000.0, 12000.0, resolution=1000.0)
        merged = merge_moment_fields(pairs, grid)
        dist = merged.cells[0].velocity_distribution()
        assert dist.sigma > 0.0

    def test_empty_input_rejected(self):
        grid = CartesianGrid(0, 0, 10, 10, 1.0)
        with pytest.raises(ValueError):
            merge_moment_fields([], grid)
