"""Tests for the tornado vortex-signature detector."""

import numpy as np
import pytest

from repro.radar import compute_moments, detect_vortices, run_detection
from repro.workloads import build_table1_workload


@pytest.fixture(scope="module")
def workload():
    # A small, fast workload: one scan, modest gate count.
    return build_table1_workload(
        duration_seconds=9.5, n_scans=1, pulse_rate=300.0, n_gates=120, gate_spacing=120.0
    )


class TestDetectVortices:
    def test_fine_averaging_detects_embedded_vortices(self, workload):
        moments = compute_moments(workload.scans[0], workload.site, averaging_size=20)
        detections = detect_vortices(
            moments, workload.site, delta_v_threshold=workload.detection_threshold
        )
        assert len(detections) >= len(workload.scene.vortices) - 1

    def test_coarse_averaging_misses_vortices(self, workload):
        moments = compute_moments(workload.scans[0], workload.site, averaging_size=900)
        detections = detect_vortices(
            moments, workload.site, delta_v_threshold=workload.detection_threshold
        )
        assert len(detections) == 0

    def test_detections_near_true_vortex_positions(self, workload):
        moments = compute_moments(workload.scans[0], workload.site, averaging_size=20)
        detections = detect_vortices(
            moments, workload.site, delta_v_threshold=workload.detection_threshold
        )
        true_positions = [(v.x, v.y) for v in workload.scene.vortices]
        for det in detections:
            x, y = det.position(workload.site)
            nearest = min(np.hypot(x - tx, y - ty) for tx, ty in true_positions)
            assert nearest < 2500.0

    def test_no_detections_in_calm_scene(self):
        calm = build_table1_workload(
            duration_seconds=9.5,
            n_scans=1,
            pulse_rate=300.0,
            n_gates=100,
            n_vortices=1,
            vortex_max_speed=1.0,
        )
        moments = compute_moments(calm.scans[0], calm.site, averaging_size=30)
        assert detect_vortices(moments, calm.site, delta_v_threshold=40.0) == []

    def test_higher_threshold_yields_fewer_detections(self, workload):
        moments = compute_moments(workload.scans[0], workload.site, averaging_size=20)
        low = detect_vortices(moments, workload.site, delta_v_threshold=20.0)
        high = detect_vortices(moments, workload.site, delta_v_threshold=70.0)
        assert len(high) <= len(low)

    def test_run_detection_records_runtime(self, workload):
        moments = compute_moments(workload.scans[0], workload.site, averaging_size=50)
        result = run_detection(
            moments, workload.site, delta_v_threshold=workload.detection_threshold
        )
        assert result.runtime_seconds > 0.0
        assert result.averaging_size == 50
        assert result.count == len(result.detections)
