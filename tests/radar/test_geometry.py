"""Tests for radar scan geometry and coordinate conversions."""

import numpy as np
import pytest

from repro.radar import RadarSite, beam_positions, cartesian_to_polar, polar_to_cartesian


def make_site(**kwargs):
    defaults = dict(site_id="R1", n_gates=100, gate_spacing=50.0, pulse_rate=1000.0, rotation_rate=20.0)
    defaults.update(kwargs)
    return RadarSite(**defaults)


class TestRadarSite:
    def test_max_range_and_gate_ranges(self):
        site = make_site()
        assert site.max_range == 5000.0
        ranges = site.gate_ranges()
        assert ranges.shape == (100,)
        assert ranges[0] == pytest.approx(25.0)
        assert ranges[-1] == pytest.approx(4975.0)

    def test_pulses_per_degree(self):
        site = make_site(pulse_rate=2000.0, rotation_rate=20.0)
        assert site.pulses_per_degree() == pytest.approx(100.0)

    def test_nyquist_velocity(self):
        site = make_site(pulse_rate=2000.0, wavelength=0.032)
        assert site.nyquist_velocity == pytest.approx(16.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            make_site(n_gates=0)
        with pytest.raises(ValueError):
            make_site(gate_spacing=-1.0)
        with pytest.raises(ValueError):
            make_site(wavelength=0.0)


class TestCoordinateConversion:
    def test_cardinal_directions(self):
        site = make_site()
        x, y = polar_to_cartesian(0.0, 1000.0, site)
        assert x == pytest.approx(0.0, abs=1e-9)
        assert y == pytest.approx(1000.0)
        x, y = polar_to_cartesian(90.0, 1000.0, site)
        assert x == pytest.approx(1000.0)
        assert y == pytest.approx(0.0, abs=1e-6)

    def test_offset_site(self):
        site = make_site(x=100.0, y=-50.0)
        x, y = polar_to_cartesian(180.0, 200.0, site)
        assert x == pytest.approx(100.0, abs=1e-6)
        assert y == pytest.approx(-250.0)

    def test_roundtrip(self):
        site = make_site(x=10.0, y=20.0)
        for az, rng in [(0.0, 100.0), (45.0, 500.0), (123.4, 3000.0), (359.0, 50.0)]:
            x, y = polar_to_cartesian(az, rng, site)
            az2, rng2 = cartesian_to_polar(x, y, site)
            assert float(az2) == pytest.approx(az, abs=1e-6)
            assert float(rng2) == pytest.approx(rng, rel=1e-9)

    def test_vectorised_conversion(self):
        site = make_site()
        azimuths = np.array([0.0, 90.0, 180.0])
        ranges = np.array([100.0, 100.0, 100.0])
        x, y = polar_to_cartesian(azimuths, ranges, site)
        assert x.shape == (3,)
        assert np.allclose(y, [100.0, 0.0, -100.0], atol=1e-6)


class TestBeamPositions:
    def test_step_matches_rotation_rate(self):
        site = make_site(pulse_rate=1000.0, rotation_rate=10.0)
        azimuths = beam_positions(site, start_azimuth=30.0, n_pulses=5)
        assert azimuths[0] == pytest.approx(30.0)
        assert azimuths[1] - azimuths[0] == pytest.approx(0.01)

    def test_wraps_around_360(self):
        site = make_site(pulse_rate=100.0, rotation_rate=50.0)
        azimuths = beam_positions(site, start_azimuth=359.8, n_pulses=10)
        assert np.all(azimuths < 360.0)

    def test_invalid_pulse_count(self):
        with pytest.raises(ValueError):
            beam_positions(make_site(), 0.0, 0)
