"""Tests for CLT-based aggregation of correlated (MA) series."""

import numpy as np
import pytest

from repro.radar import (
    MAModel,
    long_run_variance,
    mean_distribution_from_series,
    sum_distribution_from_series,
)


class TestLongRunVariance:
    def test_white_noise_long_run_variance_equals_variance(self, rng):
        x = rng.normal(0, 2, size=20_000)
        assert long_run_variance(x, ma_order=0) == pytest.approx(4.0, rel=0.05)

    def test_positive_correlation_inflates_long_run_variance(self, rng):
        series = MAModel(0.0, (0.8,), 1.0).simulate(30_000, rng=rng)
        lrv = long_run_variance(series, ma_order=1)
        plain = series.var()
        assert lrv > 1.3 * plain

    def test_order_identified_automatically(self, rng):
        series = MAModel(0.0, (0.8,), 1.0).simulate(30_000, rng=rng)
        auto = long_run_variance(series)
        manual = long_run_variance(series, ma_order=1)
        assert auto == pytest.approx(manual, rel=0.15)

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError):
            long_run_variance([1.0, 2.0])


class TestMeanDistribution:
    def test_mean_estimate_centres_on_sample_mean(self, rng):
        series = MAModel(7.0, (0.5,), 1.0).simulate(5000, rng=rng)
        dist = mean_distribution_from_series(series, ma_order=1)
        assert dist.mu == pytest.approx(series.mean())

    def test_variance_of_mean_is_calibrated(self, rng):
        # Repeatedly average short MA windows; the spread of those averages
        # must match the CLT variance prediction.
        model = MAModel(0.0, (0.6,), 1.0)
        window = 200
        means, predicted_vars = [], []
        for i in range(300):
            series = model.simulate(window, rng=np.random.default_rng(1000 + i))
            means.append(series.mean())
            predicted_vars.append(mean_distribution_from_series(series, ma_order=1).variance())
        empirical = np.var(means)
        predicted = np.mean(predicted_vars)
        assert predicted == pytest.approx(empirical, rel=0.3)

    def test_iid_assumption_understates_uncertainty_for_correlated_series(self, rng):
        series = MAModel(0.0, (0.9,), 1.0).simulate(3000, rng=rng)
        clt_aware = mean_distribution_from_series(series, ma_order=1)
        naive = mean_distribution_from_series(series, ma_order=0)
        assert clt_aware.sigma > naive.sigma


class TestSumDistribution:
    def test_sum_is_n_times_mean(self, rng):
        series = MAModel(3.0, (0.4,), 1.0).simulate(1000, rng=rng)
        total = sum_distribution_from_series(series, ma_order=1)
        mean = mean_distribution_from_series(series, ma_order=1)
        assert total.mu == pytest.approx(1000 * mean.mu, rel=1e-9)
        assert total.variance() == pytest.approx(1000**2 * mean.variance(), rel=1e-6)
