"""Tests for pulse-pair moment computation and averaging."""

import numpy as np
import pytest

from repro.radar import (
    MOMENT_BYTES_PER_VOXEL,
    PulseGenerator,
    RadarSite,
    WeatherScene,
    compute_moments,
)
from repro.radar.scene import StormCell


def make_setup(pulse_rate=400.0, n_gates=48, background_wind=(8.0, 0.0), noise_power=0.02):
    site = RadarSite(
        site_id="M1",
        n_gates=n_gates,
        gate_spacing=100.0,
        pulse_rate=pulse_rate,
        rotation_rate=10.0,
        wavelength=0.6,
    )
    scene = WeatherScene(background_wind=background_wind, base_dbz=10.0)
    # Storm cell at azimuth ~75 degrees, range ~3 km: inside the scanned sector.
    scene.cells.append(StormCell(x=2900.0, y=780.0, radius=1500.0, peak_dbz=45.0))
    generator = PulseGenerator(site, scene, sector=(60.0, 90.0), noise_power=noise_power, rng=21)
    return site, scene, generator


class TestComputeMoments:
    def test_shapes_and_metadata(self):
        site, _, generator = make_setup()
        scan = generator.generate_scan()
        moments = compute_moments(scan, site, averaging_size=40)
        assert moments.n_gates == site.n_gates
        assert moments.n_blocks == scan.n_pulses // 40
        assert moments.averaging_size == 40
        assert moments.size_bytes == moments.n_voxels * MOMENT_BYTES_PER_VOXEL

    def test_data_volume_shrinks_with_averaging_size(self):
        site, _, generator = make_setup()
        scan = generator.generate_scan()
        sizes = [compute_moments(scan, site, n).size_bytes for n in (20, 100, 400)]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_velocity_recovers_radial_wind(self):
        site, scene, generator = make_setup(background_wind=(0.0, -12.0))
        scan = generator.generate_scan()
        moments = compute_moments(scan, site, averaging_size=60)
        # Pick well-lit voxels and compare against the true radial velocity.
        mask = moments.reflectivity_dbz > 25.0
        assert np.any(mask)
        from repro.radar import polar_to_cartesian

        az_grid = np.repeat(moments.azimuths_deg[:, None], moments.n_gates, axis=1)
        rng_grid = np.repeat(moments.ranges_m[None, :], moments.n_blocks, axis=0)
        x, y = polar_to_cartesian(az_grid, rng_grid, site)
        truth = scene.radial_velocity(x, y, site.x, site.y)
        error = np.abs(moments.velocity - truth)[mask]
        assert np.median(error) < 1.5

    def test_reflectivity_tracks_scene(self):
        site, scene, generator = make_setup()
        scan = generator.generate_scan()
        moments = compute_moments(scan, site, averaging_size=50)
        # The storm cell is centred ~3.3 km out at azimuth ~63 deg; reflectivity
        # there must exceed the clear-air gates far beyond the cell.
        near_cell = moments.reflectivity_dbz[:, 30:36].mean()
        far_away = moments.reflectivity_dbz[:, -3:].mean()
        assert near_cell > far_away + 10.0

    def test_azimuth_resolution_grows_with_averaging(self):
        site, _, generator = make_setup()
        scan = generator.generate_scan()
        fine = compute_moments(scan, site, averaging_size=20)
        coarse = compute_moments(scan, site, averaging_size=200)
        assert coarse.azimuth_resolution_deg() > fine.azimuth_resolution_deg()

    def test_spectrum_width_nonnegative(self):
        site, _, generator = make_setup()
        moments = compute_moments(generator.generate_scan(), site, averaging_size=40)
        assert np.all(moments.spectrum_width >= 0.0)

    def test_invalid_averaging_sizes(self):
        site, _, generator = make_setup()
        scan = generator.generate_scan()
        with pytest.raises(ValueError):
            compute_moments(scan, site, averaging_size=1)
        with pytest.raises(ValueError):
            compute_moments(scan, site, averaging_size=10**7)
