"""Cross-module test: uncertainty propagated through a full operator pipeline
matches a Monte-Carlo simulation of the same pipeline."""

import numpy as np
import pytest

from repro.core import (
    CFApproximationSum,
    Comparison,
    ProbabilisticSelect,
    SummarizeResults,
    UncertainAggregate,
    UncertainPredicate,
)
from repro.distributions import Gaussian, as_rng
from repro.streams import CollectSink, StreamEngine, StreamTuple, TumblingCountWindow


def build_pipeline(window=25):
    select = ProbabilisticSelect(
        UncertainPredicate("value", Comparison.GREATER, -1e9),
        min_probability=0.0,
    )
    aggregate = UncertainAggregate(
        TumblingCountWindow(window), "value", CFApproximationSum(), function="sum"
    )
    summarize = SummarizeResults("sum_value", confidence=0.9)
    sink = CollectSink()
    engine = StreamEngine()
    engine.add_source("in", select)
    select.connect(aggregate)
    aggregate.connect(summarize)
    summarize.connect(sink)
    return engine, sink


class TestUncertaintyPropagation:
    def test_pipeline_sum_matches_monte_carlo(self):
        rng = as_rng(7)
        window = 25
        means = rng.uniform(0, 10, size=window)
        sigmas = rng.uniform(0.5, 2.0, size=window)
        tuples = [
            StreamTuple(timestamp=float(i), values={}, uncertain={"value": Gaussian(m, s)})
            for i, (m, s) in enumerate(zip(means, sigmas))
        ]
        engine, sink = build_pipeline(window)
        for t in tuples:
            engine.push("in", t)
        engine.finish()
        assert len(sink.results) == 1
        result = sink.results[0]

        # Monte-Carlo the same pipeline: draw each value and add them up.
        draws = rng.normal(means, sigmas, size=(20_000, window)).sum(axis=1)
        assert result.value("sum_value_mean") == pytest.approx(draws.mean(), rel=0.01)
        assert result.value("sum_value_variance") == pytest.approx(draws.var(), rel=0.05)
        lo, hi = result.value("sum_value_lo"), result.value("sum_value_hi")
        coverage = np.mean((draws >= lo) & (draws <= hi))
        assert coverage == pytest.approx(0.9, abs=0.02)

    def test_selection_probability_scales_with_threshold(self):
        select_strict = ProbabilisticSelect(
            UncertainPredicate("value", Comparison.GREATER, 5.0), min_probability=0.9
        )
        select_lenient = ProbabilisticSelect(
            UncertainPredicate("value", Comparison.GREATER, 5.0), min_probability=0.1
        )
        borderline = StreamTuple(
            timestamp=0.0, values={}, uncertain={"value": Gaussian(5.5, 1.0)}
        )
        assert select_lenient.accept(borderline) != []
        assert select_strict.accept(borderline) == []

    def test_window_count_preserved_through_pipeline(self):
        engine, sink = build_pipeline(window=10)
        for i in range(30):
            engine.push(
                "in",
                StreamTuple(timestamp=float(i), values={}, uncertain={"value": Gaussian(1.0, 0.1)}),
            )
        engine.finish()
        assert len(sink.results) == 3
        assert all(r.value("window_count") == 10 for r in sink.results)
