"""Property-style equivalence of the tuple and batch execution paths.

Runs the Q1-shaped query of ``examples/quickstart.py`` (probabilistic
selection -> windowed CF-approximation SUM -> summary) over randomly
generated uncertain streams and asserts that ``run_plan`` produces the
same results whether the engine executes tuple-at-a-time
(``push_many`` without a batch size) or batch-at-a-time
(``push_batch``-based chunking).
"""

import pytest

from repro.core import (
    CFApproximationSum,
    Comparison,
    ProbabilisticSelect,
    SummarizeResults,
    UncertainAggregate,
    UncertainPredicate,
)
from repro.streams import StreamEngine, TumblingCountWindow, TupleBatch, CollectSink
from repro.streams.engine import run_plan
from repro.workloads import gaussian_tuple_stream, gmm_tuple_stream, to_batches

TOLERANCE = 1e-9
SUMMARY_KEYS = ("sum_value_mean", "sum_value_variance", "sum_value_lo", "sum_value_hi")


def build_q1_plan():
    """The quickstart plan: select -> windowed SUM -> summarise."""
    select = ProbabilisticSelect(
        UncertainPredicate("value", Comparison.GREATER, 20.0), min_probability=0.5
    )
    aggregate = UncertainAggregate(
        TumblingCountWindow(50), "value", CFApproximationSum(), function="sum"
    )
    summarise = SummarizeResults("sum_value", confidence=0.95, keep_distribution=True)
    select.connect(aggregate)
    aggregate.connect(summarise)
    return select


def assert_results_match(expected, actual):
    assert len(expected) == len(actual)
    assert expected, "stream should close at least one window"
    for left, right in zip(expected, actual):
        assert left.value("window_start") == right.value("window_start")
        assert left.value("window_end") == right.value("window_end")
        assert left.value("window_count") == right.value("window_count")
        for key in SUMMARY_KEYS:
            assert abs(left.value(key) - right.value(key)) <= TOLERANCE, key
        dist_left = left.distribution("sum_value")
        dist_right = right.distribution("sum_value")
        assert abs(dist_left.mu - dist_right.mu) <= TOLERANCE
        assert abs(dist_left.sigma - dist_right.sigma) <= TOLERANCE


@pytest.mark.parametrize("seed", [1, 7, 13, 42, 99])
@pytest.mark.parametrize("generator", [gmm_tuple_stream, gaussian_tuple_stream])
@pytest.mark.parametrize("batch_size", [1, 64, 1000])
def test_run_plan_matches_between_paths(seed, generator, batch_size):
    stream = generator(600, mean_range=(0.0, 100.0), rng=seed)
    tuple_results = run_plan(build_q1_plan(), stream)
    batch_results = run_plan(build_q1_plan(), stream, batch_size=batch_size)
    assert_results_match(tuple_results, batch_results)


def test_push_batch_matches_push_many_directly(quickstart_seed=7):
    stream = gmm_tuple_stream(1200, mean_range=(0.0, 100.0), rng=quickstart_seed)

    def run(push):
        source = build_q1_plan()
        sink = CollectSink()
        tail = source
        while tail.downstream:
            tail = tail.downstream[0]
        tail.connect(sink)
        engine = StreamEngine()
        engine.add_source("in", source)
        push(engine)
        engine.finish()
        return sink.results

    tuple_results = run(lambda engine: engine.push_many("in", stream))

    def push_batches(engine):
        for batch in to_batches(stream, 256):
            engine.push_batch("in", batch)

    batch_results = run(push_batches)
    assert_results_match(tuple_results, batch_results)


def test_batch_of_whole_stream_matches(quickstart_seed=3):
    stream = gaussian_tuple_stream(500, rng=quickstart_seed)
    tuple_results = run_plan(build_q1_plan(), stream)

    source = build_q1_plan()
    sink = CollectSink()
    tail = source
    while tail.downstream:
        tail = tail.downstream[0]
    tail.connect(sink)
    engine = StreamEngine()
    engine.add_source("in", source)
    engine.push_batch("in", TupleBatch(stream))
    engine.finish()
    assert_results_match(tuple_results, sink.results)
