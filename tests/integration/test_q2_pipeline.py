"""End-to-end test of the Q2 pipeline: flammable-object / temperature join."""

import pytest

from repro.distributions import Gaussian
from repro.rfid import (
    DetectionModel,
    MobileReaderSimulator,
    RFIDTransformOperator,
    WarehouseWorld,
    build_flammable_alert_join,
)
from repro.streams import CollectSink, StreamEngine, StreamTuple
from repro.workloads import temperature_stream


@pytest.fixture(scope="module")
def q2_results():
    detection = DetectionModel(midpoint=10.0, steepness=0.8, max_rate=0.95)
    world = WarehouseWorld(
        width=40.0,
        height=20.0,
        shelf_grid=(4, 2),
        n_objects=20,
        move_rate=0.0,
        flammable_fraction=0.5,
        rng=201,
    )
    simulator = MobileReaderSimulator(
        world,
        detection=detection,
        lane_spacing=5.0,
        speed=6.0,
        scan_interval=0.25,
        evolve_world=False,
        rng=202,
    )
    t_operator = RFIDTransformOperator(
        world, detection=detection, n_particles=80, emit_mode="detected", rng=203
    )
    rfid_entry, temp_entry, join = build_flammable_alert_join(
        object_type_of=lambda tag: world.objects[tag].object_type,
        temperature_threshold=60.0,
        location_tolerance=4.0,
        window_length=1e6,  # keep everything in the window for this batch test
        min_match_probability=0.05,
    )
    sink = CollectSink()
    join.connect(sink)

    engine = StreamEngine()
    engine.add_source("rfid_raw", t_operator)
    engine.add_source("temperature", temp_entry)
    t_operator.connect(rfid_entry)

    # The hot spot sits over the first shelf, so at least one flammable
    # object is close to a hot sensor.
    first_shelf = next(iter(world.shelves.values()))
    temp_tuples = temperature_stream(
        200,
        area_bounds=world.bounds(),
        hot_spot=(first_shelf.x, first_shelf.y, 6.0, 90.0),
        rng=204,
    )
    for t in temp_tuples:
        engine.push("temperature", t)
    for reading in simulator.readings(240):
        engine.push(
            "rfid_raw",
            StreamTuple(timestamp=reading.timestamp, values={"reading": reading}),
        )
    engine.finish()
    return world, sink.results


class TestQ2Pipeline:
    def test_alerts_produced(self, q2_results):
        _, results = q2_results
        assert results, "flammable objects near the hot spot must raise alerts"

    def test_alerts_only_for_flammable_objects(self, q2_results):
        world, results = q2_results
        for alert in results:
            tag = alert.value("obj_tag_id")
            assert world.objects[tag].object_type == "flammable"

    def test_alerts_only_for_hot_sensors(self, q2_results):
        _, results = q2_results
        for alert in results:
            assert alert.distribution("temp_temp").mean() > 50.0
            assert alert.value("temp_selection_probability") >= 0.5

    def test_alert_probability_and_lineage(self, q2_results):
        _, results = q2_results
        for alert in results:
            assert 0.05 <= alert.value("match_probability") <= 1.0
            assert len(alert.lineage) >= 2
