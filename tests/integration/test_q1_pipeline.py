"""End-to-end test of the Q1 pipeline: RFID T operator -> fire-code monitor.

This exercises Figure 2's architecture end to end: raw readings enter a
T operator, location tuples with pdfs flow into the Q1 monitoring query,
and violation alerts with quantified uncertainty come out.
"""

import numpy as np
import pytest

from repro.rfid import (
    DetectionModel,
    FireCodeMonitor,
    MobileReaderSimulator,
    RFIDTransformOperator,
    WarehouseWorld,
)
from repro.streams import CollectSink, StreamEngine, StreamTuple


@pytest.fixture(scope="module")
def q1_results():
    detection = DetectionModel(midpoint=10.0, steepness=0.8, max_rate=0.95)
    world = WarehouseWorld(
        width=40.0,
        height=20.0,
        shelf_grid=(4, 2),
        n_objects=24,
        move_rate=0.0,
        weight_range=(40.0, 60.0),
        placement_jitter=0.5,
        rng=101,
    )
    simulator = MobileReaderSimulator(
        world,
        detection=detection,
        lane_spacing=5.0,
        speed=6.0,
        scan_interval=0.25,
        evolve_world=False,
        rng=102,
    )
    t_operator = RFIDTransformOperator(
        world, detection=detection, n_particles=80, emit_mode="detected", rng=103
    )
    monitor = FireCodeMonitor(
        weight_of=lambda tag: world.objects[tag].weight,
        window_length=5.0,
        cell_size=5.0,
        weight_limit=100.0,
        min_violation_probability=0.5,
    )
    sink = CollectSink()

    engine = StreamEngine()
    engine.add_source("rfid", t_operator)
    t_operator.connect(monitor)
    monitor.connect(sink)

    for reading in simulator.readings(260):
        engine.push(
            "rfid",
            StreamTuple(timestamp=reading.timestamp, values={"reading": reading}),
        )
    engine.finish()
    return world, sink.results


class TestQ1Pipeline:
    def test_violations_are_reported(self, q1_results):
        _, results = q1_results
        assert results, "several shelves carry > 100 pounds, so alerts must fire"

    def test_alerts_carry_uncertain_totals_and_probabilities(self, q1_results):
        _, results = q1_results
        for alert in results:
            assert alert.has_uncertain("total_weight")
            assert 0.5 <= alert.value("violation_probability") <= 1.0
            assert alert.value("total_weight_mean") > 0.0
            assert alert.has_value("area")

    def test_reported_areas_actually_overloaded(self, q1_results):
        world, results = q1_results
        cell_size = 5.0
        # Compute the ground-truth weight per cell.
        true_weight = {}
        for obj in world.objects.values():
            cell = (int(obj.x // cell_size), int(obj.y // cell_size))
            true_weight[cell] = true_weight.get(cell, 0.0) + obj.weight
        reported_cells = {alert.value("area") for alert in results}
        # At least half of the reported cells must be truly overloaded (the
        # rest may be borderline due to location uncertainty).
        truly_overloaded = {c for c in reported_cells if true_weight.get(c, 0.0) > 100.0}
        assert len(truly_overloaded) >= max(1, len(reported_cells) // 2)

    def test_alert_lineage_points_at_contributing_tuples(self, q1_results):
        _, results = q1_results
        assert all(len(alert.lineage) >= 1 for alert in results)
