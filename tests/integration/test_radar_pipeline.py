"""End-to-end test of the radar path (Figure 1): pulses -> T operator ->
uncertain aggregation -> merged detection input."""

import numpy as np
import pytest

from repro.core import CLTSum, UncertainAggregate
from repro.radar import (
    CartesianGrid,
    RadarTransformOperator,
    compute_moments,
    merge_moment_fields,
    run_detection,
)
from repro.streams import CollectSink, StreamEngine, StreamTuple, TumblingCountWindow
from repro.workloads import build_table1_workload


@pytest.fixture(scope="module")
def workload():
    return build_table1_workload(
        duration_seconds=9.5, n_scans=1, pulse_rate=250.0, n_gates=100, gate_spacing=140.0
    )


class TestRadarPipeline:
    def test_t_operator_feeds_uncertain_aggregation(self, workload):
        t_operator = RadarTransformOperator(
            workload.site, averaging_size=50, min_reflectivity_dbz=25.0
        )
        aggregate = UncertainAggregate(
            TumblingCountWindow(20), "velocity", CLTSum(), function="avg"
        )
        sink = CollectSink()
        engine = StreamEngine()
        engine.add_source("radar", t_operator)
        t_operator.connect(aggregate)
        aggregate.connect(sink)

        scan = workload.scans[0]
        engine.push("radar", StreamTuple(timestamp=0.0, values={"scan": scan}))
        engine.finish()

        assert sink.results, "storm voxels must produce aggregated tuples"
        for result in sink.results:
            dist = result.distribution("avg_velocity")
            assert np.isfinite(dist.mean())
            assert dist.variance() > 0.0
            # Average radial velocity stays within the physically possible range.
            assert abs(dist.mean()) < workload.site.nyquist_velocity

    def test_detection_quality_degrades_with_averaging(self, workload):
        fine = compute_moments(workload.scans[0], workload.site, 20)
        coarse = compute_moments(workload.scans[0], workload.site, 500)
        fine_result = run_detection(
            fine, workload.site, delta_v_threshold=workload.detection_threshold
        )
        coarse_result = run_detection(
            coarse, workload.site, delta_v_threshold=workload.detection_threshold
        )
        assert fine_result.count > coarse_result.count
        assert fine.size_bytes > coarse.size_bytes

    def test_merge_step_accepts_transformed_moment_data(self, workload):
        moments = compute_moments(workload.scans[0], workload.site, 40)
        grid = CartesianGrid(-1000.0, 0.0, 16000.0, 16000.0, resolution=500.0)
        merged = merge_moment_fields([(moments, workload.site)], grid, min_reflectivity_dbz=20.0)
        assert merged.n_cells > 0
        assert all(cell.n_samples >= 1 for cell in merged.cells)
