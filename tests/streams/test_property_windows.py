"""Property-based tests for window semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import (
    StreamTuple,
    TumblingCountWindow,
    TumblingTimeWindow,
    iter_windows,
)


@given(
    n_tuples=st.integers(min_value=0, max_value=200),
    size=st.integers(min_value=1, max_value=17),
)
@settings(max_examples=60, deadline=None)
def test_tumbling_count_windows_partition_the_stream(n_tuples, size):
    items = [StreamTuple(timestamp=float(i), values={"i": i}) for i in range(n_tuples)]
    windows = list(iter_windows(TumblingCountWindow(size), items))
    # Every tuple appears exactly once, in order.
    flattened = [t.value("i") for w in windows for t in w.items]
    assert flattened == list(range(n_tuples))
    # All windows except possibly the last are full.
    for w in windows[:-1]:
        assert len(w.items) == size
    if windows:
        assert 1 <= len(windows[-1].items) <= size


@given(
    gaps=st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=1, max_size=100),
    length=st.floats(min_value=0.5, max_value=10.0),
)
@settings(max_examples=60, deadline=None)
def test_tumbling_time_windows_cover_all_tuples_and_respect_boundaries(gaps, length):
    timestamps = []
    now = 0.0
    for gap in gaps:
        now += gap
        timestamps.append(now)
    items = [StreamTuple(timestamp=t, values={"t": t}) for t in timestamps]
    windows = list(iter_windows(TumblingTimeWindow(length), items))
    flattened = [t.value("t") for w in windows for t in w.items]
    assert flattened == timestamps
    for w in windows:
        assert abs((w.end - w.start) - length) < 1e-9 * max(1.0, abs(w.end))
        for item in w.items:
            assert w.start - 1e-9 <= item.timestamp < w.end + 1e-9


@given(
    gaps=st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=1, max_size=100),
    length=st.floats(min_value=0.5, max_value=10.0),
    chunk=st.integers(min_value=1, max_value=17),
    use_count_window=st.booleans(),
    size=st.integers(min_value=1, max_value=9),
)
@settings(max_examples=60, deadline=None)
def test_bulk_insertion_equals_per_tuple_insertion(
    gaps, length, chunk, use_count_window, size
):
    """`WindowBuffer.extend` closes exactly the windows `add` would."""
    timestamps = []
    now = 0.0
    for gap in gaps:
        now += gap
        timestamps.append(now)
    items = [StreamTuple(timestamp=t, values={"t": t}) for t in timestamps]
    spec = TumblingCountWindow(size) if use_count_window else TumblingTimeWindow(length)

    per_tuple = spec.new_buffer()
    expected = []
    for item in items:
        expected.extend(per_tuple.add(item))
    expected.extend(per_tuple.flush())

    bulk = spec.new_buffer()
    actual = []
    for start in range(0, len(items), chunk):
        actual.extend(bulk.extend(items[start : start + chunk]))
    actual.extend(bulk.flush())

    assert [(w.start, w.end) for w in actual] == [(w.start, w.end) for w in expected]
    assert [
        [t.tuple_id for t in w.items] for w in actual
    ] == [[t.tuple_id for t in w.items] for w in expected]
