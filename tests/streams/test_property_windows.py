"""Property-based tests for window semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import (
    StreamTuple,
    TumblingCountWindow,
    TumblingTimeWindow,
    iter_windows,
)


@given(
    n_tuples=st.integers(min_value=0, max_value=200),
    size=st.integers(min_value=1, max_value=17),
)
@settings(max_examples=60, deadline=None)
def test_tumbling_count_windows_partition_the_stream(n_tuples, size):
    items = [StreamTuple(timestamp=float(i), values={"i": i}) for i in range(n_tuples)]
    windows = list(iter_windows(TumblingCountWindow(size), items))
    # Every tuple appears exactly once, in order.
    flattened = [t.value("i") for w in windows for t in w.items]
    assert flattened == list(range(n_tuples))
    # All windows except possibly the last are full.
    for w in windows[:-1]:
        assert len(w.items) == size
    if windows:
        assert 1 <= len(windows[-1].items) <= size


@given(
    gaps=st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=1, max_size=100),
    length=st.floats(min_value=0.5, max_value=10.0),
)
@settings(max_examples=60, deadline=None)
def test_tumbling_time_windows_cover_all_tuples_and_respect_boundaries(gaps, length):
    timestamps = []
    now = 0.0
    for gap in gaps:
        now += gap
        timestamps.append(now)
    items = [StreamTuple(timestamp=t, values={"t": t}) for t in timestamps]
    windows = list(iter_windows(TumblingTimeWindow(length), items))
    flattened = [t.value("t") for w in windows for t in w.items]
    assert flattened == timestamps
    for w in windows:
        assert abs((w.end - w.start) - length) < 1e-9 * max(1.0, abs(w.end))
        for item in w.items:
            assert w.start - 1e-9 <= item.timestamp < w.end + 1e-9
