"""Tests for stream schemas and tuple validation."""

import pytest

from repro.distributions import Gaussian
from repro.streams import Attribute, AttributeKind, Schema, SchemaError, StreamTuple


class TestSchema:
    def test_of_builds_value_and_uncertain_attributes(self):
        schema = Schema.of(values=["tag_id"], uncertain=["x", "y"])
        assert schema.value_names() == ["tag_id"]
        assert schema.uncertain_names() == ["x", "y"]
        assert len(schema) == 3
        assert "x" in schema

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(values=["a"], uncertain=["a"])

    def test_getitem_unknown_attribute(self):
        schema = Schema.of(values=["a"])
        with pytest.raises(SchemaError):
            schema["missing"]
        assert schema["a"].kind is AttributeKind.VALUE

    def test_extend_returns_new_schema(self):
        base = Schema.of(values=["a"])
        extended = base.extend(uncertain=["b"])
        assert "b" in extended
        assert "b" not in base

    def test_empty_attribute_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_validate_accepts_conforming_tuple(self):
        schema = Schema.of(values=["tag_id"], uncertain=["x"])
        item = StreamTuple(timestamp=0.0, values={"tag_id": "O1"}, uncertain={"x": Gaussian(0, 1)})
        schema.validate(item)
        assert schema.conforms(item)

    def test_validate_rejects_missing_value(self):
        schema = Schema.of(values=["tag_id"])
        item = StreamTuple(timestamp=0.0)
        with pytest.raises(SchemaError):
            schema.validate(item)
        assert not schema.conforms(item)

    def test_validate_rejects_missing_uncertain(self):
        schema = Schema.of(uncertain=["x"])
        item = StreamTuple(timestamp=0.0, values={"x": 3.0})
        with pytest.raises(SchemaError):
            schema.validate(item)

    def test_strict_mode_rejects_extra_attributes(self):
        schema = Schema.of(values=["a"])
        item = StreamTuple(timestamp=0.0, values={"a": 1, "b": 2})
        schema.validate(item)  # non-strict is fine
        with pytest.raises(SchemaError):
            schema.validate(item, strict=True)
