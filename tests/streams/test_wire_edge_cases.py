"""Wire-format edge cases: both codecs must round-trip exactly.

The network layer ships every tuple through
:mod:`repro.streams.serialization`, so the codecs must survive the
awkward payloads real streams produce: empty batches, NaN/±inf moments
in value columns, degenerate mixtures, and frames well past 64 KiB.
"""

import math

import numpy as np
import pytest

from repro.distributions import (
    DistributionError,
    Gaussian,
    GaussianMixture,
    HistogramDistribution,
    ParticleDistribution,
    Uniform,
)
from repro.streams import StreamTuple
from repro.streams.batch import TupleBatch
from repro.streams.serialization import (
    decode_batch,
    encode_batch,
    encode_batch_columnar,
    encode_batch_wire,
    wire_format,
)


def roundtrip(batch, encoder=encode_batch_wire):
    payload = encoder(batch)
    assert payload is not None
    return decode_batch(payload).to_tuples()


def assert_exact(expected, got):
    assert len(expected) == len(got)
    for a, b in zip(expected, got):
        assert a.timestamp == b.timestamp or (
            math.isnan(a.timestamp) and math.isnan(b.timestamp)
        )
        assert a.tuple_id == b.tuple_id
        assert a.lineage == b.lineage
        assert set(a.values) == set(b.values)
        for key, value in a.values.items():
            other = b.values[key]
            if isinstance(value, float) and math.isnan(value):
                assert isinstance(other, float) and math.isnan(other)
            else:
                assert other == value and type(other) is type(value)
        assert set(a.uncertain) == set(b.uncertain)


class TestEmptyBatch:
    def test_wire_round_trip(self):
        assert roundtrip(TupleBatch([])) == []

    def test_empty_batch_uses_row_framing(self):
        # Columnar needs at least one row to derive a layout.
        assert encode_batch_columnar(TupleBatch([])) is None
        assert wire_format(encode_batch_wire(TupleBatch([]))) == "rows"


class TestNonFiniteMoments:
    """NaN/±inf in float value columns (e.g. failed derives, sentinel means)."""

    def _batch(self):
        specials = [float("nan"), float("inf"), float("-inf"), 0.0, -0.0, 1e308]
        rows = [
            StreamTuple(
                timestamp=float(i),
                values={"m": specials[i % len(specials)], "tag": f"T{i}"},
                uncertain={"g": Gaussian(1.0 + i, 2.0)},
            )
            for i in range(12)
        ]
        return TupleBatch(rows)

    def test_columnar_round_trip_is_exact(self):
        batch = self._batch()
        payload = encode_batch_columnar(batch)
        assert payload is not None and wire_format(payload) == "columnar"
        assert_exact(batch.to_tuples(), decode_batch(payload).to_tuples())

    def test_row_codec_round_trip_is_exact(self):
        batch = self._batch()
        assert_exact(batch.to_tuples(), roundtrip(batch, encode_batch))

    def test_non_finite_timestamps_round_trip(self):
        rows = [
            StreamTuple(timestamp=float("inf"), values={"v": 1.0}),
            StreamTuple(timestamp=float("-inf"), values={"v": 2.0}),
        ]
        assert_exact(rows, roundtrip(TupleBatch(rows), encode_batch))

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")  # inf moments in numpy dot
    def test_particles_with_infinite_values_round_trip(self):
        particles = ParticleDistribution(
            np.array([1.0, math.inf, -math.inf, 2.5]),
            np.array([0.25, 0.25, 0.25, 0.25]),
        )
        row = StreamTuple(timestamp=0.0, uncertain={"p": particles})
        (got,) = roundtrip(TupleBatch([row]), encode_batch)
        np.testing.assert_array_equal(got.distribution("p").values, particles.values)
        np.testing.assert_array_equal(got.distribution("p").weights, particles.weights)


class TestDegenerateMixtures:
    def test_single_component_mixture_round_trips(self):
        mixture = GaussianMixture([1.0], [2.5], [0.75])
        row = StreamTuple(timestamp=1.0, uncertain={"m": mixture})
        (got,) = roundtrip(TupleBatch([row]), encode_batch)
        decoded = got.distribution("m")
        assert decoded.n_components == 1
        np.testing.assert_allclose(decoded.weights, mixture.weights)
        np.testing.assert_allclose(decoded.means, mixture.means)
        np.testing.assert_allclose(decoded.sigmas, mixture.sigmas)

    def test_zero_component_mixture_is_unrepresentable(self):
        """The wire invariant: a mixture always has >= 1 component.

        The constructor enforces it, so no encoder can ever produce a
        zero-component payload — decoders may rely on ``count >= 1``.
        """
        with pytest.raises(DistributionError):
            GaussianMixture([], [], [])

    def test_mixture_batches_fall_back_to_row_framing(self):
        mixture = GaussianMixture([0.5, 0.5], [0.0, 4.0], [1.0, 2.0])
        rows = [StreamTuple(timestamp=0.0, uncertain={"m": mixture})]
        assert encode_batch_columnar(TupleBatch(rows)) is None
        assert wire_format(encode_batch_wire(TupleBatch(rows))) == "rows"


class TestLargeFrames:
    """Payloads past the 64 KiB mark (u16 temptations, length arithmetic)."""

    def test_columnar_frame_over_64kib(self):
        rows = [
            StreamTuple(
                timestamp=float(i),
                values={"tag": f"tag-{i:06d}", "k": i},
                uncertain={"a": Gaussian(float(i), 1.0), "b": Gaussian(-float(i), 2.0)},
            )
            for i in range(3000)
        ]
        batch = TupleBatch(rows)
        payload = encode_batch_columnar(batch)
        assert payload is not None and len(payload) > (64 << 10)
        assert_exact(rows, decode_batch(payload).to_tuples())

    def test_row_frame_over_64kib_with_mixed_payloads(self):
        rng = np.random.default_rng(5)
        rows = []
        for i in range(400):
            uncertain = {
                "m": GaussianMixture(
                    rng.uniform(0.1, 1.0, size=3),
                    rng.uniform(-5.0, 5.0, size=3),
                    rng.uniform(0.5, 2.0, size=3),
                ),
                "h": HistogramDistribution(
                    np.linspace(0.0, 1.0, 33), np.full(32, 1.0)
                ),
                "u": Uniform(0.0, float(i + 1)),
            }
            rows.append(
                StreamTuple(
                    timestamp=float(i),
                    values={"blob": "x" * 200, "i": i},
                    uncertain=uncertain,
                    lineage=frozenset(range(i, i + 5)),
                )
            )
        payload = encode_batch(TupleBatch(rows))
        assert len(payload) > (64 << 10)
        got = decode_batch(payload).to_tuples()
        assert_exact(rows, got)
        for a, b in zip(rows, got):
            assert a.lineage == b.lineage

    def test_single_string_value_over_64kib(self):
        row = StreamTuple(timestamp=0.0, values={"doc": "y" * (70 << 10)})
        (got,) = roundtrip(TupleBatch([row]), encode_batch)
        assert got.value("doc") == row.value("doc")


class TestDecodeInputTypes:
    """The net layer hands decode_batch slices of receive buffers."""

    def _payload(self):
        rows = [
            StreamTuple(timestamp=1.0, values={"k": 1}, uncertain={"g": Gaussian(0.0, 1.0)})
        ]
        return encode_batch_wire(TupleBatch(rows)), rows

    def test_bytearray_and_memoryview_decode(self):
        payload, rows = self._payload()
        for view in (bytearray(payload), memoryview(payload)):
            assert_exact(rows, decode_batch(view).to_tuples())

    def test_wire_format_classifies_views(self):
        payload, _ = self._payload()
        assert wire_format(memoryview(payload)) == "columnar"
        with pytest.raises(ValueError):
            wire_format(b"nope-not-a-batch")
