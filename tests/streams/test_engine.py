"""Tests for the push-based stream engine."""

import pytest

from repro.streams import (
    CollectSink,
    EngineError,
    Filter,
    Map,
    PassThroughOperator,
    StreamEngine,
    StreamTuple,
    Union,
)
from repro.streams.engine import run_plan


def make_tuples(n):
    return [StreamTuple(timestamp=float(i), values={"i": i}) for i in range(n)]


class TestStreamEngine:
    def test_linear_plan_pushes_through_all_operators(self):
        engine = StreamEngine()
        source = PassThroughOperator(name="src")
        keep_even = Filter(lambda t: t.value("i") % 2 == 0, name="even")
        sink = CollectSink()
        engine.add_source("in", source)
        source.connect(keep_even).connect(sink)

        engine.push_many("in", make_tuples(10))
        engine.finish()
        assert [t.value("i") for t in sink.results] == [0, 2, 4, 6, 8]

    def test_fan_out_to_two_sinks(self):
        engine = StreamEngine()
        source = PassThroughOperator()
        sink_a, sink_b = CollectSink(), CollectSink()
        engine.add_source("in", source)
        source.connect(sink_a)
        source.connect(sink_b)
        engine.push_many("in", make_tuples(3))
        assert len(sink_a.results) == 3
        assert len(sink_b.results) == 3

    def test_fan_in_via_union(self):
        engine = StreamEngine()
        left, right = PassThroughOperator(), PassThroughOperator()
        union = Union()
        sink = CollectSink()
        engine.add_source("l", left)
        engine.add_source("r", right)
        left.connect(union)
        right.connect(union)
        union.connect(sink)
        engine.push("l", make_tuples(1)[0])
        engine.push("r", make_tuples(1)[0])
        assert len(sink.results) == 2

    def test_unknown_source_rejected(self):
        engine = StreamEngine()
        with pytest.raises(EngineError):
            engine.push("nope", make_tuples(1)[0])

    def test_duplicate_source_rejected(self):
        engine = StreamEngine()
        engine.add_source("in", PassThroughOperator())
        with pytest.raises(EngineError):
            engine.add_source("in", PassThroughOperator())

    def test_statistics_reflect_flow(self):
        engine = StreamEngine()
        source = PassThroughOperator(name="src")
        drop_all = Filter(lambda t: False, name="drop")
        sink = CollectSink(name="sink")
        engine.add_source("in", source)
        source.connect(drop_all).connect(sink)
        engine.push_many("in", make_tuples(4))
        stats = dict((name, (tin, tout)) for name, tin, tout in engine.statistics())
        assert stats["src"] == (4, 4)
        assert stats["drop"] == (4, 0)
        assert stats["sink"] == (0, 0)

    def test_validate_detects_cycles(self):
        engine = StreamEngine()
        a, b = PassThroughOperator(), PassThroughOperator()
        engine.add_source("in", a)
        a.connect(b)
        b.connect(a)
        with pytest.raises(EngineError):
            engine.validate()

    def test_validate_accepts_dag(self):
        engine = StreamEngine()
        a, b, c = PassThroughOperator(), PassThroughOperator(), CollectSink()
        engine.add_source("in", a)
        a.connect(b)
        b.connect(c)
        a.connect(c)
        engine.validate()

    def test_finish_flushes_in_topological_order(self):
        # A buffering operator that only emits on flush must still reach the sink.
        class Buffering(PassThroughOperator):
            def __init__(self):
                super().__init__()
                self._held = []

            def process(self, item):
                self._held.append(item)
                return ()

            def flush(self):
                yield from self._held

        engine = StreamEngine()
        source = PassThroughOperator()
        buffering = Buffering()
        sink = CollectSink()
        engine.add_source("in", source)
        source.connect(buffering).connect(sink)
        engine.push_many("in", make_tuples(3))
        assert sink.results == []
        engine.finish()
        assert len(sink.results) == 3


class TestRunPlan:
    def test_runs_linear_plan_and_collects(self):
        source = Map(lambda t: t.derive(values={"j": t.value("i") + 1}))
        results = run_plan(source, make_tuples(3))
        assert [t.value("j") for t in results] == [1, 2, 3]

    def test_rejects_branching_plan_without_sink(self):
        source = PassThroughOperator()
        source.connect(PassThroughOperator())
        source.connect(PassThroughOperator())
        with pytest.raises(EngineError):
            run_plan(source, make_tuples(1))
