"""Tests for the basic deterministic operators and operator base class."""

import pytest

from repro.distributions import Gaussian
from repro.streams import (
    AttributeDeriver,
    CallbackSink,
    CollectSink,
    Filter,
    FunctionOperator,
    Map,
    PassThroughOperator,
    StreamTuple,
)
from repro.streams.operators.base import OperatorError


def make_tuple(i, temp=None):
    uncertain = {"temp": Gaussian(temp, 1.0)} if temp is not None else {}
    return StreamTuple(timestamp=float(i), values={"i": i}, uncertain=uncertain)


class TestOperatorBase:
    def test_connect_returns_downstream_for_chaining(self):
        a, b, c = PassThroughOperator(), PassThroughOperator(), CollectSink()
        assert a.connect(b) is b
        b.connect(c)
        assert a.downstream == (b,)
        assert b.downstream == (c,)

    def test_self_connection_rejected(self):
        op = PassThroughOperator()
        with pytest.raises(OperatorError):
            op.connect(op)

    def test_accept_counts_tuples(self):
        op = PassThroughOperator()
        op.accept(make_tuple(0))
        op.accept(make_tuple(1))
        assert op.tuples_in == 2
        assert op.tuples_out == 2
        op.reset_counters()
        assert op.tuples_in == 0

    def test_function_operator_wraps_callable(self):
        def explode(item):
            yield item
            yield item.derive(values={"copy": True})

        op = FunctionOperator(explode)
        outputs = op.accept(make_tuple(0))
        assert len(outputs) == 2
        assert op.name == "explode"


class TestFilterAndMap:
    def test_filter_keeps_matching_tuples(self):
        op = Filter(lambda t: t.value("i") % 2 == 0)
        kept = [t for i in range(6) for t in op.accept(make_tuple(i))]
        assert [t.value("i") for t in kept] == [0, 2, 4]

    def test_map_transforms_tuples(self):
        op = Map(lambda t: t.derive(values={"doubled": t.value("i") * 2}))
        out = op.accept(make_tuple(3))[0]
        assert out.value("doubled") == 6

    def test_map_must_return_stream_tuple(self):
        op = Map(lambda t: 42)
        with pytest.raises(OperatorError):
            op.accept(make_tuple(0))


class TestAttributeDeriver:
    def test_adds_value_and_uncertain_attributes(self):
        op = AttributeDeriver(
            value_functions={"weight": lambda t: 10.0 * t.value("i")},
            uncertain_functions={"scaled_temp": lambda t: t.distribution("temp").scale(2.0)},
        )
        out = op.accept(make_tuple(2, temp=30.0))[0]
        assert out.value("weight") == 20.0
        assert out.distribution("scaled_temp").mu == pytest.approx(60.0)
        # Original attributes preserved.
        assert out.value("i") == 2
        assert out.has_uncertain("temp")

    def test_uncertain_function_must_return_distribution(self):
        op = AttributeDeriver(uncertain_functions={"bad": lambda t: 3.0})
        with pytest.raises(OperatorError):
            op.accept(make_tuple(0, temp=1.0))

    def test_requires_at_least_one_function(self):
        with pytest.raises(OperatorError):
            AttributeDeriver()


class TestSinks:
    def test_collect_sink_accumulates(self):
        sink = CollectSink()
        for i in range(3):
            sink.accept(make_tuple(i))
        assert len(sink.results) == 3
        sink.clear()
        assert sink.results == []

    def test_callback_sink_invokes_callback(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.accept(make_tuple(7))
        assert seen[0].value("i") == 7
