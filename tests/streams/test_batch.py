"""Tests for the columnar TupleBatch container and batch operator hooks."""

import numpy as np
import pytest

from repro.distributions import Gaussian, Uniform
from repro.streams import (
    CollectSink,
    Filter,
    StreamTuple,
    TupleBatch,
    decode_batch,
    encode_batch,
)
from repro.streams.operators.base import Operator, PassThroughOperator


def make_gaussian_tuples(n, attribute="value"):
    return [
        StreamTuple(
            timestamp=float(i),
            values={"i": i},
            uncertain={attribute: Gaussian(float(i) + 1.0, 0.5 + i * 0.1)},
        )
        for i in range(n)
    ]


class TestTupleBatchContainer:
    def test_roundtrip_preserves_rows_and_order(self):
        rows = make_gaussian_tuples(5)
        batch = TupleBatch.from_tuples(rows)
        assert len(batch) == 5
        assert batch.to_tuples() == rows
        assert [t.value("i") for t in batch] == [0, 1, 2, 3, 4]
        assert batch[2] is rows[2]

    def test_slicing_returns_batches(self):
        batch = TupleBatch(make_gaussian_tuples(6))
        head = batch[:2]
        assert isinstance(head, TupleBatch)
        assert len(head) == 2

    def test_chunks_cover_all_rows(self):
        batch = TupleBatch(make_gaussian_tuples(7))
        chunks = list(batch.chunks(3))
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert TupleBatch.concat(chunks).to_tuples() == batch.to_tuples()

    def test_chunks_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            list(TupleBatch(make_gaussian_tuples(2)).chunks(0))

    def test_select_applies_boolean_mask(self):
        batch = TupleBatch(make_gaussian_tuples(4))
        kept = batch.select([True, False, False, True])
        assert [t.value("i") for t in kept] == [0, 3]

    def test_select_rejects_wrong_length_mask(self):
        with pytest.raises(ValueError):
            TupleBatch(make_gaussian_tuples(3)).select([True])


class TestColumnarViews:
    def test_timestamps_column(self):
        batch = TupleBatch(make_gaussian_tuples(4))
        ts = batch.timestamps()
        assert ts.dtype == np.float64
        np.testing.assert_array_equal(ts, [0.0, 1.0, 2.0, 3.0])
        assert batch.timestamps() is ts  # cached

    def test_value_and_numeric_columns(self):
        batch = TupleBatch(make_gaussian_tuples(3))
        assert list(batch.value_column("i")) == [0, 1, 2]
        numeric = batch.numeric_column("i")
        assert numeric.dtype == np.float64
        np.testing.assert_array_equal(numeric, [0.0, 1.0, 2.0])

    def test_gaussian_params_fast_path(self):
        batch = TupleBatch(make_gaussian_tuples(3))
        params = batch.gaussian_params("value")
        assert params is not None
        mu, sigma = params
        np.testing.assert_allclose(mu, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(sigma, [0.5, 0.6, 0.7])
        assert batch.gaussian_params("value") is params  # cached

    def test_gaussian_params_none_for_mixed_batches(self):
        rows = make_gaussian_tuples(2)
        rows.append(
            StreamTuple(timestamp=2.0, values={"i": 2}, uncertain={"value": Uniform(0.0, 1.0)})
        )
        batch = TupleBatch(rows)
        assert batch.gaussian_params("value") is None
        assert batch.gaussian_params("value") is None  # cached negative result

    def test_moments_match_distribution_moments(self):
        rows = make_gaussian_tuples(2)
        rows.append(
            StreamTuple(timestamp=2.0, values={"i": 2}, uncertain={"value": Uniform(0.0, 6.0)})
        )
        batch = TupleBatch(rows)
        moments = batch.moments("value")
        assert moments is not None
        means, variances = moments
        np.testing.assert_allclose(means, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(variances, [0.25, 0.36, 3.0])

    def test_moments_none_when_attribute_missing(self):
        rows = make_gaussian_tuples(1) + [StreamTuple(timestamp=1.0, values={"i": 1})]
        assert TupleBatch(rows).moments("value") is None

    def test_uncertain_column_exposes_distributions(self):
        batch = TupleBatch(make_gaussian_tuples(2))
        col = batch.uncertain_column("value")
        assert isinstance(col[0], Gaussian)
        assert col[1].mu == 2.0


class TestBatchSerialization:
    def test_encode_decode_roundtrip(self):
        batch = TupleBatch(make_gaussian_tuples(4))
        decoded = decode_batch(encode_batch(batch))
        assert len(decoded) == len(batch)
        for original, restored in zip(batch, decoded):
            assert restored.timestamp == original.timestamp
            assert restored.values == original.values
            assert restored.lineage == original.lineage
            assert restored.distribution("value") == original.distribution("value")

    def test_empty_batch_roundtrip(self):
        assert len(decode_batch(encode_batch(TupleBatch()))) == 0

    def test_decode_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_batch(b"not a batch")

    def test_decode_rejects_truncated_payload(self):
        payload = encode_batch(TupleBatch(make_gaussian_tuples(3)))
        with pytest.raises(ValueError, match="truncated"):
            decode_batch(payload[:-5])

    def test_decode_rejects_trailing_bytes(self):
        payload = encode_batch(TupleBatch(make_gaussian_tuples(2)))
        with pytest.raises(ValueError, match="trailing bytes"):
            decode_batch(payload + b"\x00\x01")


class TestOperatorBatchHooks:
    def test_default_process_batch_matches_per_tuple_processing(self):
        class Doubler(Operator):
            def process(self, item):
                yield item.derive(values={"i": item.value("i") * 2})

        rows = make_gaussian_tuples(5)
        per_tuple = [out.value("i") for t in rows for out in Doubler().process(t)]
        batched = Doubler().process_batch(TupleBatch(rows))
        assert [t.value("i") for t in batched] == per_tuple

    def test_accept_batch_counts_and_times(self):
        op = PassThroughOperator()
        out = op.accept_batch(TupleBatch(make_gaussian_tuples(4)))
        assert len(out) == 4
        assert op.tuples_in == 4
        assert op.tuples_out == 4
        assert op.batches_in == 1
        assert op.processing_seconds >= 0.0
        op.reset_counters()
        assert (op.tuples_in, op.batches_in, op.processing_seconds) == (0, 0, 0.0)

    def test_filter_batch_matches_tuple_path(self):
        rows = make_gaussian_tuples(6)
        keep_even = Filter(lambda t: t.value("i") % 2 == 0)
        batched = keep_even.process_batch(TupleBatch(rows))
        assert [t.value("i") for t in batched] == [0, 2, 4]

    def test_filter_vectorised_batch_predicate(self):
        rows = make_gaussian_tuples(6)
        keep_late = Filter(
            lambda t: t.timestamp >= 3.0,
            batch_predicate=lambda batch: batch.timestamps() >= 3.0,
        )
        batched = keep_late.process_batch(TupleBatch(rows))
        assert [t.value("i") for t in batched] == [3, 4, 5]

    def test_collect_sink_batch_collects_all(self):
        sink = CollectSink()
        out = sink.accept_batch(TupleBatch(make_gaussian_tuples(3)))
        assert len(out) == 0
        assert [t.value("i") for t in sink.results] == [0, 1, 2]

    def test_subclass_overriding_process_keeps_batch_semantics(self):
        # A subclass that only overrides process() must see its override
        # honoured on the batch path too (the inherited fast path would
        # otherwise silently forward the batch unchanged).
        class DropAll(PassThroughOperator):
            def process(self, item):
                return ()

        out = DropAll().process_batch(TupleBatch(make_gaussian_tuples(3)))
        assert len(out) == 0

        class KeepFirstOnly(Filter):
            def process(self, item):
                if item.value("i") == 0:
                    yield item

        out = KeepFirstOnly(lambda t: True).process_batch(TupleBatch(make_gaussian_tuples(3)))
        assert [t.value("i") for t in out] == [0]
