"""Tests for lineage tracking, the tuple archive, and correlation analysis."""

import pytest

from repro.distributions import Gaussian
from repro.streams import (
    StreamTuple,
    TupleArchive,
    are_independent,
    correlation_groups,
)


def base_tuple(ts=0.0):
    return StreamTuple(timestamp=ts, values={"kind": "base"}, uncertain={"v": Gaussian(0, 1)})


class TestTupleArchive:
    def test_archive_and_resolve(self):
        archive = TupleArchive()
        a, b = base_tuple(), base_tuple()
        archive.archive_many([a, b])
        assert len(archive) == 2
        assert a.tuple_id in archive
        resolved = archive.resolve({a.tuple_id, b.tuple_id})
        assert {t.tuple_id for t in resolved} == {a.tuple_id, b.tuple_id}

    def test_resolve_unknown_id_raises(self):
        archive = TupleArchive()
        with pytest.raises(KeyError):
            archive.resolve({123456})

    def test_eviction_by_watermark(self):
        archive = TupleArchive()
        old, new = base_tuple(ts=0.0), base_tuple(ts=10.0)
        archive.archive_many([old, new])
        dropped = archive.evict_older_than(5.0)
        assert dropped == 1
        assert new.tuple_id in archive
        assert old.tuple_id not in archive

    def test_clear(self):
        archive = TupleArchive()
        archive.archive(base_tuple())
        archive.clear()
        assert len(archive) == 0


class TestCorrelationAnalysis:
    def test_independent_tuples(self):
        items = [base_tuple() for _ in range(4)]
        assert are_independent(items)
        groups = correlation_groups(items)
        assert len(groups) == 4

    def test_derived_tuples_share_lineage(self):
        base = base_tuple()
        d1 = base.derive(values={"n": 1})
        d2 = base.derive(values={"n": 2})
        assert not are_independent([d1, d2])
        groups = correlation_groups([d1, d2])
        assert len(groups) == 1
        assert len(groups[0]) == 2

    def test_mixed_groups(self):
        base_a, base_b = base_tuple(), base_tuple()
        derived_a1 = base_a.derive(values={"n": 1})
        derived_a2 = base_a.derive(values={"n": 2})
        lone = base_b.derive(values={"n": 3})
        groups = correlation_groups([derived_a1, derived_a2, lone])
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 2]

    def test_transitive_correlation_via_shared_join(self):
        a, b, c = base_tuple(), base_tuple(), base_tuple()
        ab = StreamTuple.merge(a, b)
        bc = StreamTuple.merge(b, c)
        # ab and bc share base b, so all three end up in one group.
        groups = correlation_groups([ab, bc])
        assert len(groups) == 1

    def test_empty_input(self):
        assert are_independent([])
        assert correlation_groups([]) == []
