"""Property-based round-trip tests for the tuple/distribution serialization."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions import Gaussian, GaussianMixture, ParticleDistribution
from repro.streams import StreamTuple, decode_tuple, encode_tuple

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False)


@st.composite
def gaussians(draw):
    return Gaussian(draw(finite), draw(positive))


@st.composite
def mixtures(draw):
    k = draw(st.integers(min_value=1, max_value=4))
    weights = [draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(k)]
    means = [draw(finite) for _ in range(k)]
    sigmas = [draw(positive) for _ in range(k)]
    return GaussianMixture(weights, means, sigmas)


@st.composite
def particles(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    values = [draw(finite) for _ in range(n)]
    return ParticleDistribution(values)


@st.composite
def stream_tuples(draw):
    values = {}
    for i in range(draw(st.integers(min_value=0, max_value=4))):
        kind = draw(st.sampled_from(["int", "float", "str", "bool"]))
        if kind == "int":
            values[f"v{i}"] = draw(st.integers(min_value=-(2**40), max_value=2**40))
        elif kind == "float":
            values[f"v{i}"] = draw(finite)
        elif kind == "str":
            values[f"v{i}"] = draw(st.text(max_size=20))
        else:
            values[f"v{i}"] = draw(st.booleans())
    uncertain = {}
    for i in range(draw(st.integers(min_value=0, max_value=3))):
        uncertain[f"u{i}"] = draw(st.one_of(gaussians(), mixtures(), particles()))
    lineage = frozenset(draw(st.sets(st.integers(min_value=1, max_value=10**6), max_size=6)))
    return StreamTuple(
        timestamp=draw(finite),
        values=values,
        uncertain=uncertain,
        lineage=lineage,
    )


@given(item=stream_tuples())
@settings(max_examples=80, deadline=None)
def test_tuple_roundtrip_preserves_content(item):
    decoded = decode_tuple(encode_tuple(item))
    assert decoded.timestamp == item.timestamp
    assert decoded.tuple_id == item.tuple_id
    assert decoded.lineage == item.lineage
    assert set(decoded.values) == set(item.values)
    for name, value in item.values.items():
        if isinstance(value, float):
            assert decoded.values[name] == value or np.isclose(decoded.values[name], value)
        else:
            assert decoded.values[name] == value
    assert set(decoded.uncertain) == set(item.uncertain)
    for name, dist in item.uncertain.items():
        assert np.isclose(decoded.distribution(name).mean(), dist.mean(), rtol=1e-9, atol=1e-9)
        assert np.isclose(
            decoded.distribution(name).variance(), dist.variance(), rtol=1e-9, atol=1e-9
        )
