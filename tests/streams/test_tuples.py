"""Tests for StreamTuple: attributes, derivation, merging, lineage."""

import pytest

from repro.distributions import Gaussian
from repro.streams import StreamTuple


def make_tuple(ts=0.0, **uncertain):
    return StreamTuple(timestamp=ts, values={"tag_id": "O1"}, uncertain=uncertain)


class TestStreamTuple:
    def test_value_and_distribution_access(self):
        t = make_tuple(x=Gaussian(1.0, 0.5))
        assert t.value("tag_id") == "O1"
        assert t.distribution("x").mu == 1.0
        assert t.has_value("tag_id")
        assert t.has_uncertain("x")
        assert not t.has_uncertain("y")

    def test_expected_value(self):
        t = make_tuple(x=Gaussian(4.0, 1.0))
        assert t.expected_value("x") == pytest.approx(4.0)

    def test_unique_ids_and_default_lineage(self):
        a = make_tuple()
        b = make_tuple()
        assert a.tuple_id != b.tuple_id
        assert a.lineage == frozenset({a.tuple_id})

    def test_uncertain_values_must_be_distributions(self):
        with pytest.raises(TypeError):
            StreamTuple(timestamp=0.0, uncertain={"x": 3.0})

    def test_derive_adds_attributes_and_keeps_lineage(self):
        base = make_tuple(x=Gaussian(0.0, 1.0))
        derived = base.derive(values={"area": (1, 2)}, uncertain={"y": Gaussian(1.0, 1.0)})
        assert derived.value("area") == (1, 2)
        assert derived.value("tag_id") == "O1"
        assert derived.has_uncertain("x") and derived.has_uncertain("y")
        assert base.lineage <= derived.lineage

    def test_derive_with_replace(self):
        base = make_tuple(x=Gaussian(0.0, 1.0))
        derived = base.derive(values={"only": 1}, replace_values=True, replace_uncertain=True)
        assert not derived.has_value("tag_id")
        assert not derived.has_uncertain("x")
        assert derived.value("only") == 1

    def test_derive_extra_lineage(self):
        base = make_tuple()
        derived = base.derive(extra_lineage=[999])
        assert 999 in derived.lineage
        assert base.tuple_id in derived.lineage

    def test_merge_combines_attributes_and_lineage(self):
        left = StreamTuple(timestamp=1.0, values={"tag_id": "O1"}, uncertain={"x": Gaussian(0, 1)})
        right = StreamTuple(timestamp=2.0, values={"sensor": "T1"}, uncertain={"temp": Gaussian(70, 2)})
        merged = StreamTuple.merge(left, right)
        assert merged.timestamp == 2.0
        assert merged.value("tag_id") == "O1"
        assert merged.value("sensor") == "T1"
        assert merged.has_uncertain("x") and merged.has_uncertain("temp")
        assert merged.lineage == left.lineage | right.lineage

    def test_merge_with_prefixes_resolves_clashes(self):
        left = StreamTuple(timestamp=0.0, values={"id": 1}, uncertain={"x": Gaussian(0, 1)})
        right = StreamTuple(timestamp=0.0, values={"id": 2}, uncertain={"x": Gaussian(5, 1)})
        merged = StreamTuple.merge(left, right, prefix_left="l_", prefix_right="r_")
        assert merged.value("l_id") == 1
        assert merged.value("r_id") == 2
        assert merged.distribution("l_x").mu == 0.0
        assert merged.distribution("r_x").mu == 5.0

    def test_shares_lineage_detection(self):
        base = make_tuple()
        other = make_tuple()
        derived = base.derive(values={"z": 1})
        assert derived.shares_lineage_with(base)
        assert not derived.shares_lineage_with(other)

    def test_attribute_names_iterates_both_kinds(self):
        t = make_tuple(x=Gaussian(0, 1))
        assert set(t.attribute_names()) == {"tag_id", "x"}

    def test_immutability_of_dataclass_fields(self):
        t = make_tuple()
        with pytest.raises(AttributeError):
            t.timestamp = 5.0
