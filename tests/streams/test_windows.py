"""Tests for window specifications (tumbling, sliding, now)."""

import pytest

from repro.streams import (
    NowWindow,
    SlidingTimeWindow,
    StreamTuple,
    TumblingCountWindow,
    TumblingTimeWindow,
    iter_windows,
)


def tuples_at(*timestamps):
    return [StreamTuple(timestamp=float(t), values={"i": i}) for i, t in enumerate(timestamps)]


class TestTumblingCountWindow:
    def test_closes_every_n_tuples(self):
        windows = list(iter_windows(TumblingCountWindow(3), tuples_at(*range(7))))
        assert [len(w.items) for w in windows] == [3, 3, 1]

    def test_no_partial_window_until_flush(self):
        buffer = TumblingCountWindow(5).new_buffer()
        for item in tuples_at(0, 1, 2):
            assert buffer.add(item) == []
        flushed = buffer.flush()
        assert len(flushed) == 1
        assert len(flushed[0].items) == 3

    def test_window_boundaries_are_tuple_timestamps(self):
        windows = list(iter_windows(TumblingCountWindow(2), tuples_at(10, 11, 12, 13)))
        assert windows[0].start == 10 and windows[0].end == 11
        assert windows[1].start == 12 and windows[1].end == 13

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TumblingCountWindow(0)


class TestTumblingTimeWindow:
    def test_groups_by_time_bucket(self):
        items = tuples_at(0.1, 0.2, 4.9, 5.1, 9.9, 10.2)
        windows = list(iter_windows(TumblingTimeWindow(5.0), items))
        assert [len(w.items) for w in windows] == [3, 2, 1]
        assert windows[0].start == 0.0 and windows[0].end == 5.0
        assert windows[1].start == 5.0 and windows[1].end == 10.0

    def test_out_of_order_across_windows_rejected(self):
        buffer = TumblingTimeWindow(1.0).new_buffer()
        buffer.add(StreamTuple(timestamp=5.0))
        with pytest.raises(ValueError):
            buffer.add(StreamTuple(timestamp=0.5))

    def test_empty_gap_windows_are_skipped(self):
        items = tuples_at(0.5, 20.5)
        windows = list(iter_windows(TumblingTimeWindow(5.0), items))
        assert len(windows) == 2
        assert windows[1].start == 20.0

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            TumblingTimeWindow(0.0)


class TestSlidingTimeWindow:
    def test_emits_window_content_per_tuple(self):
        items = tuples_at(0.0, 1.0, 2.0, 5.0)
        windows = list(iter_windows(SlidingTimeWindow(3.0), items))
        assert [len(w.items) for w in windows] == [1, 2, 3, 1]

    def test_expiry_by_timestamp(self):
        buffer = SlidingTimeWindow(2.0).new_buffer()
        buffer.add(StreamTuple(timestamp=0.0))
        closes = buffer.add(StreamTuple(timestamp=1.9))
        assert len(closes[0].items) == 2
        closes = buffer.add(StreamTuple(timestamp=4.5))
        assert len(closes[0].items) == 1

    def test_flush_returns_nothing(self):
        buffer = SlidingTimeWindow(1.0).new_buffer()
        buffer.add(StreamTuple(timestamp=0.0))
        assert buffer.flush() == []


class TestNowWindow:
    def test_each_tuple_is_its_own_window(self):
        windows = list(iter_windows(NowWindow(), tuples_at(0, 1, 2)))
        assert len(windows) == 3
        assert all(len(w.items) == 1 for w in windows)
