"""Tests for tuple / distribution serialization and stream-volume accounting."""

import numpy as np
import pytest

from repro.distributions import (
    Gaussian,
    GaussianMixture,
    HistogramDistribution,
    ParticleDistribution,
    Uniform,
)
from repro.streams import (
    StreamTuple,
    decode_distribution,
    decode_tuple,
    distribution_size_bytes,
    encode_distribution,
    encode_tuple,
    tuple_size_bytes,
)

DISTRIBUTIONS = [
    Gaussian(2.5, 0.75),
    Uniform(-1.0, 4.0),
    GaussianMixture([0.3, 0.7], [0.0, 5.0], [1.0, 2.0]),
    ParticleDistribution(np.linspace(0, 1, 50), np.full(50, 0.02)),
    HistogramDistribution([0.0, 1.0, 2.0, 3.0], [0.2, 0.5, 0.3]),
]


@pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=lambda d: type(d).__name__)
class TestDistributionRoundTrip:
    def test_roundtrip_preserves_moments(self, dist):
        payload = encode_distribution(dist)
        decoded, consumed = decode_distribution(payload)
        assert consumed == len(payload)
        assert type(decoded) is type(dist)
        assert decoded.mean() == pytest.approx(dist.mean(), rel=1e-9)
        assert decoded.variance() == pytest.approx(dist.variance(), rel=1e-9)

    def test_declared_size_matches_actual(self, dist):
        assert distribution_size_bytes(dist) == len(encode_distribution(dist))


class TestTupleRoundTrip:
    def make_tuple(self):
        return StreamTuple(
            timestamp=12.5,
            values={"tag_id": "O0042", "count": 3, "ratio": 0.75, "flag": True, "area": (2, 5)},
            uncertain={"x": Gaussian(10.0, 1.0), "w": GaussianMixture([0.5, 0.5], [0, 1], [1, 1])},
            lineage=frozenset({11, 22, 33}),
        )

    def test_roundtrip_preserves_everything(self):
        original = self.make_tuple()
        decoded = decode_tuple(encode_tuple(original))
        assert decoded.timestamp == original.timestamp
        assert decoded.tuple_id == original.tuple_id
        assert decoded.values == original.values
        assert decoded.lineage == original.lineage
        assert decoded.distribution("x").mu == pytest.approx(10.0)
        assert decoded.distribution("w").n_components == 2

    def test_tuple_size_accounts_for_payload(self):
        original = self.make_tuple()
        assert tuple_size_bytes(original) == len(encode_tuple(original))


class TestStreamVolumeClaim:
    def test_particle_tuples_are_orders_of_magnitude_larger(self):
        """Section 4.3: shipping particles inflates the stream volume ~100x."""
        particles = ParticleDistribution(np.random.default_rng(0).normal(size=200))
        gaussian = Gaussian(particles.mean(), max(particles.variance(), 1e-9) ** 0.5)
        particle_tuple = StreamTuple(timestamp=0.0, values={"tag_id": "O1"}, uncertain={"x": particles})
        gaussian_tuple = StreamTuple(timestamp=0.0, values={"tag_id": "O1"}, uncertain={"x": gaussian})
        ratio = tuple_size_bytes(particle_tuple) / tuple_size_bytes(gaussian_tuple)
        assert ratio > 30.0

    def test_unknown_type_rejected(self):
        class Fake:
            pass

        with pytest.raises(TypeError):
            encode_distribution(Fake())  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            distribution_size_bytes(Fake())  # type: ignore[arg-type]
