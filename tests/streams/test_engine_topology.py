"""Engine topology edge cases: diamonds, deep chains, multi-source plans.

These guard the iterative scheduler (recursion removal) and the single-pass
tri-color cycle check.
"""

import pytest

from repro.streams import (
    CollectSink,
    EngineError,
    PassThroughOperator,
    StreamEngine,
    StreamTuple,
    TupleBatch,
    Union,
)


def make_tuples(n):
    return [StreamTuple(timestamp=float(i), values={"i": i}) for i in range(n)]


class Buffering(PassThroughOperator):
    """Holds every tuple until flush; used to probe flush ordering."""

    def __init__(self, name=None):
        super().__init__(name=name)
        self._held = []

    def process(self, item):
        self._held.append(item)
        return ()

    def flush(self):
        held, self._held = self._held, []
        return held


class TestDiamondDag:
    def _build(self, batch_size=None):
        engine = StreamEngine(batch_size=batch_size)
        source = PassThroughOperator(name="src")
        left = Buffering(name="left")
        right = Buffering(name="right")
        join = Union(name="join")
        sink = CollectSink(name="sink")
        engine.add_source("in", source)
        source.connect(left)
        source.connect(right)
        left.connect(join)
        right.connect(join)
        join.connect(sink)
        return engine, sink

    @pytest.mark.parametrize("batch_size", [None, 2])
    def test_diamond_flush_reaches_sink_once_per_branch(self, batch_size):
        engine, sink = self._build(batch_size)
        engine.push_many("in", make_tuples(3))
        assert sink.results == []  # both branches buffer until flush
        engine.finish()
        # Each tuple fans out to both branches, so the sink sees 6 tuples,
        # and flush order is topological: both branches before the join.
        assert len(sink.results) == 6
        assert sorted(t.value("i") for t in sink.results) == [0, 0, 1, 1, 2, 2]

    def test_diamond_validates_as_dag(self):
        engine, _ = self._build()
        engine.validate()  # cross edges to already-explored boxes are no cycle


class TestDeepChains:
    CHAIN_LENGTH = 1200

    def _build_chain(self, batch_size=None):
        engine = StreamEngine(batch_size=batch_size)
        head = PassThroughOperator(name="op0")
        engine.add_source("in", head)
        tail = head
        for i in range(1, self.CHAIN_LENGTH):
            tail = tail.connect(PassThroughOperator(name=f"op{i}"))
        sink = CollectSink()
        tail.connect(sink)
        return engine, sink

    def test_tuple_path_survives_1000_plus_operators(self):
        engine, sink = self._build_chain()
        engine.push_many("in", make_tuples(3))
        engine.finish()
        assert [t.value("i") for t in sink.results] == [0, 1, 2]

    def test_batch_path_survives_1000_plus_operators(self):
        engine, sink = self._build_chain(batch_size=2)
        engine.push_many("in", make_tuples(5))
        engine.finish()
        assert [t.value("i") for t in sink.results] == [0, 1, 2, 3, 4]

    def test_deep_chain_validates_without_recursion(self):
        engine, _ = self._build_chain()
        engine.validate()


class TestMultiSourcePlans:
    def test_two_sources_merge_into_one_stream(self):
        engine = StreamEngine()
        left = PassThroughOperator(name="left")
        right = PassThroughOperator(name="right")
        union = Union()
        sink = CollectSink()
        engine.add_source("l", left)
        engine.add_source("r", right)
        left.connect(union)
        right.connect(union)
        union.connect(sink)
        engine.push_many("l", make_tuples(2))
        engine.push_many("r", make_tuples(3))
        assert len(sink.results) == 5

    def test_batch_push_per_source(self):
        engine = StreamEngine()
        left = PassThroughOperator(name="left")
        right = PassThroughOperator(name="right")
        union = Union()
        sink = CollectSink()
        engine.add_source("l", left)
        engine.add_source("r", right)
        left.connect(union)
        right.connect(union)
        union.connect(sink)
        engine.push_batch("l", TupleBatch(make_tuples(4)))
        engine.push_batch("r", make_tuples(2))  # plain iterables are wrapped
        assert len(sink.results) == 6

    def test_statistics_cover_all_sources(self):
        engine = StreamEngine()
        a = PassThroughOperator(name="a")
        b = PassThroughOperator(name="b")
        engine.add_source("a", a)
        engine.add_source("b", b)
        names = {name for name, _, _ in engine.statistics()}
        assert names == {"a", "b"}


class TestCycleDetection:
    def test_long_cycle_detected_in_one_pass(self):
        engine = StreamEngine()
        a = PassThroughOperator(name="a")
        b = PassThroughOperator(name="b")
        c = PassThroughOperator(name="c")
        engine.add_source("in", a)
        a.connect(b)
        b.connect(c)
        c.connect(a)
        with pytest.raises(EngineError, match="cycle detected through operator"):
            engine.validate()

    def test_cycle_off_the_main_path_detected(self):
        engine = StreamEngine()
        a = PassThroughOperator(name="a")
        b = PassThroughOperator(name="b")
        c = PassThroughOperator(name="c")
        engine.add_source("in", a)
        a.connect(b)
        b.connect(c)
        c.connect(b)  # cycle not involving the source
        with pytest.raises(EngineError, match="cycle detected through operator 'b'"):
            engine.validate()
