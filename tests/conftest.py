"""Shared pytest fixtures for the reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def rng_factory():
    """A factory of deterministic generators with distinct seeds."""

    def make(seed: int = 0) -> np.random.Generator:
        return np.random.default_rng(1000 + seed)

    return make
