"""History-ring persistence: checkpoint → SIGKILL → recover → monotonic.

The ring rides in a ``history-*.json`` checkpoint sidecar.  Timestamps
are ``CLOCK_MONOTONIC`` (boot-relative, process-independent on Linux),
so ticks recorded *after* recovery in a fresh process land strictly
later than the restored ones — the "history continues monotonically"
claim, proven here across a hard kill.
"""

import os
import pathlib
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np

from repro import QuerySession, obs
from repro.recovery.checkpoint import CheckpointStore

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

TOTALS = "SELECT SUM(w) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"

CHILD_SCRIPT = textwrap.dedent(
    """
    import sys, time
    import numpy as np
    from repro import QuerySession
    from repro.distributions import Gaussian
    from repro.streams import StreamTuple

    directory = sys.argv[1]
    rng = np.random.default_rng(17)
    tuples = [
        StreamTuple(
            timestamp=i * 0.2,
            values={"tag_id": f"T{i % 5}"},
            uncertain={"w": Gaussian(float(rng.uniform(20.0, 60.0)), 2.0)},
        )
        for i in range(200)
    ]
    session = QuerySession()
    session.create_stream(
        "rfid", values=("tag_id",), uncertain=("w",), family="gaussian",
        rate_hint=5.0,
    )
    session.register("totals", @TOTALS@)
    for start in (0, 50, 100):
        session.push_many("rfid", tuples[start : start + 50])
        session.record_tick()
        time.sleep(0.01)  # distinct tick timestamps
    session.checkpoint(directory)
    print("CHECKPOINTED", flush=True)
    time.sleep(120)  # killed long before this expires
    """
).replace("@TOTALS@", repr(TOTALS))


def declare(session):
    session.create_stream(
        "rfid", values=("tag_id",), uncertain=("w",), family="gaussian",
        rate_hint=5.0,
    )


class TestHistorySidecar:
    def test_checkpoint_writes_history_sidecar(self, tmp_path, rfid_tuples):
        session = QuerySession()
        declare(session)
        session.register("totals", TOTALS)
        session.push_many("rfid", rfid_tuples[:100])
        session.record_tick()
        session.record_tick()
        info = session.checkpoint(str(tmp_path))
        blob = CheckpointStore(str(tmp_path)).load_history(info.checkpoint_id)
        session.close()
        assert blob is not None
        restored = obs.HistoryRing.from_blob(blob)
        assert len(restored) == 2

    def test_tickless_session_writes_no_history_sidecar(self, tmp_path):
        session = QuerySession()
        declare(session)
        info = session.checkpoint(str(tmp_path))
        session.close()
        assert CheckpointStore(str(tmp_path)).load_history(
            info.checkpoint_id
        ) is None

    def test_in_process_recover_restores_the_ring(self, tmp_path, rfid_tuples):
        session = QuerySession()
        declare(session)
        session.register("totals", TOTALS)
        session.push_many("rfid", rfid_tuples[:100])
        session.record_tick()
        session.record_tick()
        session.checkpoint(str(tmp_path))
        session.close()

        recovered = QuerySession.recover(str(tmp_path))
        try:
            assert recovered.recovered_history is not None
            assert len(recovered.recovered_history.get("series", {})) > 0
            assert len(recovered.history) == 2
            # The health engine evaluates off the restored ring.
            assert recovered.health.history is recovered.history
        finally:
            recovered.close()


class TestCrashRecovery:
    def test_history_survives_sigkill_and_continues_monotonically(
        self, tmp_path
    ):
        directory = str(tmp_path / "ckpts")
        env = dict(os.environ, PYTHONPATH=SRC)
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD_SCRIPT, directory],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            start_new_session=True,
            text=True,
        )
        try:
            marker = child.stdout.readline().strip()
            assert marker == "CHECKPOINTED", child.stderr.read()
            os.killpg(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                os.killpg(child.pid, signal.SIGKILL)
            child.stdout.close()
            child.stderr.close()

        recovered = QuerySession.recover(directory)
        try:
            assert len(recovered.history) == 3  # the child's ticks survived
            restored_keys = recovered.history.keys()
            assert restored_keys, "the restored ring must hold series"

            # New ticks in the recovered process extend the same ring,
            # and the shared monotonic clock keeps time going forward.
            recovered.record_tick()
            recovered.record_tick()
            assert len(recovered.history) == 5

            # Tick times are delta-encoded in the blob: after the
            # absolute first entry, every step must be a positive delta
            # — including the one that spans the crash.
            steps = recovered.history.to_blob()["times"]
            assert len(steps) == 5
            assert all(
                step is not None and step > 0 for step in steps[1:]
            ), f"history time went backwards across recovery: {steps}"

            # A series recorded on both sides of the crash still
            # supports burn-rate queries over the whole ring.  (Pin the
            # child's query: the process-global registry may hold
            # reset-to-zero series left behind by earlier tests, which
            # appear only on the parent's ticks.)
            latencies = [
                key for key in recovered.history.keys()
                if key.startswith('repro_query_latency_seconds{query="totals"}')
            ]
            assert latencies, "the child's latency series must be restored"
            times, _ = recovered.history.series(latencies[0])
            assert times.size >= 3
            assert np.all(np.diff(times) > 0)
        finally:
            recovered.close()
