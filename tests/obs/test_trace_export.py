"""Flight-recorder end-to-end: TRACE verb, Chrome export, edge cases.

The acceptance case: Q1 (windowed SUM) ingested over TCP into a
4-shard forked session with sampling forced on, the server's span
buffer drained through the TRACE verb, and the exported Chrome trace
validated — parseable JSON, monotonic timestamps, and every worker-side
``shard.exec`` span carrying a coordinator-side parent recorded in a
*different* process.
"""

import json

import pytest

from repro import QuerySession, obs
from repro.net import StreamClient, serve_in_thread
from repro.obs import export_chrome_trace

TOTALS = "SELECT SUM(w) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"
HOT = "SELECT * FROM rfid WHERE w > 40 WITH PROBABILITY 0.5"


def declare(target):
    target.create_stream(
        "rfid", values=("tag_id",), uncertain=("w",), family="gaussian",
        rate_hint=5.0,
    )


class TestTraceVerbEndToEnd:
    def collect(self, rfid_tuples):
        handle = serve_in_thread(
            QuerySession(workers=4, shard_backend="process", trace_sample=1)
        )
        try:
            with StreamClient(handle.address, timeout=30.0) as client:
                client.declare_stream(
                    "rfid",
                    values=("tag_id",),
                    uncertain=("w",),
                    family="gaussian",
                    rate_hint=5.0,
                )
                client.register("totals", TOTALS)
                client.register("hot", HOT)
                client.ingest("rfid", rfid_tuples, batch_size=64, trace=777)
                client.flush()
                peeked = client.trace(keep=True)
                reply = client.trace()
                drained = client.trace()
        finally:
            handle.stop()
        return peeked, reply, drained

    def test_trace_verb_assembles_the_cross_process_tree(self, rfid_tuples):
        peeked, reply, drained = self.collect(rfid_tuples)
        assert reply["sample"] == 1
        spans = reply["spans"]
        assert peeked["spans"] == spans  # keep=True did not consume
        assert drained["spans"] == []  # the drain did

        by_name = {}
        for span in spans:
            by_name.setdefault(span["name"], []).append(span)
        # Every stage of the flight is on record.
        for stage in (
            "net.ingest",
            "session.push",
            "shard.encode",
            "shard.ship",
            "shard.exec",
            "shard.decode",
            "shard.merge",
            "sink.deliver",
        ):
            assert by_name.get(stage), f"no {stage} spans recorded"
        assert any(name.startswith("op.") for name in by_name)

        # Worker spans crossed the process boundary with their
        # coordinator parent intact (the acceptance criterion).
        ids = {s["span"]: s for s in spans if s["span"]}
        coordinator_pid = by_name["session.push"][0]["pid"]
        worker_pids = set()
        for execute in by_name["shard.exec"]:
            parent = ids.get(execute["parent"])
            assert parent is not None, (
                f"exec span {execute['span']} has no coordinator parent"
            )
            assert parent["name"] == "shard.ship"
            assert parent["pid"] == coordinator_pid
            assert execute["pid"] != coordinator_pid
            worker_pids.add(execute["pid"])
        assert len(worker_pids) >= 2, "expected spans from several workers"

        # The push roots chain up to the server's ingest spans.
        for root in by_name["session.push"]:
            assert root["parent"] in ids
            assert ids[root["parent"]]["name"] == "net.ingest"

    def test_export_is_valid_chrome_trace_json(self, rfid_tuples, tmp_path):
        _, reply, _ = self.collect(rfid_tuples)
        target = tmp_path / "trace.json"
        export_chrome_trace(reply["spans"], path=str(target))
        document = json.loads(target.read_text(encoding="utf-8"))
        events = document["traceEvents"]
        assert events, "the export must contain events"
        stamps = [e["ts"] for e in events]
        assert stamps == sorted(stamps), "timestamps must be monotonic"
        completes = [e for e in events if e["ph"] == "X"]
        assert len(completes) == len(reply["spans"])
        assert all(e["dur"] >= 0.0 for e in completes)
        assert len({e["pid"] for e in completes}) >= 3  # server + workers
        # Cross-process hand-offs draw flow arrows.
        flows = [e for e in events if e["cat"] == "flow"]
        assert flows and len(flows) % 2 == 0


class TestTraceEdges:
    """Satellite: the span layer at the edges must not leak or crash."""

    def test_empty_batch_records_no_orphan_stage_spans(self):
        with QuerySession(workers=2, shard_backend="process",
                          trace_sample=1) as session:
            declare(session)
            session.register("totals", TOTALS)
            obs.local_spans().clear()
            session.push_many("rfid", [], trace=obs.new_trace())
            session.flush()
            spans = obs.local_spans().drain()
        # An empty push ships nothing: no shard or operator spans.
        assert not [s for s in spans if s["name"].startswith("shard.")]

    def test_flush_shipped_partial_chunk_keeps_causality(self, rfid_tuples):
        """A batch below batch_size only ships on flush — still traced."""
        with QuerySession(workers=2, shard_backend="process",
                          batch_size=4096, trace_sample=1) as session:
            declare(session)
            session.register("totals", TOTALS)
            obs.local_spans().clear()
            session.push_many("rfid", rfid_tuples[:50], trace=obs.new_trace())
            session.flush()
            spans = obs.local_spans().drain()
        executes = [s for s in spans if s["name"] == "shard.exec"]
        assert executes, "the flush-shipped partial chunk was not traced"
        ids = {s["span"] for s in spans if s["span"]}
        assert all(e["parent"] in ids for e in executes)

    def test_drop_mid_trace_does_not_leak_or_crash(self, rfid_tuples):
        with QuerySession(workers=2, shard_backend="process",
                          trace_sample=1) as session:
            declare(session)
            session.register("totals", TOTALS)
            session.register("doomed", HOT)
            session.push_many("rfid", rfid_tuples[:100], trace=obs.new_trace())
            session.drop("doomed")
            obs.local_spans().clear()
            session.push_many("rfid", rfid_tuples[100:200],
                              trace=obs.new_trace())
            session.flush()
            spans = obs.local_spans().drain()
        assert len(obs.local_spans()) == 0
        # Post-drop batches still trace the surviving query's flight.
        assert [s for s in spans if s["name"] == "shard.exec"]
        capacity = obs.local_spans().capacity
        assert len(spans) <= capacity

    def test_unsampled_traffic_records_nothing(self, rfid_tuples):
        with QuerySession(trace_sample=64) as session:
            declare(session)
            session.register("totals", TOTALS)
            obs.local_spans().clear()
            # Trace id 63 is never divisible by 64.
            session.push_many("rfid", rfid_tuples[:100],
                              trace=obs.new_trace(63))
            session.flush()
            assert obs.local_spans().drain() == []

    def test_sampling_off_records_nothing_even_for_id_zero(self, rfid_tuples):
        with QuerySession(trace_sample=0) as session:
            declare(session)
            session.register("totals", TOTALS)
            obs.local_spans().clear()
            session.push_many("rfid", rfid_tuples[:100], trace=obs.new_trace(0))
            session.flush()
            assert obs.local_spans().drain() == []
