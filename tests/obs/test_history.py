"""History ring: flattening, wrap-around, derived stats, persistence."""

import json

import pytest

from repro.obs import HistoryRing, Registry, flatten_snapshot


def build_registry():
    registry = Registry()
    registry.counter("repro_frames_total", server="s1").inc(3)
    registry.gauge("repro_depth").set(2.0)
    registry.histogram("repro_latency_seconds", buckets=(0.5, 1.0)).observe(0.25)
    return registry


class TestFlatten:
    def test_counters_gauges_histograms_operators(self):
        registry = build_registry()
        values, meta = flatten_snapshot(registry.snapshot())
        assert values['repro_frames_total{server="s1"}'] == 3.0
        assert values["repro_depth"] == 2.0
        assert values["repro_latency_seconds#count"] == 1.0
        assert values["repro_latency_seconds#sum"] == pytest.approx(0.25)
        # Two bounds plus the overflow bucket.
        assert values["repro_latency_seconds#b0"] == 1.0
        assert values["repro_latency_seconds#b2"] == 0.0
        assert meta["repro_latency_seconds"]["buckets"] == [0.5, 1.0]

    def test_series_keys_match_the_exposition_identity(self):
        registry = Registry()
        registry.counter("c", q='say "hi"').inc()
        values, _ = flatten_snapshot(registry.snapshot())
        assert 'c{q="say \\"hi\\""}' in values


class TestRing:
    def test_wraps_and_keeps_the_newest_capacity_ticks(self):
        ring = HistoryRing(capacity=4)
        registry = Registry()
        gauge = registry.gauge("g")
        for i in range(10):
            gauge.set(float(i))
            ring.record(registry.snapshot(), t=float(i))
        assert len(ring) == 4
        times, values = ring.series("g")
        assert list(times) == [6.0, 7.0, 8.0, 9.0]
        assert list(values) == [6.0, 7.0, 8.0, 9.0]

    def test_late_appearing_series_is_nan_backfilled(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        registry.gauge("old").set(1.0)
        ring.record(registry.snapshot(), t=0.0)
        registry.gauge("new").set(5.0)
        ring.record(registry.snapshot(), t=1.0)
        times, values = ring.series("new")
        assert list(times) == [1.0]  # the NaN backfill tick is dropped
        assert list(values) == [5.0]
        assert ring.latest("old") == 1.0
        assert ring.latest("missing") is None

    def test_window_filters_by_the_newest_tick(self):
        ring = HistoryRing(capacity=16)
        registry = Registry()
        gauge = registry.gauge("g")
        for i in range(6):
            gauge.set(float(i))
            ring.record(registry.snapshot(), t=float(i) * 10.0)
        times, _ = ring.series("g", window=20.0)
        assert list(times) == [30.0, 40.0, 50.0]

    def test_keys_for_prefers_histogram_bases(self):
        ring = HistoryRing(capacity=4)
        registry = build_registry()
        ring.record(registry.snapshot(), t=0.0)
        assert ring.keys_for("repro_latency_seconds") == ["repro_latency_seconds"]
        assert ring.keys_for("repro_frames_total") == [
            'repro_frames_total{server="s1"}'
        ]
        assert ring.keys_for("nothing") == []


class TestDerivedStats:
    def test_rate_is_per_second_increase(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        counter = registry.counter("c")
        for t in (0.0, 5.0, 10.0):
            counter.inc(10)
            ring.record(registry.snapshot(), t=t)
        assert ring.rate("c") == pytest.approx(2.0)
        assert ring.rate("c", window=4.0) is None  # one sample in window

    def test_counter_reset_clamps_to_zero(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        registry.counter("c").inc(100)
        ring.record(registry.snapshot(), t=0.0)
        registry.reset()
        registry.counter("c").inc(1)  # restarted process: counter rewound
        ring.record(registry.snapshot(), t=5.0)
        assert ring.rate("c") == 0.0

    def test_trend_is_the_least_squares_slope(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        gauge = registry.gauge("g")
        for t in range(5):
            gauge.set(3.0 * t + 1.0)
            ring.record(registry.snapshot(), t=float(t))
        assert ring.trend("g") == pytest.approx(3.0)
        assert ring.trend("missing") is None

    def test_windowed_percentile_uses_bucket_deltas(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        hist.observe(0.5, count=100)  # old traffic: all fast...
        ring.record(registry.snapshot(), t=0.0)
        hist.observe(3.0, count=10)  # ...then the regression
        ring.record(registry.snapshot(), t=1.0)
        p50 = ring.windowed_percentile("h", 0.50)
        # Inside the window every observation landed in (2.0, 4.0]:
        # the cumulative-since-start estimate would still say "fast".
        assert 2.0 < p50 <= 4.0

    def test_percentile_none_without_observations_in_window(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        ring.record(registry.snapshot(), t=0.0)
        ring.record(registry.snapshot(), t=1.0)
        assert ring.windowed_percentile("h", 0.5) is None
        assert ring.windowed_percentile("unknown", 0.5) is None


class TestPersistence:
    def fill(self, ring):
        registry = Registry()
        counter = registry.counter("c")
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        for t in range(4):
            counter.inc(10)
            hist.observe(0.5 + t * 0.5)
            ring.record(registry.snapshot(), t=float(t))
        return registry

    def test_blob_round_trip_preserves_derived_stats(self):
        ring = HistoryRing(capacity=16)
        self.fill(ring)
        blob = ring.to_blob()
        restored = HistoryRing.from_blob(blob)
        assert len(restored) == len(ring)
        assert restored.keys() == ring.keys()
        assert restored.rate("c") == ring.rate("c")
        assert restored.windowed_percentile("h", 0.95) == pytest.approx(
            ring.windowed_percentile("h", 0.95)
        )
        assert restored.meta["h"]["buckets"] == [1.0, 2.0]

    def test_blob_is_json_strict(self):
        ring = HistoryRing(capacity=16)
        self.fill(ring)
        text = json.dumps(ring.to_blob())  # NaN gaps must not leak as NaN
        assert "NaN" not in text
        restored = HistoryRing.from_blob(json.loads(text))
        assert restored.latest("c") == ring.latest("c")

    def test_nan_gaps_survive_the_round_trip(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        registry.gauge("a").set(1.0)
        ring.record(registry.snapshot(), t=0.0)
        registry.gauge("b").set(2.0)  # "a" and "b" overlap on one tick only
        ring.record(registry.snapshot(), t=1.0)
        restored = HistoryRing.from_blob(ring.to_blob())
        times, values = restored.series("b")
        assert list(times) == [1.0]
        assert list(values) == [2.0]
        raw = restored.to_blob()["series"]["b"]
        assert raw[0] is None  # the gap stays literal

    def test_capacity_override_keeps_the_newest_ticks(self):
        ring = HistoryRing(capacity=16)
        self.fill(ring)
        shrunk = HistoryRing.from_blob(ring.to_blob(), capacity=2)
        assert len(shrunk) == 2
        times, values = shrunk.series("c")
        assert list(times) == [2.0, 3.0]
        assert list(values) == [30.0, 40.0]

    def test_unknown_blob_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            HistoryRing.from_blob({"version": 99})

    def test_delta_encoding_stores_small_numbers(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        counter = registry.counter("c")
        for t in range(3):
            counter.inc(1)
            ring.record(registry.snapshot(), t=float(t) + 1e9)
        blob = ring.to_blob()
        assert blob["series"]["c"] == [1.0, 1.0, 1.0]  # absolute, then deltas
        assert blob["times"][1:] == [1.0, 1.0]

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            HistoryRing(capacity=1)
