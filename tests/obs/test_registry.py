"""Unit coverage for the repro.obs instrument registry."""

import gc
import json

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS, Registry, get_registry


class TestCounter:
    def test_inc_accumulates(self):
        counter = Registry().counter("frames_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_get_or_create_shares_one_cell(self):
        registry = Registry()
        a = registry.counter("drops_total", query="q1")
        b = registry.counter("drops_total", query="q1")
        assert a is b

    def test_labels_separate_instruments(self):
        registry = Registry()
        a = registry.counter("drops_total", query="q1")
        b = registry.counter("drops_total", query="q2")
        assert a is not b
        a.inc()
        assert b.value == 0.0

    def test_label_order_does_not_matter(self):
        registry = Registry()
        a = registry.counter("stage_seconds", engine="e1", stage="decode")
        b = registry.counter("stage_seconds", stage="decode", engine="e1")
        assert a is b


class TestGauge:
    def test_set_and_inc(self):
        gauge = Registry().gauge("last_checkpoint_id")
        gauge.set(7.0)
        gauge.inc(1.0)
        assert gauge.value == 8.0


class TestHistogram:
    def test_observe_count_sum_mean(self):
        hist = Registry().histogram("latency", buckets=(0.1, 1.0, 10.0))
        assert hist.count == 0 and hist.mean is None
        hist.observe(0.05)
        hist.observe(0.5, count=3)
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.05 + 3 * 0.5)
        assert hist.mean == pytest.approx(hist.sum / 4)

    def test_percentile_interpolates_within_bucket(self):
        hist = Registry().histogram("latency", buckets=(1.0, 2.0))
        for _ in range(100):
            hist.observe(1.5)
        p50 = hist.percentile(0.5)
        assert 1.0 <= p50 <= 2.0

    def test_percentile_empty_is_none(self):
        hist = Registry().histogram("latency")
        assert hist.percentile(0.5) is None
        assert hist.percentiles((0.5, 0.95)) == {"p50": None, "p95": None}

    def test_overflow_reports_largest_finite_bound(self):
        hist = Registry().histogram("latency", buckets=(0.1, 1.0))
        hist.observe(50.0)  # beyond every bound -> overflow slot
        assert hist.count == 1
        assert hist.percentile(0.99) == 1.0

    def test_default_buckets_span_latency_range(self):
        hist = Registry().histogram("latency")
        assert hist.bounds == tuple(sorted(DEFAULT_LATENCY_BUCKETS))

    def test_reset_zeroes_everything(self):
        hist = Registry().histogram("latency", buckets=(1.0,))
        hist.observe(0.5)
        hist.reset()
        assert hist.count == 0 and hist.sum == 0 and hist.percentile(0.5) is None

    def test_empty_bucket_list_is_rejected(self):
        from repro.obs import Histogram

        with pytest.raises(ValueError):
            Histogram("latency", buckets=())
        # The registry helper treats an empty sequence as "use defaults".
        assert Registry().histogram("latency", buckets=()).bounds == tuple(
            sorted(DEFAULT_LATENCY_BUCKETS)
        )


class _FakeOperator:
    def __init__(self, name):
        self.name = name
        self.tuples_in = 10
        self.tuples_out = 4
        self.batches_in = 2
        self.processing_seconds = 0.125


class TestOperatorView:
    def test_stats_row_shape(self):
        registry = Registry()
        op = _FakeOperator("Filter")
        view = registry.operator_view("engine-1", op)
        assert view.stats() == ("Filter", 10, 4, 2, 0.125)

    def test_dead_operator_drops_out_of_snapshot(self):
        registry = Registry()
        op = _FakeOperator("Filter")
        registry.operator_view("engine-1", op)
        assert len(registry.snapshot()["operators"]) == 1
        del op
        gc.collect()
        assert registry.snapshot()["operators"] == []

    def test_scope_filters_views(self):
        registry = Registry()
        a, b = _FakeOperator("A"), _FakeOperator("B")
        registry.operator_view("engine-1", a)
        registry.operator_view("engine-2", b)
        assert [v.operator for v in registry.operator_views("engine-1")] == [a]


class TestSnapshot:
    def test_snapshot_is_json_serializable(self):
        registry = Registry()
        registry.counter("frames_total", server="s1").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("latency", buckets=(0.5, 1.0)).observe(0.25)
        op = _FakeOperator("Filter")
        registry.operator_view("engine-1", op)
        snapshot = registry.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["counters"][0] == {
            "name": "frames_total",
            "labels": {"server": "s1"},
            "value": 3.0,
        }
        assert round_tripped["gauges"][0]["value"] == 2.0
        hist = round_tripped["histograms"][0]
        assert hist["count"] == 1.0 and len(hist["counts"]) == 3
        assert hist["percentiles"].keys() == {"p50", "p95", "p99"}
        assert round_tripped["operators"][0]["operator"] == "Filter"

    def test_reset_zeroes_instruments_and_drops_views(self):
        registry = Registry()
        registry.counter("n").inc(5)
        registry.gauge("g").set(5.0)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        op = _FakeOperator("Filter")
        registry.operator_view("engine-1", op)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"][0]["value"] == 0.0
        assert snapshot["gauges"][0]["value"] == 0.0
        assert snapshot["histograms"][0]["count"] == 0.0
        assert snapshot["operators"] == []

    def test_default_registry_is_process_wide(self):
        assert get_registry() is get_registry()
