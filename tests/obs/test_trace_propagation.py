"""Cross-process trace propagation: ingest stamp to sink delivery.

The tentpole claim: a chunk ingested over TCP into a sharded
shared-memory session reaches the sink carrying its original trace id,
and its ingest stamp is monotone with respect to delivery time.
"""

import pytest

from repro import QuerySession, obs
from repro.net import StreamClient, serve_in_thread
from repro.streams.serialization import (
    decode_batch,
    encode_batch,
    encode_batch_wire,
)
from repro.streams.batch import TupleBatch

TOTALS = "SELECT SUM(w) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"
HOT = "SELECT * FROM rfid WHERE w > 40 WITH PROBABILITY 0.5"


def declare(target):
    target.create_stream(
        "rfid", values=("tag_id",), uncertain=("w",), family="gaussian", rate_hint=5.0
    )


class TestWireTrailer:
    """The TRB1 trailer on the columnar wire format."""

    @pytest.mark.parametrize("encode", [encode_batch, encode_batch_wire])
    def test_trace_round_trips(self, encode, rfid_tuples):
        batch = TupleBatch(rfid_tuples[:32])
        batch.trace_id = 0xDEADBEEF
        batch.t_ingest = 123.456
        decoded = decode_batch(encode(batch))
        assert decoded.trace_id == 0xDEADBEEF
        assert decoded.t_ingest == pytest.approx(123.456)

    @pytest.mark.parametrize("encode", [encode_batch, encode_batch_wire])
    def test_traceless_payload_is_byte_identical(self, encode, rfid_tuples):
        plain = TupleBatch(rfid_tuples[:32])
        traced = TupleBatch(rfid_tuples[:32])
        traced.trace_id = 1
        traced.t_ingest = 0.0
        assert encode(plain) == encode(traced)[:-20]  # trailer is 20 bytes
        assert decode_batch(encode(plain)).trace_id is None


class TestEndToEnd:
    def test_tcp_ingest_to_sharded_sink_keeps_trace(self, rfid_tuples):
        """TCP -> INGEST -> 4-shard shm workers -> merge -> sink."""
        handle = serve_in_thread(QuerySession(workers=4, shard_backend="process"))
        try:
            with StreamClient(handle.address, timeout=30.0) as client:
                client.declare_stream(
                    "rfid",
                    values=("tag_id",),
                    uncertain=("w",),
                    family="gaussian",
                    rate_hint=5.0,
                )
                client.register("totals", TOTALS)
                client.register("hot", HOT)
                assert client.ingest(
                    "rfid", rfid_tuples, batch_size=64, trace=777
                ) == len(rfid_tuples)
                client.flush()
                observed = client.metrics("hot")["observed"]
        finally:
            handle.stop()

        assert observed["sharded"] is True
        last = observed["last_trace"]
        assert last is not None, "the sink never saw an active trace context"
        assert last["trace_id"] == 777
        assert last["t_ingest"] <= last["delivered_at"]
        latency = observed["latency"]
        assert latency["count"] > 0
        assert latency["p95"] is not None and latency["p95"] >= 0.0
        # Per-operator pass rates surface for the probabilistic filter.
        rates = {
            op["name"]: op["pass_rate"]
            for op in observed["operators"]
            if op["pass_rate"] is not None
        }
        assert rates, "no operator reported a pass rate"
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())

    def test_embedded_push_mints_a_trace(self, rfid_tuples):
        """push_many without an explicit trace still stamps deliveries."""
        session = QuerySession()
        declare(session)
        session.register("totals", TOTALS)
        session.push_many("rfid", rfid_tuples)
        session.flush()
        observed = session.observed_stats("totals")
        assert observed["last_trace"] is not None
        assert observed["latency"]["count"] > 0

    def test_ingest_ack_latency_is_recorded(self, rfid_tuples):
        handle = serve_in_thread(QuerySession())
        try:
            with StreamClient(handle.address, timeout=30.0) as client:
                client.declare_stream(
                    "rfid",
                    values=("tag_id",),
                    uncertain=("w",),
                    family="gaussian",
                    rate_hint=5.0,
                )
                client.register("totals", TOTALS)
                client.ingest("rfid", rfid_tuples, batch_size=100)
                latencies = list(client.last_ingest_ack_latencies)
        finally:
            handle.stop()
        # One sample per ACK read; ACKs may coalesce pipelined frames.
        assert 1 <= len(latencies) <= 4  # 400 tuples / 100 per frame
        assert all(lat >= 0.0 for lat in latencies)
        hist = obs.get_registry().histogram("repro_ingest_ack_latency_seconds")
        assert hist.count == len(latencies)


class TestInstrumentedEquivalence:
    def test_sharded_results_match_reference_with_instrumentation_armed(
        self, rfid_tuples
    ):
        """Tracing + registry instruments must not perturb the numbers."""
        reference = QuerySession()
        declare(reference)
        reference.register("totals", TOTALS)
        reference.push_many("rfid", rfid_tuples)
        reference.flush()
        expected = reference.results("totals")

        with QuerySession(workers=4, shard_backend="process") as session:
            declare(session)
            session.register("totals", TOTALS)
            for start in range(0, len(rfid_tuples), 50):
                session.push_many(
                    "rfid", rfid_tuples[start : start + 50], trace=obs.new_trace()
                )
                obs.get_registry().snapshot()  # exporter armed mid-stream
            session.flush()
            actual = session.results("totals")
            observed = session.observed_stats("totals")

        assert len(actual) == len(expected)
        for a, b in zip(expected, actual):
            da, db = a.distribution("total"), b.distribution("total")
            assert float(db.mean()) == pytest.approx(float(da.mean()), abs=1e-9)
            assert float(db.variance()) == pytest.approx(
                float(da.variance()), abs=1e-9
            )
        assert observed["latency"]["count"] > 0
