"""Shared fixtures for the observability tests."""

import numpy as np
import pytest

from repro import obs
from repro.distributions import Gaussian
from repro.streams import StreamTuple


@pytest.fixture(autouse=True)
def clean_registry():
    """Isolate each test from instruments left behind by earlier ones."""
    obs.get_registry().reset()
    obs.local_spans().clear()
    yield
    obs.get_registry().reset()
    obs.activate(None)
    obs.set_trace_sample(obs.DEFAULT_TRACE_SAMPLE)
    obs.local_spans().clear()


def make_rfid_tuples(n=400, seed=17):
    rng = np.random.default_rng(seed)
    return [
        StreamTuple(
            timestamp=i * 0.2,
            values={"tag_id": f"T{i % 5}"},
            uncertain={"w": Gaussian(float(rng.uniform(20.0, 60.0)), 2.0)},
        )
        for i in range(n)
    ]


@pytest.fixture
def rfid_tuples():
    return make_rfid_tuples()
