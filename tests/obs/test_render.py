"""Exposition renderers: Prometheus text format and the live table."""

from repro.obs import Registry, render_prometheus, render_table


def build_snapshot():
    registry = Registry()
    registry.counter("repro_frames_total", server="s1").inc(3)
    registry.gauge("repro_depth").set(2.0)
    hist = registry.histogram("repro_latency_seconds", buckets=(0.5, 1.0))
    hist.observe(0.25)
    hist.observe(0.75, count=2)
    return registry.snapshot()


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(build_snapshot())
        assert '# TYPE repro_frames_total counter' in text
        assert 'repro_frames_total{server="s1"} 3' in text
        assert '# TYPE repro_depth gauge' in text
        assert "repro_depth 2" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(build_snapshot())
        assert 'repro_latency_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_latency_seconds_bucket{le="1.0"} 3' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_latency_seconds_count 3" in text
        assert "repro_latency_seconds_sum" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus(Registry().snapshot()) == ""

    def test_none_value_renders_nan(self):
        registry = Registry()
        registry.histogram("h", buckets=(1.0,))
        assert "NaN" not in render_prometheus(registry.snapshot())

    def test_label_values_are_escaped(self):
        registry = Registry()
        registry.counter("c", q='say "hi"\nback\\slash').inc()
        text = render_prometheus(registry.snapshot())
        assert 'c{q="say \\"hi\\"\\nback\\\\slash"} 1' in text

    def test_golden_exposition_output(self):
        """Byte-exact exposition of a mixed snapshot (conformance pin)."""
        registry = Registry()
        registry.counter("repro_frames_total", server="s1").inc(3)
        registry.counter("repro_frames_total", server='s"2"').inc(1)
        registry.gauge("repro_depth").set(2.0)
        hist = registry.histogram(
            "repro_latency_seconds", buckets=(0.5, 1.0), query="q\n1"
        )
        hist.observe(0.25)
        hist.observe(0.75, count=2)
        hist.observe(9.0)  # overflow bucket
        expected = (
            "# TYPE repro_frames_total counter\n"
            'repro_frames_total{server="s1"} 3\n'
            'repro_frames_total{server="s\\"2\\""} 1\n'
            "# TYPE repro_depth gauge\n"
            "repro_depth 2\n"
            "# TYPE repro_latency_seconds histogram\n"
            'repro_latency_seconds_bucket{le="0.5",query="q\\n1"} 1\n'
            'repro_latency_seconds_bucket{le="1.0",query="q\\n1"} 3\n'
            'repro_latency_seconds_bucket{le="+Inf",query="q\\n1"} 4\n'
            'repro_latency_seconds_sum{query="q\\n1"} 10.75\n'
            'repro_latency_seconds_count{query="q\\n1"} 4\n'
        )
        assert render_prometheus(registry.snapshot()) == expected


class TestTable:
    def test_all_kinds_appear(self):
        table = render_table(build_snapshot())
        assert "repro_frames_total" in table
        assert "repro_depth" in table
        assert "repro_latency_seconds" in table
        assert "p95=" in table
        assert table.splitlines()[0].startswith("kind")

    def test_empty_snapshot_has_placeholder(self):
        assert "no instruments" in render_table(Registry().snapshot())
