"""Registry snapshots ride along with checkpoints and surface on recovery."""

from repro import QuerySession, obs
from repro.recovery.checkpoint import CheckpointStore

TOTALS = "SELECT SUM(w) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"


def declare(session):
    session.create_stream(
        "rfid", values=("tag_id",), uncertain=("w",), family="gaussian", rate_hint=5.0
    )


class TestMetricsSidecar:
    def test_save_writes_sidecar_and_load_metrics_reads_it(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        snapshot = {"counters": [{"name": "n", "labels": {}, "value": 1.0}]}
        info = store.save({"q": b"blob"}, metrics=snapshot)
        assert store.load_metrics(info.checkpoint_id) == snapshot
        # The sidecar never confuses the checkpoint directory scan.
        header, blobs = store.load_latest()
        assert int(header["id"]) == info.checkpoint_id
        assert blobs == {"q": b"blob"}

    def test_missing_sidecar_is_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        info = store.save({"q": b"blob"})
        assert store.load_metrics(info.checkpoint_id) is None

    def test_checkpoint_counters_update(self, tmp_path):
        registry = obs.get_registry()
        store = CheckpointStore(str(tmp_path))
        info = store.save({"q": b"blob"}, mode="full")
        assert registry.counter("repro_checkpoint_saves_total", mode="full").value == 1
        assert registry.counter("repro_checkpoint_bytes_total").value > 0
        assert registry.gauge("repro_checkpoint_last_id").value == info.checkpoint_id

    def test_session_recovery_reports_restored_metrics(self, tmp_path, rfid_tuples):
        session = QuerySession()
        declare(session)
        session.register("totals", TOTALS)
        session.push_many("rfid", rfid_tuples[:200])
        session.checkpoint(str(tmp_path))

        recovered = QuerySession.recover(str(tmp_path))
        try:
            assert recovered.recovered_metrics is not None
            names = {
                entry["name"]
                for entry in recovered.recovered_metrics.get("histograms", [])
            }
            assert "repro_query_latency_seconds" in names
        finally:
            recovered.close()
        session.close()
