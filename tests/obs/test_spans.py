"""Span layer units: sampling, buffer bounds, ids, Chrome export."""

import json
import os

import pytest

from repro import obs
from repro.obs import spans as tracing
from repro.obs.trace import TraceContext


def span(name, t0, t1, span_id=None, parent=None, pid=1, trace=64):
    return {
        "name": name,
        "cat": "test",
        "trace": trace,
        "span": span_id,
        "parent": parent,
        "pid": pid,
        "t0": t0,
        "t1": t1,
    }


class TestSampling:
    def test_default_is_one_in_sixty_four(self):
        assert obs.get_trace_sample() == obs.DEFAULT_TRACE_SAMPLE == 64
        assert tracing.sampled(0)
        assert tracing.sampled(64)
        assert not tracing.sampled(63)
        assert not tracing.sampled(1)

    def test_decision_is_a_pure_function_of_the_id(self):
        """Coordinator and forked worker agree without exchanging state."""
        previous = obs.set_trace_sample(8)
        try:
            first = [tracing.sampled(i) for i in range(64)]
            second = [tracing.sampled(i) for i in range(64)]
            assert first == second
            assert sum(first) == 8
        finally:
            obs.set_trace_sample(previous)

    def test_zero_disables_and_one_samples_everything(self):
        previous = obs.set_trace_sample(0)
        try:
            assert not any(tracing.sampled(i) for i in range(100))
            obs.set_trace_sample(1)
            assert all(tracing.sampled(i) for i in range(100))
        finally:
            obs.set_trace_sample(previous)

    def test_none_id_is_never_sampled(self):
        assert not tracing.sampled(None)
        assert not tracing.sampled_trace(None)

    def test_sampled_trace_reads_the_context_id(self):
        ctx = TraceContext(trace_id=128, t_ingest=0.0)
        assert tracing.sampled_trace(ctx)
        assert not tracing.sampled_trace(TraceContext(trace_id=129, t_ingest=0.0))

    def test_set_returns_previous_and_rejects_negative(self):
        previous = obs.set_trace_sample(7)
        assert obs.set_trace_sample(previous) == 7
        with pytest.raises(ValueError):
            obs.set_trace_sample(-1)


class TestSpanIds:
    def test_ids_are_deterministic_and_hierarchical(self):
        assert tracing.root_span_id(0x80) == "t80/push"
        assert tracing.chunk_span_id(0x80, 3, 42) == "t80/s3/c42"
        assert tracing.exec_span_id(0x80, 3, 42) == "t80/s3/c42/exec"
        # The worker derives its parent without any id exchange.
        assert tracing.exec_span_id(0x80, 3, 42).startswith(
            tracing.chunk_span_id(0x80, 3, 42)
        )

    def test_record_span_lands_in_the_local_buffer(self):
        obs.local_spans().clear()
        recorded = tracing.record_span(
            "op.test", "operator", 64, 1.0, 2.0, span_id="x", parent_id="y"
        )
        assert recorded["pid"] == os.getpid()
        assert obs.local_spans().snapshot() == [recorded]


class TestParentLinkage:
    def test_activate_restores_like_a_stack(self):
        assert tracing.current_parent() is None
        outer = tracing.activate_parent("root")
        assert outer is None
        inner = tracing.activate_parent("exec")
        assert inner == "root"
        assert tracing.current_parent() == "exec"
        tracing.activate_parent(inner)
        tracing.activate_parent(outer)
        assert tracing.current_parent() is None


class TestSpanBuffer:
    def test_bounded_eviction_keeps_newest(self):
        buffer = tracing.SpanBuffer(capacity=4)
        for i in range(10):
            buffer.add(span(f"s{i}", i, i + 1))
        assert len(buffer) == 4
        assert [s["name"] for s in buffer.snapshot()] == ["s6", "s7", "s8", "s9"]

    def test_drain_empties_and_preserves_order(self):
        buffer = tracing.SpanBuffer(capacity=8)
        buffer.ingest([span("a", 0, 1), span("b", 1, 2)])
        assert [s["name"] for s in buffer.drain()] == ["a", "b"]
        assert len(buffer) == 0
        assert buffer.drain() == []

    def test_ingest_none_and_empty_are_noops(self):
        buffer = tracing.SpanBuffer(capacity=2)
        buffer.ingest([])
        buffer.ingest(None)
        assert len(buffer) == 0

    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            tracing.SpanBuffer(capacity=0)


class TestChromeExport:
    def test_complete_events_in_microseconds_sorted(self):
        spans = [span("late", 2.0, 3.5), span("early", 1.0, 1.25)]
        document = json.loads(tracing.export_chrome_trace(spans))
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        assert [e["name"] for e in events] == ["early", "late"]
        assert events[0]["ph"] == "X"
        assert events[0]["ts"] == pytest.approx(1.0e6)
        assert events[0]["dur"] == pytest.approx(0.25e6)
        assert events[1]["dur"] == pytest.approx(1.5e6)

    def test_cross_pid_parent_emits_a_flow_pair(self):
        ship = span("shard.ship", 1.0, 2.0, span_id="t40/s0/c1", pid=100)
        execute = span(
            "shard.exec", 1.2, 1.8, span_id="t40/s0/c1/exec",
            parent="t40/s0/c1", pid=200,
        )
        events = json.loads(tracing.export_chrome_trace([ship, execute]))[
            "traceEvents"
        ]
        flows = [e for e in events if e["cat"] == "flow"]
        assert [f["ph"] for f in flows] == ["s", "f"]
        start, finish = flows
        assert start["id"] == finish["id"]
        assert start["pid"] == 100 and finish["pid"] == 200
        assert finish["bp"] == "e"

    def test_same_pid_parent_emits_no_flow(self):
        parent = span("push", 1.0, 3.0, span_id="t40/push", pid=7)
        child = span("op.sum", 1.5, 2.0, parent="t40/push", pid=7)
        events = json.loads(tracing.export_chrome_trace([parent, child]))[
            "traceEvents"
        ]
        assert all(e["cat"] != "flow" for e in events)

    def test_path_writes_identical_json(self, tmp_path):
        target = tmp_path / "trace.json"
        text = tracing.export_chrome_trace(
            [span("a", 0.0, 1.0)], path=str(target)
        )
        assert target.read_text(encoding="utf-8") == text
        assert json.loads(text)["traceEvents"]
