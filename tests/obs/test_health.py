"""Health rules: grammar, hysteresis, alert dispatch, and a real storm.

The acceptance case lives in :class:`TestDropStormEndToEnd`: a slow
subscriber behind a tiny buffer takes a real drop storm over TCP, the
stock ``subscriber_drop_rate`` burn-rate rule fires off the history
ring, ``QuerySession.on_alert`` is invoked, and the HEALTH verb reports
the firing state to a remote client.
"""

import pytest

from repro import QuerySession, obs
from repro.net import StreamClient, serve_in_thread
from repro.obs import (
    HealthEngine,
    HealthRule,
    HistoryRing,
    Registry,
    default_rules,
    parse_rule,
)

HOT = "SELECT * FROM rfid WHERE w > 40 WITH PROBABILITY 0.5"


class TestGrammar:
    def test_full_sentence(self):
        rule = parse_rule(
            "repro_query_latency_seconds p99 > 50ms for 10s over 60s"
        )
        assert rule.metric == "repro_query_latency_seconds"
        assert rule.stat == "p99"
        assert rule.op == ">"
        assert rule.threshold == pytest.approx(0.05)  # ms converted
        assert rule.for_seconds == 10.0
        assert rule.window == 60.0

    def test_defaults(self):
        rule = parse_rule("repro_depth > 5")
        assert rule.stat == "value"
        assert rule.for_seconds == 0.0
        assert rule.window == 30.0
        assert rule.labels is None  # wildcard

    def test_label_selector_pins_one_series(self):
        rule = parse_rule('repro_depth{engine="totals"} value >= 5s')
        assert rule.labels == '{engine="totals"}'
        assert rule.threshold == 5.0

    def test_rate_stat_and_operators(self):
        assert parse_rule("c rate > 10 over 10s").stat == "rate"
        assert parse_rule("g <= -1.5").op == "<="
        assert parse_rule("g < 0").op == "<"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "no operator",
            "metric >",
            "metric > fast",
            "metric p42 > 1",
            "metric > 1 for ever",
        ],
    )
    def test_unparseable_rules_raise(self, bad):
        with pytest.raises(ValueError, match="rule"):
            parse_rule(bad)

    def test_str_round_trips_through_the_parser(self):
        for rule in default_rules():
            again = parse_rule(str(rule))
            assert again.metric == rule.metric
            assert again.stat == rule.stat
            assert again.threshold == pytest.approx(rule.threshold)

    def test_default_rules_cover_the_stock_failure_modes(self):
        names = {rule.name for rule in default_rules()}
        assert {
            "query_latency_p99",
            "shard_stall_rate",
            "subscriber_drop_rate",
            "replay_trim_pressure",
            "shard_ring_occupancy",
        } <= names


def tick(ring, registry, t):
    ring.record(registry.snapshot(), t=t)


class TestStateMachine:
    def test_ok_pending_firing_hysteresis(self):
        ring = HistoryRing(capacity=16)
        registry = Registry()
        gauge = registry.gauge("g")
        rule = parse_rule("g value > 10 for 5s")

        gauge.set(20.0)
        tick(ring, registry, 0.0)
        assert rule.evaluate(ring, now=0.0) is False  # breach starts
        assert rule.state == "pending"
        assert rule.evaluate(ring, now=3.0) is False  # still inside the hold
        assert rule.state == "pending"
        assert rule.evaluate(ring, now=5.0) is True  # hold satisfied: edge
        assert rule.state == "firing"
        assert rule.evaluate(ring, now=6.0) is False  # no re-fire while held
        assert rule.state == "firing"

        gauge.set(1.0)
        tick(ring, registry, 7.0)
        assert rule.evaluate(ring, now=7.0) is False
        assert rule.state == "ok" and rule.since is None

        gauge.set(20.0)  # a fresh breach restarts the hold from zero
        tick(ring, registry, 8.0)
        assert rule.evaluate(ring, now=8.0) is False
        assert rule.state == "pending"

    def test_zero_hold_fires_immediately(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        registry.gauge("g").set(99.0)
        tick(ring, registry, 0.0)
        rule = parse_rule("g > 10")
        assert rule.evaluate(ring, now=0.0) is True

    def test_wildcard_reports_the_worst_offender(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        registry.gauge("g", q="a").set(1.0)
        registry.gauge("g", q="b").set(99.0)
        tick(ring, registry, 0.0)
        rule = parse_rule("g > 50")
        assert rule.evaluate(ring, now=0.0) is True
        assert rule.series == 'g{q="b"}'
        assert rule.value == 99.0

    def test_label_selector_ignores_other_series(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        registry.gauge("g", q="a").set(1.0)
        registry.gauge("g", q="b").set(99.0)
        tick(ring, registry, 0.0)
        rule = parse_rule('g{q="a"} > 50')
        assert rule.evaluate(ring, now=0.0) is False
        assert rule.state == "ok"

    def test_missing_series_stays_ok(self):
        rule = parse_rule("nothing_here > 0")
        assert rule.evaluate(HistoryRing(capacity=4), now=0.0) is False
        assert rule.state == "ok" and rule.value is None

    def test_rate_rule_fires_on_burn_not_level(self):
        ring = HistoryRing(capacity=8)
        registry = Registry()
        counter = registry.counter("c")
        counter.inc(1_000_000)  # a huge absolute count...
        tick(ring, registry, 0.0)
        tick(ring, registry, 10.0)
        rule = parse_rule("c rate > 10 over 30s")
        assert rule.evaluate(ring, now=10.0) is False  # ...but zero burn
        counter.inc(500)
        tick(ring, registry, 20.0)
        assert rule.evaluate(ring, now=20.0) is True


class TestEngine:
    def build(self, rules=()):
        ring = HistoryRing(capacity=16)
        registry = Registry()
        engine = HealthEngine(ring, rules=list(rules))
        return ring, registry, engine

    def test_alert_callback_fires_once_per_transition(self):
        ring, registry, engine = self.build()
        engine.add_rule("g > 10")
        seen = []
        engine.on_alert(lambda rule: seen.append(rule.name))
        gauge = registry.gauge("g")

        gauge.set(99.0)
        tick(ring, registry, 0.0)
        assert [r.name for r in engine.evaluate(now=0.0)] == ["g"]
        engine.evaluate(now=1.0)  # still firing: no second alert
        assert seen == ["g"]

        gauge.set(1.0)
        tick(ring, registry, 2.0)
        engine.evaluate(now=2.0)  # recovers
        gauge.set(99.0)
        tick(ring, registry, 3.0)
        engine.evaluate(now=3.0)  # fires again
        assert seen == ["g", "g"]

    def test_broken_callback_does_not_stop_the_others(self):
        ring, registry, engine = self.build()
        engine.add_rule("g > 10")
        seen = []
        engine.on_alert(lambda rule: 1 / 0)
        engine.on_alert(lambda rule: seen.append(rule.name))
        registry.gauge("g").set(99.0)
        tick(ring, registry, 0.0)
        engine.evaluate(now=0.0)
        assert seen == ["g"]

    def test_status_is_the_health_verb_payload(self):
        ring, registry, engine = self.build()
        engine.add_rule("g > 10")
        engine.add_rule(parse_rule("h > 10 for 60s", name="slow"))
        registry.gauge("g").set(99.0)
        registry.gauge("h").set(99.0)
        tick(ring, registry, 0.0)
        engine.evaluate(now=0.0)
        status = engine.status()
        assert status["firing"] == ["g"]
        assert status["pending"] == ["slow"]
        described = {rule["name"]: rule for rule in status["rules"]}
        assert described["g"]["state"] == "firing"
        assert described["g"]["value"] == 99.0
        assert described["slow"]["since"] == 0.0


class TestDropStormEndToEnd:
    def test_slow_consumer_drop_storm_fires_and_alerts(self, rfid_tuples):
        """A real drop storm: tiny buffer, firehose ingest, no reader.

        The stock ``subscriber_drop_rate`` rule
        (``repro_subscriber_dropped_total rate > 10 over 10s``) must go
        to ``firing`` off two history ticks, invoke ``on_alert``, and
        surface through the HEALTH verb.
        """
        session = QuerySession()
        alerts = []
        session.on_alert(lambda rule: alerts.append(rule.name))
        handle = serve_in_thread(
            session, subscriber_buffer=8, slow_consumer="drop-oldest"
        )
        try:
            with StreamClient(handle.address, timeout=15.0) as client:
                client.declare_stream(
                    "rfid",
                    values=("tag_id",),
                    uncertain=("w",),
                    family="gaussian",
                    rate_hint=5.0,
                )
                client.register("hot", HOT)
                with client.subscribe("hot"):
                    baseline = client.health()  # tick 1: counter at rest
                    assert "subscriber_drop_rate" not in (
                        baseline["health"]["firing"]
                    )
                    # One giant frame: every result lands in the
                    # 8-slot buffer before the writer task runs.
                    client.ingest("rfid", rfid_tuples, batch_size=400)
                    reply = client.health()  # tick 2: the storm shows
        finally:
            handle.stop()

        dropped = obs.get_registry().snapshot()["counters"]
        assert any(
            c["name"] == "repro_subscriber_dropped_total" and c["value"] > 0
            for c in dropped
        ), "the storm never dropped anything — the test lost its premise"
        assert reply["ticks"] >= 2
        health = reply["health"]
        assert "subscriber_drop_rate" in health["firing"]
        assert "subscriber_drop_rate" in alerts, "on_alert was not invoked"
        rule = {r["name"]: r for r in health["rules"]}["subscriber_drop_rate"]
        assert rule["state"] == "firing"
        assert rule["value"] > 10.0  # drops/second, well past the threshold
        assert rule["series"].startswith("repro_subscriber_dropped_total")
