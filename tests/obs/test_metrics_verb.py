"""The METRICS wire verb and the ``python -m repro.obs`` CLI."""

import io
import json

import pytest

from repro import QuerySession
from repro.net import StreamClient, serve_in_thread
from repro.obs.cli import main

TOTALS = "SELECT SUM(w) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"


def _populate(handle, rfid_tuples):
    with StreamClient(handle.address, timeout=15.0) as client:
        client.declare_stream(
            "rfid",
            values=("tag_id",),
            uncertain=("w",),
            family="gaussian",
            rate_hint=5.0,
        )
        client.register("totals", TOTALS)
        client.ingest("rfid", rfid_tuples, batch_size=100)
        client.flush()


@pytest.fixture
def server(rfid_tuples):
    handle = serve_in_thread(QuerySession())
    _populate(handle, rfid_tuples)
    yield handle
    handle.stop()


@pytest.fixture
def sharded_server(rfid_tuples):
    handle = serve_in_thread(
        QuerySession(workers=2, shard_backend="process", trace_sample=1)
    )
    _populate(handle, rfid_tuples)
    yield handle
    handle.stop()


class TestMetricsVerb:
    def test_snapshot_covers_server_counters(self, server):
        with StreamClient(server.address, timeout=15.0) as client:
            reply = client.metrics()
        snapshot = reply["metrics"]
        counters = {
            (entry["name"], tuple(sorted(entry["labels"].items()))): entry["value"]
            for entry in snapshot["counters"]
        }
        # The registry is process-global: servers from earlier tests may
        # have left (reset-to-zero) instruments behind, so membership —
        # not position — identifies this server's counter.
        ingested = [
            value
            for (name, _), value in counters.items()
            if name == "repro_server_tuples_ingested_total"
        ]
        assert 400.0 in ingested
        assert any(
            name == "repro_server_frames_total" for name, _ in counters
        )
        latency = [
            entry
            for entry in snapshot["histograms"]
            if entry["name"] == "repro_query_latency_seconds"
        ]
        assert any(entry["count"] > 0 for entry in latency)

    def test_query_argument_adds_observed_stats(self, server):
        with StreamClient(server.address, timeout=15.0) as client:
            reply = client.metrics("totals")
        observed = reply["observed"]
        assert observed["query"] == "totals"
        assert observed["latency"]["count"] > 0
        assert any(op["name"] for op in observed["operators"])

    def test_unknown_query_is_a_remote_error(self, server):
        from repro.net import RemoteError

        with StreamClient(server.address, timeout=15.0) as client:
            with pytest.raises(RemoteError):
                client.metrics("nope")


class TestStageTimings:
    def test_metrics_reply_carries_sharded_stage_totals(self, sharded_server):
        with StreamClient(sharded_server.address, timeout=15.0) as client:
            stages = client.metrics()["stages"]
        assert set(stages) >= {"encode", "transport", "decode", "merge"}
        assert all(seconds >= 0.0 for seconds in stages.values())
        assert stages["encode"] > 0.0  # real work crossed the shards

    def test_engine_hosted_queries_report_empty_stages(self, server):
        with StreamClient(server.address, timeout=15.0) as client:
            assert client.metrics()["stages"] == {}


class TestCli:
    def test_one_shot_table(self, server):
        out = io.StringIO()
        assert main(["--address", server.address], out=out) == 0
        text = out.getvalue()
        assert "repro_server_tuples_ingested_total" in text
        assert text.splitlines()[0].startswith("kind")

    def test_prometheus_flag(self, server):
        out = io.StringIO()
        assert main(["--address", server.address, "--prometheus"], out=out) == 0
        text = out.getvalue()
        assert "# TYPE repro_server_tuples_ingested_total counter" in text
        assert "repro_query_latency_seconds_bucket" in text

    def test_watch_bounded_by_iterations(self, server):
        out = io.StringIO()
        code = main(
            ["--address", server.address, "--watch", "--interval", "0.01",
             "--iterations", "3"],
            out=out,
        )
        assert code == 0
        assert out.getvalue().count("kind") == 3

    def test_watch_grows_sparklines(self, server):
        out = io.StringIO()
        code = main(
            ["--address", server.address, "--watch", "--interval", "0.01",
             "--iterations", "3", "--spark-width", "8"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert any(bar in text for bar in "▁▂▃▄▅▆▇█"), (
            "watch mode never rendered a sparkline"
        )

    def test_stage_timings_in_the_table_output(self, sharded_server):
        out = io.StringIO()
        assert main(["--address", sharded_server.address], out=out) == 0
        text = out.getvalue()
        assert "stages:" in text
        assert "encode=" in text and "transport=" in text

    def test_health_flag_reports_rule_verdicts(self, server):
        out = io.StringIO()
        assert main(["--address", server.address, "--health"], out=out) == 0
        text = out.getvalue()
        assert text.startswith("firing:")
        assert "pending:" in text
        assert "history ticks: 1" in text
        assert "query_latency_p99" in text  # the stock rule set is listed

    def test_trace_out_writes_chrome_json(self, sharded_server, tmp_path):
        target = tmp_path / "trace.json"
        out = io.StringIO()
        code = main(
            ["--address", sharded_server.address, "--trace-out", str(target)],
            out=out,
        )
        assert code == 0
        assert "(sample 1/1)" in out.getvalue()
        document = json.loads(target.read_text(encoding="utf-8"))
        events = document["traceEvents"]
        assert events, "a fully-sampled sharded ingest must leave spans"
        assert {e["ph"] for e in events} >= {"X"}
