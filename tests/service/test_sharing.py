"""Cross-query subplan sharing: the acceptance scenario of this layer.

Two queries registering an identical source→filter→window prefix must
compile to ONE shared physical operator chain (verified through
``session.explain()`` and per-box statistics showing single-chain
tuple counts), and ``drop()`` must detach only exclusively-owned boxes
while the surviving query keeps producing results identical to a
standalone run.
"""

import pytest

from repro.distributions import Gaussian
from repro.plan import Stream
from repro.service import QuerySession
from repro.streams import StreamTuple
from repro.streams.operators.base import PassThroughOperator


def value_tuple(i, weight, area=0):
    return StreamTuple(
        timestamp=float(i),
        values={"tag_id": f"O{i}", "area": area},
        uncertain={"weight": Gaussian(weight, 2.0)},
    )


#: Two queries with an identical source→filter→window prefix but
#: different HAVING thresholds.  (The GROUP BY keeps the filter from
#: fusing into the aggregate, so the shared chain stays visible as
#: separate boxes.)
Q_LOW = """
    SELECT area, SUM(weight) FROM rfid [ROWS 4]
    WHERE keep(tag_id) AND weight > 5 WITH PROBABILITY 0.5
    GROUP BY area
    HAVING SUM(weight) > 20 WITH PROBABILITY 0.5
"""
Q_HIGH = """
    SELECT area, SUM(weight) FROM rfid [ROWS 4]
    WHERE keep(tag_id) AND weight > 5 WITH PROBABILITY 0.5
    GROUP BY area
    HAVING SUM(weight) > 60 WITH PROBABILITY 0.5
"""


def make_session():
    session = QuerySession(functions={"keep": lambda tag: not tag.endswith("3")})
    session.create_stream(
        "rfid", values=("tag_id", "area"), uncertain=("weight",), family="gaussian"
    )
    return session


class TestSharedPrefix:
    def test_identical_prefix_compiles_to_one_chain(self):
        session = make_session()
        session.register("low", Q_LOW)
        session.register("high", Q_HIGH)

        reports = session.statistics()
        shared = [r for r in reports if r.shared]
        exclusive = [r for r in reports if not r.shared]
        # source + filter + prob filter are shared; each query owns its
        # own aggregate (different HAVING).
        assert len(shared) == 3
        assert len(exclusive) == 2
        for report in shared:
            assert set(report.owners) == {"low", "high"}

        explain = session.explain("low")
        assert "[shared with high]" in explain
        assert "[exclusive]" in explain

    def test_shared_boxes_process_each_tuple_once(self):
        session = make_session()
        session.register("low", Q_LOW)
        session.register("high", Q_HIGH)
        n = 12
        for i in range(n):
            session.push("rfid", value_tuple(i, 10.0))
        # The statistics show ONE shared chain — each box fed once per
        # input tuple (not once per consuming query), each box's intake
        # equal to its upstream's output.
        low_chain = [r for r in session.statistics("low") if r.shared]
        assert [r.stats.name for r in low_chain] == [
            "source:rfid",
            "Filter[keep(tag_id)]",
            "ProbabilisticSelect",
        ]
        source, filter_box, select_box = low_chain
        assert source.stats.tuples_in == n
        assert filter_box.stats.tuples_in == source.stats.tuples_out == n
        assert select_box.stats.tuples_in == filter_box.stats.tuples_out < n
        # Both per-query views report the SAME chain (same counters).
        high_chain = [r for r in session.statistics("high") if r.shared]
        assert [r.stats for r in high_chain] == [r.stats for r in low_chain]

    def test_shared_results_match_standalone_runs(self):
        """Sharing is an optimization: results must be unchanged."""
        tuples = [value_tuple(i, 8.0 + (i % 5), area=i % 2) for i in range(24)]

        shared_session = make_session()
        low = shared_session.register("low", Q_LOW)
        high = shared_session.register("high", Q_HIGH)
        for item in tuples:
            shared_session.push("rfid", item)

        for name, text in (("low", Q_LOW), ("high", Q_HIGH)):
            solo_session = make_session()
            solo = solo_session.register(name, text)
            for item in tuples:
                solo_session.push("rfid", item)
            shared_results = (low if name == "low" else high).results
            assert len(shared_results) == len(solo.results)
            for a, b in zip(shared_results, solo.results):
                assert a.value("group") == b.value("group")
                assert b.value("sum_weight_mean") == pytest.approx(
                    a.value("sum_weight_mean"), abs=1e-9
                )

    def test_identical_queries_share_everything_but_sinks(self):
        session = make_session()
        a = session.register("a", Q_LOW)
        b = session.register("b", Q_LOW)
        assert all(report.shared for report in session.statistics())
        for i in range(8):
            session.push("rfid", value_tuple(i, 10.0))
        assert len(a.results) == len(b.results) > 0


class TestDropWithSharing:
    def test_drop_detaches_only_exclusive_boxes(self):
        session = make_session()
        low = session.register("low", Q_LOW)
        high = session.register("high", Q_HIGH)
        for i in range(8):
            session.push("rfid", value_tuple(i, 10.0))
        low_results_before = len(low.results)
        assert low_results_before > 0

        session.drop("high")
        assert session.queries == ["low"]
        # Shared boxes survive with their owners reduced; high's
        # aggregate is gone.
        reports = session.statistics()
        assert all(report.owners == ("low",) for report in reports)
        assert len(reports) == 4  # source + 2 filters + low's aggregate

        # The surviving query keeps producing correct results, with
        # window state carried across the drop (4-tuple windows keep
        # closing on schedule).
        for i in range(8, 16):
            session.push("rfid", value_tuple(i, 10.0))
        assert len(low.results) == low_results_before + 2

    def test_drop_keeps_window_state_of_shared_boxes(self):
        """A drop must not reset a shared aggregate's partial window."""
        session = make_session()
        a = session.register("a", Q_LOW)
        session.register("b", Q_LOW)  # fully shared, including the aggregate
        for i in range(3):  # 3 of 4 tuples into the shared window
            session.push("rfid", value_tuple(i, 10.0))
        session.drop("b")
        session.push("rfid", value_tuple(4, 10.0))  # closes the window
        assert len(a.results) == 1

    def test_dropped_query_handle_is_dead(self):
        from repro.service import ServiceError

        session = make_session()
        session.register("low", Q_LOW)
        high = session.register("high", Q_HIGH)
        session.drop("high")
        for i in range(8):
            session.push("rfid", value_tuple(i, 10.0))
        with pytest.raises(ServiceError, match="no query named"):
            high.results


class TestPipeSharing:
    def test_same_pipe_operator_instance_is_shared(self):
        """The Figure 2 shape: one T operator feeding two queries."""
        session = QuerySession()
        raw = session.create_stream("raw")
        t_operator = PassThroughOperator(name="T-operator")
        located = raw.pipe(t_operator, description="T operator")

        a = session.register("a", located.where(lambda t: True, uses=(), description="all"))
        b = session.register("b", located.where_probably("w", ">", 0.0))

        t_boxes = [
            r for r in session.statistics() if r.stats.name == "T-operator"
        ]
        assert len(t_boxes) == 1
        assert set(t_boxes[0].owners) == {"a", "b"}

        session.push("raw", StreamTuple(timestamp=0.0, uncertain={"w": Gaussian(1.0, 1.0)}))
        assert len(a.results) == 1 and len(b.results) == 1
        assert t_boxes[0].stats.name == "T-operator"

    def test_distinct_pipe_instances_are_not_shared(self):
        session = QuerySession()
        raw = session.create_stream("raw")
        a = session.register("a", raw.pipe(PassThroughOperator(name="T1")))
        b = session.register("b", raw.pipe(PassThroughOperator(name="T2")))
        shared = [r for r in session.statistics() if r.shared]
        assert [r.stats.name for r in shared] == ["source:raw"]
        session.push("raw", StreamTuple(timestamp=0.0))
        assert len(a.results) == 1 and len(b.results) == 1


class TestJoinSharing:
    def test_identical_join_text_shares_the_join_box(self):
        text = """
            SELECT * FROM objects AS o
            JOIN sensors AS s [RANGE 10 SECONDS]
            ON o.x ~= s.x WITHIN 2 MIN PROBABILITY 0.1
        """
        session = QuerySession()
        session.create_stream("objects", uncertain=("x",))
        session.create_stream("sensors", uncertain=("x",))
        a = session.register("a", text)
        b = session.register("b", text)
        joins = [
            r for r in session.statistics() if "Join" in r.stats.name
        ]
        assert len(joins) == 1 and set(joins[0].owners) == {"a", "b"}
        session.push("sensors", StreamTuple(timestamp=0.0, uncertain={"x": Gaussian(0.0, 1.0)}))
        session.push("objects", StreamTuple(timestamp=0.5, uncertain={"x": Gaussian(0.0, 1.0)}))
        assert len(a.results) == 1 and len(b.results) == 1


class TestFluentAndCqlShare:
    def test_cql_and_identical_fluent_query_share_the_source(self):
        session = QuerySession()
        stream = session.create_stream("s", uncertain=("v",), family="gaussian")
        session.register("text", "SELECT SUM(v) FROM s [ROWS 2]")
        from repro.streams.windows import TumblingCountWindow

        session.register(
            "fluent", stream.window(TumblingCountWindow(2)).aggregate("v")
        )
        source = next(
            r for r in session.statistics() if r.stats.name == "source:s"
        )
        assert set(source.owners) == {"text", "fluent"}
