"""Regression: dropping a shared-prefix query while the engine is mid-push.

A result callback is the natural place to drop or rotate queries
("alert fired, stop watching"), and it runs *inside* the engine's
propagation loop: the worklist may still hold (operator, tuple) pairs
pointing at the boxes the drop detaches.  The engine must quarantine
unregistered boxes immediately — the dropped query's exclusive suffix
must not observe the in-flight tuple, and the surviving query (which
shares the prefix) must keep running undisturbed.
"""

import pytest

from repro import QuerySession
from repro.distributions import Gaussian
from repro.streams import StreamTuple


def make_tuples(n, start=0):
    return [
        StreamTuple(timestamp=float(start + i), uncertain={"w": Gaussian(10.0 + i, 1.0)})
        for i in range(n)
    ]


def shared_prefix_session(batch_size=None):
    """Two queries sharing their source->prob-filter prefix, per-tuple windows."""
    session = QuerySession(batch_size=batch_size)
    session.create_stream("s", uncertain=("w",), family="gaussian")
    session.register("keep", "SELECT * FROM s [NOW] WHERE w > 0 WITH PROBABILITY 0.1")
    session.register("doomed", "SELECT * FROM s [NOW] WHERE w > 0 WITH PROBABILITY 0.1")
    return session


@pytest.mark.parametrize("batch_size", [None, 4], ids=["tuple-path", "batch-path"])
def test_drop_other_query_from_callback_mid_push(batch_size):
    """The drop happens while the same tuple is still queued for the victim.

    "keep" registers first, so the shared prefix box delivers each
    tuple to keep's sink *before* doomed's: when keep's callback drops
    "doomed", the propagation stack still holds the (doomed-sink,
    tuple) pair for the very tuple that triggered the callback.  That
    in-flight delivery must be discarded.
    """
    session = QuerySession(batch_size=batch_size)
    session.create_stream("s", uncertain=("w",), family="gaussian")
    dropped: list = []

    def drop_doomed(_item):
        if not dropped and "doomed" in session.queries:
            session.drop("doomed")
            dropped.append(True)

    session.register(
        "keep",
        "SELECT * FROM s [NOW] WHERE w > 0 WITH PROBABILITY 0.1",
        on_result=drop_doomed,
    )
    session.register("doomed", "SELECT * FROM s [NOW] WHERE w > 0 WITH PROBABILITY 0.1")
    doomed_sink = session._queries["doomed"].sink

    session.push_many("s", make_tuples(12))

    assert dropped, "the callback must have fired and dropped the other query"
    # The drop ran before the victim saw even the first tuple, and the
    # in-flight delivery scheduled behind the callback was discarded.
    assert len(doomed_sink.results) == 0
    assert "doomed" not in session.queries
    # The survivor keeps observing the whole stream.
    assert len(session.results("keep")) == 12


def test_drop_self_from_callback_mid_push():
    session = shared_prefix_session()
    seen: list = []

    def drop_self(item):
        seen.append(item)
        if len(seen) == 3:
            session.drop("keep")

    session.drop("keep")
    session.register(
        "keep",
        "SELECT * FROM s [NOW] WHERE w > 0 WITH PROBABILITY 0.1",
        on_result=drop_self,
    )
    keep_sink = session._queries["keep"].sink

    session.push_many("s", make_tuples(10))

    assert "keep" not in session.queries
    # Delivery stopped right after the drop: the third tuple was the last.
    assert len(keep_sink.results) == 3
    # The other query never noticed.
    assert len(session.results("doomed")) == 10


def test_nested_push_from_callback_keeps_quarantine():
    """A callback that drops a query and then pushes again must not
    resurrect the dropped query's in-flight deliveries.

    The nested push runs inside the outer propagation; if it cleared
    the quarantine, the outer worklist's pending (dropped-box, tuple)
    pairs would be delivered after the callback returns.
    """
    session = QuerySession()
    session.create_stream("s", uncertain=("w",), family="gaussian")
    session.create_stream("side", uncertain=("w",), family="gaussian")
    acted: list = []

    def drop_and_push(_item):
        if not acted and "doomed" in session.queries:
            session.drop("doomed")
            # Nested push into another source while the outer
            # propagation is still mid-flight.
            session.push("side", make_tuples(1)[0])
            acted.append(True)

    session.register(
        "keep",
        "SELECT * FROM s [NOW] WHERE w > 0 WITH PROBABILITY 0.1",
        on_result=drop_and_push,
    )
    session.register("doomed", "SELECT * FROM s [NOW] WHERE w > 0 WITH PROBABILITY 0.1")
    session.register("sideline", "SELECT * FROM side [NOW] WHERE w > 0 WITH PROBABILITY 0.1")
    doomed_sink = session._queries["doomed"].sink

    session.push_many("s", make_tuples(8))

    assert acted
    assert len(doomed_sink.results) == 0
    assert len(session.results("keep")) == 8
    assert len(session.results("sideline")) == 1


def test_drop_during_flush_callback():
    """Dropping from a callback that fires during finish()/flush()."""
    session = QuerySession()
    session.create_stream("s", uncertain=("w",), family="gaussian")
    session.register("keep", "SELECT SUM(w) FROM s [RANGE 100 SECONDS]")

    def drop_other(_item):
        if "doomed" in session.queries:
            session.drop("doomed")

    session.register(
        "watcher",
        "SELECT SUM(w) FROM s [RANGE 100 SECONDS]",
        on_result=drop_other,
    )
    session.register("doomed", "SELECT SUM(w) FROM s [RANGE 100 SECONDS]")
    doomed_sink = session._queries["doomed"].sink

    session.push_many("s", make_tuples(5))
    session.flush()  # closes the partial window; watcher's callback drops "doomed"

    assert "doomed" not in session.queries
    # Flush order between the shared window box's consumers is not
    # guaranteed, but after the drop no further tuples may arrive.
    frozen = len(doomed_sink.results)
    session.push_many("s", make_tuples(5, start=200))
    session.flush()
    assert len(doomed_sink.results) == frozen
