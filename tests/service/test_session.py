"""QuerySession lifecycle: register, push, results, pause, drop, flush."""

import pytest

from repro.distributions import Gaussian
from repro.service import QuerySession, ServiceError
from repro.streams import StreamTuple


def weight_tuple(i, mean, sigma=2.0):
    return StreamTuple(
        timestamp=float(i),
        values={"tag_id": f"O{i}"},
        uncertain={"weight": Gaussian(mean, sigma)},
    )


@pytest.fixture
def session():
    s = QuerySession()
    s.create_stream(
        "rfid", values=("tag_id",), uncertain=("weight",), family="gaussian"
    )
    return s


class TestRegistration:
    def test_cql_query_collects_results(self, session):
        q = session.register("totals", "SELECT SUM(weight) FROM rfid [ROWS 3]")
        for i in range(7):
            session.push("rfid", weight_tuple(i, 10.0))
        assert len(q.results) == 2
        assert q.results[0].value("sum_weight_mean") == pytest.approx(30.0)

    def test_fluent_stream_registration(self, session):
        from repro.streams.windows import TumblingCountWindow

        stream = (
            session.create_stream("other", uncertain=("v",))
            .window(TumblingCountWindow(2))
            .aggregate("v")
        )
        q = session.register("fluent", stream)
        session.push(
            "other",
            StreamTuple(timestamp=0.0, uncertain={"v": Gaussian(5.0, 1.0)}),
        )
        session.push(
            "other",
            StreamTuple(timestamp=1.0, uncertain={"v": Gaussian(7.0, 1.0)}),
        )
        assert len(q.results) == 1
        assert q.results[0].value("sum_v_mean") == pytest.approx(12.0)

    def test_duplicate_name_is_rejected(self, session):
        session.register("q", "SELECT SUM(weight) FROM rfid [ROWS 3]")
        with pytest.raises(ServiceError, match="already registered"):
            session.register("q", "SELECT SUM(weight) FROM rfid [ROWS 5]")

    def test_conflicting_stream_declaration_is_rejected(self, session):
        from repro.plan import Stream

        conflicting = Stream.source("rfid", uncertain=("totally_different",))
        with pytest.raises(ServiceError, match="different schema"):
            session.register("bad", conflicting.where_probably("totally_different", ">", 0.0))

    def test_failed_registration_leaves_session_clean(self, session):
        boxes_before = len(session.statistics())
        with pytest.raises(Exception):
            session.register("broken", "SELECT SUM(missing) FROM rfid [ROWS 3]")
        assert "broken" not in session.queries
        assert len(session.statistics()) == boxes_before

    def test_failed_registration_keeps_declared_stream_schema(self, session):
        """Rollback must not undeclare a create_stream()-declared source."""
        from repro.plan import PlanError, Stream
        from repro.streams.operators.base import PassThroughOperator

        # A registration that fails AFTER the source box is attached:
        # piping an operator that is already wired elsewhere raises
        # during lowering of the PipeNode, with the source box created.
        wired = PassThroughOperator(name="wired")
        wired.connect(PassThroughOperator())
        with pytest.raises(PlanError, match="already wired"):
            session.register("bad", Stream.source("rfid").pipe(wired))
        assert "rfid" in session.streams
        # The declaration is intact: 'weight' still classifies as
        # uncertain, so this compiles to a probabilistic filter.
        q = session.register("ok", "SELECT * FROM rfid WHERE weight > 10")
        session.push("rfid", weight_tuple(0, 50.0))
        assert len(q.results) == 1
        assert q.results[0].has_value("selection_probability")

    def test_on_result_callback(self, session):
        seen = []
        session.register(
            "cb", "SELECT SUM(weight) FROM rfid [ROWS 2]", on_result=seen.append
        )
        for i in range(4):
            session.push("rfid", weight_tuple(i, 10.0))
        assert len(seen) == 2


class TestDataFlow:
    def test_unknown_source_is_rejected(self, session):
        session.register("q", "SELECT SUM(weight) FROM rfid [ROWS 3]")
        with pytest.raises(ServiceError, match="unknown source"):
            session.push("nope", weight_tuple(0, 1.0))

    def test_push_many_batch_path(self):
        session = QuerySession(batch_size=8)
        session.create_stream("s", uncertain=("v",), family="gaussian")
        q = session.register("q", "SELECT SUM(v) FROM s [ROWS 4]")
        session.push_many(
            "s",
            [
                StreamTuple(timestamp=float(i), uncertain={"v": Gaussian(2.0, 1.0)})
                for i in range(16)
            ],
        )
        assert len(q.results) == 4
        for result in q.results:
            assert result.value("sum_v_mean") == pytest.approx(8.0)

    def test_flush_emits_partial_windows_and_session_continues(self, session):
        q = session.register("q", "SELECT SUM(weight) FROM rfid [ROWS 5]")
        for i in range(3):
            session.push("rfid", weight_tuple(i, 10.0))
        assert q.results == []
        session.flush()
        assert len(q.results) == 1
        assert q.results[0].value("sum_weight_mean") == pytest.approx(30.0)
        # The session keeps running after a flush.
        for i in range(5):
            session.push("rfid", weight_tuple(10 + i, 1.0))
        assert len(q.results) == 2

    def test_take_drains_results(self, session):
        q = session.register("q", "SELECT SUM(weight) FROM rfid [ROWS 2]")
        for i in range(4):
            session.push("rfid", weight_tuple(i, 10.0))
        drained = session.take("q")
        assert len(drained) == 2
        assert q.results == []


class TestPauseResume:
    def test_paused_results_are_discarded_and_counted(self, session):
        q = session.register("q", "SELECT SUM(weight) FROM rfid [ROWS 2]")
        for i in range(4):
            session.push("rfid", weight_tuple(i, 10.0))
        assert len(q.results) == 2
        q.pause()
        assert session.is_paused("q")
        for i in range(4, 8):
            session.push("rfid", weight_tuple(i, 10.0))
        assert len(q.results) == 2  # nothing collected while paused
        q.resume()
        for i in range(8, 12):
            session.push("rfid", weight_tuple(i, 10.0))
        assert len(q.results) == 4

    def test_explain_marks_paused_queries(self, session):
        session.register("q", "SELECT SUM(weight) FROM rfid [ROWS 2]")
        session.pause("q")
        assert "(paused)" in session.explain("q")


class TestDrop:
    def test_drop_unknown_query(self, session):
        with pytest.raises(ServiceError, match="no query named"):
            session.drop("ghost")

    def test_drop_removes_exclusive_boxes_but_keeps_declared_stream(self, session):
        session.register("q", "SELECT SUM(weight) FROM rfid [ROWS 3]")
        assert len(session.statistics()) == 2  # source + aggregate
        session.drop("q")
        assert session.queries == []
        assert len(session.statistics()) == 1  # the declared source persists
        # The stream is still pushable (data goes nowhere) and a new
        # query can attach to it.
        session.push("rfid", weight_tuple(0, 10.0))
        q2 = session.register("again", "SELECT SUM(weight) FROM rfid [ROWS 2]")
        session.push("rfid", weight_tuple(1, 10.0))
        session.push("rfid", weight_tuple(2, 10.0))
        assert len(q2.results) == 1

    def test_undeclared_source_is_removed_with_last_query(self):
        session = QuerySession()
        q = session.register("q", "SELECT * FROM adhoc WHERE x > 0 WITH PROBABILITY 0.5")
        assert "adhoc" in session.streams
        q.drop()
        assert "adhoc" not in session.streams
        with pytest.raises(ServiceError, match="unknown source"):
            session.push("adhoc", weight_tuple(0, 1.0))
