"""Persistence-lite: QuerySession.snapshot() / restore() round trips."""

import json

import numpy as np
import pytest

from repro import QuerySession
from repro.distributions import Gaussian
from repro.service import ServiceError
from repro.streams import StreamTuple


def sample_tuples(n=300):
    rng = np.random.default_rng(23)
    return [
        StreamTuple(
            timestamp=i * 0.2,
            values={"tag_id": f"T{i % 4}"},
            uncertain={"w": Gaussian(float(rng.uniform(10.0, 90.0)), 3.0)},
        )
        for i in range(n)
    ]


def build_session():
    session = QuerySession()
    session.create_stream(
        "rfid",
        values=("tag_id",),
        uncertain={"w": ("gaussian", 50.0, 20.0)},
        family="gaussian",
        rate_hint=5.0,
    )
    session.create_stream("bare")
    session.register(
        "totals", "SELECT SUM(w) AS total FROM rfid [RANGE 10 SECONDS SLIDE 10 SECONDS]"
    )
    session.register("hot", "SELECT * FROM rfid WHERE w > 60 WITH PROBABILITY 0.5")
    session.pause("hot")
    return session


class TestSnapshot:
    def test_snapshot_is_json_serializable(self):
        snapshot = build_session().snapshot()
        payload = json.dumps(snapshot)
        assert json.loads(payload) == snapshot

    def test_snapshot_captures_streams_queries_and_pause_state(self):
        snapshot = build_session().snapshot()
        assert snapshot["version"] == 1
        streams = {decl["name"]: decl for decl in snapshot["streams"]}
        assert set(streams) == {"rfid", "bare"}
        assert streams["rfid"]["family"] == "gaussian"
        assert streams["rfid"]["rate_hint"] == 5.0
        assert streams["rfid"]["stats"] == [["w", "gaussian", 50.0, 20.0]]
        queries = {q["name"]: q for q in snapshot["queries"]}
        assert set(queries) == {"totals", "hot"}
        assert queries["hot"]["paused"] is True
        assert "SUM(w)" in queries["totals"]["text"]

    def test_programmatic_queries_are_reported_not_serialized(self):
        session = build_session()
        stream = session.create_stream("s2", uncertain=("v",))
        session.register("fluent", stream.where_probably("v", ">", 0.0))
        snapshot = session.snapshot()
        assert snapshot["unsupported"] == ["fluent"]
        assert "fluent" not in {q["name"] for q in snapshot["queries"]}


class TestRestore:
    def test_round_trip_produces_identical_results(self):
        tuples = sample_tuples()
        original = build_session()
        restored = QuerySession.restore(json.loads(json.dumps(original.snapshot())))

        original.push_many("rfid", tuples)
        original.flush()
        restored.push_many("rfid", tuples)
        restored.flush()

        for name in ("totals",):
            expected, got = original.results(name), restored.results(name)
            assert len(expected) == len(got) and expected
            for a, b in zip(expected, got):
                da, db = a.distribution("total"), b.distribution("total")
                assert float(db.mean()) == pytest.approx(float(da.mean()), abs=1e-9)
                assert float(db.variance()) == pytest.approx(
                    float(da.variance()), abs=1e-9
                )
        # Pause state survives the round trip.
        assert restored.is_paused("hot")
        assert not restored.results("hot")

    def test_restore_into_sharded_session(self):
        tuples = sample_tuples()
        snapshot = build_session().snapshot()
        with QuerySession.restore(
            snapshot, workers=2, shard_backend="inline"
        ) as restored:
            assert restored._queries["totals"].sharded is not None
            restored.push_many("rfid", tuples)
            restored.flush()
            assert restored.results("totals")

    def test_restore_with_udfs(self):
        session = QuerySession(functions={"double": lambda x: 2.0 * x})
        session.create_stream("s", uncertain=("v",), family="gaussian")
        session.register(
            "doubled",
            "SELECT double(v) AS UNCERTAIN dv FROM s WHERE v > 0 WITH PROBABILITY 0.1",
        )
        snapshot = session.snapshot()
        with pytest.raises(Exception):  # the UDF is code, not state
            QuerySession.restore(snapshot)
        restored = QuerySession.restore(
            snapshot, functions={"double": lambda x: 2.0 * x}
        )
        assert "doubled" in restored.queries

    def test_unknown_version_rejected(self):
        with pytest.raises(ServiceError, match="version"):
            QuerySession.restore({"version": 99})
