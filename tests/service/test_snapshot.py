"""Persistence-lite: QuerySession.snapshot() / restore() round trips."""

import json

import numpy as np
import pytest

from repro import QuerySession
from repro.distributions import Gaussian
from repro.service import ServiceError
from repro.streams import StreamTuple


def sample_tuples(n=300):
    rng = np.random.default_rng(23)
    return [
        StreamTuple(
            timestamp=i * 0.2,
            values={"tag_id": f"T{i % 4}"},
            uncertain={"w": Gaussian(float(rng.uniform(10.0, 90.0)), 3.0)},
        )
        for i in range(n)
    ]


def build_session():
    session = QuerySession()
    session.create_stream(
        "rfid",
        values=("tag_id",),
        uncertain={"w": ("gaussian", 50.0, 20.0)},
        family="gaussian",
        rate_hint=5.0,
    )
    session.create_stream("bare")
    session.register(
        "totals", "SELECT SUM(w) AS total FROM rfid [RANGE 10 SECONDS SLIDE 10 SECONDS]"
    )
    session.register("hot", "SELECT * FROM rfid WHERE w > 60 WITH PROBABILITY 0.5")
    session.pause("hot")
    return session


class TestSnapshot:
    def test_snapshot_is_json_serializable(self):
        snapshot = build_session().snapshot()
        payload = json.dumps(snapshot)
        assert json.loads(payload) == snapshot

    def test_snapshot_captures_streams_queries_and_pause_state(self):
        snapshot = build_session().snapshot()
        assert snapshot["version"] == 1
        streams = {decl["name"]: decl for decl in snapshot["streams"]}
        assert set(streams) == {"rfid", "bare"}
        assert streams["rfid"]["family"] == "gaussian"
        assert streams["rfid"]["rate_hint"] == 5.0
        assert streams["rfid"]["stats"] == [["w", "gaussian", 50.0, 20.0]]
        queries = {q["name"]: q for q in snapshot["queries"]}
        assert set(queries) == {"totals", "hot"}
        assert queries["hot"]["paused"] is True
        assert "SUM(w)" in queries["totals"]["text"]

    def test_programmatic_queries_are_reported_not_serialized(self):
        session = build_session()
        stream = session.create_stream("s2", uncertain=("v",))
        session.register("fluent", stream.where_probably("v", ">", 0.0))
        snapshot = session.snapshot()
        assert snapshot["unsupported"] == ["fluent"]
        assert "fluent" not in {q["name"] for q in snapshot["queries"]}


class TestRestore:
    def test_round_trip_produces_identical_results(self):
        tuples = sample_tuples()
        original = build_session()
        restored = QuerySession.restore(json.loads(json.dumps(original.snapshot())))

        original.push_many("rfid", tuples)
        original.flush()
        restored.push_many("rfid", tuples)
        restored.flush()

        for name in ("totals",):
            expected, got = original.results(name), restored.results(name)
            assert len(expected) == len(got) and expected
            for a, b in zip(expected, got):
                da, db = a.distribution("total"), b.distribution("total")
                assert float(db.mean()) == pytest.approx(float(da.mean()), abs=1e-9)
                assert float(db.variance()) == pytest.approx(
                    float(da.variance()), abs=1e-9
                )
        # Pause state survives the round trip.
        assert restored.is_paused("hot")
        assert not restored.results("hot")

    def test_restore_into_sharded_session(self):
        tuples = sample_tuples()
        snapshot = build_session().snapshot()
        with QuerySession.restore(
            snapshot, workers=2, shard_backend="inline"
        ) as restored:
            assert restored._queries["totals"].sharded is not None
            restored.push_many("rfid", tuples)
            restored.flush()
            assert restored.results("totals")

    def test_restore_with_udfs(self):
        session = QuerySession(functions={"double": lambda x: 2.0 * x})
        session.create_stream("s", uncertain=("v",), family="gaussian")
        session.register(
            "doubled",
            "SELECT double(v) AS UNCERTAIN dv FROM s WHERE v > 0 WITH PROBABILITY 0.1",
        )
        snapshot = session.snapshot()
        with pytest.raises(Exception):  # the UDF is code, not state
            QuerySession.restore(snapshot)
        restored = QuerySession.restore(
            snapshot, functions={"double": lambda x: 2.0 * x}
        )
        assert "doubled" in restored.queries

    def test_unknown_version_rejected(self):
        with pytest.raises(ServiceError, match="version"):
            QuerySession.restore({"version": 99})


class TestRuntimeConfigPersistence:
    """snapshot() records workers=N; restore() honors it (with override)."""

    def build_sharded_session(self):
        session = QuerySession(workers=2, shard_backend="inline", shard_chunk_size=128)
        session.create_stream(
            "rfid", values=("tag_id",), uncertain=("w",), family="gaussian",
            rate_hint=5.0,
        )
        session.register(
            "totals",
            "SELECT SUM(w) AS total FROM rfid [RANGE 10 SECONDS SLIDE 10 SECONDS]",
        )
        return session

    def test_snapshot_records_the_sharded_runtime_config(self):
        snapshot = self.build_sharded_session().snapshot()
        assert snapshot["workers"] == 2
        assert snapshot["shard_backend"] == "inline"
        assert snapshot["shard_chunk_size"] == 128
        assert snapshot["shard_remote_shards"] == []

    def test_snapshot_records_remote_shard_addresses(self):
        session = QuerySession(
            workers=2, shard_remote_shards=("host-a:9000", "host-b:9000")
        )
        snapshot = session.snapshot()
        assert snapshot["shard_remote_shards"] == ["host-a:9000", "host-b:9000"]
        # Override: accept the local-fork fallback explicitly.
        restored = QuerySession.restore(
            snapshot, shard_backend="inline", shard_remote_shards=()
        )
        assert restored._shard_remote_shards == ()

    def test_restore_keeps_the_session_sharded(self):
        """The regression: restore() used to downgrade to one process."""
        snapshot = json.loads(json.dumps(self.build_sharded_session().snapshot()))
        with QuerySession.restore(snapshot) as restored:
            assert restored._workers == 2
            assert restored._shard_backend == "inline"
            assert restored._shard_chunk_size == 128
            assert restored._queries["totals"].sharded is not None
            assert restored._queries["totals"].sharded.workers == 2
            # ... and it still computes.
            restored.push_many("rfid", sample_tuples(100))
            restored.flush()
            assert restored.results("totals")

    def test_restore_override_wins(self):
        snapshot = self.build_sharded_session().snapshot()
        with QuerySession.restore(snapshot, workers=0) as restored:
            assert restored._workers == 0
            assert restored._queries["totals"].sharded is None
        with QuerySession.restore(
            snapshot, workers=3, shard_backend="inline"
        ) as restored:
            assert restored._queries["totals"].sharded.workers == 3

    def test_legacy_snapshot_restores_single_process(self):
        snapshot = self.build_sharded_session().snapshot()
        for key in ("workers", "shard_backend", "shard_chunk_size"):
            snapshot.pop(key)
        with QuerySession.restore(snapshot) as restored:
            assert restored._workers == 0
            assert restored._queries["totals"].sharded is None
