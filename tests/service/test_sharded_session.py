"""QuerySession(workers=N): transparent sharded execution of registered queries."""

import numpy as np
import pytest

from repro import QuerySession
from repro.distributions import Gaussian
from repro.service import ServiceError
from repro.streams import StreamTuple


@pytest.fixture()
def tuples():
    rng = np.random.default_rng(17)
    return [
        StreamTuple(
            timestamp=i * 0.2,
            values={"tag_id": f"T{i % 5}"},
            uncertain={"w": Gaussian(float(rng.uniform(20.0, 60.0)), 2.0)},
        )
        for i in range(600)
    ]


def declare(session):
    session.create_stream(
        "rfid", values=("tag_id",), uncertain=("w",), family="gaussian", rate_hint=5.0
    )


TOTALS = "SELECT SUM(w) AS total FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]"
HOT = "SELECT * FROM rfid WHERE w > 40 WITH PROBABILITY 0.5"


def run_reference(tuples):
    session = QuerySession()
    declare(session)
    session.register("totals", TOTALS)
    session.register("hot", HOT)
    session.push_many("rfid", tuples)
    session.flush()
    return session.results("totals"), session.results("hot")


class TestShardedRegistration:
    @pytest.mark.parametrize("backend", ["inline", "process"])
    def test_results_match_engine_hosted_session(self, tuples, backend):
        expected_totals, expected_hot = run_reference(tuples)
        with QuerySession(workers=2, shard_backend=backend) as session:
            declare(session)
            session.register("totals", TOTALS)
            session.register("hot", HOT)
            session.push_many("rfid", tuples)
            session.flush()
            totals, hot = session.results("totals"), session.results("hot")
        assert len(totals) == len(expected_totals)
        for a, b in zip(expected_totals, totals):
            da, db = a.distribution("total"), b.distribution("total")
            assert float(db.mean()) == pytest.approx(float(da.mean()), abs=1e-9)
            assert float(db.variance()) == pytest.approx(float(da.variance()), abs=1e-9)
        assert len(hot) == len(expected_hot)

    def test_unshardable_query_stays_in_shared_engine(self, tuples):
        with QuerySession(workers=2, shard_backend="inline") as session:
            declare(session)
            session.register("rows", "SELECT SUM(w) FROM rfid [ROWS 100]")
            assert session._queries["rows"].sharded is None
            session.push_many("rfid", tuples)
            session.flush()
            assert session.results("rows")

    def test_session_explain_marks_sharded_queries(self, tuples):
        with QuerySession(workers=3, shard_backend="inline") as session:
            declare(session)
            session.register("totals", TOTALS)
            assert "totals (sharded x3)" in session.explain()
            per_query = session.explain("totals")
            assert "sharded: yes" in per_query
            assert TOTALS.split()[0] in per_query  # the CQL text is shown


class TestShardedLifecycle:
    def test_pause_resume_gate_sharded_results(self, tuples):
        with QuerySession(workers=2, shard_backend="inline") as session:
            declare(session)
            session.register("hot", HOT)
            session.push_many("rfid", tuples[:300])
            session.flush()
            seen = len(session.results("hot"))
            session.pause("hot")
            session.push_many("rfid", tuples[300:])
            session.flush()
            assert len(session.results("hot")) == seen
            assert session._queries["hot"].sink.dropped > 0
            session.resume("hot")

    def test_drop_closes_worker_pool(self, tuples):
        with QuerySession(workers=2, shard_backend="process") as session:
            declare(session)
            session.register("totals", TOTALS)
            engine = session._queries["totals"].sharded
            session.push_many("rfid", tuples)
            session.flush()
            session.drop("totals")
            assert "totals" not in session.queries
            assert engine._closed
            # The declared stream persists for new registrations.
            session.register("totals2", TOTALS)

    def test_callbacks_fire_for_sharded_results(self, tuples):
        seen = []
        with QuerySession(workers=2, shard_backend="inline") as session:
            declare(session)
            session.register("totals", TOTALS, on_result=seen.append)
            session.push_many("rfid", tuples)
            session.flush()
            assert len(seen) == len(session.results("totals"))

    def test_statistics_expose_shard_boxes(self, tuples):
        with QuerySession(workers=2, shard_backend="inline") as session:
            declare(session)
            session.register("totals", TOTALS)
            session.push_many("rfid", tuples)
            session.flush()
            reports = session.statistics("totals")
            names = [report.stats.name for report in reports]
            assert any(name.startswith("shard0/") for name in names)
            assert any(name.startswith("shard1/") for name in names)
            raw = session.shard_statistics("totals")
            assert sorted(raw.shards) == [0, 1]

    def test_shard_statistics_rejects_engine_hosted_query(self, tuples):
        with QuerySession(workers=2, shard_backend="inline") as session:
            declare(session)
            session.register("rows", "SELECT SUM(w) FROM rfid [ROWS 100]")
            with pytest.raises(ServiceError, match="shared engine"):
                session.shard_statistics("rows")
