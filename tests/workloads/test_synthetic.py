"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.distributions import Gaussian, GaussianMixture
from repro.streams import TupleBatch
from repro.workloads import (
    gaussian_tuple_batches,
    gaussian_tuple_stream,
    gmm_tuple_batches,
    gmm_tuple_stream,
    ma_series_tuple_stream,
    random_gaussian_mixture,
    temperature_stream,
    to_batches,
)


class TestGMMStream:
    def test_stream_length_and_attribute(self):
        stream = gmm_tuple_stream(50, rng=1)
        assert len(stream) == 50
        assert all(isinstance(t.distribution("value"), GaussianMixture) for t in stream)

    def test_distributions_differ_between_tuples(self):
        stream = gmm_tuple_stream(20, rng=2)
        means = {round(t.distribution("value").mean(), 6) for t in stream}
        assert len(means) > 10

    def test_reproducible_with_seed(self):
        a = gmm_tuple_stream(10, rng=42)
        b = gmm_tuple_stream(10, rng=42)
        for ta, tb in zip(a, b):
            assert ta.distribution("value").mean() == pytest.approx(tb.distribution("value").mean())

    def test_mean_range_respected(self):
        stream = gmm_tuple_stream(100, mean_range=(10.0, 20.0), rng=3)
        for t in stream:
            assert 5.0 < t.distribution("value").mean() < 25.0

    def test_timestamps_monotone(self):
        stream = gmm_tuple_stream(30, interval=0.5, rng=4)
        times = [t.timestamp for t in stream]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(0.5)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            gmm_tuple_stream(0)

    def test_random_mixture_component_bounds(self, rng):
        for _ in range(20):
            mix = random_gaussian_mixture(rng, max_components=4)
            assert 1 <= mix.n_components <= 4


class TestOtherStreams:
    def test_gaussian_stream(self):
        stream = gaussian_tuple_stream(25, rng=5)
        assert len(stream) == 25
        assert all(isinstance(t.distribution("value"), Gaussian) for t in stream)

    def test_temperature_stream_hot_spot(self):
        stream = temperature_stream(400, hot_spot=(30.0, 20.0, 10.0, 80.0), rng=6)
        hot = [
            t
            for t in stream
            if np.hypot(t.distribution("x").mu - 30.0, t.distribution("y").mu - 20.0) < 5.0
        ]
        cold = [
            t
            for t in stream
            if np.hypot(t.distribution("x").mu - 30.0, t.distribution("y").mu - 20.0) > 20.0
        ]
        assert hot and cold
        assert np.mean([t.distribution("temp").mu for t in hot]) > 55.0
        assert np.mean([t.distribution("temp").mu for t in cold]) < 30.0

    def test_temperature_stream_without_hot_spot(self):
        stream = temperature_stream(50, hot_spot=None, rng=7)
        assert all(t.distribution("temp").mu == pytest.approx(25.0) for t in stream)

    def test_to_batches_preserves_rows_and_order(self):
        stream = gaussian_tuple_stream(25, rng=4)
        batches = to_batches(stream, 10)
        assert [len(b) for b in batches] == [10, 10, 5]
        assert all(isinstance(b, TupleBatch) for b in batches)
        flattened = [t for b in batches for t in b]
        assert flattened == stream  # same objects, same order

    def test_to_batches_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            to_batches(gaussian_tuple_stream(5, rng=4), 0)

    def test_batched_generators_match_stream_generators(self):
        batches = gaussian_tuple_batches(30, batch_size=8, rng=5)
        assert sum(len(b) for b in batches) == 30
        assert all(b.gaussian_params("value") is not None for b in batches)
        gmm_batches = gmm_tuple_batches(12, batch_size=5, rng=5)
        assert [len(b) for b in gmm_batches] == [5, 5, 2]

    def test_ma_series_stream_is_correlated(self):
        from repro.radar import sample_autocorrelation

        stream = ma_series_tuple_stream(5000, coefficients=(0.8,), rng=8)
        series = np.array([t.distribution("value").mu for t in stream])
        rho = sample_autocorrelation(series, 2)
        assert rho[1] > 0.2
