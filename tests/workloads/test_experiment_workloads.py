"""Tests for the Figure 3 (RFID) and Table 1 (radar) workload builders."""

import pytest

from repro.workloads import (
    TABLE1_AVERAGING_SIZES,
    build_rfid_workload,
    build_table1_workload,
    noisy_detection_model,
)


class TestRFIDWorkload:
    def test_builder_wires_consistent_components(self):
        workload = build_rfid_workload(n_objects=30, n_particles=20)
        assert workload.n_objects == 30
        assert workload.world.n_objects == 30
        assert len(workload.operator.filter) == 30
        assert workload.operator.filter.filter_for(workload.world.object_ids()[0]).n_particles == 20

    def test_running_reduces_error(self):
        workload = build_rfid_workload(n_objects=25, n_particles=40)
        before = workload.mean_error()
        workload.run(150)
        assert workload.mean_error() < before

    def test_noisy_detection_model_is_noisier_than_default(self):
        from repro.rfid import DetectionModel

        noisy = noisy_detection_model()
        assert noisy.max_rate < DetectionModel().max_rate

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_rfid_workload(n_objects=0, n_particles=10)
        with pytest.raises(ValueError):
            build_rfid_workload(n_objects=10, n_particles=1)


class TestRadarWorkload:
    def test_builder_produces_requested_scans(self):
        workload = build_table1_workload(
            duration_seconds=19.0, n_scans=2, pulse_rate=200.0, n_gates=80
        )
        assert workload.n_scans == 2
        assert workload.raw_size_bytes > 0
        assert workload.site.nyquist_velocity > 2 * 40.0

    def test_averaging_sizes_constant_matches_paper(self):
        assert TABLE1_AVERAGING_SIZES == (40, 60, 80, 100, 200, 500, 1000)

    def test_scan_duration_matches_requested_structure(self):
        workload = build_table1_workload(
            duration_seconds=19.0, n_scans=2, pulse_rate=200.0, n_gates=80
        )
        pulses_per_scan = workload.scans[0].n_pulses
        assert pulses_per_scan == pytest.approx(19.0 / 2 * 200.0, rel=0.02)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_table1_workload(duration_seconds=0.0)
        with pytest.raises(ValueError):
            build_table1_workload(n_scans=0)
