"""Shared helpers for the CQL front-end tests."""

import pytest


def _assert_tuples_equivalent(left, right, tolerance=1e-9):
    """Two result lists must agree: values to ``tolerance``, uncertain
    attributes via their first two moments."""
    assert len(left) == len(right), f"{len(left)} results vs {len(right)}"
    for a, b in zip(left, right):
        assert set(a.values) == set(b.values), (sorted(a.values), sorted(b.values))
        for key, value in a.values.items():
            other = b.values[key]
            if isinstance(value, float):
                assert other == pytest.approx(value, abs=tolerance), key
            else:
                assert other == value, key
        assert set(a.uncertain) == set(b.uncertain)
        for key in a.uncertain:
            da, db = a.distribution(key), b.distribution(key)
            assert float(db.mean()) == pytest.approx(float(da.mean()), abs=tolerance)
            assert float(db.variance()) == pytest.approx(
                float(da.variance()), abs=tolerance
            )


@pytest.fixture
def assert_tuples_equivalent():
    return _assert_tuples_equivalent
