"""Parser structure tests: the dialect's clauses land in the right AST."""

import pytest

from repro.cql import parse
from repro.cql.syntax import (
    AggregateItem,
    BandMatchTerm,
    BinOp,
    Call,
    ColumnItem,
    DeriveItem,
    FuncMatchTerm,
    Ident,
    Literal,
    StarItem,
)


class TestSelectList:
    def test_star(self):
        query = parse("SELECT * FROM s")
        (select,) = query.selects
        assert isinstance(select.items[0], StarItem)
        assert select.source.name == "s"

    def test_columns_and_derives(self):
        query = parse("SELECT a, b.c, x * 2 AS doubled, f(x) AS UNCERTAIN loc FROM s")
        items = query.selects[0].items
        assert isinstance(items[0], ColumnItem) and items[0].name == "a"
        assert isinstance(items[1], ColumnItem) and items[1].qualifier == "b"
        assert isinstance(items[2], DeriveItem) and items[2].name == "doubled"
        assert not items[2].uncertain
        assert isinstance(items[3], DeriveItem) and items[3].uncertain
        assert isinstance(items[3].expr, Call)

    def test_aggregates(self):
        query = parse("SELECT SUM(w) AS total, COUNT(*) FROM s [ROWS 5]")
        items = query.selects[0].items
        assert isinstance(items[0], AggregateItem)
        assert items[0].call.function == "sum" and items[0].alias == "total"
        assert items[1].call.function == "count" and items[1].call.argument == "*"

    def test_keywords_are_case_insensitive(self):
        query = parse("select Sum(w) from s [rows 5] group by g having sum(w) > 1")
        select = query.selects[0]
        assert select.items[0].call.function == "sum"
        assert select.having.threshold == 1.0


class TestWindows:
    def test_rows_window(self):
        window = parse("SELECT SUM(w) FROM s [ROWS 100]").selects[0].source.window
        assert window.kind == "rows" and window.length == 100

    def test_range_window_with_slide(self):
        window = parse(
            "SELECT SUM(w) FROM s [RANGE 5 SECONDS SLIDE 5 SECONDS]"
        ).selects[0].source.window
        assert window.kind == "range"
        assert window.length == 5.0 and window.slide == 5.0

    def test_now_window(self):
        window = parse("SELECT * FROM s [NOW]").selects[0].source.window
        assert window.kind == "now"


class TestWhere:
    def test_conjuncts_split_on_and(self):
        select = parse("SELECT * FROM s WHERE a > 1 AND b < 2 AND f(c)").selects[0]
        assert len(select.where) == 3

    def test_with_probability_suffix(self):
        select = parse("SELECT * FROM s WHERE temp > 60 WITH PROBABILITY 0.8").selects[0]
        (conjunct,) = select.where
        assert conjunct.probability == 0.8
        assert isinstance(conjunct.expr, BinOp) and conjunct.expr.op == ">"

    def test_between_consumes_its_own_and(self):
        select = parse("SELECT * FROM s WHERE x BETWEEN 1 AND 5 AND y > 2").selects[0]
        assert len(select.where) == 2
        assert select.where[0].expr.op == "BETWEEN"

    def test_string_literal_comparison(self):
        (conjunct,) = parse("SELECT * FROM s WHERE kind = 'flammable'").selects[0].where
        assert isinstance(conjunct.expr.right, Literal)
        assert conjunct.expr.right.value == "flammable"


class TestJoin:
    def test_join_clause(self):
        select = parse(
            "SELECT * FROM a AS l JOIN b AS r [RANGE 30 SECONDS] "
            "ON l.x ~= r.x WITHIN 4 AND MATCH near MIN PROBABILITY 0.1"
        ).selects[0]
        join = select.join
        assert join.right.name == "b" and join.right.alias == "r"
        assert join.right.window.length == 30.0
        band, func = join.terms
        assert isinstance(band, BandMatchTerm) and band.width == 4.0
        assert band.left.qualifier == "l" and band.right.qualifier == "r"
        assert isinstance(func, FuncMatchTerm) and func.name == "near"
        assert join.min_probability == 0.1


class TestGroupHaving:
    def test_group_by_expression_and_having(self):
        select = parse(
            "SELECT zone(x) AS area, SUM(w) FROM s [ROWS 10] GROUP BY area "
            "HAVING SUM(w) > 200 WITH CONFIDENCE 0.9"
        ).selects[0]
        assert isinstance(select.group_by, Ident)
        having = select.having
        assert having.call.function == "sum"
        assert having.threshold == 200.0
        assert having.min_probability == 0.9

    def test_group_by_list(self):
        select = parse("SELECT SUM(w) FROM s [ROWS 10] GROUP BY a, b").selects[0]
        assert isinstance(select.group_by, tuple) and len(select.group_by) == 2


class TestUnion:
    def test_union_chains_selects(self):
        query = parse("SELECT * FROM a UNION SELECT * FROM b UNION SELECT * FROM c")
        assert query.is_union
        assert [s.source.name for s in query.selects] == ["a", "b", "c"]


class TestComments:
    def test_line_comments_are_skipped(self):
        query = parse(
            """
            -- the paper's Q1, roughly
            SELECT SUM(w)  -- one aggregate
            FROM s [ROWS 4]
            """
        )
        assert query.selects[0].items[0].call.function == "sum"


class TestPositions:
    @pytest.mark.parametrize(
        "text,line,column",
        [
            ("SELECT *\nFROM s\nWHERE ???", 3, 7),
            ("SELECT * FROM s [ROWS 5", 1, 24),
        ],
    )
    def test_error_positions(self, text, line, column):
        from repro.cql import CQLSyntaxError

        with pytest.raises(CQLSyntaxError) as excinfo:
            parse(text)
        assert excinfo.value.line == line
        assert excinfo.value.column == column
