"""Acceptance: the paper's Q1 and Q2 as CQL text match the fluent API.

Each query is expressed twice — once as text through
:func:`repro.cql.compile_cql`, once as the equivalent
:class:`repro.plan.Stream` pipeline — run over the same input, and the
results must agree to 1e-9.  Both paths compile through the same
planner, so this pins the *lowering* (clause classification, window
mapping, UDF wiring), not a parallel execution path.
"""

import numpy as np
import pytest

from repro.core import Comparison, match_probability_band
from repro.cql import compile_cql
from repro.distributions import Gaussian
from repro.plan import Stream
from repro.streams import StreamTuple, TumblingTimeWindow


@pytest.fixture(scope="module")
def warehouse():
    """A catalog plus object/sensor streams shared by both queries."""
    rng = np.random.default_rng(7)
    catalog = {}
    for i in range(40):
        catalog[f"O{i:03d}"] = {
            "weight": float(rng.uniform(30.0, 80.0)),
            "type": "flammable" if rng.random() < 0.4 else "general",
        }
    objects = []
    for i in range(80):
        tag = f"O{i % 50:03d}"  # some tags are ghost reads (not in catalog)
        shelf = int(rng.integers(0, 3))
        objects.append(
            StreamTuple(
                timestamp=float(i) * 0.2,
                values={"tag_id": tag},
                uncertain={
                    "x": Gaussian(10.0 + 20.0 * shelf + float(rng.normal(0, 0.5)), 0.8),
                    "y": Gaussian(10.0 + float(rng.normal(0, 0.5)), 0.8),
                },
            )
        )
    sensors = []
    for i in range(40):
        sensors.append(
            StreamTuple(
                timestamp=float(i) * 0.4,
                values={"sensor_id": i},
                uncertain={
                    "x": Gaussian(float(rng.uniform(0.0, 70.0)), 1.0),
                    "y": Gaussian(float(rng.uniform(0.0, 20.0)), 1.0),
                    "temp": Gaussian(float(rng.uniform(30.0, 95.0)), 4.0),
                },
            )
        )
    return catalog, objects, sensors


class TestQ1Equivalence:
    """Q1: per-area weight totals with a probabilistic HAVING."""

    def test_cql_matches_fluent(self, warehouse, assert_tuples_equivalent):
        catalog, objects, _ = warehouse

        def weight_of(tag):
            return catalog.get(tag, {}).get("weight", 0.0)

        def in_catalog(tag):
            return tag in catalog

        def zone(x):
            return int(x.mean() // 20.0)

        source = Stream.source(
            "rfid", values=("tag_id",), uncertain=("x", "y"), rate_hint=5.0
        )

        q1_text = compile_cql(
            """
            SELECT weight_of(tag_id) AS weight, zone(x) AS area, SUM(weight)
            FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]
            WHERE in_catalog(tag_id)
            GROUP BY area
            HAVING SUM(weight) > 200 WITH CONFIDENCE 0.5
            """,
            sources={"rfid": source},
            functions={
                "weight_of": weight_of,
                "in_catalog": in_catalog,
                "zone": zone,
            },
        )
        q1_text.push_many("rfid", objects)
        text_results = q1_text.finish()

        q1_fluent = (
            source.derive(
                values={
                    "weight": lambda t: weight_of(t.value("tag_id")),
                    "area": lambda t: zone(t.distribution("x")),
                }
            )
            .where(
                lambda t: in_catalog(t.value("tag_id")),
                uses=("tag_id",),
                description="in catalog",
            )
            .window(TumblingTimeWindow(5.0))
            .group_by(lambda t: t.value("area"))
            .aggregate("weight")
            .having(200.0, min_probability=0.5)
            .compile()
        )
        q1_fluent.push_many("rfid", objects)
        fluent_results = q1_fluent.finish()

        assert text_results, "Q1 must produce overloaded-area windows"
        assert_tuples_equivalent(text_results, fluent_results)

    def test_alerts_carry_probabilistic_totals(self, warehouse):
        catalog, objects, _ = warehouse
        query = compile_cql(
            """
            SELECT w(tag_id) AS weight, SUM(weight) AS total
            FROM rfid [RANGE 5 SECONDS SLIDE 5 SECONDS]
            HAVING SUM(weight) > 400 WITH CONFIDENCE 0.5
            """,
            functions={"w": lambda tag: catalog.get(tag, {}).get("weight", 0.0)},
        )
        query.push_many("rfid", objects)
        results = query.finish()
        assert results
        for alert in results:
            assert alert.has_uncertain("total")
            assert alert.value("having_probability") >= 0.5
            assert alert.value("total_mean") > 400.0 or alert.value(
                "having_probability"
            ) == pytest.approx(0.5, abs=0.5)


class TestQ2Equivalence:
    """Q2: flammable objects near hot sensors via a probabilistic join."""

    def test_cql_matches_fluent(self, warehouse, assert_tuples_equivalent):
        catalog, objects, sensors = warehouse

        def object_type(tag):
            return catalog.get(tag, {}).get("type", "unknown")

        obj_source = Stream.source("objects", values=("tag_id",), uncertain=("x", "y"))
        sensor_source = Stream.source(
            "temperature", values=("sensor_id",), uncertain=("x", "y", "temp")
        )

        q2_text = compile_cql(
            """
            SELECT *
            FROM objects AS obj
            JOIN temperature AS temp [RANGE 30 SECONDS]
              ON obj.x ~= temp.x WITHIN 4 AND obj.y ~= temp.y WITHIN 4
              MIN PROBABILITY 0.05
            WHERE object_type(obj.tag_id) = 'flammable'
              AND temp.temp > 60 WITH PROBABILITY 0.5
            """,
            sources={"objects": obj_source, "temperature": sensor_source},
            functions={"object_type": object_type},
        )
        q2_text.push_many("temperature", sensors)
        q2_text.push_many("objects", objects)
        text_results = q2_text.finish()

        def location_match(left, right):
            px = match_probability_band(
                left.distribution("x"), right.distribution("x"), 4.0
            )
            py = match_probability_band(
                left.distribution("y"), right.distribution("y"), 4.0
            )
            return px * py

        q2_fluent = (
            obj_source.join(
                sensor_source,
                on=location_match,
                window_length=30.0,
                min_probability=0.05,
                prefix_left="obj_",
                prefix_right="temp_",
            )
            .where(
                lambda t: object_type(t.value("obj_tag_id")) == "flammable",
                uses=("obj_tag_id",),
                description="flammable",
            )
            .where_probably(
                "temp_temp", Comparison.GREATER, 60.0, min_probability=0.5, annotate=None
            )
            .compile()
        )
        q2_fluent.push_many("temperature", sensors)
        q2_fluent.push_many("objects", objects)
        fluent_results = q2_fluent.finish()

        assert text_results, "Q2 must produce flammable-object alerts"
        assert_tuples_equivalent(text_results, fluent_results)

    def test_match_probability_is_annotated(self, warehouse):
        catalog, objects, sensors = warehouse
        query = compile_cql(
            """
            SELECT * FROM objects AS obj
            JOIN temperature AS temp [RANGE 30 SECONDS]
              ON obj.x ~= temp.x WITHIN 4 AND obj.y ~= temp.y WITHIN 4
              MIN PROBABILITY 0.05
            """
        )
        query.push_many("temperature", sensors)
        query.push_many("objects", objects)
        results = query.finish()
        assert results
        for match in results:
            assert 0.05 <= match.value("match_probability") <= 1.0
            assert match.has_uncertain("temp_temp")
            assert match.has_value("obj_tag_id")


class TestUnionEquivalence:
    def test_union_matches_fluent(self, warehouse, assert_tuples_equivalent):
        _, objects, sensors = warehouse
        a = Stream.source("objects", values=("tag_id",), uncertain=("x", "y"))
        b = Stream.source(
            "temperature", values=("sensor_id",), uncertain=("x", "y", "temp")
        )

        text = compile_cql(
            """
            SELECT * FROM objects WHERE x > 20 WITH PROBABILITY 0.5
            UNION
            SELECT * FROM temperature WHERE x > 20 WITH PROBABILITY 0.5
            """,
            sources={"objects": a, "temperature": b},
        )
        text.push_many("objects", objects)
        text.push_many("temperature", sensors)
        text_results = text.finish()

        fluent = (
            a.where_probably("x", ">", 20.0, min_probability=0.5)
            .union(b.where_probably("x", ">", 20.0, min_probability=0.5))
            .compile()
        )
        fluent.push_many("objects", objects)
        fluent.push_many("temperature", sensors)
        fluent_results = fluent.finish()

        assert text_results
        assert_tuples_equivalent(text_results, fluent_results)
