"""Golden-message tests for malformed CQL.

The satellite requirement: every malformed query raises a
:class:`CQLSyntaxError` carrying the 1-based line/column and the
offending token, with a *stable* message format.  These goldens pin
the exact rendered message — update them deliberately, not
accidentally.
"""

import pytest

from repro.cql import CQLSemanticError, CQLSyntaxError, lower_query, parse
from repro.plan import Stream

GOLDEN_SYNTAX_ERRORS = [
    (
        "SELEC * FROM s",
        "CQL syntax error at line 1, column 1: expected SELECT, "
        "found 'SELEC' (near 'SELEC')",
        (1, 1, "SELEC"),
    ),
    (
        "SELECT * FROM s [EVERY 5]",
        "CQL syntax error at line 1, column 18: expected NOW, ROWS or RANGE "
        "in window, found 'EVERY' (near 'EVERY')",
        (1, 18, "EVERY"),
    ),
    (
        "SELECT * FROM s WHERE temp >> 60",
        "CQL syntax error at line 1, column 29: expected an expression, "
        "found '>' (near '>')",
        (1, 29, ">"),
    ),
    (
        "SELECT SUM(w) FROM s [ROWS 5] HAVING SUM(w) < 10",
        "CQL syntax error at line 1, column 45: HAVING supports only '>' "
        "(probabilistic threshold) (near '<')",
        (1, 45, "<"),
    ),
    (
        "SELECT * FROM s WHERE name = 'unterminated",
        "CQL syntax error at line 1, column 30: unterminated string literal "
        "(near \"'\")",
        (1, 30, "'"),
    ),
    (
        "SELECT a b FROM s",
        "CQL syntax error at line 1, column 10: expected FROM, found 'b' (near 'b')",
        (1, 10, "b"),
    ),
    (
        "SELECT * FROM s; DROP TABLE s",
        "CQL syntax error at line 1, column 16: unexpected character ';' (near ';')",
        (1, 16, ";"),
    ),
]


class TestGoldenSyntaxErrors:
    @pytest.mark.parametrize(
        "text,message,position",
        GOLDEN_SYNTAX_ERRORS,
        ids=[case[0][:40] for case in GOLDEN_SYNTAX_ERRORS],
    )
    def test_message_and_position(self, text, message, position):
        with pytest.raises(CQLSyntaxError) as excinfo:
            parse(text)
        error = excinfo.value
        assert str(error) == message
        line, column, token = position
        assert (error.line, error.column, error.token) == (line, column, token)

    def test_multiline_query_points_at_the_right_line(self):
        with pytest.raises(CQLSyntaxError) as excinfo:
            parse("SELECT *\nFROM s\nWHERE ???")
        error = excinfo.value
        assert (error.line, error.column, error.token) == (3, 7, "?")

    def test_end_of_query_has_no_token(self):
        with pytest.raises(CQLSyntaxError) as excinfo:
            parse("SELECT * FROM a JOIN b ON a.x ~= b.x")
        error = excinfo.value
        assert error.token is None
        assert str(error).endswith("expected WITHIN, found end of query")


class TestSemanticErrors:
    """Well-formed text that cannot lower also points at a position."""

    def test_unknown_function(self):
        with pytest.raises(CQLSemanticError) as excinfo:
            lower_query("SELECT * FROM s WHERE mystery(a)")
        assert excinfo.value.token == "mystery"
        assert "register it via the functions mapping" in str(excinfo.value)

    def test_two_aggregates(self):
        with pytest.raises(CQLSemanticError, match="only one aggregate"):
            lower_query("SELECT SUM(a), SUM(b) FROM s [ROWS 5]")

    def test_having_without_matching_aggregate(self):
        with pytest.raises(CQLSemanticError, match="does not match"):
            lower_query("SELECT SUM(a) FROM s [ROWS 5] HAVING SUM(b) > 1")

    def test_window_without_aggregate(self):
        with pytest.raises(CQLSemanticError, match="needs an aggregate"):
            lower_query("SELECT * FROM s [ROWS 5]")

    def test_probability_on_deterministic_conjunct(self):
        with pytest.raises(CQLSemanticError, match="WITH PROBABILITY applies"):
            lower_query("SELECT * FROM s WHERE f(a) WITH PROBABILITY 0.5")

    def test_equality_on_uncertain_attribute(self):
        source = Stream.source("s", uncertain=("temp",))
        with pytest.raises(CQLSemanticError, match="equality on uncertain"):
            lower_query("SELECT * FROM s WHERE temp = 60", sources={"s": source})

    def test_join_without_range_window(self):
        with pytest.raises(CQLSemanticError, match="RANGE"):
            lower_query("SELECT * FROM a JOIN b ON a.x ~= b.x WITHIN 2")

    def test_non_tumbling_slide(self):
        with pytest.raises(CQLSemanticError, match="SLIDE must equal RANGE"):
            lower_query("SELECT SUM(w) FROM s [RANGE 10 SECONDS SLIDE 5 SECONDS]")
