"""Lowering behavior: clause classification, windows, fingerprints."""

from repro.cql import compile_cql, lower_query
from repro.distributions import Gaussian
from repro.plan import (
    AggregateNode,
    DeriveNode,
    FilterNode,
    ProbFilterNode,
    Stream,
    plan_fingerprints,
)
from repro.streams import StreamTuple
from repro.streams.windows import (
    NowWindow,
    SlidingTimeWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
)


def _root(plan):
    return plan.outputs[0]


class TestConjunctClassification:
    def test_declared_uncertain_attribute_becomes_prob_filter(self):
        source = Stream.source("s", uncertain=("temp",))
        plan = lower_query("SELECT * FROM s WHERE temp > 60", sources={"s": source})
        node = _root(plan)
        assert isinstance(node, ProbFilterNode)
        assert node.attribute == "temp" and node.threshold == 60.0
        assert node.min_probability == 0.5  # default
        assert node.annotate == "selection_probability"

    def test_with_probability_overrides_threshold(self):
        source = Stream.source("s", uncertain=("temp",))
        plan = lower_query(
            "SELECT * FROM s WHERE temp BETWEEN 40 AND 60 WITH PROBABILITY 0.9",
            sources={"s": source},
        )
        node = _root(plan)
        assert isinstance(node, ProbFilterNode)
        assert node.upper == 60.0 and node.min_probability == 0.9

    def test_undeclared_attribute_stays_deterministic(self):
        plan = lower_query("SELECT * FROM s WHERE temp > 60")
        assert isinstance(_root(plan), FilterNode)

    def test_with_probability_forces_prob_filter_on_open_schema(self):
        plan = lower_query("SELECT * FROM s WHERE temp > 60 WITH PROBABILITY 0.7")
        node = _root(plan)
        assert isinstance(node, ProbFilterNode) and node.min_probability == 0.7

    def test_deterministic_filter_declares_uses(self):
        plan = lower_query("SELECT * FROM s WHERE f(a, b)", functions={"f": min})
        node = _root(plan)
        assert isinstance(node, FilterNode)
        assert node.uses == frozenset({"a", "b"})

    def test_reversed_comparison_is_normalised(self):
        source = Stream.source("s", uncertain=("temp",))
        plan = lower_query("SELECT * FROM s WHERE 60 < temp", sources={"s": source})
        node = _root(plan)
        assert isinstance(node, ProbFilterNode)
        assert node.comparison.value == ">" and node.threshold == 60.0

    def test_negative_thresholds_are_recognised(self):
        source = Stream.source("s", uncertain=("temp",))
        plan = lower_query("SELECT * FROM s WHERE temp > -5", sources={"s": source})
        node = _root(plan)
        assert isinstance(node, ProbFilterNode) and node.threshold == -5.0
        plan = lower_query(
            "SELECT * FROM s WHERE temp BETWEEN -10 AND -2 WITH PROBABILITY 0.8",
            sources={"s": source},
        )
        node = _root(plan)
        assert isinstance(node, ProbFilterNode)
        assert node.threshold == -10.0 and node.upper == -2.0

    def test_negative_threshold_runs_probabilistically(self):
        from repro.cql import compile_cql

        source = Stream.source("s", uncertain=("temp",))
        query = compile_cql(
            "SELECT * FROM s WHERE temp > -5", sources={"s": source}
        )
        query.push(
            "s", StreamTuple(timestamp=0.0, uncertain={"temp": Gaussian(0.0, 1.0)})
        )
        query.push(
            "s", StreamTuple(timestamp=1.0, uncertain={"temp": Gaussian(-20.0, 1.0)})
        )
        assert len(query.finish()) == 1


class TestDerivesAndAggregates:
    def test_uncertain_derive(self):
        plan = lower_query(
            "SELECT g(x) AS UNCERTAIN loc FROM s",
            functions={"g": lambda x: Gaussian(float(x), 1.0)},
        )
        node = _root(plan)
        assert isinstance(node, DeriveNode)
        assert dict(node.uncertain_functions).keys() == {"loc"}

    def test_count_star(self):
        plan = lower_query("SELECT COUNT(*) FROM s [ROWS 3]")
        node = _root(plan)
        assert isinstance(node, AggregateNode)
        assert node.function == "count" and node.result_attribute == "count"
        query = compile_cql("SELECT COUNT(*) FROM s [ROWS 3]")
        query.push_many(
            "s", [StreamTuple(timestamp=float(i)) for i in range(6)]
        )
        results = query.finish()
        assert [r.value("count") for r in results] == [3, 3]

    def test_alias_names_the_result_attribute(self):
        plan = lower_query("SELECT SUM(w) AS total FROM s [ROWS 3]")
        assert _root(plan).result_attribute == "total"


class TestWindows:
    def test_window_mapping(self):
        cases = [
            ("[ROWS 7]", TumblingCountWindow),
            ("[RANGE 5 SECONDS]", SlidingTimeWindow),
            ("[RANGE 5 SECONDS SLIDE 5 SECONDS]", TumblingTimeWindow),
            ("[NOW]", NowWindow),
        ]
        for text, expected in cases:
            plan = lower_query(f"SELECT SUM(w) FROM s {text}")
            assert isinstance(_root(plan).window, expected), text


class TestFingerprints:
    def test_same_text_gives_equal_fingerprints(self):
        """The precondition for cross-query sharing: identical text →
        structurally equal plans, even though closures are rebuilt."""
        text = (
            "SELECT w(tag) AS weight, SUM(weight) FROM s [ROWS 10] "
            "WHERE keep(tag) GROUP BY zone(weight) "
            "HAVING SUM(weight) > 5 WITH PROBABILITY 0.6"
        )
        functions = {
            "w": lambda tag: 1.0,
            "keep": lambda tag: True,
            "zone": lambda w: 0,
        }
        plan_a = lower_query(text, functions=functions)
        plan_b = lower_query(text, functions=functions)
        fp_a = plan_fingerprints(plan_a.outputs)[id(plan_a.outputs[0])]
        fp_b = plan_fingerprints(plan_b.outputs)[id(plan_b.outputs[0])]
        assert fp_a == fp_b

    def test_different_functions_give_different_fingerprints(self):
        text = "SELECT * FROM s WHERE keep(tag)"
        plan_a = lower_query(text, functions={"keep": lambda t: True})
        plan_b = lower_query(text, functions={"keep": lambda t: False})
        fp_a = plan_fingerprints(plan_a.outputs)[id(plan_a.outputs[0])]
        fp_b = plan_fingerprints(plan_b.outputs)[id(plan_b.outputs[0])]
        assert fp_a != fp_b

    def test_composite_group_key_includes_udf_identities(self):
        """Two sessions binding different UDFs under the same name must
        NOT share a multi-expression GROUP BY aggregate."""
        text = "SELECT SUM(w) FROM s [ROWS 2] GROUP BY f(a), g(b)"
        shared_g = lambda b: b  # noqa: E731
        plan_a = lower_query(
            text, functions={"f": lambda a: a % 2, "g": shared_g}
        )
        plan_b = lower_query(text, functions={"f": lambda a: 0, "g": shared_g})
        fp_a = plan_fingerprints(plan_a.outputs)[id(plan_a.outputs[0])]
        fp_b = plan_fingerprints(plan_b.outputs)[id(plan_b.outputs[0])]
        assert fp_a != fp_b
        # Same bindings still share.
        fns = {"f": lambda a: a % 2, "g": shared_g}
        plan_c = lower_query(text, functions=fns)
        plan_d = lower_query(text, functions=fns)
        fp_c = plan_fingerprints(plan_c.outputs)[id(plan_c.outputs[0])]
        fp_d = plan_fingerprints(plan_d.outputs)[id(plan_d.outputs[0])]
        assert fp_c == fp_d

    def test_different_thresholds_give_different_fingerprints(self):
        source = Stream.source("s", uncertain=("t",))
        plan_a = lower_query("SELECT * FROM s WHERE t > 1", sources={"s": source})
        plan_b = lower_query("SELECT * FROM s WHERE t > 2", sources={"s": source})
        fp_a = plan_fingerprints(plan_a.outputs)[id(plan_a.outputs[0])]
        fp_b = plan_fingerprints(plan_b.outputs)[id(plan_b.outputs[0])]
        assert fp_a != fp_b
