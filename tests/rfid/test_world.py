"""Tests for the ground-truth warehouse world."""

import numpy as np
import pytest

from repro.rfid import WarehouseWorld


class TestWarehouseWorld:
    def test_layout_dimensions(self):
        world = WarehouseWorld(width=80.0, height=40.0, shelf_grid=(8, 4), n_objects=50, rng=1)
        assert world.n_shelves == 32
        assert world.n_objects == 50
        assert world.bounds() == (0.0, 0.0, 80.0, 40.0)

    def test_objects_start_near_their_home_shelf(self):
        world = WarehouseWorld(n_objects=30, placement_jitter=0.5, rng=2)
        for obj in world.objects.values():
            shelf = world.shelves[obj.home_shelf]
            assert np.hypot(obj.x - shelf.x, obj.y - shelf.y) < 5.0

    def test_true_position_lookup_for_objects_and_shelves(self):
        world = WarehouseWorld(n_objects=5, rng=3)
        tag = world.object_ids()[0]
        shelf = world.shelf_ids()[0]
        assert world.true_position(tag).shape == (2,)
        assert world.true_position(shelf).shape == (2,)
        with pytest.raises(KeyError):
            world.true_position("missing")

    def test_flammable_fraction_respected(self):
        world = WarehouseWorld(n_objects=500, flammable_fraction=0.3, rng=4)
        fraction = np.mean([obj.flammable for obj in world.objects.values()])
        assert fraction == pytest.approx(0.3, abs=0.06)
        all_general = WarehouseWorld(n_objects=100, flammable_fraction=0.0, rng=5)
        assert not any(obj.flammable for obj in all_general.objects.values())

    def test_weights_within_range(self):
        world = WarehouseWorld(n_objects=100, weight_range=(1.0, 2.0), rng=6)
        weights = [obj.weight for obj in world.objects.values()]
        assert min(weights) >= 1.0
        assert max(weights) <= 2.0

    def test_step_moves_objects_at_configured_rate(self):
        world = WarehouseWorld(n_objects=200, move_rate=0.5, rng=7)
        moved = world.step(10.0)
        # With rate 0.5/s over 10 s essentially every object moves.
        assert len(moved) > 150
        static_world = WarehouseWorld(n_objects=50, move_rate=0.0, rng=8)
        assert static_world.step(100.0) == []

    def test_moved_objects_stay_inside_bounds_and_change_shelf(self):
        world = WarehouseWorld(n_objects=50, move_rate=1.0, rng=9)
        homes_before = {tag: obj.home_shelf for tag, obj in world.objects.items()}
        moved = world.step(5.0)
        for tag in moved:
            obj = world.objects[tag]
            assert 0.0 <= obj.x <= world.width
            assert 0.0 <= obj.y <= world.height
            assert obj.home_shelf != homes_before[tag]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WarehouseWorld(width=0.0)
        with pytest.raises(ValueError):
            WarehouseWorld(n_objects=0)
        with pytest.raises(ValueError):
            WarehouseWorld(flammable_fraction=1.5)
        world = WarehouseWorld(n_objects=5, rng=10)
        with pytest.raises(ValueError):
            world.step(-1.0)
