"""Tests for the object motion model used by the RFID particle filter."""

import numpy as np
import pytest

from repro.rfid import RandomWalkWithJumps, build_object_model, uniform_prior

BOUNDS = (0.0, 0.0, 100.0, 50.0)


class TestRandomWalkWithJumps:
    def test_particles_stay_within_bounds(self, rng):
        model = RandomWalkWithJumps(walk_sigma=5.0, jump_rate=0.1, bounds=BOUNDS)
        states = rng.uniform(0, 50, size=(500, 2))
        moved = model.propagate(states, dt=10.0, rng=rng)
        assert moved[:, 0].min() >= 0.0 and moved[:, 0].max() <= 100.0
        assert moved[:, 1].min() >= 0.0 and moved[:, 1].max() <= 50.0

    def test_zero_jump_rate_gives_pure_random_walk(self, rng):
        model = RandomWalkWithJumps(walk_sigma=0.5, jump_rate=0.0, bounds=BOUNDS)
        states = np.full((2000, 2), 50.0)
        states[:, 1] = 25.0
        moved = model.propagate(states, dt=1.0, rng=rng)
        displacement = np.linalg.norm(moved - states, axis=1)
        assert displacement.mean() < 2.0

    def test_jumps_spread_particles_over_the_area(self, rng):
        model = RandomWalkWithJumps(walk_sigma=0.01, jump_rate=10.0, bounds=BOUNDS)
        states = np.full((2000, 2), 1.0)
        moved = model.propagate(states, dt=1.0, rng=rng)
        # Nearly every particle jumped; spread covers the whole area.
        assert moved[:, 0].std() > 20.0

    def test_walk_scales_with_dt(self, rng):
        model = RandomWalkWithJumps(walk_sigma=1.0, jump_rate=0.0, bounds=BOUNDS)
        states = np.full((5000, 2), 50.0)
        short = model.propagate(states, dt=0.25, rng=np.random.default_rng(1))
        long = model.propagate(states, dt=4.0, rng=np.random.default_rng(1))
        assert np.std(long[:, 0]) > np.std(short[:, 0])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomWalkWithJumps(walk_sigma=0.0)
        with pytest.raises(ValueError):
            RandomWalkWithJumps(jump_rate=-1.0)
        with pytest.raises(ValueError):
            RandomWalkWithJumps(bounds=(0, 0, 0, 0))


class TestPriorAndModelAssembly:
    def test_uniform_prior_covers_bounds(self, rng):
        sampler = uniform_prior(BOUNDS)
        samples = sampler(5000, rng)
        assert samples.shape == (5000, 2)
        assert samples[:, 0].min() >= 0.0 and samples[:, 0].max() <= 100.0
        assert samples[:, 0].std() > 20.0

    def test_uniform_prior_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            uniform_prior((0.0, 0.0, 0.0, 10.0))

    def test_build_object_model_wires_components(self, rng):
        model = build_object_model(BOUNDS, walk_sigma=0.3, jump_rate=0.01)
        assert model.state_dim == 2
        prior = model.sample_prior(10, rng)
        assert prior.shape == (10, 2)
        moved = model.transition.propagate(prior, 1.0, rng)
        assert moved.shape == (10, 2)
