"""Tests for the mobile-reader trace simulator."""

import numpy as np
import pytest

from repro.rfid import DetectionModel, MobileReaderSimulator, WarehouseWorld, lawnmower_path


class TestLawnmowerPath:
    def test_points_within_bounds_and_monotone_time(self):
        path = lawnmower_path((0.0, 0.0, 50.0, 20.0), lane_spacing=10.0, speed=5.0, scan_interval=1.0)
        points = [next(path) for _ in range(100)]
        times = [p[0] for p in points]
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))
        assert all(0.0 <= x <= 50.0 and 0.0 <= y <= 20.0 for _, x, y in points)

    def test_visits_multiple_lanes(self):
        path = lawnmower_path((0.0, 0.0, 20.0, 30.0), lane_spacing=10.0, speed=10.0, scan_interval=1.0)
        ys = {round(y, 3) for _, _, y in (next(path) for _ in range(50))}
        assert len(ys) >= 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            next(lawnmower_path((0, 0, 10, 10), lane_spacing=0.0, speed=1.0, scan_interval=1.0))


class TestMobileReaderSimulator:
    def make_simulator(self, **kwargs):
        world = WarehouseWorld(width=60.0, height=30.0, n_objects=80, move_rate=0.0, rng=1)
        defaults = dict(
            detection=DetectionModel(midpoint=10.0, steepness=0.8, max_rate=0.95),
            lane_spacing=10.0,
            speed=5.0,
            scan_interval=0.5,
            evolve_world=False,
            rng=2,
        )
        defaults.update(kwargs)
        return world, MobileReaderSimulator(world, **defaults)

    def test_readings_have_monotone_timestamps(self):
        _, sim = self.make_simulator()
        readings = sim.readings(20)
        times = [r.timestamp for r in readings]
        assert times == sorted(times)

    def test_detected_tags_are_mostly_nearby(self):
        world, sim = self.make_simulator()
        effective = sim.detection.effective_range()
        distances = []
        for reading in sim.readings(40):
            reader = reading.reader_position
            for tag in reading.detected_object_ids:
                distances.append(np.linalg.norm(world.true_position(tag) - reader))
        assert distances, "the sweep should produce some detections"
        # Detections beyond the nominal range are possible but rare.
        within = np.mean(np.asarray(distances) <= effective)
        assert within > 0.9

    def test_noise_means_not_all_nearby_tags_detected(self):
        world, sim = self.make_simulator(
            detection=DetectionModel(midpoint=8.0, steepness=0.3, max_rate=0.5)
        )
        readings = sim.readings(60)
        detected_counts = [r.n_detections for r in readings]
        # With a 50% max read rate the reader certainly misses tags sometimes.
        assert min(detected_counts) < max(detected_counts)

    def test_contention_reduces_detections(self):
        world1, no_contention = self.make_simulator(read_capacity=None)
        world2, contended = self.make_simulator(read_capacity=3)
        detections_free = sum(r.n_detections for r in no_contention.readings(50))
        detections_contended = sum(r.n_detections for r in contended.readings(50))
        assert detections_contended < detections_free

    def test_shelf_tags_also_reported(self):
        _, sim = self.make_simulator()
        shelves_seen = set()
        for reading in sim.readings(80):
            shelves_seen.update(reading.detected_shelf_ids)
        assert shelves_seen

    def test_invalid_read_capacity(self):
        world = WarehouseWorld(n_objects=5, rng=3)
        with pytest.raises(ValueError):
            MobileReaderSimulator(world, read_capacity=0)
