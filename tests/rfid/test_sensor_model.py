"""Tests for the logistic RFID detection model and observation likelihood."""

import numpy as np
import pytest

from repro.rfid import DetectionModel, DetectionObservation, RFIDObservationModel


class TestDetectionModel:
    def test_probability_decreases_with_distance(self):
        model = DetectionModel()
        probs = model.probability(np.array([0.0, 5.0, 10.0, 20.0, 40.0]))
        assert np.all(np.diff(probs) < 0)

    def test_max_rate_bounds_probability(self):
        model = DetectionModel(max_rate=0.8)
        assert model.probability(0.0) <= 0.8
        assert model.probability(0.0) > 0.75

    def test_midpoint_is_half_max(self):
        model = DetectionModel(midpoint=15.0, max_rate=0.9)
        assert model.probability(15.0) == pytest.approx(0.45)

    def test_angle_penalty(self):
        model = DetectionModel(angle_coefficient=1.0)
        assert model.probability(5.0, angle=0.0) > model.probability(5.0, angle=2.0)

    def test_effective_range_beyond_midpoint(self):
        model = DetectionModel(midpoint=12.0, steepness=0.6)
        r = model.effective_range(0.02)
        assert r > 12.0
        assert model.probability(r) == pytest.approx(0.02, rel=0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DetectionModel(midpoint=0.0)
        with pytest.raises(ValueError):
            DetectionModel(max_rate=0.0)
        with pytest.raises(ValueError):
            DetectionModel(steepness=-1.0)
        with pytest.raises(ValueError):
            DetectionModel().effective_range(2.0)


class TestRFIDObservationModel:
    def test_detection_favours_nearby_states(self):
        model = RFIDObservationModel(DetectionModel(midpoint=10.0))
        states = np.array([[1.0, 0.0], [30.0, 0.0]])
        obs = DetectionObservation(reader_x=0.0, reader_y=0.0, detected=True)
        lik = model.likelihood(states, obs)
        assert lik[0] > lik[1]

    def test_non_detection_favours_distant_states(self):
        model = RFIDObservationModel(DetectionModel(midpoint=10.0))
        states = np.array([[1.0, 0.0], [30.0, 0.0]])
        obs = DetectionObservation(reader_x=0.0, reader_y=0.0, detected=False)
        lik = model.likelihood(states, obs)
        assert lik[1] > lik[0]

    def test_likelihoods_are_probabilities(self):
        model = RFIDObservationModel()
        states = np.random.default_rng(0).uniform(0, 50, size=(100, 2))
        for detected in (True, False):
            lik = model.likelihood(states, DetectionObservation(10.0, 10.0, detected))
            assert np.all(lik >= 0.0)
            assert np.all(lik <= 1.0)

    def test_rejects_bad_state_shape(self):
        model = RFIDObservationModel()
        with pytest.raises(ValueError):
            model.likelihood(np.array([1.0, 2.0]), DetectionObservation(0, 0, True))
