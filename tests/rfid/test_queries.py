"""Tests for the paper's example queries Q1 (fire code) and Q2 (flammable alert)."""

import numpy as np
import pytest

from repro.distributions import Gaussian
from repro.rfid import (
    FireCodeMonitor,
    area_membership_probabilities,
    build_flammable_alert_join,
)
from repro.streams import CollectSink, StreamEngine, StreamTuple


def location_tuple(ts, tag_id, x, y, sigma=0.2):
    return StreamTuple(
        timestamp=ts,
        values={"tag_id": tag_id},
        uncertain={"x": Gaussian(x, sigma), "y": Gaussian(y, sigma)},
    )


class TestAreaMembership:
    def test_tight_distribution_concentrates_in_one_cell(self):
        probs = area_membership_probabilities(Gaussian(3.5, 0.05), Gaussian(7.5, 0.05), cell_size=1.0)
        assert probs[(3, 7)] > 0.99

    def test_boundary_location_splits_between_cells(self):
        probs = area_membership_probabilities(Gaussian(4.0, 0.3), Gaussian(0.5, 0.05), cell_size=1.0)
        assert probs[(3, 0)] == pytest.approx(0.5, abs=0.05)
        assert probs[(4, 0)] == pytest.approx(0.5, abs=0.05)

    def test_probabilities_sum_to_at_most_one(self):
        probs = area_membership_probabilities(Gaussian(0.0, 2.0), Gaussian(0.0, 2.0), cell_size=1.0)
        assert sum(probs.values()) <= 1.0 + 1e-6

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            area_membership_probabilities(Gaussian(0, 1), Gaussian(0, 1), cell_size=0.0)


class TestFireCodeMonitor(object):
    def make_monitor(self, weights, **kwargs):
        defaults = dict(window_length=5.0, cell_size=1.0, weight_limit=200.0)
        defaults.update(kwargs)
        return FireCodeMonitor(weight_of=lambda tag: weights[tag], **defaults)

    def test_overloaded_area_reported(self):
        weights = {"A": 150.0, "B": 120.0}
        monitor = self.make_monitor(weights)
        monitor.accept(location_tuple(0.5, "A", 2.5, 2.5, sigma=0.05))
        monitor.accept(location_tuple(1.0, "B", 2.5, 2.5, sigma=0.05))
        results = list(monitor.flush())
        assert len(results) == 1
        out = results[0]
        assert out.value("area") == (2, 2)
        assert out.value("violation_probability") > 0.95
        assert out.distribution("total_weight").mean() == pytest.approx(270.0, rel=0.02)

    def test_underloaded_area_not_reported(self):
        weights = {"A": 50.0}
        monitor = self.make_monitor(weights)
        monitor.accept(location_tuple(0.5, "A", 2.5, 2.5, sigma=0.05))
        assert list(monitor.flush()) == []

    def test_uncertain_location_spreads_weight_over_cells(self):
        # Weight 210 with a location straddling two cells: neither cell is a
        # confident violation at the 0.5 probability bar.
        weights = {"A": 210.0}
        monitor = self.make_monitor(weights, min_violation_probability=0.5)
        monitor.accept(location_tuple(0.5, "A", 3.0, 2.5, sigma=0.4))
        assert list(monitor.flush()) == []
        # But with a lower reporting bar both candidate cells appear.
        lenient = self.make_monitor(weights, min_violation_probability=0.1)
        lenient.accept(location_tuple(0.5, "A", 3.0, 2.5, sigma=0.4))
        results = list(lenient.flush())
        assert len(results) >= 1

    def test_windows_are_independent(self):
        weights = {"A": 300.0}
        monitor = self.make_monitor(weights)
        monitor.accept(location_tuple(0.5, "A", 1.5, 1.5, sigma=0.05))
        outputs_mid = monitor.accept(location_tuple(6.0, "A", 1.5, 1.5, sigma=0.05))
        # Closing the first window emits its violation.
        assert len(list(outputs_mid)) == 1
        assert len(list(monitor.flush())) == 1

    def test_duplicate_reports_deduplicated_within_window(self):
        weights = {"A": 150.0}
        monitor = self.make_monitor(weights, min_violation_probability=0.5)
        # The same object reported twice must not double its weight.
        monitor.accept(location_tuple(0.5, "A", 2.5, 2.5, sigma=0.05))
        monitor.accept(location_tuple(1.0, "A", 2.5, 2.5, sigma=0.05))
        assert list(monitor.flush()) == []

    def test_invalid_configuration(self):
        with pytest.raises(Exception):
            FireCodeMonitor(weight_of=lambda t: 1.0, weight_limit=0.0)


class TestFlammableAlertJoin:
    def test_plan_joins_flammable_objects_with_hot_sensors(self):
        object_types = {"O1": "flammable", "O2": "general"}
        rfid_entry, temp_entry, join = build_flammable_alert_join(
            object_type_of=lambda tag: object_types[tag],
            temperature_threshold=60.0,
            location_tolerance=2.0,
        )
        sink = CollectSink()
        join.connect(sink)
        engine = StreamEngine()
        engine.add_source("rfid", rfid_entry)
        engine.add_source("temp", temp_entry)

        hot_sensor = StreamTuple(
            timestamp=0.0,
            values={"sensor_id": "T1"},
            uncertain={"x": Gaussian(10.0, 0.3), "y": Gaussian(5.0, 0.3), "temp": Gaussian(85.0, 2.0)},
        )
        cold_sensor = StreamTuple(
            timestamp=0.1,
            values={"sensor_id": "T2"},
            uncertain={"x": Gaussian(10.0, 0.3), "y": Gaussian(5.0, 0.3), "temp": Gaussian(20.0, 2.0)},
        )
        engine.push("temp", hot_sensor)
        engine.push("temp", cold_sensor)
        engine.push("rfid", location_tuple(0.5, "O1", 10.0, 5.0))  # flammable, co-located
        engine.push("rfid", location_tuple(0.6, "O2", 10.0, 5.0))  # not flammable
        engine.push("rfid", location_tuple(0.7, "O1", 40.0, 20.0))  # flammable, far away

        assert len(sink.results) == 1
        alert = sink.results[0]
        assert alert.value("obj_tag_id") == "O1"
        assert alert.value("temp_sensor_id") == "T1"
        assert alert.value("match_probability") > 0.25
