"""Tests for the RFID data capture and transformation (T) operator."""

import numpy as np
import pytest

from repro.core import CompressionPolicy
from repro.distributions import Gaussian, GaussianMixture, ParticleDistribution
from repro.inference import ParticleCountController
from repro.rfid import (
    DetectionModel,
    MobileReaderSimulator,
    RFIDTransformOperator,
    WarehouseWorld,
)


def make_setup(n_objects=40, n_particles=60, **operator_kwargs):
    detection = DetectionModel(midpoint=10.0, steepness=0.8, max_rate=0.95)
    world = WarehouseWorld(width=60.0, height=30.0, n_objects=n_objects, move_rate=0.0, rng=11)
    simulator = MobileReaderSimulator(
        world,
        detection=detection,
        lane_spacing=7.5,
        speed=6.0,
        scan_interval=0.5,
        evolve_world=False,
        rng=12,
    )
    operator = RFIDTransformOperator(
        world,
        detection=detection,
        n_particles=n_particles,
        rng=13,
        **operator_kwargs,
    )
    return world, simulator, operator


class TestRFIDTransformOperator:
    def test_emits_tuples_with_location_distributions(self):
        _, simulator, operator = make_setup()
        emitted = []
        for reading in simulator.readings(30):
            emitted.extend(operator.ingest(reading, reading.timestamp))
        assert emitted, "the sweep should detect and emit at least one object"
        for item in emitted:
            assert item.has_value("tag_id")
            assert isinstance(item.distribution("x"), (Gaussian, GaussianMixture))
            assert isinstance(item.distribution("y"), (Gaussian, GaussianMixture))

    def test_particles_compression_policy_ships_particles(self):
        _, simulator, operator = make_setup(compression=CompressionPolicy(mode="particles"))
        emitted = []
        for reading in simulator.readings(20):
            emitted.extend(operator.ingest(reading, reading.timestamp))
        assert emitted
        assert isinstance(emitted[0].distribution("x"), ParticleDistribution)

    def test_error_decreases_as_sweep_progresses(self):
        world, simulator, operator = make_setup(n_objects=30)
        initial_error = operator.mean_location_error()
        for reading in simulator.readings(220):
            list(operator.ingest(reading, reading.timestamp))
        final_error = operator.mean_location_error()
        assert final_error < initial_error

    def test_error_decreases_with_more_particles(self):
        errors = {}
        for particles in (25, 150):
            _, simulator, operator = make_setup(n_objects=30, n_particles=particles)
            for reading in simulator.readings(200):
                list(operator.ingest(reading, reading.timestamp))
            errors[particles] = operator.mean_location_error()
        assert errors[150] <= errors[25] + 1.0

    def test_spatial_index_reduces_updates(self):
        counts = {}
        for use_index in (True, False):
            _, simulator, operator = make_setup(n_objects=60, use_spatial_index=use_index)
            for reading in simulator.readings(40):
                list(operator.ingest(reading, reading.timestamp))
            counts[use_index] = operator.filter.updates_performed
        assert counts[True] < counts[False]

    def test_emit_modes(self):
        _, simulator, operator = make_setup(emit_mode="none")
        for reading in simulator.readings(10):
            assert list(operator.ingest(reading, reading.timestamp)) == []
        with pytest.raises(ValueError):
            make_setup(emit_mode="sometimes")

    def test_reference_tracking_feeds_accuracy_monitor(self):
        _, simulator, operator = make_setup(track_reference_tags=True)
        for reading in simulator.readings(80):
            list(operator.ingest(reading, reading.timestamp))
        assert operator.accuracy_monitor is not None
        assert operator.accuracy_monitor.current_error() is not None

    def test_adaptive_controller_changes_particle_counts(self):
        controller = ParticleCountController(target_error=1.0, initial_count=20, max_count=160)
        _, simulator, operator = make_setup(
            track_reference_tags=True,
            adaptive_controller=controller,
            n_particles=20,
        )
        for reading in simulator.readings(60):
            list(operator.ingest(reading, reading.timestamp))
        counts = {operator.filter.filter_for(v).n_particles for v in operator.filter.variables()}
        # The controller must have moved the count off its initial value at least once.
        assert controller.count != 20 or controller.phase != "doubling" or counts != {20}
