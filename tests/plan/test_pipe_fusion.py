"""PipeNode chain fusion: fused batch segments + batch/tuple equivalence."""

from repro.distributions import Gaussian
from repro.plan import FusedBatchSegment, Stream
from repro.streams import StreamTuple
from repro.streams.operators.basic import Filter, Map
from repro.streams.windows import TumblingCountWindow


def tuples(n):
    return [
        StreamTuple(
            timestamp=float(i),
            values={"kind": "ghost" if i % 5 == 0 else "real", "seq": i},
            uncertain={"w": Gaussian(10.0 + i, 2.0)},
        )
        for i in range(n)
    ]


def piped_query(mode, middle=None):
    """source -> pipe(filter) [-> pipe(middle)] -> pipe(filter) -> aggregate."""
    stream = Stream.source("in", values=("kind", "seq"), uncertain=("w",), family="gaussian")
    stream = stream.pipe(Filter(lambda t: t.value("kind") != "ghost", name="real"))
    if middle is not None:
        stream = stream.pipe(middle)
    stream = stream.pipe(Filter(lambda t: t.value("seq") % 7 != 0, name="lucky"))
    return (
        stream.window(TumblingCountWindow(4))
        .aggregate("w")
        .compile(mode=mode, batch_size=8 if mode == "batch" else None)
    )


def segments_of(query):
    return [op for op, _ in query._operator_tags if isinstance(op, FusedBatchSegment)]


class TestPipeChainFusion:
    def test_adjacent_pipes_fuse_in_batch_mode(self):
        query = piped_query("batch")
        segments = segments_of(query)
        assert len(segments) == 1
        assert [op.name for op in segments[0].operators] == ["real", "lucky"]
        # The members were severed: only the segment shows up as a box.
        names = [stats.name for stats in query.statistics(detailed=True)]
        assert sum("Segment[" in name for name in names) == 1
        assert "real" not in names and "lucky" not in names

    def test_per_tuple_pipe_breaks_the_run(self):
        # Map has no vectorised kernel, so it must not be fused -- and it
        # splits the two filters into runs of one, which stay unfused.
        query = piped_query("batch", middle=Map(lambda t: t, name="ident"))
        assert segments_of(query) == []

    def test_tuple_mode_keeps_separate_boxes(self):
        assert segments_of(piped_query("tuple")) == []

    def test_batch_results_match_tuple_results(self):
        items = tuples(37)
        tuple_query = piped_query("tuple")
        tuple_query.push_many("in", items)
        expected = tuple_query.finish()

        batch_query = piped_query("batch")
        batch_query.push_many("in", items)
        got = batch_query.finish()

        assert expected, "the piped plan must produce windows"
        assert len(got) == len(expected)
        for a, b in zip(expected, got):
            assert a.value("window_count") == b.value("window_count")
            da, db = a.distribution("sum_w"), b.distribution("sum_w")
            assert abs(float(da.mean()) - float(db.mean())) <= 1e-9
            assert abs(float(da.variance()) - float(db.variance())) <= 1e-9
