"""Per-rule equivalence tests: optimized and naive plans agree to 1e-9.

Every rewrite rule gets (a) a structural test that it fires on its
target pattern, (b) an equivalence test running the same synthetic
GMM/Gaussian stream through the naive (``optimize=False``) and
optimized plan on BOTH execution paths and comparing results within
``TOLERANCE``, and (c) a guard test that it does *not* fire when its
side conditions fail (shared nodes, annotations, missing ``uses``).
"""

import numpy as np
import pytest

from repro.distributions import Gaussian
from repro.plan import (
    AggregateNode,
    DeriveNode,
    FilterNode,
    FusedSelectAggregateNode,
    JoinNode,
    ProbFilterNode,
    Stream,
    compile_streams,
)
from repro.streams import StreamTuple, TumblingCountWindow
from repro.workloads import gmm_tuple_stream

TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run(stream, sources, mode, optimize):
    """Compile ``stream`` and run the named source feeds through it."""
    query = stream.compile(mode=mode, optimize=optimize)
    for name, items in sources.items():
        query.push_many(name, items)
    return query.finish()


def assert_equivalent(left, right):
    """Structural tuple-by-tuple comparison within TOLERANCE."""
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.timestamp == pytest.approx(b.timestamp, abs=TOLERANCE)
        assert set(a.values) == set(b.values)
        for key, value in a.values.items():
            other = b.values[key]
            if isinstance(value, float):
                assert value == pytest.approx(other, abs=TOLERANCE), key
            else:
                assert value == other, key
        assert set(a.uncertain) == set(b.uncertain)
        for key in a.uncertain:
            da, db = a.distribution(key), b.distribution(key)
            assert float(da.mean()) == pytest.approx(float(db.mean()), abs=TOLERANCE)
            assert float(da.variance()) == pytest.approx(
                float(db.variance()), abs=TOLERANCE
            )


def assert_rule_equivalence(build, sources):
    """Naive vs optimized results agree on the tuple AND batch paths."""
    naive_tuple = run(build(), sources, "tuple", optimize=False)
    assert naive_tuple, "test workload produced no results; the test is vacuous"
    for mode in ("tuple", "batch"):
        assert_equivalent(naive_tuple, run(build(), sources, mode, optimize=True))
    assert_equivalent(naive_tuple, run(build(), sources, "batch", optimize=False))


def applied_rules(stream):
    query = stream.compile(mode="tuple")
    return {trace.rule for trace in query.rewrites}


def gaussian_group_stream(n, rng_seed=5):
    rng = np.random.default_rng(rng_seed)
    return [
        StreamTuple(
            timestamp=float(i) * 0.25,
            values={"tag_id": f"O{i}", "kind": "hot" if i % 3 else "cold"},
            uncertain={"weight": Gaussian(float(rng.uniform(5.0, 50.0)), 2.0)},
        )
        for i in range(n)
    ]


# ----------------------------------------------------------------------
# push_filter_below_derive
# ----------------------------------------------------------------------
class TestPushFilterBelowDerive:
    def build(self):
        return (
            Stream.source("in", values=("tag_id", "kind"), uncertain=("weight",))
            .derive(values={"double": lambda t: t.value("tag_id") * 2})
            .where(lambda t: t.value("kind") == "hot", uses=("kind",))
            .window(TumblingCountWindow(8))
            .aggregate("weight")
        )

    def test_fires_and_reorders(self):
        assert "push_filter_below_derive" in applied_rules(self.build())
        optimized = self.build().compile(mode="tuple").optimized_plan
        agg = optimized.outputs[0]
        assert isinstance(agg, AggregateNode)
        derive = agg.input
        assert isinstance(derive, DeriveNode)
        assert isinstance(derive.input, FilterNode)

    def test_equivalence(self):
        assert_rule_equivalence(self.build, {"in": gaussian_group_stream(64)})

    def test_skipped_without_uses(self):
        stream = (
            Stream.source("in", values=("kind",), uncertain=("weight",))
            .derive(values={"d": lambda t: 1})
            .where(lambda t: t.value("kind") == "hot")  # no uses declared
        )
        assert "push_filter_below_derive" not in applied_rules(stream)

    def test_skipped_when_filter_reads_derived_attribute(self):
        stream = (
            Stream.source("in", values=("kind",), uncertain=("weight",))
            .derive(values={"d": lambda t: 1})
            .where(lambda t: t.value("d") == 1, uses=("d",))
        )
        assert "push_filter_below_derive" not in applied_rules(stream)

    def test_skipped_when_derive_is_shared(self):
        derived = (
            Stream.source("in", values=("kind",), uncertain=("weight",))
            .derive(values={"d": lambda t: 1})
        )
        filtered = derived.where(lambda t: t.value("kind") == "hot", uses=("kind",))
        other = derived.where(lambda t: True, description="other consumer")
        query = compile_streams({"a": filtered, "b": other}, mode="tuple")
        assert "push_filter_below_derive" not in {t.rule for t in query.rewrites}


# ----------------------------------------------------------------------
# push_filter_below_join
# ----------------------------------------------------------------------
def location_match(left, right):
    da, db = left.distribution("x"), right.distribution("x")
    diff = Gaussian(da.mu - db.mu, float(np.hypot(da.sigma, db.sigma)))
    return diff.prob_in_interval(-2.0, 2.0)


def xy_stream(n, base, rng_seed):
    rng = np.random.default_rng(rng_seed)
    return [
        StreamTuple(
            timestamp=float(i) * 0.5,
            values={"id": f"{base}{i}"},
            uncertain={
                "x": Gaussian(float(rng.uniform(0.0, 20.0)), 1.0),
                "temp": Gaussian(float(rng.uniform(40.0, 90.0)), 4.0),
            },
        )
        for i in range(n)
    ]


class TestPushFilterBelowJoin:
    def build(self):
        left = Stream.source("l", values=("id",), uncertain=("x", "temp"))
        right = Stream.source("r", values=("id",), uncertain=("x", "temp"))
        return (
            left.join(
                right,
                on=location_match,
                window_length=1e6,
                min_probability=0.1,
                prefix_left="L_",
                prefix_right="R_",
            )
            .where_probably("R_temp", ">", 60.0, min_probability=0.5, annotate=None)
        )

    def sources(self):
        return {"l": xy_stream(20, "l", 11), "r": xy_stream(20, "r", 12)}

    def test_fires_and_pushes_to_right_input(self):
        stream = self.build()
        assert "push_filter_below_join" in applied_rules(stream)
        optimized = stream.compile(mode="tuple").optimized_plan
        join = optimized.outputs[0]
        assert isinstance(join, JoinNode)
        pushed = join.right
        assert isinstance(pushed, ProbFilterNode)
        assert pushed.attribute == "temp"

    def test_equivalence(self):
        assert_rule_equivalence(self.build, self.sources())

    def test_skipped_when_annotating(self):
        left = Stream.source("l", uncertain=("x", "temp"))
        right = Stream.source("r", uncertain=("x", "temp"))
        stream = left.join(
            right, on=location_match, window_length=10.0, prefix_right="R_"
        ).where_probably("R_temp", ">", 60.0)  # annotate defaults on
        assert "push_filter_below_join" not in applied_rules(stream)


# ----------------------------------------------------------------------
# fuse_adjacent_filters
# ----------------------------------------------------------------------
class TestFuseAdjacentFilters:
    def build(self):
        return (
            Stream.source("in", values=("tag_id", "kind"), uncertain=("weight",))
            .where(lambda t: t.value("kind") == "hot", uses=("kind",), description="hot")
            .where(lambda t: int(t.value("tag_id")[1:]) % 2 == 0,
                   uses=("tag_id",), description="even")
            .window(TumblingCountWindow(4))
            .aggregate("weight")
        )

    def test_fires_and_merges_boxes(self):
        stream = self.build()
        assert "fuse_adjacent_filters" in applied_rules(stream)
        query = stream.compile(mode="tuple")
        filters = [
            op for op, node in query._operator_tags if isinstance(node, FilterNode)
        ]
        assert len(filters) == 1

    def test_equivalence(self):
        assert_rule_equivalence(self.build, {"in": gaussian_group_stream(64)})


# ----------------------------------------------------------------------
# reorder_cheap_filter_first
# ----------------------------------------------------------------------
class TestReorderCheapFilterFirst:
    def build(self):
        return (
            Stream.source("in", values=("tag_id", "kind"), uncertain=("weight",))
            .where_probably("weight", ">", 20.0)
            .where(lambda t: t.value("kind") == "hot", uses=("kind",))
            .window(TumblingCountWindow(4))
            .aggregate("weight")
        )

    def test_fires_and_reorders(self):
        stream = self.build()
        assert "reorder_cheap_filter_first" in applied_rules(stream)
        optimized = stream.compile(mode="tuple").optimized_plan
        # After the reorder (and the follow-on select fusion) the
        # deterministic filter feeds the fused select+aggregate box.
        root = optimized.outputs[0]
        assert isinstance(root, FusedSelectAggregateNode)
        assert isinstance(root.inputs[0], FilterNode)

    def test_equivalence(self):
        assert_rule_equivalence(self.build, {"in": gaussian_group_stream(64)})

    def test_skipped_when_filter_reads_annotation(self):
        stream = (
            Stream.source("in", values=("kind",), uncertain=("weight",))
            .where_probably("weight", ">", 20.0, annotate="p")
            .where(lambda t: t.value("p") > 0.9, uses=("p",))
        )
        assert "reorder_cheap_filter_first" not in applied_rules(stream)


# ----------------------------------------------------------------------
# fuse_select_into_aggregate
# ----------------------------------------------------------------------
class TestFuseSelectIntoAggregate:
    def build(self, function="sum"):
        return (
            Stream.source("in", uncertain=("value",), family="gmm")
            .where_probably("value", ">", 30.0)
            .window(TumblingCountWindow(10))
            .aggregate("value", function=function)
        )

    def test_fires(self):
        stream = self.build()
        assert "fuse_select_into_aggregate" in applied_rules(stream)
        optimized = stream.compile(mode="tuple").optimized_plan
        assert isinstance(optimized.outputs[0], FusedSelectAggregateNode)

    @pytest.mark.parametrize("function", ["sum", "avg", "count", "max"])
    def test_equivalence_on_gmm_stream(self, function):
        sources = {"in": gmm_tuple_stream(120, mean_range=(0.0, 100.0), rng=7)}
        assert_rule_equivalence(lambda: self.build(function), sources)

    def test_skipped_when_select_is_shared(self):
        selected = (
            Stream.source("in", uncertain=("value",))
            .where_probably("value", ">", 30.0)
        )
        agg = selected.window(TumblingCountWindow(10)).aggregate("value")
        query = compile_streams({"agg": agg, "raw": selected}, mode="tuple")
        assert "fuse_select_into_aggregate" not in {t.rule for t in query.rewrites}
        # ... and the shared select's annotated output stays observable.
        query.push_many("in", gmm_tuple_stream(20, mean_range=(0.0, 100.0), rng=3))
        query.finish()
        raw = query.output("raw")
        assert raw and all(t.has_value("selection_probability") for t in raw)


# ----------------------------------------------------------------------
# Whole-plan composition: several rules at once stay equivalent
# ----------------------------------------------------------------------
class TestComposedRewrites:
    def build(self):
        return (
            Stream.source("in", values=("tag_id", "kind"), uncertain=("weight",))
            .derive(values={"label": lambda t: t.value("tag_id").lower()})
            .where(lambda t: t.value("kind") == "hot", uses=("kind",))
            .where(lambda t: len(t.value("tag_id")) > 1, uses=("tag_id",))
            .where_probably("weight", ">", 10.0, annotate=None)
            .window(TumblingCountWindow(6))
            .group_by(lambda t: t.value("kind"))
            .aggregate("weight")
            .having(50.0, min_probability=0.2)
        )

    def test_multiple_rules_fire(self):
        rules = applied_rules(self.build())
        assert {"push_filter_below_derive", "fuse_adjacent_filters",
                "fuse_select_into_aggregate"} <= rules

    def test_equivalence(self):
        assert_rule_equivalence(self.build, {"in": gaussian_group_stream(96)})


class TestFusionAnnotationSafety:
    """Regression: fusion must not hide an annotation the aggregate reads."""

    def test_skipped_when_group_key_could_read_annotation(self):
        stream = (
            Stream.source("in", uncertain=("value",))
            .where_probably("value", ">", 20.0)  # annotate defaults on
            .window(TumblingCountWindow(4))
            .group_by(lambda t: t.value("selection_probability") > 0.9)
            .aggregate("value")
        )
        assert "fuse_select_into_aggregate" not in applied_rules(stream)
        # ... and the plan actually runs: the key reads the annotation.
        query = stream.compile(mode="tuple")
        query.push_many("in", gmm_tuple_stream(8, mean_range=(50.0, 100.0), rng=2))
        assert query.finish()

    def test_fires_for_group_key_when_not_annotating(self):
        stream = (
            Stream.source("in", values=("k",), uncertain=("value",))
            .where_probably("value", ">", 20.0, annotate=None)
            .window(TumblingCountWindow(4))
            .group_by(lambda t: t.value("k"))
            .aggregate("value")
        )
        assert "fuse_select_into_aggregate" in applied_rules(stream)
