"""Unit tests for the partition-aware planner pass (repro.plan.sharding)."""

import pytest

from repro.core.aggregation import CFInversionSum
from repro.plan import Stream, explain_sharding, split_for_sharding
from repro.plan.nodes import FusedSelectAggregateNode
from repro.plan.planner import Planner
from repro.plan.sharding import PARTIAL_SOURCE
from repro.streams import (
    NowWindow,
    SlidingTimeWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
)
from repro.streams.operators.base import PassThroughOperator


def optimized(stream):
    planner = Planner()
    plan, _ = planner.optimize(stream.plan())
    return plan, planner.cost_model


def q1_like():
    return (
        Stream.source("rfid", values=("tag_id",), uncertain=("x",), rate_hint=5.0)
        .derive(values={"weight": lambda t: 1.0, "area": lambda t: 0})
        .where(lambda t: True, uses=("tag_id",), description="in catalog")
        .window(TumblingTimeWindow(5.0))
        .group_by(lambda t: t.value("area"))
        .aggregate("weight")
        .having(200.0, min_probability=0.5)
    )


class TestAggregateSplit:
    def test_q1_splits_into_partial_plus_merge(self):
        plan, cost_model = optimized(q1_like())
        decision = split_for_sharding(plan, cost_model)
        assert decision.shardable
        assert decision.partitioning == "any"
        assert not decision.ordered
        spec = decision.merge
        assert spec.function == "sum"
        assert spec.output_attribute == "sum_weight"
        assert spec.partial_attribute == "partial_sum_weight"
        assert spec.grouped
        assert spec.having is not None and spec.having.threshold == 200.0
        assert spec.strategy is not None and spec.strategy.supports_moments
        # The local segment's aggregate has HAVING stripped and the
        # partial output name; the original plan is untouched.
        local_explain = decision.local.explain()
        assert "having" not in local_explain.lower()
        assert decision.suffix is None

    def test_avg_partials_ship_as_sums(self):
        stream = (
            Stream.source("s", uncertain=("w",), family="gaussian")
            .window(TumblingTimeWindow(1.0))
            .aggregate("w", function="avg")
        )
        plan, cost_model = optimized(stream)
        decision = split_for_sharding(plan, cost_model)
        assert decision.shardable
        assert decision.merge.function == "avg"
        assert "sum" in decision.local.explain()

    def test_fused_select_aggregate_splits(self):
        stream = (
            Stream.source("s", uncertain=("w",), family="gaussian", rate_hint=100.0)
            .where_probably("w", ">", 50.0)
            .window(TumblingTimeWindow(1.0))
            .aggregate("w")
        )
        plan, cost_model = optimized(stream)
        assert isinstance(plan.outputs[0], FusedSelectAggregateNode)
        decision = split_for_sharding(plan, cost_model)
        assert decision.shardable
        assert isinstance(decision.local.outputs[0], FusedSelectAggregateNode)

    def test_row_wise_suffix_moves_to_coordinator(self):
        stream = (
            Stream.source("s", uncertain=("w",), family="gaussian")
            .window(TumblingTimeWindow(1.0))
            .aggregate("w")
            .summarize("sum_w", confidence=0.9)
        )
        plan, cost_model = optimized(stream)
        decision = split_for_sharding(plan, cost_model)
        assert decision.shardable
        assert decision.suffix is not None
        suffix_explain = decision.suffix.explain()
        assert "Summarize" in suffix_explain
        assert PARTIAL_SOURCE in suffix_explain


class TestRowWisePlans:
    def test_filter_chain_is_ordered_chunk_merge(self):
        stream = (
            Stream.source("s", values=("k",), uncertain=("w",))
            .where(lambda t: True, uses=("k",))
            .where_probably("w", ">", 0.0)
        )
        decision = split_for_sharding(stream.plan())
        assert decision.shardable
        assert decision.ordered
        assert decision.partitioning == "chunked"
        assert decision.merge is None

    def test_now_window_aggregate_is_row_wise(self):
        stream = (
            Stream.source("s", uncertain=("w",))
            .window(NowWindow())
            .aggregate("w", function="max")
        )
        decision = split_for_sharding(stream.plan())
        assert decision.shardable and decision.ordered

    def test_union_of_row_wise_branches_shards(self):
        a = Stream.source("a", uncertain=("w",)).where_probably("w", ">", 0.0)
        b = Stream.source("b", uncertain=("w",)).where_probably("w", ">", 0.0)
        decision = split_for_sharding(a.union(b).plan())
        assert decision.shardable and decision.ordered


class TestUnshardablePlans:
    @pytest.mark.parametrize(
        "window", [TumblingCountWindow(10), SlidingTimeWindow(3.0)], ids=["count", "sliding"]
    )
    def test_non_time_windows_fall_back(self, window):
        stream = Stream.source("s", uncertain=("w",)).window(window).aggregate("w")
        decision = split_for_sharding(stream.plan())
        assert not decision.shardable
        assert "time" in decision.reason

    def test_join_falls_back(self):
        stream = Stream.source("a", uncertain=("x",)).join(
            Stream.source("b", uncertain=("x",)), on=lambda l, r: 0.5, window_length=3.0
        )
        decision = split_for_sharding(stream.plan())
        assert not decision.shardable
        assert "join" in decision.reason.lower()

    def test_pipe_falls_back(self):
        stream = Stream.source("s", uncertain=("w",)).pipe(PassThroughOperator())
        decision = split_for_sharding(stream.plan())
        assert not decision.shardable

    def test_max_over_time_window_falls_back(self):
        stream = (
            Stream.source("s", uncertain=("w",))
            .window(TumblingTimeWindow(1.0))
            .aggregate("w", function="max")
        )
        decision = split_for_sharding(stream.plan())
        assert not decision.shardable
        assert "order statistics" in decision.reason

    def test_non_moment_strategy_falls_back(self):
        stream = (
            Stream.source("s", uncertain=("w",))
            .window(TumblingTimeWindow(1.0))
            .aggregate("w", strategy=CFInversionSum())
        )
        decision = split_for_sharding(stream.plan())
        assert not decision.shardable
        assert "moment-closed" in decision.reason

    def test_multi_output_falls_back(self):
        from repro.plan.nodes import LogicalPlan

        shared = Stream.source("s", uncertain=("w",))
        plan = LogicalPlan(
            outputs=(
                shared.where_probably("w", ">", 0.0).node,
                shared.where_probably("w", "<", 0.0).node,
            ),
            names=("hi", "lo"),
        )
        decision = split_for_sharding(plan)
        assert not decision.shardable
        assert "multi-output" in decision.reason


class TestExplainSharding:
    def test_sharded_report_names_segments(self):
        plan, cost_model = optimized(q1_like())
        report = explain_sharding(split_for_sharding(plan, cost_model), workers=4)
        assert "workers: 4" in report
        assert "Shard-local segment" in report
        assert "Coordinator merge" in report
        assert "HAVING on merged result" in report

    def test_fallback_report_carries_reason(self):
        stream = Stream.source("a", uncertain=("x",)).join(
            Stream.source("b", uncertain=("x",)), on=lambda l, r: 0.5, window_length=3.0
        )
        report = explain_sharding(split_for_sharding(stream.plan()), workers=2)
        assert "sharded: no" in report
        assert "reason:" in report
