"""Union fan-in lowering: fused batch segments + batch/tuple equivalence."""

import pytest

from repro.distributions import Gaussian
from repro.plan import FusedBatchSegment, Stream
from repro.streams import StreamTuple
from repro.streams.operators.base import OperatorError, PassThroughOperator
from repro.streams.operators.basic import Filter
from repro.streams.windows import TumblingCountWindow


def branch_stream(name):
    return (
        Stream.source(name, values=("kind",), uncertain=("w",), family="gaussian")
        .where(lambda t: t.value("kind") != "ghost", uses=("kind",), description="real")
        .where_probably("w", ">", 0.0, min_probability=0.1)
    )


def branch_tuples(n, offset=0.0, ghost_every=5):
    return [
        StreamTuple(
            timestamp=offset + float(i),
            values={"kind": "ghost" if i % ghost_every == 0 else "real"},
            uncertain={"w": Gaussian(10.0 + i, 2.0)},
        )
        for i in range(n)
    ]


class TestSegmentLowering:
    def test_union_branches_fuse_in_batch_mode(self):
        union = branch_stream("a").union(branch_stream("b"))
        query = (
            union.window(TumblingCountWindow(4)).aggregate("w").compile(mode="batch")
        )
        segments = [
            op for op, _ in query._operator_tags if isinstance(op, FusedBatchSegment)
        ]
        assert len(segments) == 2
        for segment in segments:
            assert len(segment.operators) == 2
            assert segment.supports_batch
        # The members were severed from the engine graph: each segment
        # is one box in the statistics, its members invisible.
        names = [stats.name for stats in query.statistics(detailed=True)]
        assert sum("Segment[" in name for name in names) == 2
        assert not any(name == "ProbabilisticSelect" for name in names)

    def test_tuple_mode_keeps_separate_boxes(self):
        union = branch_stream("a").union(branch_stream("b"))
        query = (
            union.window(TumblingCountWindow(4)).aggregate("w").compile(mode="tuple")
        )
        assert not any(
            isinstance(op, FusedBatchSegment) for op, _ in query._operator_tags
        )

    def test_segment_rejects_per_tuple_members(self):
        class NoBatch(Filter):
            def process(self, item):  # overriding process disables the kernel
                yield item

        with pytest.raises(OperatorError, match="per-tuple fallback"):
            FusedBatchSegment([NoBatch(lambda t: True), PassThroughOperator()])

    def test_segment_needs_two_members(self):
        with pytest.raises(OperatorError, match="at least two"):
            FusedBatchSegment([PassThroughOperator()])


class TestBatchTupleEquivalence:
    def _run(self, mode):
        union = branch_stream("a").union(branch_stream("b"))
        query = (
            union.window(TumblingCountWindow(4))
            .aggregate("w")
            .compile(mode=mode, batch_size=8 if mode == "batch" else None)
        )
        query.push_many("a", branch_tuples(23))
        query.push_many("b", branch_tuples(17, offset=100.0, ghost_every=3))
        return query.finish()

    def test_union_results_identical_across_paths(self):
        tuple_results = self._run("tuple")
        batch_results = self._run("batch")
        assert len(tuple_results) == len(batch_results)
        assert tuple_results, "the union plan must produce windows"
        for a, b in zip(tuple_results, batch_results):
            assert set(a.values) == set(b.values)
            assert b.value("sum_w_mean") == pytest.approx(
                a.value("sum_w_mean"), abs=1e-9
            )
            da, db = a.distribution("sum_w"), b.distribution("sum_w")
            assert float(db.mean()) == pytest.approx(float(da.mean()), abs=1e-9)
            assert float(db.variance()) == pytest.approx(
                float(da.variance()), abs=1e-9
            )

    def test_segment_flush_cascades_buffered_state(self):
        """End-of-stream output of a fused chain matches the unfused chain."""
        from repro.core.selection import (
            Comparison,
            ProbabilisticSelect,
            UncertainPredicate,
        )

        def make_ops():
            return (
                Filter(lambda t: t.value("kind") != "ghost", name="real"),
                ProbabilisticSelect(
                    UncertainPredicate("w", Comparison.GREATER, 0.0),
                    min_probability=0.1,
                    # No annotation: survivors pass through unchanged, so
                    # both runs can be compared by tuple identity.
                    probability_attribute=None,
                ),
            )

        items = branch_tuples(9)
        f1, p1 = make_ops()
        segment = FusedBatchSegment([f1, p1])
        from repro.streams.batch import TupleBatch

        fused_out = list(segment.process_batch(TupleBatch(items)))
        fused_out.extend(segment.flush())

        f2, p2 = make_ops()
        loose = [t for item in items for t in f2.process(item)]
        loose = [t for item in loose for t in p2.process(item)]
        loose.extend(
            t for item in f2.flush() for t in p2.process(item)
        )
        loose.extend(p2.flush())

        assert [t.tuple_id for t in fused_out] == [t.tuple_id for t in loose]
