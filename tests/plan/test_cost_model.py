"""Tests for the planner cost model: strategy choice and execution mode."""

import pytest

from repro.core import (
    CFApproximationSum,
    CFInversionSum,
    CLTSum,
    ProbabilisticJoin,
    ProbabilisticSelect,
    UncertainAggregate,
    UncertainPredicate,
)
from repro.core.selection import Comparison
from repro.plan import CostModel, Stream
from repro.streams import (
    CollectSink,
    NowWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
)


class TestWindowSizing:
    def test_count_window_size_is_exact(self):
        model = CostModel()
        assert model.expected_window_size(TumblingCountWindow(37), None) == 37

    def test_now_window_is_one(self):
        assert CostModel().expected_window_size(NowWindow(), None) == 1

    def test_time_window_needs_rate_hint(self):
        model = CostModel()
        window = TumblingTimeWindow(5.0)
        assert model.expected_window_size(window, None) is None
        assert model.expected_window_size(window, 10.0) == 50


class TestStrategyChoice:
    def test_gaussian_family_picks_cf_approx(self):
        choice = CostModel().choose_sum_strategy(TumblingCountWindow(100), "gaussian")
        assert isinstance(choice.strategy, CFApproximationSum)
        assert "exact" in choice.reason

    def test_large_window_picks_clt(self):
        choice = CostModel().choose_sum_strategy(TumblingCountWindow(100), "gmm")
        assert isinstance(choice.strategy, CLTSum)

    def test_small_non_gaussian_window_picks_inversion(self):
        choice = CostModel().choose_sum_strategy(TumblingCountWindow(4), "gmm")
        assert isinstance(choice.strategy, CFInversionSum)

    def test_mid_window_picks_cf_approx(self):
        choice = CostModel().choose_sum_strategy(TumblingCountWindow(20), "gmm")
        assert isinstance(choice.strategy, CFApproximationSum)

    def test_unknown_size_defaults_to_cf_approx(self):
        choice = CostModel().choose_sum_strategy(TumblingTimeWindow(5.0), None)
        assert isinstance(choice.strategy, CFApproximationSum)

    def test_thresholds_are_tunable(self):
        model = CostModel(clt_window_threshold=10)
        choice = model.choose_sum_strategy(TumblingCountWindow(12), "gmm")
        assert isinstance(choice.strategy, CLTSum)

    def test_explicit_strategy_wins_over_cost_model(self):
        query = (
            Stream.source("in", uncertain=("v",), family="gaussian")
            .window(TumblingCountWindow(100))
            .aggregate("v", strategy=CLTSum())
            .compile()
        )
        assert query.strategy_decisions == []


def _vectorized_plan_ops():
    select = ProbabilisticSelect(
        UncertainPredicate("v", Comparison.GREATER, 0.0), min_probability=0.0
    )
    aggregate = UncertainAggregate(
        TumblingCountWindow(10), "v", CFApproximationSum()
    )
    return [select, aggregate, CollectSink()]


class TestExecutionChoice:
    def test_vectorized_plan_runs_batched(self):
        choice = CostModel().choose_execution(_vectorized_plan_ops())
        assert choice.mode == "batch"
        assert choice.batch_size == 256

    def test_batch_size_stretches_to_window(self):
        choice = CostModel().choose_execution(_vectorized_plan_ops(), window_sizes=[1000])
        assert choice.batch_size == 1000

    def test_per_tuple_plan_stays_on_tuple_path(self):
        join = ProbabilisticJoin(window_length=5.0, match_probability=lambda a, b: 1.0)
        ports = [join.left_port(), join.right_port()]
        choice = CostModel().choose_execution([join, *ports])
        assert choice.mode == "tuple"

    def test_compile_mode_pins_override_cost_model(self):
        stream = (
            Stream.source("in", uncertain=("v",))
            .window(TumblingCountWindow(4))
            .aggregate("v", strategy=CLTSum())
        )
        assert stream.compile(mode="tuple").execution.mode == "tuple"
        pinned = stream.compile(mode="batch", batch_size=17)
        assert pinned.execution.mode == "batch"
        assert pinned.execution.batch_size == 17
        assert pinned.engine.batch_size == 17


class TestValidation:
    def test_bad_thresholds_rejected(self):
        with pytest.raises(ValueError):
            CostModel(clt_window_threshold=1)
        with pytest.raises(ValueError):
            CostModel(default_batch_size=0)
        with pytest.raises(ValueError):
            CostModel(min_vectorized_fraction=1.5)
