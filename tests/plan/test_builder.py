"""Tests for the Stream builder: fluent surface, schema checks, DAG shapes."""

import pytest

from repro.core import CLTSum
from repro.distributions import Gaussian
from repro.plan import (
    AggregateNode,
    FilterNode,
    JoinNode,
    PlanError,
    ProbFilterNode,
    SourceNode,
    Stream,
    UnionNode,
    compile_streams,
)
from repro.streams import PassThroughOperator, StreamTuple, TumblingCountWindow


def weight_tuple(i, mean, group="A"):
    return StreamTuple(
        timestamp=float(i),
        values={"tag_id": f"O{i}", "group": group},
        uncertain={"weight": Gaussian(mean, 1.0)},
    )


class TestBuilderSurface:
    def test_chain_produces_expected_nodes(self):
        stream = (
            Stream.source("in", uncertain=("weight",))
            .where(lambda t: True, uses=("tag_id",))
            .where_probably("weight", ">", 10.0)
            .window(TumblingCountWindow(3))
            .aggregate("weight", strategy=CLTSum())
        )
        node = stream.node
        assert isinstance(node, AggregateNode)
        assert isinstance(node.input, ProbFilterNode)
        assert isinstance(node.input.input, FilterNode)
        assert isinstance(node.input.input.input, SourceNode)

    def test_handles_are_immutable(self):
        source = Stream.source("in", uncertain=("weight",))
        filtered = source.where(lambda t: True)
        assert source.node is not filtered.node
        assert filtered.node.input is source.node

    def test_aggregate_requires_window(self):
        with pytest.raises(PlanError, match="needs a window"):
            Stream.source("in").aggregate("weight")

    def test_having_requires_aggregate(self):
        with pytest.raises(PlanError, match="must directly follow aggregate"):
            Stream.source("in").having(10.0)

    def test_having_attaches_to_aggregate(self):
        stream = (
            Stream.source("in", uncertain=("weight",))
            .window(TumblingCountWindow(2))
            .aggregate("weight", strategy=CLTSum())
            .having(25.0, min_probability=0.8)
        )
        assert stream.node.having.threshold == 25.0
        assert stream.node.having.min_probability == 0.8

    def test_unknown_comparison_rejected(self):
        with pytest.raises(PlanError, match="unknown comparison"):
            Stream.source("in", uncertain=("v",)).where_probably("v", ">=", 1.0)

    def test_group_by_staged_for_aggregate(self):
        stream = (
            Stream.source("in", uncertain=("weight",))
            .window(TumblingCountWindow(2))
            .group_by(lambda t: t.value("group"))
            .aggregate("weight", strategy=CLTSum())
        )
        assert stream.node.key is not None

    def test_union_builds_union_node(self):
        a = Stream.source("a")
        b = Stream.source("b")
        assert isinstance(a.union(b).node, UnionNode)

    def test_join_builds_join_node(self):
        left = Stream.source("l")
        right = Stream.source("r")
        joined = left.join(right, on=lambda a, b: 1.0, window_length=5.0)
        assert isinstance(joined.node, JoinNode)


class TestSchemaChecking:
    def test_unknown_uncertain_attribute_rejected(self):
        stream = Stream.source("in", uncertain=("weight",)).where_probably(
            "height", ">", 1.0
        )
        with pytest.raises(PlanError, match="height"):
            stream.plan()

    def test_unknown_aggregate_attribute_rejected(self):
        stream = (
            Stream.source("in", values=("tag",), uncertain=("weight",))
            .window(TumblingCountWindow(2))
            .aggregate("mass", strategy=CLTSum())
        )
        with pytest.raises(PlanError, match="mass"):
            stream.plan()

    def test_derive_extends_schema(self):
        stream = (
            Stream.source("in", values=("tag",), uncertain=())
            .derive(uncertain={"weight": lambda t: Gaussian(1.0, 1.0)})
            .where_probably("weight", ">", 0.0)
        )
        stream.plan()  # does not raise

    def test_open_schema_skips_checks(self):
        Stream.source("in").where_probably("anything", ">", 1.0).plan()

    def test_summarize_checks_attribute(self):
        stream = (
            Stream.source("in", values=("tag",), uncertain=("weight",))
            .summarize("mass")
        )
        with pytest.raises(PlanError, match="mass"):
            stream.plan()

    def test_join_prefixes_schema(self):
        left = Stream.source("l", values=("a",), uncertain=("x",))
        right = Stream.source("r", values=("b",), uncertain=("temp",))
        joined = left.join(
            right, on=lambda a, b: 1.0, window_length=5.0,
            prefix_left="L_", prefix_right="R_",
        )
        schema = joined.node.output_schema()
        assert "L_a" in schema.values and "R_b" in schema.values
        assert "match_probability" in schema.values
        assert schema.uncertain == frozenset({"L_x", "R_temp"})

    def test_duplicate_source_names_rejected(self):
        a = Stream.source("in")
        b = Stream.source("in")  # distinct node, same name
        with pytest.raises(PlanError, match="two distinct sources"):
            a.union(b).plan()


class TestCompiledQuery:
    def test_simple_query_runs(self):
        query = (
            Stream.source("in", uncertain=("weight",))
            .window(TumblingCountWindow(3))
            .aggregate("weight", strategy=CLTSum())
            .compile()
        )
        query.push_many("in", [weight_tuple(i, 10.0) for i in range(6)])
        results = query.finish()
        assert len(results) == 2
        assert results[0].value("sum_weight_mean") == pytest.approx(30.0)

    def test_fanout_shared_prefix_lowers_once(self):
        source = Stream.source("in", values=("group",), uncertain=("weight",))
        shared = source.where(lambda t: True, description="shared")
        q_all = shared.window(TumblingCountWindow(2)).aggregate(
            "weight", strategy=CLTSum()
        )
        q_count = shared.window(TumblingCountWindow(2)).aggregate(
            "weight", function="count"
        )
        query = compile_streams({"sums": q_all, "counts": q_count})
        # The shared filter lowers to ONE physical box feeding both outputs.
        shared_filters = [
            op for op, node in query._operator_tags if node is shared.node
        ]
        assert len(shared_filters) == 1
        assert len(shared_filters[0].downstream) == 2

        query.push_many("in", [weight_tuple(i, 5.0) for i in range(4)])
        query.finish()
        assert len(query.output("sums")) == 2
        assert len(query.output("counts")) == 2
        assert query.output("counts")[0].value("count_weight") == 2
        with pytest.raises(PlanError, match="unknown output"):
            query.output("nope")

    def test_multiple_sources_via_join(self):
        query = (
            Stream.source("l", uncertain=("weight",))
            .join(
                Stream.source("r", uncertain=("weight",)),
                on=lambda a, b: 1.0,
                window_length=100.0,
                min_probability=0.5,
            )
            .compile()
        )
        assert set(query.sources) == {"l", "r"}
        query.push("r", weight_tuple(0, 10.0))
        query.push("l", weight_tuple(1, 10.0))
        results = query.finish()
        assert len(results) == 1
        assert results[0].value("match_probability") == 1.0

    def test_pipe_routes_through_custom_operator(self):
        box = PassThroughOperator(name="custom")
        query = Stream.source("in").pipe(box, description="noop").compile()
        query.push("in", weight_tuple(0, 1.0))
        assert len(query.finish()) == 1

    def test_statistics_exposed(self):
        query = (
            Stream.source("in", uncertain=("weight",))
            .window(TumblingCountWindow(2))
            .aggregate("weight", strategy=CLTSum())
            .compile()
        )
        query.push_many("in", [weight_tuple(i, 1.0) for i in range(4)])
        query.finish()
        detailed = query.statistics(detailed=True)
        assert any(s.tuples_in == 4 for s in detailed)

    def test_bad_mode_rejected(self):
        stream = Stream.source("in")
        with pytest.raises(PlanError, match="unknown execution mode"):
            stream.compile(mode="warp")


class TestStagedStateSafety:
    """Regression: staged window()/group_by() must never be silently lost."""

    def test_staged_state_survives_row_wise_stages(self):
        query = (
            Stream.source("in", values=("group",), uncertain=("weight",))
            .window(TumblingCountWindow(4))
            .group_by(lambda t: t.value("group"))
            .where(lambda t: True, description="interposed")
            .aggregate("weight", strategy=CLTSum())
            .compile(mode="tuple")
        )
        query.push_many(
            "in", [weight_tuple(i, 10.0, group="A" if i % 2 else "B") for i in range(4)]
        )
        results = query.finish()
        # Grouped: one result per group per window, carrying "group".
        assert sorted(t.value("group") for t in results) == ["A", "B"]

    def test_structural_stage_refuses_to_drop_staged_window(self):
        staged = (
            Stream.source("in", uncertain=("weight",)).window(TumblingCountWindow(2))
        )
        with pytest.raises(PlanError, match="discard the staged window"):
            staged.summarize("weight")
        with pytest.raises(PlanError, match="discard the staged window"):
            staged.plan()
        with pytest.raises(PlanError, match="discard the staged window"):
            staged.join(Stream.source("r"), on=lambda a, b: 1.0, window_length=1.0)


class TestPipeReuseGuards:
    """Regression: stateful piped operators cannot be wired twice."""

    def test_second_compile_rejected(self):
        stream = Stream.source("in").pipe(PassThroughOperator(name="box"))
        stream.compile(mode="tuple")
        with pytest.raises(PlanError, match="can only be compiled once"):
            stream.compile(mode="tuple")

    def test_same_instance_piped_twice_rejected(self):
        box = PassThroughOperator(name="box")
        a = Stream.source("a").pipe(box)
        b = Stream.source("b").pipe(box)
        with pytest.raises(PlanError, match="piped into this plan twice"):
            compile_streams({"a": a, "b": b})
