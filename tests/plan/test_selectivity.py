"""Selectivity estimates: CDF pass-rates and selectivity × cost ordering."""

import math

import pytest

from repro.core.selection import Comparison
from repro.distributions import Gaussian, Uniform
from repro.plan import ColumnStat, CostModel, PlanError, Stream
from repro.streams import StreamTuple


def applied_rules(stream):
    from repro.plan import LogicalPlan, Planner

    plan = LogicalPlan(outputs=(stream.node,))
    _, traces = Planner().optimize(plan)
    return [t.rule for t in traces]


class TestColumnStatDeclaration:
    def test_source_accepts_stat_tuples(self):
        stream = Stream.source("s", uncertain={"t": ("gaussian", 50.0, 10.0)})
        stat = stream.node.stat_for("t")
        assert stat == ColumnStat("t", "gaussian", 50.0, 10.0)

    def test_source_accepts_distributions(self):
        stream = Stream.source(
            "s", uncertain={"g": Gaussian(5.0, 2.0), "u": Uniform(0.0, 10.0)}
        )
        assert stream.node.stat_for("g") == ColumnStat("g", "gaussian", 5.0, 2.0)
        assert stream.node.stat_for("u") == ColumnStat("u", "uniform", 0.0, 10.0)

    def test_plain_iterable_still_works(self):
        stream = Stream.source("s", uncertain=("a", "b"))
        assert stream.node.stats is None
        assert stream.node.uncertain == frozenset({"a", "b"})

    def test_bad_family_is_rejected(self):
        with pytest.raises(PlanError, match="unsupported family"):
            Stream.source("s", uncertain={"a": ("poisson", 1.0, 2.0)})


class TestPassRates:
    def test_gaussian_cdf(self):
        model = CostModel()
        stat = ColumnStat("t", "gaussian", 50.0, 10.0)
        expected = 1.0 - 0.5 * (1.0 + math.erf((70.0 - 50.0) / (10.0 * math.sqrt(2.0))))
        assert model.comparison_pass_rate(stat, Comparison.GREATER, 70.0) == pytest.approx(
            expected
        )
        assert model.comparison_pass_rate(stat, Comparison.LESS, 50.0) == pytest.approx(0.5)

    def test_uniform_cdf(self):
        model = CostModel()
        stat = ColumnStat("u", "uniform", 0.0, 100.0)
        assert model.comparison_pass_rate(stat, Comparison.GREATER, 90.0) == pytest.approx(0.1)
        assert model.comparison_pass_rate(
            stat, Comparison.BETWEEN, 20.0, 50.0
        ) == pytest.approx(0.3)
        # Out-of-range constants clamp.
        assert model.comparison_pass_rate(stat, Comparison.GREATER, 200.0) == 0.0
        assert model.comparison_pass_rate(stat, Comparison.LESS, 200.0) == 1.0

    def test_selectivity_resolves_through_row_nodes(self):
        model = CostModel()
        stream = (
            Stream.source("s", uncertain={"t": ("gaussian", 50.0, 10.0)})
            .where(lambda x: True, uses=())
            .where_probably("t", ">", 70.0, annotate=None)
        )
        estimate = model.prob_filter_selectivity(stream.node)
        assert estimate == pytest.approx(0.02275, abs=1e-4)

    def test_unknown_column_has_no_estimate(self):
        model = CostModel()
        stream = Stream.source("s", uncertain=("t",)).where_probably("t", ">", 1.0)
        assert model.prob_filter_selectivity(stream.node) is None


class TestSelectivityOrdering:
    def test_more_selective_prob_filter_runs_first(self):
        source = Stream.source(
            "s",
            uncertain={"t": ("gaussian", 50.0, 10.0), "h": ("uniform", 0.0, 100.0)},
        )
        # Written wide-first (h < 90 passes 90%); the planner must move
        # the narrow temp filter (~2%) ahead of it.
        stream = source.where_probably("h", "<", 90.0, annotate=None).where_probably(
            "t", ">", 70.0, annotate=None
        )
        assert "reorder_selective_prob_filter_first" in applied_rules(stream)
        optimized = stream.explain(optimize=True)
        first_filter = optimized.splitlines()[0]
        assert "h < 90.0" in first_filter  # outer box = runs last

    def test_already_optimal_order_is_kept(self):
        source = Stream.source(
            "s",
            uncertain={"t": ("gaussian", 50.0, 10.0), "h": ("uniform", 0.0, 100.0)},
        )
        stream = source.where_probably("t", ">", 70.0, annotate=None).where_probably(
            "h", "<", 90.0, annotate=None
        )
        assert "reorder_selective_prob_filter_first" not in applied_rules(stream)

    def test_same_annotation_blocks_the_swap(self):
        source = Stream.source(
            "s",
            uncertain={"t": ("gaussian", 50.0, 10.0), "h": ("uniform", 0.0, 100.0)},
        )
        stream = source.where_probably("h", "<", 90.0).where_probably("t", ">", 70.0)
        assert "reorder_selective_prob_filter_first" not in applied_rules(stream)

    def test_expensive_deterministic_filter_stays_behind_selective_prob(self):
        """selectivity × cost, not structure alone: a costly predicate
        behind a highly selective probabilistic filter is NOT hoisted."""
        source = Stream.source("s", uncertain={"t": ("gaussian", 50.0, 10.0)})
        stream = source.where_probably("t", ">", 80.0, annotate=None).where(
            lambda x: True, uses=("u",), cost_hint=50.0, description="expensive"
        )
        assert "reorder_cheap_filter_first" not in applied_rules(stream)

    def test_cheap_deterministic_filter_is_still_hoisted(self):
        source = Stream.source("s", uncertain={"t": ("gaussian", 50.0, 10.0)})
        stream = source.where_probably("t", ">", 80.0, annotate=None).where(
            lambda x: True, uses=("u",), description="cheap"
        )
        assert "reorder_cheap_filter_first" in applied_rules(stream)

    def test_reorder_preserves_results(self):
        from repro.distributions import Gaussian as G

        source = Stream.source(
            "s",
            uncertain={"t": ("gaussian", 50.0, 10.0), "h": ("uniform", 0.0, 100.0)},
        )
        stream = source.where_probably("h", "<", 90.0, annotate=None).where_probably(
            "t", ">", 70.0, annotate=None
        )
        items = [
            StreamTuple(
                timestamp=float(i),
                uncertain={"t": G(40.0 + 2.0 * i, 5.0), "h": G(5.0 * i, 3.0)},
            )
            for i in range(20)
        ]
        optimized = stream.compile(optimize=True)
        optimized.push_many("s", items)
        naive = stream.compile(optimize=False)
        naive.push_many("s", items)
        optimized_ids = [t.tuple_id for t in optimized.finish()]
        naive_ids = [t.tuple_id for t in naive.finish()]
        assert optimized_ids == naive_ids
