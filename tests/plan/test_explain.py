"""Golden-output tests for logical and end-to-end ``explain()``.

These pin the exact explain rendering for small deterministic plans so
formatting regressions (and accidental semantic changes to the rewrite
trace or cost-model reporting) show up as diffs.
"""

import textwrap

from repro.core import CLTSum
from repro.plan import Stream, compile_streams
from repro.streams import TumblingCountWindow


def small_plan():
    return (
        Stream.source("sensors", uncertain=("value",), family="gmm")
        .where(lambda t: True, uses=("value",), description="nonnull")
        .where_probably("value", ">", 10.0, annotate=None)
        .window(TumblingCountWindow(4))
        .aggregate("value")
    )


LOGICAL_GOLDEN = textwrap.dedent(
    """\
    Aggregate[sum(value) @ TumblingCountWindow(size=4), strategy=auto]
      ProbFilter[value > 10.0, p>=0.5]
        Filter[nonnull, uses={value}]
          Source[sensors, family=gmm]"""
)

FULL_GOLDEN = textwrap.dedent(
    """\
    Logical plan
    ============
    Aggregate[sum(value) @ TumblingCountWindow(size=4), strategy=auto]
      ProbFilter[value > 10.0, p>=0.5]
        Filter[nonnull, uses={value}]
          Source[sensors, family=gmm]

    Rewrites
    ========
    - fuse_select_into_aggregate: probabilistic filter on 'value' fused into the sum(value) window kernel

    Cost model
    ==========
    - strategy for Aggregate[sum(value) @ TumblingCountWindow(size=4), strategy=auto]: cf_inversion (small window of ~4 non-Gaussian summands: exact CF inversion is affordable)
    - execution: batch(batch_size=256) (2/2 boxes run vectorised batch kernels; batch_size=256)

    Physical plan
    =============
    - source:sensors <- Source[sensors, family=gmm]  [vectorized]
    - Filter[nonnull] <- Filter[nonnull, uses={value}]  [vectorized]
    - FusedSelect+UncertainAggregate <- FusedSelectAggregate[ProbFilter[value > 10.0, p>=0.5] ⨝ Aggregate[sum(value) @ TumblingCountWindow(size=4), strategy=auto]]  [vectorized]"""
)


def test_logical_explain_golden():
    assert small_plan().explain() == LOGICAL_GOLDEN


def test_full_explain_golden():
    assert small_plan().compile().explain() == FULL_GOLDEN


def test_explain_reports_vectorized_vs_per_tuple():
    """The satellite contract: explain() distinguishes batch kernels
    from per-tuple fallback boxes (the join has no batch kernel)."""
    joined = (
        Stream.source("l", uncertain=("x",))
        .join(Stream.source("r", uncertain=("x",)), on=lambda a, b: 1.0, window_length=5.0)
    )
    # Force batch mode: the cost model would pick tuple for this plan.
    text = joined.compile(mode="batch").explain()
    assert "ProbabilisticJoin" in text
    assert "[per-tuple fallback]" in text
    assert "[vectorized]" in text  # the source pass-throughs

    tuple_text = joined.compile(mode="tuple").explain()
    assert "[tuple path]" in tuple_text


def test_explain_marks_shared_subplans():
    shared = Stream.source("in", uncertain=("v",)).where(lambda t: True, description="shared")
    a = shared.window(TumblingCountWindow(2)).aggregate("v", strategy=CLTSum())
    b = shared.summarize("v")
    query = compile_streams({"agg": a, "summary": b}, mode="tuple")
    text = query.explain()
    assert "#1" in text
    assert "(see #1)" in text
    assert "output agg:" in text and "output summary:" in text


def test_explain_without_rewrites_says_so():
    text = (
        Stream.source("in", uncertain=("v",))
        .summarize("v")
        .compile(mode="tuple", optimize=False)
        .explain()
    )
    assert "(none applied)" in text
