"""Sharded warehouse monitoring: one query, N worker processes.

The paper targets RFID/radar rates a single Python process cannot
sustain.  This example runs a Q1-style monitoring query — per-shelf
weight totals with a probabilistic HAVING — through the sharded
parallel runtime twice:

* directly on a :class:`repro.runtime.ShardedEngine`, to show the
  partition-aware plan split (``explain()``: the shard-local partial
  aggregate, the coordinator's moment merge, HAVING on the merged
  result) and the per-shard statistics;
* through :class:`repro.QuerySession` with ``workers=2``, where a
  registered CQL query transparently runs sharded while an unshardable
  one (a count-window query) stays in the shared engine.

Both produce results identical to a single engine: tumbling *time*
windows assign tuples to windows by timestamp alone, so every shard
closes the same windows and the moment-closed SUM strategies make the
partial aggregates merge exactly.

Run with:  python examples/sharded_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import QuerySession
from repro.distributions import Gaussian
from repro.plan import Stream
from repro.runtime import ShardedEngine
from repro.streams import StreamTuple, TumblingTimeWindow


def warehouse_stream(n_tuples: int, seed: int = 7):
    """Object sightings: a tag, a shelf, and an uncertain weight."""
    rng = np.random.default_rng(seed)
    shelf_weight = {shelf: float(rng.uniform(35.0, 65.0)) for shelf in range(4)}
    tuples = []
    for i in range(n_tuples):
        shelf = int(rng.integers(0, 4))
        tuples.append(
            StreamTuple(
                timestamp=i * 0.05,  # 20 sightings per second
                values={"tag_id": f"O{i % 60:03d}", "shelf": shelf},
                uncertain={
                    "weight": Gaussian(
                        shelf_weight[shelf] + float(rng.normal(0.0, 5.0)), 2.0
                    )
                },
            )
        )
    return tuples


def monitoring_query() -> Stream:
    """Per-shelf weight totals over 5 s windows, alert above 900 pounds."""
    return (
        Stream.source(
            "sightings",
            values=("tag_id", "shelf"),
            uncertain=("weight",),
            family="gaussian",
            rate_hint=20.0,
        )
        .window(TumblingTimeWindow(5.0))
        .group_by(lambda t: t.value("shelf"))
        .aggregate("weight")
        .having(900.0, min_probability=0.5)
    )


def main() -> None:
    tuples = warehouse_stream(4000)

    # --- the sharded engine, directly -----------------------------------
    with ShardedEngine(monitoring_query(), workers=4, chunk_size=512) as engine:
        print(engine.explain())
        engine.push_many("sightings", tuples)
        alerts = engine.finish()

        print(f"\n{len(alerts)} overloaded-shelf windows from 4 shards:")
        for alert in alerts[:5]:
            total = alert.distribution("sum_weight")
            print(
                f"  t=[{alert.value('window_start'):6.1f}, {alert.value('window_end'):6.1f}) "
                f"shelf {alert.value('group')}: total ~ N({total.mean():7.1f}, {total.std():5.1f}) "
                f"P[>900] = {alert.value('having_probability'):.2f}"
            )

        stats = engine.statistics()
        print("\nper-shard input (round-robin chunks):")
        for shard in sorted(stats.shards):
            source = next(s for s in stats.shards[shard] if s.name.startswith("source:"))
            print(f"  shard {shard}: {source.tuples_in} tuples in")

    # --- the same capability through the service layer ------------------
    single = monitoring_query().compile(mode="tuple")
    single.push_many("sightings", tuples)
    expected = single.finish()

    with QuerySession(workers=2) as session:
        session.create_stream(
            "sightings",
            values=("tag_id", "shelf"),
            uncertain=("weight",),
            family="gaussian",
            rate_hint=20.0,
        )
        session.create_function("shelf_of", lambda t: t)
        # CQL text registers exactly as in a one-process session; the
        # sharding decision is per query.
        session.register(
            "overloaded",
            """
            SELECT SUM(weight) FROM sightings [RANGE 5 SECONDS SLIDE 5 SECONDS]
            GROUP BY shelf
            HAVING SUM(weight) > 900 WITH CONFIDENCE 0.5
            """,
        )
        session.register("recent", "SELECT COUNT(*) AS n FROM sightings [ROWS 500]")
        session.push_many("sightings", tuples)
        session.flush()

        print("\n" + session.explain())
        sharded_results = session.results("overloaded")
        print(
            f"\nservice results: {len(sharded_results)} alerts "
            f"(single engine produced {len(expected)}), "
            f"{len(session.results('recent'))} count windows"
        )
        drift = max(
            (
                abs(
                    a.distribution("sum_weight").mean()
                    - b.distribution("sum_weight").mean()
                )
                for a, b in zip(expected, sharded_results)
            ),
            default=0.0,
        )
        print(f"max |mean drift| vs single engine: {drift:.2e}")


if __name__ == "__main__":
    main()
