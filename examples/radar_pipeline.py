"""Hazardous weather monitoring: the Figure 1 data path at laptop scale.

Follows the CASA data path of Section 2.2 with the synthetic radar
substrate:

raw pulses -> averaged moment data (+ per-voxel velocity pdfs from the
radar T operator) -> a declarative monitoring query over the uncertain
voxel stream (:mod:`repro.plan`) -> merge onto a Cartesian grid ->
tornado detection,

and then repeats the Table 1 experiment in miniature: sweep the pulse
averaging size and watch data volume, runtime and detection quality
trade off against each other.

Run with:  python examples/radar_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.plan import Stream
from repro.radar import (
    CartesianGrid,
    RadarTransformOperator,
    compute_moments,
    merge_moment_fields,
    run_detection,
)
from repro.streams import TumblingCountWindow
from repro.workloads import TABLE1_AVERAGING_SIZES, build_table1_workload


def main() -> None:
    print("generating a synthetic tornadic sector scan (scaled-down CASA trace) ...")
    workload = build_table1_workload(
        duration_seconds=19.0, n_scans=2, pulse_rate=300.0, n_gates=140
    )
    site, scans = workload.site, workload.scans
    print(
        f"radar {site.site_id}: {scans[0].n_pulses} pulses/scan, {site.n_gates} gates, "
        f"raw volume {workload.raw_size_bytes / 1e6:.1f} MB, "
        f"{len(workload.scene.vortices)} embedded vortices"
    )

    # --- T operator: moment data with per-voxel velocity distributions.
    t_operator = RadarTransformOperator(site, averaging_size=40, min_reflectivity_dbz=25.0)
    voxel_tuples = list(t_operator.ingest(scans[0], timestamp=0.0))
    sigmas = [t.distribution("velocity").sigma for t in voxel_tuples]
    print(
        f"\nT operator emitted {len(voxel_tuples)} voxel tuples; "
        f"median velocity std = {np.median(sigmas):.2f} m/s"
    )
    sample = voxel_tuples[len(voxel_tuples) // 2]
    lo, hi = sample.distribution("velocity").confidence_region(0.9)
    print(
        "example voxel: "
        f"az={sample.value('azimuth_deg'):.1f} deg, range={sample.value('range_m'):.0f} m, "
        f"velocity in [{lo:.1f}, {hi:.1f}] m/s with 90% confidence"
    )

    # --- Declarative monitoring query over the uncertain voxel stream.
    # Keep voxels that are *probably* fast outbound (velocity > 25 m/s
    # given each voxel's pdf) and track the mean velocity per 32-voxel
    # window.  The T operator emits Gaussian velocity pdfs, so the
    # declared family lets the cost model pick the closed-form CF
    # approximation, and the planner fuses the probabilistic filter
    # into the aggregate's batch kernel.
    monitor = (
        Stream.source(
            "voxels",
            values=("azimuth_deg", "range_m"),
            uncertain=("velocity",),
            family="gaussian",
        )
        .where_probably("velocity", ">", 25.0, min_probability=0.5, annotate=None)
        .window(TumblingCountWindow(32))
        .aggregate("velocity", function="avg")
        .summarize("avg_velocity", confidence=0.9)
        .compile()
    )
    print("\n=== declarative voxel monitor ===")
    print(monitor.explain())
    monitor.push_many("voxels", voxel_tuples)
    windows = monitor.finish()
    print(f"\n{len(windows)} fast-outbound voxel windows")
    for w in windows[:5]:
        print(
            f"  {w.value('window_count'):>3} voxels: mean velocity "
            f"{w.value('avg_velocity_mean'):>6.1f} m/s "
            f"(90% region [{w.value('avg_velocity_lo'):.1f}, {w.value('avg_velocity_hi'):.1f}])"
        )

    # --- Merge step: polar voxels onto a Cartesian grid.
    moments = compute_moments(scans[0], site, averaging_size=40)
    grid = CartesianGrid(-1000.0, 0.0, 16000.0, 16000.0, resolution=500.0)
    merged = merge_moment_fields([(moments, site)], grid, min_reflectivity_dbz=20.0)
    print(
        f"\nmerge: {merged.n_cells} Cartesian cells covered "
        f"({100 * merged.coverage_fraction():.1f}% of the grid), "
        f"sample-density imbalance {merged.density_imbalance():.1f}x"
    )

    # --- Table 1 in miniature: averaging size vs. quality.
    print("\naveraging-size sweep (Table 1 shape):")
    print(f"{'avg size':>9} {'moment MB':>11} {'detect time (s)':>16} {'tornados/scan':>14}")
    for averaging_size in TABLE1_AVERAGING_SIZES:
        counts, runtimes, megabytes = [], [], []
        for scan in scans:
            field = compute_moments(scan, site, averaging_size)
            result = run_detection(
                field, site, delta_v_threshold=workload.detection_threshold
            )
            counts.append(result.count)
            runtimes.append(result.runtime_seconds)
            megabytes.append(field.size_megabytes)
        print(
            f"{averaging_size:>9d} {np.mean(megabytes):>11.3f} {np.sum(runtimes):>16.4f} "
            f"{np.mean(counts):>14.2f}"
        )
    print(
        "\nheavier averaging shrinks the data and the runtime but erases the "
        "vortex signatures -- the uncertainty the paper wants the system to expose."
    )


if __name__ == "__main__":
    main()
