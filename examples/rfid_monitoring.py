"""RFID object tracking and monitoring: queries Q1 and Q2 as a service.

Reproduces the Figure 2 architecture for the paper's first application
(Section 2.1) on the continuous-query service API: a mobile reader
sweeps a warehouse, the RFID T operator turns noisy readings into
object-location tuples with pdfs, and monitoring queries are
*registered* against a long-running :class:`repro.service.QuerySession`
— the way the paper's engine hosts CQL queries — instead of compiled
one plan at a time:

* Q1 -- fire-code monitoring: report shelf areas whose total object
  weight probably exceeds the limit (a custom monitor box, piped in
  through the fluent ``Stream`` escape hatch).
* Q2 -- flammable-object alerts: join object locations with a
  temperature stream and alert on flammable objects in hot areas.
* Q3 -- a CQL text query registered at runtime: hot-sensor counts per
  tumbling window, straight from the paper's dialect.

Q1 and Q2 reuse one ``located`` stream handle, so the session shares
the RFID T operator between them (one physical box, visible in
``session.explain()``), and Q3 shares the temperature source with Q2.

Run with:  python examples/rfid_monitoring.py
"""

from __future__ import annotations

from repro import QuerySession
from repro.core import Comparison, match_probability_band
from repro.rfid import (
    DetectionModel,
    FireCodeMonitor,
    MobileReaderSimulator,
    RFIDTransformOperator,
    WarehouseWorld,
)
from repro.streams import StreamTuple
from repro.workloads import temperature_stream


def main() -> None:
    detection = DetectionModel(midpoint=10.0, steepness=0.8, max_rate=0.95)
    world = WarehouseWorld(
        width=60.0,
        height=30.0,
        shelf_grid=(6, 3),
        n_objects=40,
        move_rate=0.0,
        flammable_fraction=0.3,
        weight_range=(30.0, 70.0),
        rng=1,
    )
    simulator = MobileReaderSimulator(
        world, detection=detection, lane_spacing=7.5, speed=6.0, scan_interval=0.25, rng=2
    )
    t_operator = RFIDTransformOperator(
        world, detection=detection, n_particles=80, emit_mode="detected", rng=3
    )

    # --- the long-running service --------------------------------------
    session = QuerySession()
    raw = session.create_stream("rfid_raw")
    sensors = session.create_stream(
        "temperature", values=("sensor_id",), uncertain=("x", "y", "temp")
    )

    # --- shared prefix: raw readings -> T operator (one box, two queries)
    located = raw.pipe(t_operator, description="RFID T operator")

    # --- Q1: fire-code monitoring (custom monitor box) -----------------
    q1 = session.register(
        "q1",
        located.pipe(
            FireCodeMonitor(
                weight_of=lambda tag: world.objects[tag].weight,
                window_length=5.0,
                cell_size=5.0,
                weight_limit=150.0,
                min_violation_probability=0.5,
            ),
            description="fire-code monitor",
        ),
    )

    # --- Q2: flammable-object / temperature join -----------------------
    def location_match(left, right):
        px = match_probability_band(left.distribution("x"), right.distribution("x"), 4.0)
        py = match_probability_band(left.distribution("y"), right.distribution("y"), 4.0)
        return px * py

    q2 = session.register(
        "q2",
        located.where(
            lambda t: world.objects[t.value("tag_id")].object_type == "flammable",
            uses=("tag_id",),
            description="flammable",
        ).join(
            sensors.where_probably("temp", Comparison.GREATER, 60.0, min_probability=0.5),
            on=location_match,
            window_length=30.0,
            min_probability=0.1,
            prefix_left="obj_",
            prefix_right="temp_",
        ),
    )

    # --- Q3: registered as CQL text, sharing the temperature source ----
    q3 = session.register(
        "q3",
        """
        SELECT COUNT(*) AS hot_sensors
        FROM temperature [RANGE 20 SECONDS SLIDE 20 SECONDS]
        WHERE temp > 60 WITH PROBABILITY 0.5
        """,
    )

    print(session.explain())
    print()
    print(session.explain("q2"))
    print()

    # A hot spot sits over the first shelf.
    first_shelf = next(iter(world.shelves.values()))
    for item in temperature_stream(
        150,
        area_bounds=world.bounds(),
        hot_spot=(first_shelf.x, first_shelf.y, 6.0, 90.0),
        rng=4,
    ):
        session.push("temperature", item)

    print("sweeping the warehouse with the mobile reader ...")
    for reading in simulator.readings(300):
        session.push(
            "rfid_raw", StreamTuple(timestamp=reading.timestamp, values={"reading": reading})
        )
    session.flush()

    mean_error = t_operator.mean_location_error()
    print(f"mean object-location error after the sweep: {mean_error:.2f} ft")

    q1_alerts = q1.results
    print(f"\nQ1: {len(q1_alerts)} fire-code violation alerts")
    print(f"{'area cell':>12} {'P(violation)':>14} {'total weight (mean ± std)':>28}")
    for alert in q1_alerts[:10]:
        dist = alert.distribution("total_weight")
        print(
            f"{str(alert.value('area')):>12} {alert.value('violation_probability'):>14.2f} "
            f"{dist.mean():>16.1f} ± {dist.std():.1f} lb"
        )

    q2_alerts = q2.results
    print(f"\nQ2: {len(q2_alerts)} flammable-object alerts")
    print(f"{'object':>10} {'sensor':>8} {'match prob':>11} {'temperature (mean)':>20}")
    for alert in q2_alerts[:10]:
        print(
            f"{alert.value('obj_tag_id'):>10} {alert.value('temp_sensor_id'):>8} "
            f"{alert.value('match_probability'):>11.2f} "
            f"{alert.distribution('temp_temp').mean():>18.1f} C"
        )

    q3_counts = q3.results
    print(f"\nQ3 (CQL): hot-sensor counts per 20 s window: "
          f"{[t.value('hot_sensors') for t in q3_counts]}")

    # The service keeps running: drop Q2, the T operator stays for Q1.
    session.drop("q2")
    print(f"\nafter drop(q2): {session.explain()}")


if __name__ == "__main__":
    main()
