"""Declarative queries: compiling Q1/Q2-style queries into box-arrow plans.

Section 3 notes that the box-arrow diagram executed by the engine "can
be compiled from a query".  This example uses the
:class:`repro.core.QueryBuilder` to express both of the paper's queries
declaratively and runs them over synthetic uncertain streams:

* a Q1-style query: derive a weight, group by area, sum per 5-second
  window, and keep groups that probably exceed a weight limit;
* a Q2-style query: join an object stream with a temperature stream on
  probabilistic location equality, keeping hot sensors only.

Run with:  python examples/declarative_queries.py
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    Comparison,
    HavingClause,
    ProbabilisticSelect,
    QueryBuilder,
    UncertainPredicate,
    match_probability_band,
)
from repro.distributions import Gaussian
from repro.streams import StreamTuple, TumblingTimeWindow
from repro.workloads import temperature_stream


def object_stream(n, rng):
    """A toy object-location stream with weights: three shelves along x."""
    catalog = {}
    tuples = []
    for i in range(n):
        tag = f"O{i:03d}"
        shelf = int(rng.integers(0, 3))
        catalog[tag] = {
            "weight": float(rng.uniform(30.0, 80.0)),
            "type": "flammable" if rng.random() < 0.4 else "general",
        }
        tuples.append(
            StreamTuple(
                timestamp=float(i) * 0.2,
                values={"tag_id": tag, "shelf": shelf},
                uncertain={
                    "x": Gaussian(10.0 + 20.0 * shelf + rng.normal(0, 0.5), 0.8),
                    "y": Gaussian(10.0 + rng.normal(0, 0.5), 0.8),
                },
            )
        )
    return catalog, tuples


def main() -> None:
    rng = np.random.default_rng(3)
    catalog, objects = object_stream(60, rng)

    # ------------------------------------------------------------------
    # Q1: per-area weight limit, expressed declaratively.
    # ------------------------------------------------------------------
    q1 = (
        QueryBuilder("rfid")
        .derive(values={"weight": lambda t: catalog[t.value("tag_id")]["weight"]})
        .group_aggregate(
            window=TumblingTimeWindow(5.0),
            key=lambda t: int(t.distribution("x").mean() // 20.0),
            attribute="weight",
            having=HavingClause(threshold=200.0, min_probability=0.5),
        )
        .summarize("sum_weight", confidence=0.95)
        .compile()
    )
    q1.push_many("rfid", objects)
    alerts = q1.finish()
    print(f"Q1 (declarative): {len(alerts)} overloaded-area windows")
    print(f"{'area':>6} {'window':>14} {'total weight':>14} {'95% region':>24}")
    for alert in alerts[:8]:
        print(
            f"{alert.value('group'):>6} "
            f"[{alert.value('window_start'):>5.1f},{alert.value('window_end'):>5.1f}] "
            f"{alert.value('sum_weight_mean'):>14.1f} "
            f"[{alert.value('sum_weight_lo'):>9.1f}, {alert.value('sum_weight_hi'):>9.1f}]"
        )

    # ------------------------------------------------------------------
    # Q2: flammable objects near hot sensors, expressed declaratively.
    # ------------------------------------------------------------------
    def location_match(left, right):
        px = match_probability_band(left.distribution("x"), right.distribution("x"), 3.0)
        py = match_probability_band(left.distribution("y"), right.distribution("y"), 3.0)
        return px * py

    hot_filter = ProbabilisticSelect(
        UncertainPredicate("temp", Comparison.GREATER, 60.0), min_probability=0.5
    )
    q2 = (
        QueryBuilder("rfid")
        .where(lambda t: catalog[t.value("tag_id")]["type"] == "flammable")
        .join(
            other_source="temperature",
            other_stages=[hot_filter],
            match_probability=location_match,
            window_length=1e6,
            min_probability=0.2,
            prefix_left="obj_",
            prefix_right="sensor_",
        )
        .compile()
    )
    sensors = temperature_stream(
        120, area_bounds=(0.0, 0.0, 70.0, 20.0), hot_spot=(10.0, 10.0, 8.0, 90.0), rng=9
    )
    q2.push_many("temperature", sensors)
    q2.push_many("rfid", objects)
    alerts = q2.finish()
    print(f"\nQ2 (declarative): {len(alerts)} flammable-object alerts")
    for alert in alerts[:8]:
        print(
            f"object {alert.value('obj_tag_id')} near sensor {alert.value('sensor_sensor_id')} "
            f"(match probability {alert.value('match_probability'):.2f}, "
            f"temperature ~{alert.distribution('sensor_temp').mean():.0f} C)"
        )


if __name__ == "__main__":
    main()
