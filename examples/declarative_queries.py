"""Declarative queries: compiling Q1/Q2-style queries into box-arrow plans.

Section 3 notes that the box-arrow diagram executed by the engine "can
be compiled from a query".  This example uses the DAG-capable
:class:`repro.plan.Stream` builder to express both of the paper's
queries declaratively, shows the planner's rewrites via ``explain()``,
and runs the compiled plans over synthetic uncertain streams:

* a Q1-style query: derive a weight, drop ghost reads, group by area,
  sum per 5-second window, and keep groups that probably exceed a
  weight limit.  The planner pushes the ghost-read filter *below* the
  weight derivation (``push_filter_below_derive``).
* a Q2-style query: join an object stream with a temperature stream on
  probabilistic location equality, keeping hot sensors only.  The heat
  predicate is written over the *joined* schema; the planner pushes it
  down into the temperature input (``push_filter_below_join``).

Run with:  python examples/declarative_queries.py
"""

from __future__ import annotations

import numpy as np

from repro.core import match_probability_band
from repro.plan import Stream
from repro.streams import StreamTuple, TumblingTimeWindow
from repro.workloads import temperature_stream

from repro.distributions import Gaussian


def object_stream(n, rng, ghost_rate=0.15):
    """A toy object-location stream: three shelves along x, plus ghost reads.

    A real reader occasionally reports tags that are not in the catalog
    (ghost reads); the declarative query filters them out.
    """
    catalog = {}
    tuples = []
    for i in range(n):
        tag = f"O{i:03d}"
        shelf = int(rng.integers(0, 3))
        if rng.random() >= ghost_rate:
            catalog[tag] = {
                "weight": float(rng.uniform(30.0, 80.0)),
                "type": "flammable" if rng.random() < 0.4 else "general",
            }
        tuples.append(
            StreamTuple(
                timestamp=float(i) * 0.2,
                values={"tag_id": tag, "shelf": shelf},
                uncertain={
                    "x": Gaussian(10.0 + 20.0 * shelf + rng.normal(0, 0.5), 0.8),
                    "y": Gaussian(10.0 + rng.normal(0, 0.5), 0.8),
                },
            )
        )
    return catalog, tuples


def main() -> None:
    rng = np.random.default_rng(3)
    catalog, objects = object_stream(60, rng)

    # ------------------------------------------------------------------
    # Q1: per-area weight limit, expressed declaratively.
    #
    # The query is written in the "natural" order -- derive the weight,
    # then discard ghost reads -- and the planner pushes the catalog-
    # membership filter below the derive so unknown tags never reach
    # the weight lookup.
    # ------------------------------------------------------------------
    # Objects arrive every 0.2 s; the rate hint lets the cost model size
    # the 5-second window (~25 summands) when choosing the SUM strategy.
    rfid = Stream.source(
        "rfid", values=("tag_id", "shelf"), uncertain=("x", "y"), rate_hint=5.0
    )
    q1 = (
        rfid
        .derive(values={"weight": lambda t: catalog.get(t.value("tag_id"), {}).get("weight", 0.0)})
        .where(lambda t: t.value("tag_id") in catalog, uses=("tag_id",), description="in catalog")
        .window(TumblingTimeWindow(5.0))
        .group_by(lambda t: int(t.distribution("x").mean() // 20.0))
        .aggregate("weight")
        .having(200.0, min_probability=0.5)
        .summarize("sum_weight", confidence=0.95)
        .compile()
    )
    print("=== Q1 plan ===")
    print(q1.explain())

    q1.push_many("rfid", objects)
    alerts = q1.finish()
    print(f"\nQ1 (declarative): {len(alerts)} overloaded-area windows")
    print(f"{'area':>6} {'window':>14} {'total weight':>14} {'95% region':>24}")
    for alert in alerts[:8]:
        print(
            f"{alert.value('group'):>6} "
            f"[{alert.value('window_start'):>5.1f},{alert.value('window_end'):>5.1f}] "
            f"{alert.value('sum_weight_mean'):>14.1f} "
            f"[{alert.value('sum_weight_lo'):>9.1f}, {alert.value('sum_weight_hi'):>9.1f}]"
        )

    # ------------------------------------------------------------------
    # Q2: flammable objects near hot sensors, expressed declaratively.
    #
    # The heat predicate is written over the joined schema
    # ("sensor_temp"); the planner pushes it down into the temperature
    # input so cold sensors never enter the join window.
    # ------------------------------------------------------------------
    def location_match(left, right):
        px = match_probability_band(left.distribution("x"), right.distribution("x"), 3.0)
        py = match_probability_band(left.distribution("y"), right.distribution("y"), 3.0)
        return px * py

    sensors = Stream.source(
        "temperature", values=("sensor_id",), uncertain=("x", "y", "temp")
    )
    q2 = (
        rfid
        .where(
            lambda t: catalog.get(t.value("tag_id"), {}).get("type") == "flammable",
            uses=("tag_id",),
            description="flammable",
        )
        .join(
            sensors,
            on=location_match,
            window_length=1e6,
            min_probability=0.2,
            prefix_left="obj_",
            prefix_right="sensor_",
        )
        .where_probably("sensor_temp", ">", 60.0, min_probability=0.5, annotate=None)
        .compile()
    )
    print("\n=== Q2 plan ===")
    print(q2.explain())

    sensor_tuples = temperature_stream(
        120, area_bounds=(0.0, 0.0, 70.0, 20.0), hot_spot=(10.0, 10.0, 8.0, 90.0), rng=9
    )
    q2.push_many("temperature", sensor_tuples)
    q2.push_many("rfid", objects)
    alerts = q2.finish()
    print(f"\nQ2 (declarative): {len(alerts)} flammable-object alerts")
    for alert in alerts[:8]:
        print(
            f"object {alert.value('obj_tag_id')} near sensor {alert.value('sensor_sensor_id')} "
            f"(match probability {alert.value('match_probability'):.2f}, "
            f"temperature ~{alert.distribution('sensor_temp').mean():.0f} C)"
        )


if __name__ == "__main__":
    main()
