"""Durable monitoring: checkpoint every N batches, crash, resume losslessly.

The monitoring session of the other examples, made restartable.  A
child process serves the query session (two forked shard workers, shm
ring transports); the parent drives it over the wire protocol:

* ingest arrives in batches, and every second batch the client issues
  a ``CHECKPOINT`` — the server quiesces its shards and commits a
  versioned checkpoint file (full first, deltas after) atomically;
* a subscriber consumes results, remembering ``last_seq``;
* the server is then killed with ``SIGKILL`` — no cleanup, shard
  workers and all, leaving its shm segments behind;
* ``QuerySession.recover`` rebuilds the session from the newest
  checkpoint in a fresh process (reaping the leaked segments), the
  client re-pushes everything after the checkpoint cut, and the
  subscriber reconnects with ``resume_from=last_seq`` — receiving
  every result it missed exactly once.

The combined result stream is compared against an uninterrupted run:
identical to 1e-9.

Run with:  python examples/durable_monitoring.py
"""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro import QuerySession
from repro.distributions import Gaussian
from repro.net import StreamClient, serve_in_thread
from repro.streams import StreamTuple

MONITOR = "SELECT SUM(weight) AS total FROM sightings [RANGE 5 SECONDS SLIDE 5 SECONDS]"
BATCH = 250          # tuples per ingest batch
BATCHES = 8          # 2000 tuples at 0.05 s spacing = 100 s = 20 windows
CRASH_AFTER = 6      # batches ingested before the SIGKILL
CHECKPOINT_EVERY = 2


def sightings(n: int = BATCH * BATCHES, seed: int = 7):
    rng = np.random.default_rng(seed)
    return [
        StreamTuple(
            timestamp=i * 0.05,
            values={"tag_id": f"O{i % 60:03d}"},
            uncertain={"weight": Gaussian(float(rng.uniform(35.0, 65.0)), 2.0)},
        )
        for i in range(n)
    ]


def build_session() -> QuerySession:
    # Small shard chunks keep both shards fed every batch, so the
    # min-watermark merge horizon (and with it result delivery) tracks
    # ingest closely instead of lagging a whole batch behind.
    session = QuerySession(workers=2, shard_backend="process",
                           shard_chunk_size=128)
    session.create_stream(
        "sightings", values=("tag_id",), uncertain=("weight",),
        family="gaussian", rate_hint=20.0,
    )
    session.register("overloaded", MONITOR)
    return session


def serve_child() -> None:
    """Child mode: host the session until the parent kills us."""
    handle = serve_in_thread(build_session())
    print(f"ADDRESS {handle.address}", flush=True)
    time.sleep(300)  # the parent's SIGKILL arrives long before this


def leaked_segments(pid: int):
    return glob.glob(f"/dev/shm/repro-ring-{pid}-*")


def main() -> None:
    tuples = sightings()
    checkpoint_dir = tempfile.mkdtemp(prefix="repro-ckpt-")

    # The reference: the same workload, never interrupted.
    with build_session() as reference:
        reference.push_many("sightings", tuples)
        reference.flush()
        expected = reference.results("overloaded")
    print(f"uninterrupted run: {len(expected)} windows\n")

    # --- serve in a child process, checkpoint while ingesting -----------
    child = subprocess.Popen(
        [sys.executable, os.path.abspath(__file__), "--serve"],
        stdout=subprocess.PIPE, text=True, start_new_session=True,
    )
    address = child.stdout.readline().split()[1]
    print(f"serving from pid {child.pid} at {address}")

    client = StreamClient(address, timeout=15.0)
    sub = client.subscribe("overloaded")
    ingested = 0
    for batch in range(CRASH_AFTER):
        client.ingest("sightings", tuples[ingested : ingested + BATCH])
        ingested += BATCH
        if (batch + 1) % CHECKPOINT_EVERY == 0:
            info = client.checkpoint(checkpoint_dir)
            print(f"  batch {batch + 1}: checkpoint {info} committed")
    received = sub.take(10)  # consume part of the stream, then 'crash'
    seen = sub.last_seq
    print(f"subscriber has {len(received)} results, last_seq={seen}")

    # --- SIGKILL: coordinator, shard workers, no cleanup ----------------
    os.killpg(child.pid, signal.SIGKILL)
    child.wait()
    child.stdout.close()
    sub.close()
    client.close()
    time.sleep(0.2)
    print(f"\nSIGKILL'd the server; {len(leaked_segments(child.pid))} shm "
          "segments leaked")

    # --- recover, re-push past the checkpoint cut, resume ---------------
    recovered = QuerySession.recover(checkpoint_dir)
    print(f"recovered from checkpoint; {len(leaked_segments(child.pid))} "
          "leaked segments left after reaping")
    handle = serve_in_thread(recovered)
    with StreamClient(handle.address, timeout=15.0) as client:
        with client.subscribe("overloaded", resume_from=seen) as sub:
            # The checkpoint covers every ingested batch; push the rest.
            client.ingest("sightings", tuples[ingested:])
            client.flush()
            while sub.last_seq < len(expected):
                received.extend(sub.recv(timeout=15.0))
    handle.stop()

    drift = max(
        abs(a.distribution("total").mean() - b.distribution("total").mean())
        for a, b in zip(expected, received)
    )
    print(f"\nresumed subscriber: {len(received)} results total "
          f"({len(expected)} expected, none duplicated)")
    print(f"max |mean drift| vs uninterrupted run: {drift:.2e}")
    assert len(received) == len(expected)
    assert drift < 1e-9


if __name__ == "__main__":
    if "--serve" in sys.argv:
        serve_child()
    else:
        main()
