"""Network service quickstart: the query stack over TCP.

Part 1 hosts a :class:`~repro.net.StreamServer` around a
:class:`~repro.service.QuerySession`, then drives it purely through the
wire protocol: declare a stream, register the paper's Q1-style
monitoring query as CQL text, subscribe to its results, and ingest
tuples from a client — exactly what a remote RFID receptor would do.

Part 2 shows the multi-machine sharding transport: a
:class:`~repro.net.ShardServer` hosting one shard of a windowed
aggregate in a separate (forked) process, driven by a
``ShardedEngine(remote_shards=[...])`` coordinator over TCP.

Run with: ``PYTHONPATH=src python examples/network_quickstart.py``
"""

import numpy as np

from repro import QuerySession
from repro.distributions import Gaussian
from repro.net import ShardServer, StreamClient, serve_in_thread
from repro.plan import Stream
from repro.runtime import ShardedEngine
from repro.streams import StreamTuple, TumblingTimeWindow

CATALOG = {f"O{i:02d}": 30.0 + 2.0 * i for i in range(20)}


def make_readings(n=600, seed=11):
    rng = np.random.default_rng(seed)
    return [
        StreamTuple(
            timestamp=i * 0.1,
            values={"tag_id": f"O{int(rng.integers(0, 25)):02d}"},
            uncertain={"x": Gaussian(float(rng.uniform(0.0, 60.0)), 0.8)},
        )
        for i in range(n)
    ]


def part_one_service_over_tcp():
    print("=== Part 1: query service over TCP")
    session = QuerySession(functions={
        "weight_of": lambda tag: CATALOG.get(tag, 0.0),
        "in_catalog": lambda tag: tag in CATALOG,
    })
    handle = serve_in_thread(session)
    print(f"server listening on {handle.address}")

    with StreamClient(handle.address) as client:
        client.declare_stream(
            "rfid", values=("tag_id",), uncertain=("x",), family="gaussian",
            rate_hint=10.0,
        )
        client.register(
            "overload",
            """
            SELECT weight_of(tag_id) AS weight, SUM(weight) AS total
            FROM rfid [RANGE 10 SECONDS SLIDE 10 SECONDS]
            WHERE in_catalog(tag_id)
            HAVING SUM(weight) > 500 WITH CONFIDENCE 0.5
            """,
        )
        with client.subscribe("overload") as subscription:
            sent = client.ingest("rfid", make_readings(), batch_size=128, window=8)
            client.flush()
            print(f"ingested {sent} readings over the wire")
            alerts = subscription.take(3, timeout=15.0)
        for alert in alerts[:3]:
            print(
                f"  window@{alert.value('window_start'):5.1f}s  "
                f"total weight mean={alert.value('total_mean'):8.1f}  "
                f"P(>500)={alert.value('having_probability'):.3f}"
            )
        stats = client.statistics()
        print(f"server processed {stats['tuples_ingested']} tuples, "
              f"{stats['frames_in']} frames")
    handle.stop()


def part_two_remote_shard():
    print("\n=== Part 2: a ShardedEngine shard living in another process")

    def build_query():
        stream = Stream.source(
            "pulses", uncertain=("energy",), family="gaussian", rate_hint=100.0
        )
        stream = stream.where_probably(
            "energy", ">", 30.0, min_probability=0.3, annotate=None
        )
        return stream.window(TumblingTimeWindow(5.0)).aggregate("energy")

    # The shard host constructs the same query (same code) and serves
    # its shard-local segment; here a thread-hosted server stands in
    # for the second machine (spawn_shard_server forks a real process).
    shard_server = ShardServer(build_query()).start_in_thread()
    print(f"remote shard serving on {shard_server.address}")

    rng = np.random.default_rng(23)
    pulses = [
        StreamTuple(
            timestamp=i * 0.02,
            uncertain={"energy": Gaussian(float(rng.uniform(10.0, 90.0)), 3.0)},
        )
        for i in range(4000)
    ]
    with ShardedEngine(
        build_query(),
        workers=2,  # shard 0 forks locally, shard 1 attaches over TCP
        backend="process",
        chunk_size=512,
        remote_shards=[shard_server.address],
    ) as engine:
        engine.push_many("pulses", pulses)
        results = engine.finish()
        transports = {
            shard: report.transport
            for shard, report in engine.shard_statistics().items()
        }
        print(f"shard transports: {transports}")
        for result in results[:3]:
            dist = result.distribution("sum_energy")
            print(
                f"  window@{result.value('window_start'):5.1f}s  "
                f"SUM(energy) ~ N({dist.mean():8.1f}, {dist.std():6.2f})"
            )
    shard_server.close()


if __name__ == "__main__":
    part_one_service_over_tcp()
    part_two_remote_shard()
