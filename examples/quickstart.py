"""Quickstart: uncertain tuples, probabilistic selection, uncertain aggregation.

This walks through the core ideas of the paper on a tiny synthetic
stream, with no application substrate involved:

1. build a stream of tuples whose ``value`` attribute is a continuous
   random variable (a Gaussian mixture per tuple),
2. filter the stream with a probabilistic predicate,
3. aggregate a tumbling window with the characteristic-function
   approximation (the paper's fastest accurate algorithm), and
4. report the result as a full distribution, a confidence region, and
   error bounds.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    CFApproximationSum,
    CFInversionSum,
    Comparison,
    ProbabilisticSelect,
    SummarizeResults,
    UncertainAggregate,
    UncertainPredicate,
    summarize,
)
from repro.distributions import variance_distance
from repro.streams import CollectSink, StreamEngine, TumblingCountWindow
from repro.workloads import gmm_tuple_stream


def main() -> None:
    # 1. A stream of 300 tuples; every tuple carries its own Gaussian-mixture
    #    distribution for the uncertain attribute "value".
    stream = gmm_tuple_stream(300, mean_range=(0.0, 100.0), rng=7)
    print(f"generated {len(stream)} uncertain tuples")
    example = stream[0].distribution("value")
    print(
        f"first tuple:  mean={example.mean():.2f}  std={example.std():.2f}  "
        f"components={example.n_components}"
    )

    # 2./3. Wire a small plan: probabilistic selection -> windowed SUM -> summary.
    select = ProbabilisticSelect(
        UncertainPredicate("value", Comparison.GREATER, 20.0),
        min_probability=0.5,
    )
    aggregate = UncertainAggregate(
        TumblingCountWindow(50), "value", CFApproximationSum(), function="sum"
    )
    summarise = SummarizeResults("sum_value", confidence=0.95, keep_distribution=True)
    sink = CollectSink()

    # batch_size selects the batch-at-a-time execution path: push_many
    # chunks the stream into TupleBatch containers and the operators run
    # their vectorised kernels (see docs/architecture.md).
    engine = StreamEngine(batch_size=128)
    engine.add_source("in", select)
    select.connect(aggregate)
    aggregate.connect(summarise)
    summarise.connect(sink)

    engine.push_many("in", stream)
    engine.finish()

    print("\nper-box statistics (batch path):")
    for stats in engine.statistics(detailed=True):
        print(
            f"  {stats.name:<22} in={stats.tuples_in:<5} out={stats.tuples_out:<4} "
            f"batches={stats.batches_in}"
        )

    # 4. Inspect the results.
    print(f"\n{len(sink.results)} window results "
          f"(each summarising 50 tuples that passed the probabilistic filter)")
    print(f"{'window end':>10} {'mean':>10} {'std':>8} {'95% confidence region':>28}")
    for result in sink.results:
        dist = result.distribution("sum_value")
        summary = summarize(dist, 0.95)
        print(
            f"{result.value('window_end'):>10.2f} {summary.mean:>10.1f} {summary.std:>8.2f} "
            f"[{summary.region[0]:>10.1f}, {summary.region[1]:>10.1f}]"
        )

    # How good is the fast approximation?  Compare the last window against the
    # exact CF-inversion result.
    last_window = [t.distribution("value") for t in stream[-50:]]
    exact = CFInversionSum().result_distribution(last_window)
    approx = CFApproximationSum().result_distribution(last_window)
    print(
        "\nvariance distance between CF approximation and exact CF inversion "
        f"for the final window: {variance_distance(exact, approx):.5f}"
    )


if __name__ == "__main__":
    main()
