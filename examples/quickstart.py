"""Quickstart: uncertain tuples, probabilistic selection, uncertain aggregation.

This walks through the core ideas of the paper on a tiny synthetic
stream, using the declarative query API (:mod:`repro.plan`):

1. build a stream of tuples whose ``value`` attribute is a continuous
   random variable (a Gaussian mixture per tuple),
2. declare a query: probabilistic filter -> windowed SUM -> summary,
3. let the planner rewrite it (the filter fuses into the aggregate's
   batch kernel) and pick the execution mode, and
4. report the result as a full distribution, a confidence region, and
   error bounds.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import CFApproximationSum, CFInversionSum, summarize
from repro.distributions import variance_distance
from repro.plan import Stream
from repro.streams import TumblingCountWindow
from repro.workloads import gmm_tuple_stream


def main() -> None:
    # 1. A stream of 300 tuples; every tuple carries its own Gaussian-mixture
    #    distribution for the uncertain attribute "value".
    stream = gmm_tuple_stream(300, mean_range=(0.0, 100.0), rng=7)
    print(f"generated {len(stream)} uncertain tuples")
    example = stream[0].distribution("value")
    print(
        f"first tuple:  mean={example.mean():.2f}  std={example.std():.2f}  "
        f"components={example.n_components}"
    )

    # 2. Declare the query.  The source declares its uncertain attribute
    #    and distribution family, which feeds the planner's cost model;
    #    the SUM strategy is pinned to the CF approximation here (the
    #    paper's fastest accurate algorithm) -- drop the strategy
    #    argument to let the cost model choose it from the window size.
    query = (
        Stream.source("in", uncertain=("value",), family="gmm")
        .where_probably("value", ">", 20.0, min_probability=0.5)
        .window(TumblingCountWindow(50))
        .aggregate("value", function="sum", strategy=CFApproximationSum())
        .summarize("sum_value", confidence=0.95, keep_distribution=True)
        .compile()
    )

    # 3. What did the planner do?  The probabilistic filter is fused into
    #    the aggregate's window kernel, and batch execution is chosen
    #    because most boxes run vectorised kernels.
    print("\n" + query.explain())

    query.push_many("in", stream)
    results = query.finish()

    print("\nper-box statistics (batch path):")
    for stats in query.statistics(detailed=True):
        print(
            f"  {stats.name:<32} in={stats.tuples_in:<5} out={stats.tuples_out:<4} "
            f"batches={stats.batches_in}"
        )

    # 4. Inspect the results.
    print(f"\n{len(results)} window results "
          f"(each summarising 50 tuples that passed the probabilistic filter)")
    print(f"{'window end':>10} {'mean':>10} {'std':>8} {'95% confidence region':>28}")
    for result in results:
        dist = result.distribution("sum_value")
        summary = summarize(dist, 0.95)
        print(
            f"{result.value('window_end'):>10.2f} {summary.mean:>10.1f} {summary.std:>8.2f} "
            f"[{summary.region[0]:>10.1f}, {summary.region[1]:>10.1f}]"
        )

    # How good is the fast approximation?  Compare the last window against the
    # exact CF-inversion result.
    last_window = [t.distribution("value") for t in stream[-50:]]
    exact = CFInversionSum().result_distribution(last_window)
    approx = CFApproximationSum().result_distribution(last_window)
    print(
        "\nvariance distance between CF approximation and exact CF inversion "
        f"for the final window: {variance_distance(exact, approx):.5f}"
    )


if __name__ == "__main__":
    main()
