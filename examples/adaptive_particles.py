"""Adaptive speed/accuracy control of particle-filter inference (Section 4.2).

The RFID T operator measures its own inference accuracy online using
reference shelf tags (whose true locations are known) and adjusts the
per-object particle count with a feedback controller: double until the
accuracy requirement is met, then walk back down to the smallest
sufficient count.

Run with:  python examples/adaptive_particles.py
"""

from __future__ import annotations

from repro.inference import ParticleCountController
from repro.rfid import (
    DetectionModel,
    MobileReaderSimulator,
    RFIDTransformOperator,
    WarehouseWorld,
)


def main() -> None:
    detection = DetectionModel(midpoint=10.0, steepness=0.6, max_rate=0.85)
    world = WarehouseWorld(
        width=50.0, height=25.0, shelf_grid=(5, 3), n_objects=30, move_rate=0.0, rng=5
    )
    simulator = MobileReaderSimulator(
        world, detection=detection, lane_spacing=6.0, speed=6.0, scan_interval=0.25, rng=6
    )
    controller = ParticleCountController(
        target_error=2.5, initial_count=16, min_count=8, max_count=256, decrease_step=32
    )
    operator = RFIDTransformOperator(
        world,
        detection=detection,
        n_particles=16,
        emit_mode="none",
        track_reference_tags=True,
        adaptive_controller=controller,
        rng=7,
    )

    print("running the mobile-reader sweep with adaptive particle control ...")
    print(f"accuracy requirement: {controller.target_error:.1f} ft on reference shelf tags\n")
    print(f"{'reading':>8} {'reference error (ft)':>21} {'particles/object':>17} {'phase':>11}")
    for i, reading in enumerate(simulator.readings(400)):
        list(operator.ingest(reading, reading.timestamp))
        if i % 40 == 0:
            error = operator.accuracy_monitor.current_error()
            error_text = f"{error:.2f}" if error is not None else "n/a"
            print(f"{i:>8d} {error_text:>21} {controller.count:>17d} {controller.phase:>11}")

    print(
        f"\ncontroller settled on {controller.count} particles per object "
        f"(phase: {controller.phase})"
    )
    print(f"final mean location error over all objects: {operator.mean_location_error():.2f} ft")


if __name__ == "__main__":
    main()
