"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file
exists so that ``python setup.py develop`` keeps working in offline
environments that lack the ``wheel`` package required for PEP 660
editable installs.
"""

from setuptools import setup

setup()
