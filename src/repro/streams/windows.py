"""Window specifications and window assignment for stream operators.

The paper's queries use CQL-style windows: ``[Now]``, ``[Range 5
seconds]`` and tumbling count windows such as the 100-tuple window of
Table 2.  Windowed operators (aggregation, join, group-by) delegate
window bookkeeping to the classes defined here so every operator shares
one tested implementation of window semantics.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .tuples import StreamTuple

__all__ = [
    "WindowSpec",
    "TumblingCountWindow",
    "TumblingTimeWindow",
    "SlidingTimeWindow",
    "NowWindow",
    "WindowBuffer",
]


@dataclass(frozen=True)
class WindowClose:
    """A closed window: its boundaries and the tuples it contains."""

    start: float
    end: float
    items: Tuple[StreamTuple, ...]


class WindowSpec(abc.ABC):
    """Strategy describing how tuples are grouped into windows."""

    @abc.abstractmethod
    def new_buffer(self) -> WindowBuffer:
        """Return a fresh stateful buffer implementing this window."""


class WindowBuffer(abc.ABC):
    """Stateful buffer that accumulates tuples and emits closed windows."""

    @abc.abstractmethod
    def add(self, item: StreamTuple) -> List[WindowClose]:
        """Add a tuple and return any windows that closed as a result."""

    def add_many(self, items: Iterable[StreamTuple]) -> List[WindowClose]:
        """Add a sequence of tuples and return all windows they closed.

        Default: loop over :meth:`add`.  Buffers with cheap bulk
        insertion (count and tumbling-time windows) override this for
        the batch execution path; the closed windows must be identical
        to those the per-tuple loop would produce.  ``items`` may be
        any tuple iterable, including a
        :class:`~repro.streams.batch.TupleBatch`.
        """
        closed: List[WindowClose] = []
        add = self.add
        for item in items:
            closed.extend(add(item))
        return closed

    def extend(self, items: Iterable[StreamTuple]) -> List[WindowClose]:
        """Alias for :meth:`add_many` (list-like bulk-insertion name)."""
        return self.add_many(items)

    @abc.abstractmethod
    def flush(self) -> List[WindowClose]:
        """Close and return any remaining partial windows (end of stream)."""

    def state_snapshot(self) -> dict:
        """Return the buffer's open-window state for checkpointing.

        Default: stateless (``_NowBuffer``).  Buffers that hold tuples
        between calls override this; the dict's ``items`` lists are
        serialized tuple-exact by the checkpoint codec, so restoring and
        continuing is indistinguishable from never having stopped.
        """
        return {"kind": "now"}

    def state_restore(self, state: dict) -> None:
        """Install a state previously returned by :meth:`state_snapshot`."""
        if state.get("kind") != "now":
            raise ValueError(f"cannot restore window buffer state {state.get('kind')!r}")


# ----------------------------------------------------------------------
# Tumbling count window (Table 2: "tumbling window of size 100 tuples")
# ----------------------------------------------------------------------
class TumblingCountWindow(WindowSpec):
    """Non-overlapping windows of a fixed number of tuples."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"window size must be at least 1, got {size}")
        self.size = int(size)

    def new_buffer(self) -> WindowBuffer:
        return _CountBuffer(self.size)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TumblingCountWindow(size={self.size})"


class _CountBuffer(WindowBuffer):
    def __init__(self, size: int):
        self._size = size
        self._items: List[StreamTuple] = []

    def add(self, item: StreamTuple) -> List[WindowClose]:
        self._items.append(item)
        if len(self._items) < self._size:
            return []
        window = WindowClose(
            start=self._items[0].timestamp,
            end=self._items[-1].timestamp,
            items=tuple(self._items),
        )
        self._items = []
        return [window]

    def add_many(self, items: Iterable[StreamTuple]) -> List[WindowClose]:
        self._items.extend(items)
        if len(self._items) < self._size:
            return []
        closed: List[WindowClose] = []
        size = self._size
        pending = self._items
        for start in range(0, len(pending) - size + 1, size):
            chunk = tuple(pending[start : start + size])
            closed.append(
                WindowClose(start=chunk[0].timestamp, end=chunk[-1].timestamp, items=chunk)
            )
        self._items = pending[len(closed) * size :]
        return closed

    def flush(self) -> List[WindowClose]:
        if not self._items:
            return []
        window = WindowClose(
            start=self._items[0].timestamp,
            end=self._items[-1].timestamp,
            items=tuple(self._items),
        )
        self._items = []
        return [window]

    def state_snapshot(self) -> dict:
        return {"kind": "count", "items": list(self._items)}

    def state_restore(self, state: dict) -> None:
        if state.get("kind") != "count":
            raise ValueError(f"cannot restore window buffer state {state.get('kind')!r}")
        self._items = list(state["items"])


# ----------------------------------------------------------------------
# Tumbling time window (Q1: "[Range 5 seconds]" grouped per window)
# ----------------------------------------------------------------------
class TumblingTimeWindow(WindowSpec):
    """Non-overlapping windows of fixed duration, aligned to the origin."""

    def __init__(self, length: float, origin: float = 0.0):
        if length <= 0:
            raise ValueError(f"window length must be positive, got {length}")
        self.length = float(length)
        self.origin = float(origin)

    def new_buffer(self) -> WindowBuffer:
        return _TimeBuffer(self.length, self.origin)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TumblingTimeWindow(length={self.length})"


class _TimeBuffer(WindowBuffer):
    def __init__(self, length: float, origin: float):
        self._length = length
        self._origin = origin
        self._items: List[StreamTuple] = []
        self._window_index: Optional[int] = None

    def _index_of(self, timestamp: float) -> int:
        return int((timestamp - self._origin) // self._length)

    def _close_current(self) -> WindowClose:
        assert self._window_index is not None
        start = self._origin + self._window_index * self._length
        window = WindowClose(start=start, end=start + self._length, items=tuple(self._items))
        self._items = []
        return window

    def add(self, item: StreamTuple) -> List[WindowClose]:
        idx = self._index_of(item.timestamp)
        closed: List[WindowClose] = []
        if self._window_index is None:
            self._window_index = idx
        elif idx != self._window_index:
            if idx < self._window_index:
                raise ValueError(
                    "out-of-order tuple arrived before the current tumbling window"
                )
            closed.append(self._close_current())
            self._window_index = idx
        self._items.append(item)
        return closed

    def add_many(self, items: Iterable[StreamTuple]) -> List[WindowClose]:
        """Bulk insertion: one vectorised bucketing pass per batch.

        Window indices for the whole batch come from a single numpy
        floor-division over the timestamp column, and tuples are
        appended run-by-run; the closed windows are identical to the
        per-tuple :meth:`add` loop (which remains the fallback for
        out-of-order input so the error is raised at the exact
        offending tuple).
        """
        from .batch import TupleBatch

        if isinstance(items, TupleBatch):
            rows = items.to_tuples()
            timestamps = items.timestamps()
        else:
            rows = list(items)
            timestamps = np.fromiter(
                (t.timestamp for t in rows), dtype=np.float64, count=len(rows)
            )
        if not rows:
            return []
        # Same arithmetic as _index_of: floor((t - origin) / length).
        indices = np.floor_divide(timestamps - self._origin, self._length).astype(np.int64)
        out_of_order = bool(np.any(np.diff(indices) < 0)) or (
            self._window_index is not None and int(indices[0]) < self._window_index
        )
        if out_of_order:
            closed: List[WindowClose] = []
            for item in rows:
                closed.extend(self.add(item))
            return closed
        closed = []
        run_starts = [0] + (np.flatnonzero(np.diff(indices)) + 1).tolist()
        run_starts.append(len(rows))
        for begin, end in zip(run_starts, run_starts[1:]):
            idx = int(indices[begin])
            if self._window_index is None:
                self._window_index = idx
            elif idx != self._window_index:
                closed.append(self._close_current())
                self._window_index = idx
            self._items.extend(rows[begin:end])
        return closed

    def flush(self) -> List[WindowClose]:
        if not self._items:
            return []
        return [self._close_current()]

    def state_snapshot(self) -> dict:
        return {
            "kind": "time",
            "items": list(self._items),
            "window_index": self._window_index,
        }

    def state_restore(self, state: dict) -> None:
        if state.get("kind") != "time":
            raise ValueError(f"cannot restore window buffer state {state.get('kind')!r}")
        self._items = list(state["items"])
        index = state["window_index"]
        self._window_index = None if index is None else int(index)


# ----------------------------------------------------------------------
# Sliding time window (Q2: "[Range 3 seconds]" join windows)
# ----------------------------------------------------------------------
class SlidingTimeWindow(WindowSpec):
    """A window keeping every tuple within ``length`` of the newest tuple.

    This models the CQL ``[Range t seconds]`` construct used on join
    inputs: at any point the window contains the tuples whose timestamps
    are within ``length`` of the current stream time.
    """

    def __init__(self, length: float):
        if length <= 0:
            raise ValueError(f"window length must be positive, got {length}")
        self.length = float(length)

    def new_buffer(self) -> WindowBuffer:
        return _SlidingBuffer(self.length)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SlidingTimeWindow(length={self.length})"


class _SlidingBuffer(WindowBuffer):
    """Sliding buffer; emits the window content after every insertion."""

    def __init__(self, length: float):
        self._length = length
        self._items: List[StreamTuple] = []

    def current(self, now: float) -> List[StreamTuple]:
        """Return the tuples currently inside the window at time ``now``."""
        cutoff = now - self._length
        self._items = [t for t in self._items if t.timestamp > cutoff]
        return list(self._items)

    def add(self, item: StreamTuple) -> List[WindowClose]:
        self._items.append(item)
        content = self.current(item.timestamp)
        return [
            WindowClose(
                start=item.timestamp - self._length,
                end=item.timestamp,
                items=tuple(content),
            )
        ]

    def flush(self) -> List[WindowClose]:
        return []

    def state_snapshot(self) -> dict:
        return {"kind": "sliding", "items": list(self._items)}

    def state_restore(self, state: dict) -> None:
        if state.get("kind") != "sliding":
            raise ValueError(f"cannot restore window buffer state {state.get('kind')!r}")
        self._items = list(state["items"])


# ----------------------------------------------------------------------
# Now window (Q1 inner query: "[Now]")
# ----------------------------------------------------------------------
class NowWindow(WindowSpec):
    """A window containing only the most recent tuple."""

    def new_buffer(self) -> WindowBuffer:
        return _NowBuffer()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "NowWindow()"


class _NowBuffer(WindowBuffer):
    def add(self, item: StreamTuple) -> List[WindowClose]:
        return [WindowClose(start=item.timestamp, end=item.timestamp, items=(item,))]

    def flush(self) -> List[WindowClose]:
        return []


def iter_windows(spec: WindowSpec, items: Sequence[StreamTuple]) -> Iterator[WindowClose]:
    """Run a sequence of tuples through a window spec and yield closed windows.

    Convenience helper for batch-style tests and benchmarks.
    """
    buffer = spec.new_buffer()
    for item in items:
        yield from buffer.add(item)
    yield from buffer.flush()
