"""Columnar batches of stream tuples for batch-at-a-time execution.

The tuple-at-a-time engine pays Python call overhead for every tuple at
every box.  A :class:`TupleBatch` amortises that overhead: the engine
moves whole batches between boxes and operators that can vectorise
(probabilistic selection over Gaussians, moment accumulation for the
CF-approximation sum) read *columnar views* of the batch -- numpy
arrays built lazily and cached on first access -- instead of touching
each :class:`~repro.streams.tuples.StreamTuple` individually.

A batch is an ordered, immutable-by-convention sequence of tuples; the
row objects themselves are shared, never copied, so converting between
the batch and tuple representations is cheap (``from_tuples`` /
``to_tuples``).  Columnar caches are invalidated never -- batches are
treated as frozen once handed to the engine, mirroring the frozen
:class:`StreamTuple` semantics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.distributions import Distribution, Gaussian

from .tuples import StreamTuple

__all__ = ["TupleBatch"]

#: Sentinel distinguishing "not cached yet" from a cached ``None``.
_UNSET = object()


class TupleBatch:
    """An ordered batch of :class:`StreamTuple` rows with columnar views.

    Parameters
    ----------
    tuples:
        The rows of the batch, in stream order.  The sequence is copied
        into an internal list; the tuples themselves are shared.
    """

    __slots__ = (
        "_tuples",
        "_timestamps",
        "_gaussian_cols",
        "_moment_cols",
        "_value_cols",
        "trace_id",
        "t_ingest",
    )

    def __init__(self, tuples: Iterable[StreamTuple] = ()):
        self._tuples: List[StreamTuple] = list(tuples)
        self._timestamps: Optional[np.ndarray] = None
        self._gaussian_cols: Dict[str, Any] = {}
        self._moment_cols: Dict[str, Any] = {}
        self._value_cols: Dict[str, np.ndarray] = {}
        #: Trace context (see :mod:`repro.obs.trace`), stamped at ingest
        #: and preserved by the wire codecs.  Transport-level metadata:
        #: derived batches (``select``/``chunks``/``concat``) start
        #: unstamped — the runtime re-stamps at each shipping boundary.
        self.trace_id: Optional[int] = None
        self.t_ingest: Optional[float] = None

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @classmethod
    def from_tuples(cls, tuples: Iterable[StreamTuple]) -> TupleBatch:
        """Build a batch from an iterable of tuples (stream order preserved)."""
        return cls(tuples)

    def to_tuples(self) -> List[StreamTuple]:
        """Return the rows as a new list (the tuples themselves are shared)."""
        return list(self._tuples)

    @property
    def tuples(self) -> Sequence[StreamTuple]:
        """Read-only view of the rows."""
        return tuple(self._tuples)

    @staticmethod
    def concat(batches: Iterable["TupleBatch"]) -> TupleBatch:
        """Concatenate several batches into one (stream order preserved)."""
        rows: List[StreamTuple] = []
        for batch in batches:
            rows.extend(batch._tuples)
        return TupleBatch(rows)

    def chunks(self, size: int) -> Iterator["TupleBatch"]:
        """Yield consecutive sub-batches of at most ``size`` rows."""
        if size < 1:
            raise ValueError(f"chunk size must be at least 1, got {size}")
        for start in range(0, len(self._tuples), size):
            yield TupleBatch(self._tuples[start : start + size])

    def select(self, mask: Union[Sequence[bool], np.ndarray]) -> TupleBatch:
        """Return the rows where ``mask`` is truthy (boolean row filter)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self._tuples),):
            raise ValueError(
                f"mask length {mask.shape} does not match batch length {len(self._tuples)}"
            )
        return TupleBatch([t for t, keep in zip(self._tuples, mask) if keep])

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[StreamTuple]:
        return iter(self._tuples)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return TupleBatch(self._tuples[index])
        return self._tuples[index]

    def __bool__(self) -> bool:
        return bool(self._tuples)

    # ------------------------------------------------------------------
    # Columnar views (lazy, cached)
    # ------------------------------------------------------------------
    def timestamps(self) -> np.ndarray:
        """Return the event times of all rows as a float64 array."""
        if self._timestamps is None:
            self._timestamps = np.fromiter(
                (t.timestamp for t in self._tuples), dtype=np.float64, count=len(self._tuples)
            )
        return self._timestamps

    def value_column(self, name: str) -> np.ndarray:
        """Return deterministic attribute ``name`` as an object array.

        Raises ``KeyError`` (like :meth:`StreamTuple.value`) if any row
        lacks the attribute.
        """
        cached = self._value_cols.get(name)
        if cached is None:
            cached = np.empty(len(self._tuples), dtype=object)
            for i, item in enumerate(self._tuples):
                cached[i] = item.values[name]
            self._value_cols[name] = cached
        return cached

    def numeric_column(self, name: str) -> np.ndarray:
        """Return deterministic attribute ``name`` as a float64 array."""
        return np.asarray(
            [float(item.values[name]) for item in self._tuples], dtype=np.float64
        )

    def uncertain_column(self, name: str) -> np.ndarray:
        """Return uncertain attribute ``name`` as an object array of distributions."""
        out = np.empty(len(self._tuples), dtype=object)
        for i, item in enumerate(self._tuples):
            out[i] = item.uncertain[name]
        return out

    def gaussian_params(self, name: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Return ``(mu, sigma)`` arrays when *every* row carries a scalar
        Gaussian for uncertain attribute ``name``, else ``None``.

        This is the fast path for vectorised kernels: one attribute-access
        pass builds two float64 columns, after which tail probabilities
        and moment sums are single numpy expressions.
        """
        cached = self._gaussian_cols.get(name, _UNSET)
        if cached is not _UNSET:
            return cached
        result: Optional[Tuple[np.ndarray, np.ndarray]] = None
        try:
            dists = [item.uncertain[name] for item in self._tuples]
        except KeyError:
            dists = None
        if dists is not None and all(isinstance(dist, Gaussian) for dist in dists):
            result = (
                np.asarray([dist.mu for dist in dists], dtype=np.float64),
                np.asarray([dist.sigma for dist in dists], dtype=np.float64),
            )
        self._gaussian_cols[name] = result
        return result

    def moments(self, name: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Return ``(means, variances)`` columns for uncertain attribute ``name``.

        Gaussians contribute their parameters directly; other
        distributions fall back to their ``mean()`` / ``variance()``
        methods.  Returns ``None`` when any row lacks the attribute
        entirely (the caller decides how to promote or fail).
        """
        cached = self._moment_cols.get(name, _UNSET)
        if cached is not _UNSET:
            return cached
        result: Optional[Tuple[np.ndarray, np.ndarray]] = None
        try:
            dists = [item.uncertain[name] for item in self._tuples]
        except KeyError:
            dists = None
        if dists is not None:
            try:
                # All-Gaussian fast path: parameters by attribute access.
                columns = (
                    [dist.mu for dist in dists],
                    [dist.sigma * dist.sigma for dist in dists],
                )
            except AttributeError:
                columns = None
            if columns is None:
                means: List[float] = []
                variances: List[float] = []
                for dist in dists:
                    if isinstance(dist, Gaussian):
                        means.append(dist.mu)
                        variances.append(dist.sigma * dist.sigma)
                    else:
                        means.append(float(np.asarray(dist.mean()).ravel()[0]))
                        variances.append(float(np.asarray(dist.variance()).ravel()[0]))
                columns = (means, variances)
            result = (
                np.asarray(columns[0], dtype=np.float64),
                np.asarray(columns[1], dtype=np.float64),
            )
        self._moment_cols[name] = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"TupleBatch(n={len(self._tuples)})"
