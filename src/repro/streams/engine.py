"""Push-based execution engine for box-arrow query plans.

The :class:`StreamEngine` owns a set of operators (boxes) and the
connections between them (arrows), accepts tuples from named sources,
and pushes each tuple through the plan depth-first.  The engine is
single-threaded and deterministic: the paper's performance numbers come
from algorithmic choices inside the operators, not from parallel
execution, so a simple engine keeps experiments reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .operators.base import Operator, OperatorError
from .tuples import StreamTuple

__all__ = ["StreamEngine", "EngineError"]


class EngineError(Exception):
    """Raised for plan-construction or execution errors."""


class StreamEngine:
    """Executes a DAG of operators over pushed tuples.

    Typical use::

        engine = StreamEngine()
        engine.add_source("rfid", t_operator)
        t_operator.connect(select)
        select.connect(aggregate)
        aggregate.connect(sink)
        engine.register(select, aggregate, sink)

        for item in stream:
            engine.push("rfid", item)
        engine.finish()
    """

    def __init__(self) -> None:
        self._sources: Dict[str, Operator] = {}
        self._operators: List[Operator] = []

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def add_source(self, name: str, operator: Operator) -> Operator:
        """Register ``operator`` as the entry point for source ``name``."""
        if name in self._sources:
            raise EngineError(f"source {name!r} is already registered")
        self._sources[name] = operator
        self.register(operator)
        return operator

    def register(self, *operators: Operator) -> None:
        """Register operators so the engine can flush and inspect them."""
        for op in operators:
            if op not in self._operators:
                self._operators.append(op)

    def _discover(self) -> List[Operator]:
        """Return all operators reachable from sources plus registered ones."""
        seen: List[Operator] = []
        queue = deque(self._operators)
        while queue:
            op = queue.popleft()
            if op in seen:
                continue
            seen.append(op)
            queue.extend(op.downstream)
        return seen

    @property
    def operators(self) -> Sequence[Operator]:
        return tuple(self._discover())

    def validate(self) -> None:
        """Check that the plan is a DAG (no operator reachable from itself)."""
        for start in self._discover():
            stack = list(start.downstream)
            visited = set()
            while stack:
                op = stack.pop()
                if op is start:
                    raise EngineError(f"cycle detected through operator {start.name!r}")
                if id(op) in visited:
                    continue
                visited.add(id(op))
                stack.extend(op.downstream)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def push(self, source: str, item: StreamTuple) -> None:
        """Push one tuple into the plan via the named source."""
        try:
            entry = self._sources[source]
        except KeyError as exc:
            raise EngineError(f"unknown source {source!r}") from exc
        self._propagate(entry, item)

    def push_many(self, source: str, items: Iterable[StreamTuple]) -> None:
        """Push a sequence of tuples into the plan via the named source."""
        for item in items:
            self.push(source, item)

    def _propagate(self, operator: Operator, item: StreamTuple) -> None:
        try:
            outputs = operator.accept(item)
        except OperatorError:
            raise
        for out in outputs:
            for downstream in operator.downstream:
                self._propagate(downstream, out)

    def finish(self) -> None:
        """Flush every operator in topological order (end of stream)."""
        for op in self._topological_order():
            outputs = op.finish()
            for out in outputs:
                for downstream in op.downstream:
                    self._propagate(downstream, out)

    def _topological_order(self) -> List[Operator]:
        ops = self._discover()
        indegree: Dict[int, int] = {id(op): 0 for op in ops}
        by_id: Dict[int, Operator] = {id(op): op for op in ops}
        for op in ops:
            for nxt in op.downstream:
                indegree[id(nxt)] = indegree.get(id(nxt), 0) + 1
                by_id.setdefault(id(nxt), nxt)
        queue = deque(op for op in ops if indegree[id(op)] == 0)
        order: List[Operator] = []
        while queue:
            op = queue.popleft()
            order.append(op)
            for nxt in op.downstream:
                indegree[id(nxt)] -= 1
                if indegree[id(nxt)] == 0:
                    queue.append(nxt)
        if len(order) != len(by_id):
            raise EngineError("cannot flush a plan containing cycles")
        return order

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def statistics(self) -> List[Tuple[str, int, int]]:
        """Return ``(operator name, tuples in, tuples out)`` for every box."""
        return [(op.name, op.tuples_in, op.tuples_out) for op in self._discover()]

    def reset(self) -> None:
        """Reset per-operator counters (does not clear operator state)."""
        for op in self._discover():
            op.reset_counters()


def run_plan(
    source_operator: Operator,
    items: Iterable[StreamTuple],
    sink: Optional[Operator] = None,
) -> List[StreamTuple]:
    """Convenience helper: run ``items`` through a linear plan and collect results.

    If ``sink`` is None, a :class:`~repro.streams.operators.basic.CollectSink`
    is appended to the last operator reachable from ``source_operator``.
    """
    from .operators.basic import CollectSink

    engine = StreamEngine()
    engine.add_source("input", source_operator)
    if sink is None:
        # Find the terminal operator by walking single-output chains.
        tail = source_operator
        seen = {id(tail)}
        while tail.downstream:
            if len(tail.downstream) != 1:
                raise EngineError("run_plan requires a linear plan or an explicit sink")
            tail = tail.downstream[0]
            if id(tail) in seen:
                raise EngineError("cycle detected in plan")
            seen.add(id(tail))
        sink = CollectSink()
        tail.connect(sink)
    engine.push_many("input", items)
    engine.finish()
    if not isinstance(sink, Operator) or not hasattr(sink, "results"):
        raise EngineError("sink must expose a 'results' list")
    return list(sink.results)  # type: ignore[attr-defined]
