"""Push-based execution engine for box-arrow query plans.

The :class:`StreamEngine` owns a set of operators (boxes) and the
connections between them (arrows), accepts tuples from named sources,
and pushes data through the plan with an *iterative* worklist scheduler
(no recursion, so arbitrarily deep plans execute without hitting the
interpreter's recursion limit).  The engine is single-threaded and
deterministic: the paper's performance numbers come from algorithmic
choices inside the operators, not from parallel execution, so a simple
engine keeps experiments reproducible.

Two execution paths share the same plans and operators:

* **tuple-at-a-time** (:meth:`StreamEngine.push`): each tuple traverses
  the plan depth-first, exactly mirroring the original recursive
  semantics.  This is the correctness baseline.
* **batch-at-a-time** (:meth:`StreamEngine.push_batch`, or
  :meth:`StreamEngine.push_many` on an engine constructed with a
  ``batch_size``): whole :class:`~repro.streams.batch.TupleBatch`
  containers move between boxes, amortising per-call overhead and
  letting operators run vectorised kernels
  (:meth:`~repro.streams.operators.base.Operator.process_batch`).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs

from .batch import TupleBatch
from .operators.base import Operator
from .tuples import StreamTuple

__all__ = ["StreamEngine", "EngineError", "OperatorStats", "run_plan"]

_engine_scopes = itertools.count(1)


class EngineError(Exception):
    """Raised for plan-construction or execution errors."""


@dataclass(frozen=True)
class OperatorStats:
    """Detailed per-box statistics surfaced by :meth:`StreamEngine.statistics`."""

    name: str
    tuples_in: int
    tuples_out: int
    batches_in: int
    seconds: float

    @property
    def tuples_per_second(self) -> float:
        """Input throughput of the box (0.0 when no time was recorded)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.tuples_in / self.seconds


class StreamEngine:
    """Executes a DAG of operators over pushed tuples or batches.

    Typical use::

        engine = StreamEngine(batch_size=1024)
        engine.add_source("rfid", t_operator)
        t_operator.connect(select)
        select.connect(aggregate)
        aggregate.connect(sink)
        engine.register(select, aggregate, sink)

        engine.push_many("rfid", stream)   # chunked into batches
        engine.finish()

    Parameters
    ----------
    batch_size:
        When set, :meth:`push_many` chunks its input into
        :class:`TupleBatch` containers of this size and runs the batch
        path; when ``None`` (default) :meth:`push_many` runs the
        tuple-at-a-time path.  :meth:`push` and :meth:`push_batch`
        always use their respective paths regardless of this setting.
    """

    def __init__(
        self, batch_size: Optional[int] = None, obs_scope: Optional[str] = None
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise EngineError(f"batch_size must be at least 1, got {batch_size}")
        #: Scope label under which this engine's operators appear in the
        #: :mod:`repro.obs` registry (METRICS snapshots, Prometheus).
        self.obs_scope = obs_scope or f"engine-{next(_engine_scopes)}"
        self._sources: Dict[str, Operator] = {}
        self._operators: List[Operator] = []
        self._operator_ids: set = set()
        #: Operators unregistered while a propagation may still hold
        #: scheduled (operator, tuple) pairs pointing at them.  The
        #: propagation loops skip quarantined boxes so a query dropped
        #: from inside a sink callback stops receiving tuples
        #: *immediately*, not after the in-flight push drains.  Keyed by
        #: id() but holding the operator object, so a quarantined id
        #: cannot be recycled by the allocator while the entry lives;
        #: entries are cleared at the next top-level push.
        self._detached: Dict[int, Operator] = {}
        #: Propagation re-entrancy depth: a push issued from inside a
        #: sink callback must not clear the quarantine the outer
        #: propagation still relies on.
        self._propagation_depth = 0
        self.batch_size = batch_size

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def add_source(self, name: str, operator: Operator) -> Operator:
        """Register ``operator`` as the entry point for source ``name``."""
        if name in self._sources:
            raise EngineError(f"source {name!r} is already registered")
        self._sources[name] = operator
        self.register(operator)
        return operator

    def register(self, *operators: Operator) -> None:
        """Register operators so the engine can flush and inspect them."""
        registry = obs.get_registry()
        for op in operators:
            self._detached.pop(id(op), None)
            if id(op) not in self._operator_ids:
                self._operator_ids.add(id(op))
                self._operators.append(op)
                registry.operator_view(self.obs_scope, op)

    def unregister(self, *operators: Operator) -> None:
        """Forget operators (dynamic detach of a dropped query's boxes).

        Only removes the operators from the engine's bookkeeping; the
        caller is responsible for first disconnecting any arrows that
        still point at them from surviving operators (otherwise
        :meth:`_discover` finds them again through the graph).

        Takes effect immediately even mid-propagation: when a query is
        dropped from inside a result callback while ``push_many`` is
        running, tuples already scheduled for the detached boxes are
        discarded rather than delivered (the boxes are *quarantined*
        until the next top-level push).
        """
        doomed = {id(op) for op in operators}
        self._operator_ids -= doomed
        self._operators = [op for op in self._operators if id(op) not in doomed]
        for op in operators:
            self._detached[id(op)] = op

    def remove_source(self, name: str) -> Operator:
        """Drop a named source and unregister its entry operator."""
        try:
            entry = self._sources.pop(name)
        except KeyError as exc:
            raise EngineError(f"unknown source {name!r}") from exc
        self.unregister(entry)
        return entry

    def _discover(self) -> List[Operator]:
        """Return all operators reachable from sources plus registered ones."""
        seen: List[Operator] = []
        seen_ids: set = set()
        queue = deque(self._operators)
        while queue:
            op = queue.popleft()
            if id(op) in seen_ids:
                continue
            seen_ids.add(id(op))
            seen.append(op)
            queue.extend(op.downstream)
        return seen

    @property
    def operators(self) -> Sequence[Operator]:
        return tuple(self._discover())

    def validate(self) -> None:
        """Check that the plan is a DAG (no operator reachable from itself).

        One tri-color depth-first pass over the whole graph: operators
        are *white* (unvisited), *gray* (on the current DFS path) or
        *black* (fully explored).  An arrow into a gray operator is a
        back edge, i.e. a cycle through that operator.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[int, int] = {}
        for start in self._discover():
            if color.get(id(start), WHITE) != WHITE:
                continue
            color[id(start)] = GRAY
            stack = [(start, iter(start.downstream))]
            while stack:
                op, edges = stack[-1]
                advanced = False
                for nxt in edges:
                    state = color.get(id(nxt), WHITE)
                    if state == GRAY:
                        raise EngineError(f"cycle detected through operator {nxt.name!r}")
                    if state == WHITE:
                        color[id(nxt)] = GRAY
                        stack.append((nxt, iter(nxt.downstream)))
                        advanced = True
                        break
                if not advanced:
                    color[id(op)] = BLACK
                    stack.pop()

    # ------------------------------------------------------------------
    # Execution: tuple-at-a-time path
    # ------------------------------------------------------------------
    def push(self, source: str, item: StreamTuple) -> None:
        """Push one tuple into the plan via the named source."""
        try:
            entry = self._sources[source]
        except KeyError as exc:
            raise EngineError(f"unknown source {source!r}") from exc
        if self._detached and self._propagation_depth == 0:
            self._detached.clear()
        self._propagate(entry, item)

    def push_many(
        self,
        source: str,
        items: Iterable[StreamTuple],
        batch_size: Optional[int] = None,
    ) -> None:
        """Push a sequence of tuples into the plan via the named source.

        With a ``batch_size`` (from the argument or the engine default)
        the input is chunked into :class:`TupleBatch` containers and run
        through the batch path; otherwise each tuple is pushed
        individually.
        """
        size = self.batch_size if batch_size is None else batch_size
        if size is None:
            for item in items:
                self.push(source, item)
            return
        if size < 1:
            raise EngineError(f"batch_size must be at least 1, got {size}")
        if isinstance(items, (list, tuple)):
            # Sequences chunk by slicing -- no per-item append loop.
            for start in range(0, len(items), size):
                self.push_batch(source, TupleBatch(items[start : start + size]))
            return
        chunk: List[StreamTuple] = []
        for item in items:
            chunk.append(item)
            if len(chunk) >= size:
                self.push_batch(source, TupleBatch(chunk))
                chunk = []
        if chunk:
            self.push_batch(source, TupleBatch(chunk))

    def _propagate(self, operator: Operator, item: StreamTuple) -> None:
        """Iterative depth-first propagation of one tuple.

        A LIFO worklist visits (operator, tuple) pairs in exactly the
        order the former recursive implementation did, so sinks observe
        identical tuple orderings -- without consuming interpreter stack
        proportional to plan depth.
        """
        stack: List[Tuple[Operator, StreamTuple]] = [(operator, item)]
        self._propagation_depth += 1
        try:
            while stack:
                op, current = stack.pop()
                if self._detached and id(op) in self._detached:
                    continue  # unregistered mid-propagation; drop in-flight tuples
                outputs = op.accept(current)
                if not outputs:
                    continue
                downstream = op.downstream
                if not downstream:
                    continue
                pending = [(nxt, out) for out in outputs for nxt in downstream]
                stack.extend(reversed(pending))
        finally:
            self._propagation_depth -= 1

    # ------------------------------------------------------------------
    # Execution: batch-at-a-time path
    # ------------------------------------------------------------------
    def push_batch(
        self, source: str, batch: Union[TupleBatch, Iterable[StreamTuple]]
    ) -> None:
        """Push a whole batch into the plan via the named source."""
        try:
            entry = self._sources[source]
        except KeyError as exc:
            raise EngineError(f"unknown source {source!r}") from exc
        if not isinstance(batch, TupleBatch):
            batch = TupleBatch(batch)
        if self._detached and self._propagation_depth == 0:
            self._detached.clear()
        self._propagate_batch(entry, batch)

    def _propagate_batch(self, operator: Operator, batch: TupleBatch) -> None:
        """Iterative propagation of a batch (depth-first over boxes).

        When the active trace is sampled (:mod:`repro.obs.spans`), each
        operator's ``accept_batch`` is recorded as one ``op.<name>``
        span parented to the surrounding stage span; the decision is
        made once per batch, so unsampled traffic pays a single branch.
        """
        trace = obs.active()
        traced = trace is not None and obs.sampled_trace(trace)
        parent = obs.current_parent() if traced else None
        stack: List[Tuple[Operator, TupleBatch]] = [(operator, batch)]
        self._propagation_depth += 1
        try:
            while stack:
                op, current = stack.pop()
                if not len(current):
                    continue
                if self._detached and id(op) in self._detached:
                    continue  # unregistered mid-propagation; drop in-flight batches
                if traced:
                    t0 = obs.trace_clock()
                    outputs = op.accept_batch(current)
                    obs.record_span(
                        f"op.{op.name}",
                        "operator",
                        trace.trace_id,
                        t0,
                        obs.trace_clock(),
                        parent_id=parent,
                    )
                else:
                    outputs = op.accept_batch(current)
                if not len(outputs):
                    continue
                downstream = op.downstream
                if not downstream:
                    continue
                stack.extend(reversed([(nxt, outputs) for nxt in downstream]))
        finally:
            self._propagation_depth -= 1

    # ------------------------------------------------------------------
    # End of stream
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Flush every operator in topological order (end of stream).

        Flushed tuples propagate through whichever path the engine is
        configured for; both paths produce the same multiset of results.
        """
        if self._detached and self._propagation_depth == 0:
            self._detached.clear()
        use_batches = self.batch_size is not None
        for op in self._topological_order():
            if self._detached and id(op) in self._detached:
                continue  # dropped by a callback while this flush ran
            outputs = op.finish()
            if not outputs:
                continue
            if use_batches:
                flushed = TupleBatch(outputs)
                for nxt in op.downstream:
                    self._propagate_batch(nxt, flushed)
            else:
                for out in outputs:
                    for nxt in op.downstream:
                        self._propagate(nxt, out)

    def _topological_order(self) -> List[Operator]:
        ops = self._discover()
        indegree: Dict[int, int] = {id(op): 0 for op in ops}
        by_id: Dict[int, Operator] = {id(op): op for op in ops}
        for op in ops:
            for nxt in op.downstream:
                indegree[id(nxt)] = indegree.get(id(nxt), 0) + 1
                by_id.setdefault(id(nxt), nxt)
        queue = deque(op for op in ops if indegree[id(op)] == 0)
        order: List[Operator] = []
        while queue:
            op = queue.popleft()
            order.append(op)
            for nxt in op.downstream:
                indegree[id(nxt)] -= 1
                if indegree[id(nxt)] == 0:
                    queue.append(nxt)
        if len(order) != len(by_id):
            raise EngineError("cannot flush a plan containing cycles")
        return order

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def statistics(self, detailed: bool = False):
        """Return per-box statistics.

        By default returns ``(operator name, tuples in, tuples out)``
        triples (the historical interface).  With ``detailed=True``
        returns :class:`OperatorStats` records that additionally carry
        the number of batches processed, the cumulative processing time
        and the derived throughput.

        Both shapes are views over :class:`repro.obs.OperatorView`
        instruments (get-or-created in the default registry under this
        engine's ``obs_scope``), so the METRICS verb and this method
        read the same cells.  The per-tuple hot path is untouched: views
        sample the operators' plain counters at call time.
        """
        registry = obs.get_registry()
        rows = [
            registry.operator_view(self.obs_scope, op).stats()
            for op in self._discover()
        ]
        if detailed:
            return [
                OperatorStats(
                    name=name,
                    tuples_in=tuples_in,
                    tuples_out=tuples_out,
                    batches_in=batches_in,
                    seconds=seconds,
                )
                for name, tuples_in, tuples_out, batches_in, seconds in rows
            ]
        return [(name, tuples_in, tuples_out) for name, tuples_in, tuples_out, _, _ in rows]

    def reset(self) -> None:
        """Reset per-operator counters (does not clear operator state)."""
        for op in self._discover():
            op.reset_counters()


def run_plan(
    source_operator: Operator,
    items: Iterable[StreamTuple],
    sink: Optional[Operator] = None,
    batch_size: Optional[int] = None,
) -> List[StreamTuple]:
    """Convenience helper: run ``items`` through a linear plan and collect results.

    If ``sink`` is None, a :class:`~repro.streams.operators.basic.CollectSink`
    is appended to the last operator reachable from ``source_operator``.
    A ``batch_size`` selects the batch-at-a-time execution path.
    """
    from .operators.basic import CollectSink

    engine = StreamEngine(batch_size=batch_size)
    engine.add_source("input", source_operator)
    if sink is None:
        # Find the terminal operator by walking single-output chains.
        tail = source_operator
        seen = {id(tail)}
        while tail.downstream:
            if len(tail.downstream) != 1:
                raise EngineError("run_plan requires a linear plan or an explicit sink")
            tail = tail.downstream[0]
            if id(tail) in seen:
                raise EngineError("cycle detected in plan")
            seen.add(id(tail))
        sink = CollectSink()
        tail.connect(sink)
    engine.push_many("input", items)
    engine.finish()
    if not isinstance(sink, Operator) or not hasattr(sink, "results"):
        raise EngineError("sink must expose a 'results' list")
    return list(sink.results)  # type: ignore[attr-defined]
