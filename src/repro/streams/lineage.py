"""Lineage tracking and archival of base tuples.

Section 5.2: when an intermediate operator may produce *correlated*
output tuples (e.g. a join matching one tuple against several others),
each output tuple carries its lineage -- the set of independent base
tuples it was derived from -- instead of a pre-computed distribution.
The last operator in the plan then uses the lineage together with an
archive of the independent base tuples to compute exact result
distributions, applying shared computation across tuples with
overlapping lineage.

This module provides the archive and the correlation analysis helpers.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from .tuples import StreamTuple, TupleId

__all__ = ["TupleArchive", "correlation_groups", "are_independent"]


class TupleArchive:
    """An archive of independent base tuples keyed by tuple id.

    Operators whose inputs are independent archive them here (the "A4"
    box in Figure 2 of the paper) so that a downstream operator can
    later reconstruct joint distributions from lineage.  The archive
    supports eviction by watermark so that it does not grow without
    bound in long-running streams.
    """

    def __init__(self) -> None:
        self._tuples: Dict[TupleId, StreamTuple] = {}

    def archive(self, item: StreamTuple) -> None:
        """Store a base tuple (overwrites any previous tuple with the same id)."""
        self._tuples[item.tuple_id] = item

    def archive_many(self, items: Iterable[StreamTuple]) -> None:
        for item in items:
            self.archive(item)

    def get(self, tuple_id: TupleId) -> StreamTuple:
        """Return an archived tuple, raising ``KeyError`` if unknown."""
        return self._tuples[tuple_id]

    def resolve(self, lineage: Iterable[TupleId]) -> List[StreamTuple]:
        """Return the archived base tuples for a lineage set.

        Raises ``KeyError`` if any referenced base tuple has not been
        archived (or has been evicted), which indicates either a plan
        wiring bug or an eviction horizon that is too aggressive.
        """
        return [self._tuples[tid] for tid in sorted(lineage)]

    def __contains__(self, tuple_id: TupleId) -> bool:
        return tuple_id in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def evict_older_than(self, watermark: float) -> int:
        """Drop tuples with ``timestamp < watermark``; return how many were dropped."""
        stale = [tid for tid, item in self._tuples.items() if item.timestamp < watermark]
        for tid in stale:
            del self._tuples[tid]
        return len(stale)

    def clear(self) -> None:
        self._tuples.clear()


def are_independent(items: Sequence[StreamTuple]) -> bool:
    """Return True when no two tuples share lineage.

    Aggregating tuples that share a base tuple as if they were
    independent would understate (or overstate) the result variance;
    operators use this check to decide between the fast independent
    path and the lineage-aware path.
    """
    seen: Set[TupleId] = set()
    for item in items:
        if item.lineage & seen:
            return False
        seen |= item.lineage
    return True


def correlation_groups(items: Sequence[StreamTuple]) -> List[List[StreamTuple]]:
    """Partition tuples into groups connected by shared lineage.

    Tuples in different groups are mutually independent; tuples within
    a group may be correlated.  The last operator in a plan can use the
    fast independent-variable techniques *across* groups and the exact
    joint computation *within* each group, exactly the optimisation
    sketched in Section 5.2.
    """
    # Union-find over tuples, linking tuples that share any base id.
    parent: Dict[int, int] = {i: i for i in range(len(items))}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    owner_of_base: Dict[TupleId, int] = {}
    for idx, item in enumerate(items):
        for base in item.lineage:
            if base in owner_of_base:
                union(owner_of_base[base], idx)
            else:
                owner_of_base[base] = idx

    groups: Dict[int, List[StreamTuple]] = {}
    for idx, item in enumerate(items):
        groups.setdefault(find(idx), []).append(item)
    return list(groups.values())
