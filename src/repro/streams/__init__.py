"""Stream-processing substrate: tuples, windows, operators, engine, lineage.

This package implements the conventional data-stream machinery the
paper builds on (the box-arrow paradigm of Section 3): tuples that flow
along arrows between operator boxes, CQL-style window specifications,
a push-based execution engine, and lineage tracking/archival.  The
uncertainty-aware operators that constitute the paper's contribution
live in :mod:`repro.core` and plug into this substrate.
"""

from .batch import TupleBatch
from .engine import EngineError, OperatorStats, StreamEngine, run_plan
from .lineage import TupleArchive, are_independent, correlation_groups
from .operators import (
    AttributeDeriver,
    CallbackSink,
    CollectSink,
    Filter,
    FunctionOperator,
    Map,
    Operator,
    OperatorError,
    PassThroughOperator,
    Union,
)
from .schema import Attribute, AttributeKind, Schema, SchemaError
from .serialization import (
    batch_size_bytes,
    decode_batch,
    decode_distribution,
    decode_tuple,
    distribution_size_bytes,
    encode_batch,
    encode_batch_columnar,
    encode_batch_wire,
    encode_distribution,
    encode_tuple,
    tuple_size_bytes,
)
from .tuples import (
    StreamTuple,
    TupleId,
    advance_tuple_counter,
    next_tuple_id,
    tuple_counter_mark,
)
from .windows import (
    NowWindow,
    SlidingTimeWindow,
    TumblingCountWindow,
    TumblingTimeWindow,
    WindowBuffer,
    WindowSpec,
    iter_windows,
)

__all__ = [
    "StreamTuple",
    "TupleBatch",
    "TupleId",
    "next_tuple_id",
    "tuple_counter_mark",
    "advance_tuple_counter",
    "Schema",
    "Attribute",
    "AttributeKind",
    "SchemaError",
    "WindowSpec",
    "WindowBuffer",
    "TumblingCountWindow",
    "TumblingTimeWindow",
    "SlidingTimeWindow",
    "NowWindow",
    "iter_windows",
    "Operator",
    "OperatorError",
    "FunctionOperator",
    "PassThroughOperator",
    "Filter",
    "Map",
    "AttributeDeriver",
    "Union",
    "CollectSink",
    "CallbackSink",
    "StreamEngine",
    "EngineError",
    "OperatorStats",
    "run_plan",
    "TupleArchive",
    "are_independent",
    "correlation_groups",
    "encode_distribution",
    "decode_distribution",
    "distribution_size_bytes",
    "encode_tuple",
    "decode_tuple",
    "tuple_size_bytes",
    "encode_batch",
    "decode_batch",
    "batch_size_bytes",
    "encode_batch_columnar",
    "encode_batch_wire",
]
