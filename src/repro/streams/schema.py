"""Stream schemas: declared attribute sets for tuple validation.

Schemas are lightweight, optional metadata.  Operators that compile
from a query (e.g. Q1 and Q2 in the paper) use schemas to validate that
the tuples flowing into them carry the attributes the query references,
surfacing misconfiguration early instead of failing deep inside an
aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Sequence

from .tuples import StreamTuple

__all__ = ["AttributeKind", "Attribute", "Schema", "SchemaError"]


class SchemaError(Exception):
    """Raised when a tuple does not conform to a declared schema."""


class AttributeKind(str, Enum):
    """Whether an attribute is deterministic or carries a distribution."""

    VALUE = "value"
    UNCERTAIN = "uncertain"


@dataclass(frozen=True)
class Attribute:
    """A named attribute in a stream schema."""

    name: str
    kind: AttributeKind = AttributeKind.VALUE
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError("attribute name must be a non-empty string")


class Schema:
    """An ordered collection of attributes describing a tuple stream."""

    def __init__(self, attributes: Sequence[Attribute] | Iterable[Attribute]):
        attrs: List[Attribute] = list(attributes)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate attribute names in schema: {duplicates}")
        self._attributes: List[Attribute] = attrs
        self._by_name: Dict[str, Attribute] = {a.name: a for a in attrs}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, values: Sequence[str] = (), uncertain: Sequence[str] = ()) -> Schema:
        """Build a schema from two lists of attribute names."""
        attrs = [Attribute(name, AttributeKind.VALUE) for name in values]
        attrs += [Attribute(name, AttributeKind.UNCERTAIN) for name in uncertain]
        return cls(attrs)

    def extend(self, values: Sequence[str] = (), uncertain: Sequence[str] = ()) -> Schema:
        """Return a new schema with additional attributes."""
        extra = [Attribute(name, AttributeKind.VALUE) for name in values]
        extra += [Attribute(name, AttributeKind.UNCERTAIN) for name in uncertain]
        return Schema(self._attributes + extra)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> List[Attribute]:
        return list(self._attributes)

    def names(self) -> List[str]:
        return [a.name for a in self._attributes]

    def value_names(self) -> List[str]:
        return [a.name for a in self._attributes if a.kind is AttributeKind.VALUE]

    def uncertain_names(self) -> List[str]:
        return [a.name for a in self._attributes if a.kind is AttributeKind.UNCERTAIN]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._attributes)

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(f"schema has no attribute named {name!r}") from exc

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, item: StreamTuple, strict: bool = False) -> None:
        """Check that ``item`` carries every declared attribute.

        With ``strict=True``, also reject tuples carrying attributes not
        declared in the schema.
        """
        for attr in self._attributes:
            if attr.kind is AttributeKind.VALUE:
                if not item.has_value(attr.name):
                    raise SchemaError(f"tuple is missing deterministic attribute {attr.name!r}")
            else:
                if not item.has_uncertain(attr.name):
                    raise SchemaError(f"tuple is missing uncertain attribute {attr.name!r}")
        if strict:
            declared = set(self._by_name)
            present = set(item.values) | set(item.uncertain)
            extra = present - declared
            if extra:
                raise SchemaError(f"tuple carries undeclared attributes: {sorted(extra)}")

    def conforms(self, item: StreamTuple, strict: bool = False) -> bool:
        """Return True when :meth:`validate` would not raise."""
        try:
            self.validate(item, strict=strict)
        except SchemaError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        parts = [f"{a.name}:{a.kind.value}" for a in self._attributes]
        return f"Schema({', '.join(parts)})"
