"""Stream tuples carrying deterministic values and uncertain attributes.

A :class:`StreamTuple` is the unit of data flowing between operators in
the box-arrow architecture (Figure 2 of the paper).  It separates

* ``values`` -- ordinary deterministic attributes such as ``tag_id`` or
  a window timestamp, and
* ``uncertain`` -- attributes modelled as continuous random variables,
  each an instance of :class:`repro.distributions.Distribution`.

Every tuple also records its *lineage*: the identifiers of the base
(T-operator) tuples it was derived from.  Lineage lets a downstream
operator detect correlation between intermediate tuples that share base
tuples (Section 5.2) and, when needed, recompute exact joint results
from archived independent inputs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional

from repro.distributions import Distribution

__all__ = [
    "StreamTuple",
    "TupleId",
    "next_tuple_id",
    "tuple_counter_mark",
    "advance_tuple_counter",
]

TupleId = int

_tuple_counter = itertools.count(1)


def next_tuple_id() -> TupleId:
    """Return a fresh process-wide unique tuple identifier."""
    return next(_tuple_counter)


def tuple_counter_mark() -> TupleId:
    """Return an id strictly greater than every id assigned so far.

    Checkpoints persist this mark so a recovered process can call
    :func:`advance_tuple_counter` and never re-issue an id that appears
    in restored lineage sets (which would trip the independence checks
    of Section 5.2 with a false overlap).  Consumes one id, which is
    harmless: ids only need to be unique, not dense.
    """
    return next(_tuple_counter)


def advance_tuple_counter(minimum: TupleId) -> None:
    """Ensure future tuple ids are ``>= minimum`` (monotonic: never rewinds).

    Rebinding the module-global counter is sufficient because both
    :func:`next_tuple_id` and :meth:`StreamTuple._unchecked` look the
    global up at call time.
    """
    global _tuple_counter
    current = next(_tuple_counter)
    _tuple_counter = itertools.count(max(current + 1, int(minimum)))


@dataclass(frozen=True)
class StreamTuple:
    """An immutable stream tuple.

    Parameters
    ----------
    timestamp:
        Event time of the tuple in seconds (application time, not wall
        clock).
    values:
        Deterministic attributes.
    uncertain:
        Uncertain attributes; each value must be a
        :class:`~repro.distributions.Distribution`.
    lineage:
        Identifiers of the base tuples this tuple was derived from.  A
        tuple emitted directly by a T operator has its own id as its
        entire lineage.
    tuple_id:
        Unique identifier; assigned automatically when omitted.
    """

    timestamp: float
    values: Mapping[str, Any] = field(default_factory=dict)
    uncertain: Mapping[str, Distribution] = field(default_factory=dict)
    lineage: FrozenSet[TupleId] = field(default_factory=frozenset)
    tuple_id: TupleId = field(default_factory=next_tuple_id)

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))
        object.__setattr__(self, "uncertain", dict(self.uncertain))
        for name, dist in self.uncertain.items():
            if not isinstance(dist, Distribution):
                raise TypeError(
                    f"uncertain attribute {name!r} must be a Distribution, got {type(dist).__name__}"
                )
        if not self.lineage:
            object.__setattr__(self, "lineage", frozenset({self.tuple_id}))
        else:
            object.__setattr__(self, "lineage", frozenset(self.lineage))

    # ------------------------------------------------------------------
    # Attribute access
    # ------------------------------------------------------------------
    def value(self, name: str) -> Any:
        """Return a deterministic attribute, raising ``KeyError`` if absent."""
        return self.values[name]

    def distribution(self, name: str) -> Distribution:
        """Return an uncertain attribute's distribution."""
        return self.uncertain[name]

    def has_value(self, name: str) -> bool:
        return name in self.values

    def has_uncertain(self, name: str) -> bool:
        return name in self.uncertain

    def attribute_names(self) -> Iterable[str]:
        """Return all attribute names (deterministic then uncertain)."""
        yield from self.values.keys()
        yield from self.uncertain.keys()

    def expected_value(self, name: str) -> float:
        """Return the mean of an uncertain attribute (point summary)."""
        return float(self.uncertain[name].mean())

    # ------------------------------------------------------------------
    # Construction fast path
    # ------------------------------------------------------------------
    @classmethod
    def _unchecked(
        cls,
        timestamp: float,
        values: Dict[str, Any],
        uncertain: Mapping[str, Distribution],
        lineage: FrozenSet[TupleId],
        tuple_id: Optional[TupleId] = None,
    ) -> StreamTuple:
        """Build a tuple from pre-validated parts, skipping ``__post_init__``.

        Batch kernels construct thousands of derived tuples whose
        attribute maps are already known to be well-formed (they come
        from existing, validated tuples); this path skips the defensive
        copies and isinstance checks.  Callers must hand over ownership
        of ``values`` (it is stored as-is) and must only pass a
        ``lineage`` that is already a non-empty frozenset.  The tuple
        decoder passes an explicit ``tuple_id`` to preserve identity
        across a serialization round trip; everyone else lets the
        counter assign a fresh one.
        """
        obj = object.__new__(cls)
        # Writing the instance dict directly sidesteps the frozen-dataclass
        # __setattr__ machinery; attribute reads are unaffected.
        obj.__dict__.update(
            timestamp=timestamp,
            values=values,
            uncertain=uncertain,
            lineage=lineage,
            tuple_id=next(_tuple_counter) if tuple_id is None else tuple_id,
        )
        return obj

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def derive(
        self,
        timestamp: Optional[float] = None,
        values: Optional[Mapping[str, Any]] = None,
        uncertain: Optional[Mapping[str, Distribution]] = None,
        extra_lineage: Iterable[TupleId] = (),
        replace_values: bool = False,
        replace_uncertain: bool = False,
    ) -> StreamTuple:
        """Return a new tuple derived from this one.

        By default the new tuple keeps this tuple's attributes and adds
        or overrides the supplied ones; ``replace_values`` /
        ``replace_uncertain`` start from empty attribute maps instead.
        Lineage is the union of this tuple's lineage and
        ``extra_lineage``.
        """
        new_values: Dict[str, Any] = {} if replace_values else dict(self.values)
        if values:
            new_values.update(values)
        new_uncertain: Dict[str, Distribution] = {} if replace_uncertain else dict(self.uncertain)
        if uncertain:
            new_uncertain.update(uncertain)
        lineage = frozenset(self.lineage) | frozenset(extra_lineage)
        return StreamTuple(
            timestamp=self.timestamp if timestamp is None else timestamp,
            values=new_values,
            uncertain=new_uncertain,
            lineage=lineage,
        )

    @staticmethod
    def merge(
        left: StreamTuple,
        right: StreamTuple,
        timestamp: Optional[float] = None,
        prefix_left: str = "",
        prefix_right: str = "",
    ) -> StreamTuple:
        """Combine two tuples into one (as a join operator does).

        Attribute name clashes are resolved with the supplied prefixes;
        if both prefixes are empty, the right tuple's attributes win for
        clashing names.  Lineage is the union of the two lineages.
        """

        def rename(mapping: Mapping[str, Any], prefix: str) -> Dict[str, Any]:
            if not prefix:
                return dict(mapping)
            return {f"{prefix}{name}": value for name, value in mapping.items()}

        values = rename(left.values, prefix_left)
        values.update(rename(right.values, prefix_right))
        uncertain = rename(left.uncertain, prefix_left)
        uncertain.update(rename(right.uncertain, prefix_right))
        return StreamTuple(
            timestamp=max(left.timestamp, right.timestamp) if timestamp is None else timestamp,
            values=values,
            uncertain=uncertain,
            lineage=left.lineage | right.lineage,
        )

    def shares_lineage_with(self, other: StreamTuple) -> bool:
        """Return True when the two tuples derive from a common base tuple.

        Tuples with overlapping lineage may be correlated and must not
        be treated as independent by downstream aggregation.
        """
        return bool(self.lineage & other.lineage)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        uncertain_desc = {k: type(v).__name__ for k, v in self.uncertain.items()}
        return (
            f"StreamTuple(t={self.timestamp:.3f}, values={self.values}, "
            f"uncertain={uncertain_desc}, id={self.tuple_id})"
        )
