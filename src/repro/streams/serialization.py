"""Serialization of tuples and distributions, with size accounting.

Section 4.3 motivates compressing particle clouds into parametric
distributions partly by *stream volume*: "every tuple now carries tens
or hundreds of samples.  This will increase the stream volume by one or
two orders of magnitude."  To make that claim measurable, this module
provides a compact binary encoding for stream tuples and their
uncertain attributes, plus helpers that report encoded sizes without
materialising the bytes.

The format is a simple self-describing binary layout (struct-packed),
sufficient for shipping tuples between operators or nodes and for
measuring bandwidth; it is not meant to be a long-term storage format.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

import numpy as np

from repro.distributions import (
    Distribution,
    Gaussian,
    GaussianMixture,
    HistogramDistribution,
    ParticleDistribution,
    Uniform,
)

from .batch import TupleBatch
from .tuples import StreamTuple

__all__ = [
    "encode_distribution",
    "decode_distribution",
    "distribution_size_bytes",
    "encode_tuple",
    "decode_tuple",
    "tuple_size_bytes",
    "encode_batch",
    "decode_batch",
    "batch_size_bytes",
    "encode_batch_columnar",
    "encode_batch_wire",
    "wire_format",
]

_GAUSSIAN = 1
_MIXTURE = 2
_UNIFORM = 3
_PARTICLES = 4
_HISTOGRAM = 5

# Precompiled layouts.  The runtime's sharded execution ships every
# tuple through this codec twice (parent encode, worker decode), so the
# hot paths avoid re-parsing format strings per call.
_PAIR = struct.Struct("<Bdd")  # Gaussian / Uniform payloads
_COUNTED = struct.Struct("<BI")  # mixture / particle / histogram headers
_TUPLE_HEADER = struct.Struct("<dqHH")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def encode_distribution(dist: Distribution) -> bytes:
    """Encode a scalar distribution into a compact binary representation."""
    if isinstance(dist, Gaussian):
        return _PAIR.pack(_GAUSSIAN, dist.mu, dist.sigma)
    if isinstance(dist, GaussianMixture):
        header = _COUNTED.pack(_MIXTURE, dist.n_components)
        body = np.concatenate([dist.weights, dist.means, dist.sigmas]).astype("<f8").tobytes()
        return header + body
    if isinstance(dist, Uniform):
        return _PAIR.pack(_UNIFORM, dist.low, dist.high)
    if isinstance(dist, ParticleDistribution):
        header = _COUNTED.pack(_PARTICLES, dist.n_particles)
        body = np.concatenate([dist.values, dist.weights]).astype("<f8").tobytes()
        return header + body
    if isinstance(dist, HistogramDistribution):
        header = _COUNTED.pack(_HISTOGRAM, dist.n_bins)
        body = np.concatenate([dist.edges, dist.densities]).astype("<f8").tobytes()
        return header + body
    raise TypeError(f"cannot encode a distribution of type {type(dist).__name__}")


def _decode_distribution_at(payload: bytes, offset: int) -> Tuple[Distribution, int]:
    """Decode one distribution at ``offset``; return it and the next offset."""
    kind = payload[offset]
    if kind in (_GAUSSIAN, _UNIFORM):
        _, a, b = _PAIR.unpack_from(payload, offset)
        offset += _PAIR.size
        return (Gaussian(a, b) if kind == _GAUSSIAN else Uniform(a, b)), offset
    if kind in (_MIXTURE, _PARTICLES, _HISTOGRAM):
        _, count = _COUNTED.unpack_from(payload, offset)
        offset += _COUNTED.size
        if kind == _MIXTURE:
            n_values = 3 * count
        elif kind == _PARTICLES:
            n_values = 2 * count
        else:
            n_values = 2 * count + 1
        body = np.frombuffer(payload, dtype="<f8", count=n_values, offset=offset)
        offset += n_values * 8
        if kind == _MIXTURE:
            weights, means, sigmas = body[:count], body[count : 2 * count], body[2 * count :]
            return GaussianMixture(weights, means, sigmas), offset
        if kind == _PARTICLES:
            return ParticleDistribution(body[:count], body[count:]), offset
        return HistogramDistribution(body[: count + 1], body[count + 1 :]), offset
    raise ValueError(f"unknown distribution tag {kind}")


def decode_distribution(payload: bytes) -> Tuple[Distribution, int]:
    """Decode one distribution; return it and the number of bytes consumed."""
    dist, offset = _decode_distribution_at(payload, 0)
    return dist, offset


def distribution_size_bytes(dist: Distribution) -> int:
    """Return the encoded size of a distribution without building the bytes."""
    if isinstance(dist, (Gaussian, Uniform)):
        return struct.calcsize("<Bdd")
    if isinstance(dist, GaussianMixture):
        return struct.calcsize("<BI") + 3 * dist.n_components * 8
    if isinstance(dist, ParticleDistribution):
        return struct.calcsize("<BI") + 2 * dist.n_particles * 8
    if isinstance(dist, HistogramDistribution):
        return struct.calcsize("<BI") + (2 * dist.n_bins + 1) * 8
    raise TypeError(f"cannot size a distribution of type {type(dist).__name__}")


def _encode_value(value) -> bytes:
    if isinstance(value, bool):
        return b"b" + struct.pack("<B", int(value))
    if isinstance(value, int):
        return b"i" + _I64.pack(value)
    if isinstance(value, float):
        return b"f" + _F64.pack(value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"s" + _U32.pack(len(raw)) + raw
    if isinstance(value, tuple) and all(isinstance(v, (int, np.integer)) for v in value):
        return b"t" + _U32.pack(len(value)) + struct.pack(f"<{len(value)}q", *value)
    raise TypeError(f"cannot encode deterministic value of type {type(value).__name__}")


def _decode_value(payload: bytes, offset: int):
    tag = payload[offset]
    offset += 1
    if tag == 0x66:  # "f" first: floats dominate real streams
        return _F64.unpack_from(payload, offset)[0], offset + 8
    if tag == 0x69:  # "i"
        return _I64.unpack_from(payload, offset)[0], offset + 8
    if tag == 0x73:  # "s"
        (length,) = _U32.unpack_from(payload, offset)
        offset += 4
        return payload[offset : offset + length].decode("utf-8"), offset + length
    if tag == 0x62:  # "b"
        return bool(payload[offset]), offset + 1
    if tag == 0x74:  # "t"
        (length,) = _U32.unpack_from(payload, offset)
        offset += 4
        values = struct.unpack_from(f"<{length}q", payload, offset)
        return tuple(values), offset + 8 * length
    raise ValueError(f"unknown value tag {bytes((tag,))!r}")


def _encode_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    return _U16.pack(len(raw)) + raw


def _decode_name(payload: bytes, offset: int):
    (length,) = _U16.unpack_from(payload, offset)
    offset += 2
    return payload[offset : offset + length].decode("utf-8"), offset + length


def encode_tuple(item: StreamTuple) -> bytes:
    """Encode a stream tuple (timestamp, values, uncertain attributes, lineage)."""
    parts = [
        _TUPLE_HEADER.pack(item.timestamp, item.tuple_id, len(item.values), len(item.uncertain))
    ]
    for name, value in item.values.items():
        parts.append(_encode_name(name))
        parts.append(_encode_value(value))
    for name, dist in item.uncertain.items():
        parts.append(_encode_name(name))
        encoded = encode_distribution(dist)
        parts.append(_U32.pack(len(encoded)))
        parts.append(encoded)
    lineage = sorted(item.lineage)
    parts.append(_U32.pack(len(lineage)))
    parts.append(struct.pack(f"<{len(lineage)}q", *lineage) if lineage else b"")
    return b"".join(parts)


def _decode_tuple_at(payload: bytes, offset: int) -> Tuple[StreamTuple, int]:
    """Decode one tuple at ``offset``; return it and the next offset.

    Builds the tuple through :meth:`StreamTuple._unchecked`: every part
    is well-formed by construction (the encoder only accepts validated
    tuples), so the frozen-dataclass validation and defensive copies of
    ``__post_init__`` would be pure overhead on the runtime's
    parent-to-worker hot path.
    """
    timestamp, tuple_id, n_values, n_uncertain = _TUPLE_HEADER.unpack_from(payload, offset)
    offset += _TUPLE_HEADER.size
    # The name/value/Gaussian decodes are inlined: this loop runs once
    # per attribute of every shipped tuple and call overhead dominates.
    u16_unpack, pair_unpack = _U16.unpack_from, _PAIR.unpack_from
    values: Dict[str, object] = {}
    for _ in range(n_values):
        (length,) = u16_unpack(payload, offset)
        offset += 2
        name = payload[offset : offset + length].decode("utf-8")
        offset += length
        value, offset = _decode_value(payload, offset)
        values[name] = value
    uncertain: Dict[str, Distribution] = {}
    for _ in range(n_uncertain):
        (length,) = u16_unpack(payload, offset)
        offset += 2
        name = payload[offset : offset + length].decode("utf-8")
        offset += length + 4  # the name, then the distribution length prefix
        if payload[offset] == _GAUSSIAN:
            _, mu, sigma = pair_unpack(payload, offset)
            uncertain[name] = Gaussian(mu, sigma)
            offset += _PAIR.size
        else:
            uncertain[name], offset = _decode_distribution_at(payload, offset)
    (n_lineage,) = _U32.unpack_from(payload, offset)
    offset += 4
    lineage = struct.unpack_from(f"<{n_lineage}q", payload, offset) if n_lineage else ()
    offset += 8 * n_lineage
    item = StreamTuple._unchecked(
        timestamp=timestamp,
        values=values,
        uncertain=uncertain,
        lineage=frozenset(lineage) if lineage else frozenset({tuple_id}),
        tuple_id=tuple_id,
    )
    return item, offset


def decode_tuple(payload: bytes) -> StreamTuple:
    """Decode a tuple produced by :func:`encode_tuple`."""
    item, _ = _decode_tuple_at(payload, 0)
    return item


def tuple_size_bytes(item: StreamTuple) -> int:
    """Return the encoded size of a tuple in bytes."""
    return len(encode_tuple(item))


# ----------------------------------------------------------------------
# Batch framing
# ----------------------------------------------------------------------
#: Magic prefix identifying an encoded tuple batch (version 1).
_BATCH_MAGIC = b"TB1\x00"

#: Magic of the optional trace trailer (version 1).  The trailer rides
#: *after* the declared rows/columns of either batch format:
#: ``TRB1`` magic · trace_id i64 · t_ingest f64.  Appended only when the
#: batch carries a trace context, so traceless payloads are
#: byte-identical to the pre-trace format in both directions.
_TRACE_MAGIC = b"TRB1"
_TRACE_TRAILER = struct.Struct("<4sqd")


def _trace_trailer(batch) -> bytes:
    trace_id = getattr(batch, "trace_id", None)
    if trace_id is None:
        return b""
    t_ingest = getattr(batch, "t_ingest", None)
    return _TRACE_TRAILER.pack(_TRACE_MAGIC, int(trace_id), float(t_ingest or 0.0))


def _split_trace_trailer(payload):
    """Return ``(body, trace_or_None)``, stripping a trace trailer if present."""
    size = _TRACE_TRAILER.size
    if len(payload) >= size:
        magic, trace_id, t_ingest = _TRACE_TRAILER.unpack_from(payload, len(payload) - size)
        if magic == _TRACE_MAGIC:
            return payload[: len(payload) - size], (trace_id, t_ingest)
    return payload, None


def encode_batch(batch: TupleBatch) -> bytes:
    """Encode a whole batch: magic, row count, then length-prefixed tuples.

    The framing keeps rows independently decodable, so a receiver can
    stream-decode without materialising the full batch first.
    """
    parts = [_BATCH_MAGIC, struct.pack("<I", len(batch))]
    for item in batch:
        encoded = encode_tuple(item)
        parts.append(struct.pack("<I", len(encoded)))
        parts.append(encoded)
    parts.append(_trace_trailer(batch))
    return b"".join(parts)


def decode_batch(payload: bytes) -> TupleBatch:
    """Decode a batch produced by :func:`encode_batch`.

    Raises ``ValueError`` on a missing magic prefix, a truncated
    payload, or trailing bytes after the declared rows, so framing
    corruption is caught here rather than surfacing as an unrelated
    error from the tuple decoder.  Columnar payloads
    (:func:`encode_batch_columnar`) are recognised by their own magic
    and decoded transparently.
    """
    payload, trace = _split_trace_trailer(payload)
    if bytes(payload[: len(_COLUMNAR_MAGIC)]) == _COLUMNAR_MAGIC:
        # The columnar decoder consumes memoryviews natively
        # (``np.frombuffer`` reads straight out of a transport ring or
        # receive buffer), so the dominant wire format never pays a
        # whole-payload copy.
        return _install_trace(_decode_batch_columnar(payload), trace)
    if not isinstance(payload, bytes):
        # The row-format fallback keeps its inlined bytes-only decode
        # loops (slice.decode, frombuffer); normalise once.
        payload = bytes(payload)
    if payload[: len(_BATCH_MAGIC)] != _BATCH_MAGIC:
        raise ValueError("payload does not start with the tuple-batch magic prefix")
    offset = len(_BATCH_MAGIC)
    if len(payload) < offset + 4:
        raise ValueError("truncated tuple-batch payload: missing row count")
    (count,) = _U32.unpack_from(payload, offset)
    offset += 4
    rows = []
    for index in range(count):
        if len(payload) < offset + 4:
            raise ValueError(f"truncated tuple-batch payload: missing length of row {index}")
        (length,) = _U32.unpack_from(payload, offset)
        offset += 4
        if len(payload) < offset + length:
            raise ValueError(f"truncated tuple-batch payload: row {index} is incomplete")
        try:
            row, consumed = _decode_tuple_at(payload, offset)
        except struct.error as exc:
            raise ValueError(f"truncated tuple-batch payload: row {index} is incomplete") from exc
        if consumed != offset + length:
            raise ValueError(
                f"tuple-batch payload: row {index} decoded {consumed - offset} bytes "
                f"but declared {length}"
            )
        rows.append(row)
        offset += length
    if offset != len(payload):
        raise ValueError(
            f"tuple-batch payload has {len(payload) - offset} trailing bytes after {count} rows"
        )
    return _install_trace(TupleBatch(rows), trace)


def _install_trace(batch: TupleBatch, trace) -> TupleBatch:
    if trace is not None:
        batch.trace_id, batch.t_ingest = trace
    return batch


def batch_size_bytes(batch: TupleBatch) -> int:
    """Return the encoded size of a batch without building the bytes."""
    trailer = _TRACE_TRAILER.size if getattr(batch, "trace_id", None) is not None else 0
    return len(_BATCH_MAGIC) + 4 + sum(4 + tuple_size_bytes(item) for item in batch) + trailer


# ----------------------------------------------------------------------
# Columnar batch framing (the sharded runtime's hot wire format)
# ----------------------------------------------------------------------
#: Magic prefix identifying a columnar-encoded tuple batch (version 1).
_COLUMNAR_MAGIC = b"TBC1"

_COL_INT, _COL_FLOAT, _COL_BOOL, _COL_STR = 0x69, 0x66, 0x62, 0x73
_COLUMNAR_HEADER = struct.Struct("<IHH")


def _columnar_layout(rows):
    """Return (value names, uncertain names) when the batch is columnar.

    Eligibility: every row carries its own id as its entire lineage (a
    source tuple), the same attribute names, Gaussian-only uncertain
    attributes, and per-column homogeneous scalar types.  Anything else
    returns ``None`` and the caller falls back to the row format.
    """
    first = rows[0]
    value_keys = first.values.keys()
    uncertain_keys = first.uncertain.keys()
    for item in rows:
        lineage = item.lineage
        if len(lineage) != 1 or item.tuple_id not in lineage:
            return None
        if item.values.keys() != value_keys or item.uncertain.keys() != uncertain_keys:
            return None
        for dist in item.uncertain.values():
            if type(dist) is not Gaussian:
                return None
    return list(value_keys), list(uncertain_keys)


def encode_batch_columnar(batch: TupleBatch) -> Optional[bytes]:
    """Encode a batch column-by-column, or ``None`` if it is not eligible.

    The row format (:func:`encode_batch`) parses and rebuilds every
    attribute name and struct field per tuple; for the sharded
    runtime's dominant traffic — uniform source tuples carrying
    Gaussian attributes — the columnar layout ships each column as one
    contiguous float64/int64 array instead, cutting both payload size
    and decode time by several times.
    """
    rows = batch.to_tuples() if isinstance(batch, TupleBatch) else list(batch)
    if not rows:
        return None
    layout = _columnar_layout(rows)
    if layout is None:
        return None
    value_names, uncertain_names = layout
    n = len(rows)
    parts = [
        _COLUMNAR_MAGIC,
        _COLUMNAR_HEADER.pack(n, len(value_names), len(uncertain_names)),
        np.fromiter((t.timestamp for t in rows), dtype="<f8", count=n).tobytes(),
        np.fromiter((t.tuple_id for t in rows), dtype="<i8", count=n).tobytes(),
    ]
    try:
        for name in value_names:
            column = [t.values[name] for t in rows]
            kind = type(column[0])
            if any(type(v) is not kind for v in column):
                return None
            parts.append(_encode_name(name))
            if kind is bool:
                parts.append(struct.pack("<B", _COL_BOOL))
                parts.append(np.fromiter(column, dtype=np.uint8, count=n).tobytes())
            elif kind is int:
                parts.append(struct.pack("<B", _COL_INT))
                parts.append(np.fromiter(column, dtype="<i8", count=n).tobytes())
            elif kind is float:
                parts.append(struct.pack("<B", _COL_FLOAT))
                parts.append(np.fromiter(column, dtype="<f8", count=n).tobytes())
            elif kind is str:
                blobs = [v.encode("utf-8") for v in column]
                parts.append(struct.pack("<B", _COL_STR))
                parts.append(
                    np.fromiter((len(b) for b in blobs), dtype="<u4", count=n).tobytes()
                )
                parts.append(b"".join(blobs))
            else:
                return None
    except OverflowError:  # an int column that does not fit int64
        return None
    for name in uncertain_names:
        parts.append(_encode_name(name))
        parts.append(
            np.fromiter((t.uncertain[name].mu for t in rows), dtype="<f8", count=n).tobytes()
        )
        parts.append(
            np.fromiter(
                (t.uncertain[name].sigma for t in rows), dtype="<f8", count=n
            ).tobytes()
        )
    parts.append(_trace_trailer(batch))
    return b"".join(parts)


def encode_batch_wire(batch: TupleBatch) -> bytes:
    """Encode a batch for transport: columnar when eligible, else rows."""
    encoded = encode_batch_columnar(batch)
    if encoded is not None:
        return encoded
    return encode_batch(batch)


def wire_format(payload) -> str:
    """Classify an encoded batch: ``"columnar"`` or ``"rows"``.

    Diagnostic helper for transports and tests — e.g. asserting that
    ingest traffic actually took the compact columnar path.
    """
    prefix = bytes(payload[:4])
    if prefix == _COLUMNAR_MAGIC:
        return "columnar"
    if prefix == _BATCH_MAGIC:
        return "rows"
    raise ValueError("payload does not start with a known tuple-batch magic prefix")


def _bytes_at(payload, start: int, stop: int) -> bytes:
    """Slice-to-bytes that is a no-op copy for bytes input."""
    raw = payload[start:stop]
    return raw if isinstance(raw, bytes) else bytes(raw)


def _decode_batch_columnar(payload) -> TupleBatch:
    """Decode a columnar payload (bytes or memoryview) into a batch.

    Ownership rule of the zero-copy transport: the returned batch owns
    its memory.  Every column is copied *once* out of ``payload`` into
    a fresh array (``np.frombuffer(...).copy()``), so the caller may
    release the underlying ring record or receive buffer as soon as
    this returns.  The timestamp and Gaussian parameter arrays are also
    installed into the batch's columnar caches, so downstream batch
    kernels start from the wire columns instead of re-extracting them
    row by row.
    """
    n, n_values, n_uncertain = _COLUMNAR_HEADER.unpack_from(payload, len(_COLUMNAR_MAGIC))
    offset = len(_COLUMNAR_MAGIC) + _COLUMNAR_HEADER.size
    ts_column = np.frombuffer(payload, dtype="<f8", count=n, offset=offset).copy()
    timestamps = ts_column.tolist()
    offset += 8 * n
    tuple_ids = np.frombuffer(payload, dtype="<i8", count=n, offset=offset).tolist()
    offset += 8 * n
    value_columns = []
    for _ in range(n_values):
        name, offset = _decode_name_view(payload, offset)
        tag = payload[offset]
        offset += 1
        if tag == _COL_BOOL:
            column = [bool(v) for v in np.frombuffer(payload, np.uint8, count=n, offset=offset)]
            offset += n
        elif tag == _COL_INT:
            column = np.frombuffer(payload, dtype="<i8", count=n, offset=offset).tolist()
            offset += 8 * n
        elif tag == _COL_FLOAT:
            column = np.frombuffer(payload, dtype="<f8", count=n, offset=offset).tolist()
            offset += 8 * n
        elif tag == _COL_STR:
            lengths = np.frombuffer(payload, dtype="<u4", count=n, offset=offset).tolist()
            offset += 4 * n
            column = []
            for length in lengths:
                column.append(_bytes_at(payload, offset, offset + length).decode("utf-8"))
                offset += length
        else:
            raise ValueError(f"unknown columnar value tag {tag:#x}")
        value_columns.append((name, column))
    uncertain_columns = []
    for _ in range(n_uncertain):
        name, offset = _decode_name_view(payload, offset)
        mu_column = np.frombuffer(payload, dtype="<f8", count=n, offset=offset).copy()
        offset += 8 * n
        sigma_column = np.frombuffer(payload, dtype="<f8", count=n, offset=offset).copy()
        offset += 8 * n
        uncertain_columns.append((name, mu_column, mu_column.tolist(), sigma_column, sigma_column.tolist()))
    if offset != len(payload):
        raise ValueError(
            f"columnar batch payload has {len(payload) - offset} trailing bytes"
        )
    rows = []
    unchecked = StreamTuple._unchecked
    gaussian_new = Gaussian.__new__
    for i in range(n):
        uncertain = {}
        for name, _, mus, _, sigmas in uncertain_columns:
            # The encoder only accepts validated Gaussians, so the
            # finite/positive checks of Gaussian.__init__ are redundant
            # on this hot path.
            dist = gaussian_new(Gaussian)
            dist.mu = mus[i]
            dist.sigma = sigmas[i]
            uncertain[name] = dist
        tuple_id = tuple_ids[i]
        rows.append(
            unchecked(
                timestamp=timestamps[i],
                values={name: column[i] for name, column in value_columns},
                uncertain=uncertain,
                lineage=frozenset((tuple_id,)),
                tuple_id=tuple_id,
            )
        )
    batch = TupleBatch(rows)
    # Prime the columnar caches from the wire columns: the vectorised
    # kernels (probabilistic selection, moment sums) and the watermark
    # reads in the shard workers skip their per-row extraction passes.
    batch._timestamps = ts_column
    for name, mu_column, _, sigma_column, _ in uncertain_columns:
        batch._gaussian_cols[name] = (mu_column, sigma_column)
    return batch


def _decode_name_view(payload, offset: int):
    """`_decode_name` over bytes *or* memoryview input."""
    (length,) = _U16.unpack_from(payload, offset)
    offset += 2
    return _bytes_at(payload, offset, offset + length).decode("utf-8"), offset + length
