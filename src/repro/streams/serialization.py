"""Serialization of tuples and distributions, with size accounting.

Section 4.3 motivates compressing particle clouds into parametric
distributions partly by *stream volume*: "every tuple now carries tens
or hundreds of samples.  This will increase the stream volume by one or
two orders of magnitude."  To make that claim measurable, this module
provides a compact binary encoding for stream tuples and their
uncertain attributes, plus helpers that report encoded sizes without
materialising the bytes.

The format is a simple self-describing binary layout (struct-packed),
sufficient for shipping tuples between operators or nodes and for
measuring bandwidth; it is not meant to be a long-term storage format.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

import numpy as np

from repro.distributions import (
    Distribution,
    Gaussian,
    GaussianMixture,
    HistogramDistribution,
    ParticleDistribution,
    Uniform,
)

from .batch import TupleBatch
from .tuples import StreamTuple

__all__ = [
    "encode_distribution",
    "decode_distribution",
    "distribution_size_bytes",
    "encode_tuple",
    "decode_tuple",
    "tuple_size_bytes",
    "encode_batch",
    "decode_batch",
    "batch_size_bytes",
]

_GAUSSIAN = 1
_MIXTURE = 2
_UNIFORM = 3
_PARTICLES = 4
_HISTOGRAM = 5


def encode_distribution(dist: Distribution) -> bytes:
    """Encode a scalar distribution into a compact binary representation."""
    if isinstance(dist, Gaussian):
        return struct.pack("<Bdd", _GAUSSIAN, dist.mu, dist.sigma)
    if isinstance(dist, GaussianMixture):
        header = struct.pack("<BI", _MIXTURE, dist.n_components)
        body = np.concatenate([dist.weights, dist.means, dist.sigmas]).astype("<f8").tobytes()
        return header + body
    if isinstance(dist, Uniform):
        return struct.pack("<Bdd", _UNIFORM, dist.low, dist.high)
    if isinstance(dist, ParticleDistribution):
        header = struct.pack("<BI", _PARTICLES, dist.n_particles)
        body = np.concatenate([dist.values, dist.weights]).astype("<f8").tobytes()
        return header + body
    if isinstance(dist, HistogramDistribution):
        header = struct.pack("<BI", _HISTOGRAM, dist.n_bins)
        body = np.concatenate([dist.edges, dist.densities]).astype("<f8").tobytes()
        return header + body
    raise TypeError(f"cannot encode a distribution of type {type(dist).__name__}")


def decode_distribution(payload: bytes) -> Tuple[Distribution, int]:
    """Decode one distribution; return it and the number of bytes consumed."""
    kind = payload[0]
    if kind in (_GAUSSIAN, _UNIFORM):
        _, a, b = struct.unpack_from("<Bdd", payload)
        consumed = struct.calcsize("<Bdd")
        return (Gaussian(a, b) if kind == _GAUSSIAN else Uniform(a, b)), consumed
    if kind in (_MIXTURE, _PARTICLES, _HISTOGRAM):
        _, count = struct.unpack_from("<BI", payload)
        header = struct.calcsize("<BI")
        if kind == _MIXTURE:
            n_values = 3 * count
        elif kind == _PARTICLES:
            n_values = 2 * count
        else:
            n_values = 2 * count + 1
        body = np.frombuffer(payload, dtype="<f8", count=n_values, offset=header)
        consumed = header + n_values * 8
        if kind == _MIXTURE:
            weights, means, sigmas = body[:count], body[count : 2 * count], body[2 * count :]
            return GaussianMixture(weights, means, sigmas), consumed
        if kind == _PARTICLES:
            return ParticleDistribution(body[:count], body[count:]), consumed
        return HistogramDistribution(body[: count + 1], body[count + 1 :]), consumed
    raise ValueError(f"unknown distribution tag {kind}")


def distribution_size_bytes(dist: Distribution) -> int:
    """Return the encoded size of a distribution without building the bytes."""
    if isinstance(dist, (Gaussian, Uniform)):
        return struct.calcsize("<Bdd")
    if isinstance(dist, GaussianMixture):
        return struct.calcsize("<BI") + 3 * dist.n_components * 8
    if isinstance(dist, ParticleDistribution):
        return struct.calcsize("<BI") + 2 * dist.n_particles * 8
    if isinstance(dist, HistogramDistribution):
        return struct.calcsize("<BI") + (2 * dist.n_bins + 1) * 8
    raise TypeError(f"cannot size a distribution of type {type(dist).__name__}")


def _encode_value(value) -> bytes:
    if isinstance(value, bool):
        return b"b" + struct.pack("<B", int(value))
    if isinstance(value, int):
        return b"i" + struct.pack("<q", value)
    if isinstance(value, float):
        return b"f" + struct.pack("<d", value)
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"s" + struct.pack("<I", len(raw)) + raw
    if isinstance(value, tuple) and all(isinstance(v, (int, np.integer)) for v in value):
        return b"t" + struct.pack("<I", len(value)) + struct.pack(f"<{len(value)}q", *value)
    raise TypeError(f"cannot encode deterministic value of type {type(value).__name__}")


def _decode_value(payload: bytes, offset: int):
    tag = payload[offset : offset + 1]
    offset += 1
    if tag == b"b":
        return bool(payload[offset]), offset + 1
    if tag == b"i":
        (value,) = struct.unpack_from("<q", payload, offset)
        return value, offset + 8
    if tag == b"f":
        (value,) = struct.unpack_from("<d", payload, offset)
        return value, offset + 8
    if tag == b"s":
        (length,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        return payload[offset : offset + length].decode("utf-8"), offset + length
    if tag == b"t":
        (length,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        values = struct.unpack_from(f"<{length}q", payload, offset)
        return tuple(values), offset + 8 * length
    raise ValueError(f"unknown value tag {tag!r}")


def _encode_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _decode_name(payload: bytes, offset: int):
    (length,) = struct.unpack_from("<H", payload, offset)
    offset += 2
    return payload[offset : offset + length].decode("utf-8"), offset + length


def encode_tuple(item: StreamTuple) -> bytes:
    """Encode a stream tuple (timestamp, values, uncertain attributes, lineage)."""
    parts = [struct.pack("<dqHH", item.timestamp, item.tuple_id, len(item.values), len(item.uncertain))]
    for name, value in item.values.items():
        parts.append(_encode_name(name))
        parts.append(_encode_value(value))
    for name, dist in item.uncertain.items():
        parts.append(_encode_name(name))
        encoded = encode_distribution(dist)
        parts.append(struct.pack("<I", len(encoded)))
        parts.append(encoded)
    lineage = sorted(item.lineage)
    parts.append(struct.pack("<I", len(lineage)))
    parts.append(struct.pack(f"<{len(lineage)}q", *lineage) if lineage else b"")
    return b"".join(parts)


def decode_tuple(payload: bytes) -> StreamTuple:
    """Decode a tuple produced by :func:`encode_tuple`."""
    timestamp, tuple_id, n_values, n_uncertain = struct.unpack_from("<dqHH", payload)
    offset = struct.calcsize("<dqHH")
    values: Dict[str, object] = {}
    for _ in range(n_values):
        name, offset = _decode_name(payload, offset)
        value, offset = _decode_value(payload, offset)
        values[name] = value
    uncertain: Dict[str, Distribution] = {}
    for _ in range(n_uncertain):
        name, offset = _decode_name(payload, offset)
        (length,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        dist, _ = decode_distribution(payload[offset : offset + length])
        uncertain[name] = dist
        offset += length
    (n_lineage,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    lineage = struct.unpack_from(f"<{n_lineage}q", payload, offset) if n_lineage else ()
    return StreamTuple(
        timestamp=timestamp,
        values=values,
        uncertain=uncertain,
        lineage=frozenset(lineage),
        tuple_id=tuple_id,
    )


def tuple_size_bytes(item: StreamTuple) -> int:
    """Return the encoded size of a tuple in bytes."""
    return len(encode_tuple(item))


# ----------------------------------------------------------------------
# Batch framing
# ----------------------------------------------------------------------
#: Magic prefix identifying an encoded tuple batch (version 1).
_BATCH_MAGIC = b"TB1\x00"


def encode_batch(batch: TupleBatch) -> bytes:
    """Encode a whole batch: magic, row count, then length-prefixed tuples.

    The framing keeps rows independently decodable, so a receiver can
    stream-decode without materialising the full batch first.
    """
    parts = [_BATCH_MAGIC, struct.pack("<I", len(batch))]
    for item in batch:
        encoded = encode_tuple(item)
        parts.append(struct.pack("<I", len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


def decode_batch(payload: bytes) -> TupleBatch:
    """Decode a batch produced by :func:`encode_batch`.

    Raises ``ValueError`` on a missing magic prefix, a truncated
    payload, or trailing bytes after the declared rows, so framing
    corruption is caught here rather than surfacing as an unrelated
    error from the tuple decoder.
    """
    if payload[: len(_BATCH_MAGIC)] != _BATCH_MAGIC:
        raise ValueError("payload does not start with the tuple-batch magic prefix")
    offset = len(_BATCH_MAGIC)
    if len(payload) < offset + 4:
        raise ValueError("truncated tuple-batch payload: missing row count")
    (count,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    rows = []
    for index in range(count):
        if len(payload) < offset + 4:
            raise ValueError(f"truncated tuple-batch payload: missing length of row {index}")
        (length,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        if len(payload) < offset + length:
            raise ValueError(f"truncated tuple-batch payload: row {index} is incomplete")
        rows.append(decode_tuple(payload[offset : offset + length]))
        offset += length
    if offset != len(payload):
        raise ValueError(
            f"tuple-batch payload has {len(payload) - offset} trailing bytes after {count} rows"
        )
    return TupleBatch(rows)


def batch_size_bytes(batch: TupleBatch) -> int:
    """Return the encoded size of a batch without building the bytes."""
    return len(_BATCH_MAGIC) + 4 + sum(4 + tuple_size_bytes(item) for item in batch)
