"""Operator base classes for the box-arrow stream architecture.

Following the box-arrow paradigm (Aurora-style) described in Section 3,
a query plan is a directed acyclic graph in which every *box* is an
:class:`Operator` and every *arrow* is a connection along which tuples
flow.  Operators are push-based: the engine calls :meth:`Operator.process`
with each input tuple and forwards everything the operator emits to its
downstream boxes.
"""

from __future__ import annotations

import abc
from time import perf_counter
from typing import Callable, Iterable, List, Optional, Sequence

from ..batch import TupleBatch
from ..schema import Schema
from ..tuples import StreamTuple

__all__ = ["Operator", "FunctionOperator", "PassThroughOperator", "OperatorError"]


class OperatorError(Exception):
    """Raised when an operator is misconfigured or misused."""


class Operator(abc.ABC):
    """A query-plan box that transforms an input stream into an output stream.

    Subclasses implement :meth:`process` (per tuple) and optionally
    :meth:`flush` (end of stream).  An operator may declare an
    ``input_schema`` against which incoming tuples are validated.
    """

    #: Honest batch-support advertisement: True only when
    #: :meth:`process_batch` runs a vectorised / bulk kernel rather than
    #: the per-tuple fallback loop.  ``CompiledQuery.explain()`` and the
    #: planner's cost model read this to report (and predict) which
    #: boxes actually benefit from batch execution.  Subclasses with a
    #: real kernel override it (usually as a property that re-checks the
    #: fallback condition, so a subclass overriding ``process`` is
    #: automatically honest again).
    supports_batch: bool = False

    def __init__(self, name: Optional[str] = None, input_schema: Optional[Schema] = None):
        self.name = name or type(self).__name__
        self.input_schema = input_schema
        self._downstream: List["Operator"] = []
        self.tuples_in = 0
        self.tuples_out = 0
        self.batches_in = 0
        self.processing_seconds = 0.0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def connect(self, downstream: Operator) -> Operator:
        """Connect this operator's output to ``downstream`` and return it.

        Returning the downstream operator allows fluent chaining:
        ``source.connect(select).connect(aggregate)``.
        """
        if downstream is self:
            raise OperatorError("an operator cannot be connected to itself")
        self._downstream.append(downstream)
        return downstream

    def disconnect(self, downstream: Operator) -> None:
        """Remove the arrow to ``downstream`` (one arrow per call).

        Used for dynamic plan mutation: a continuous-query session
        detaches a dropped query's exclusive boxes from the operators
        that survive it.  Raises :class:`OperatorError` when no such
        arrow exists, so a detach that misses is never silent.
        """
        for i, op in enumerate(self._downstream):
            if op is downstream:
                del self._downstream[i]
                return
        raise OperatorError(
            f"{self.name!r} has no arrow to {downstream.name!r} to disconnect"
        )

    @property
    def downstream(self) -> Sequence["Operator"]:
        return tuple(self._downstream)

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    def _keeps_process_of(self, cls: type) -> bool:
        """True when this instance still runs ``cls``'s ``process``.

        Classes with a vectorised ``process_batch`` pair it with a
        specific ``process`` implementation; a subclass overriding
        ``process`` alone invalidates the kernel.  Such classes express
        both their ``supports_batch`` property and their kernel gate
        through this single check so the two can never disagree.
        """
        return type(self).process is cls.process

    @abc.abstractmethod
    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        """Consume one input tuple and yield zero or more output tuples."""

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Consume a batch and return the output batch.

        The default implementation is a per-tuple fallback loop over
        :meth:`process`, so every existing operator participates in
        batch execution unchanged.  Operators with a vectorisable hot
        path (filtering, probabilistic selection, moment-based
        aggregation) override this with a columnar kernel.
        """
        outputs: List[StreamTuple] = []
        process = self.process
        for item in batch:
            outputs.extend(process(item))
        return TupleBatch(outputs)

    def flush(self) -> Iterable[StreamTuple]:
        """Emit any buffered state at end of stream (default: nothing)."""
        return ()

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def accept(self, item: StreamTuple) -> List[StreamTuple]:
        """Validate, process and count one tuple; used by the engine."""
        if self.input_schema is not None:
            self.input_schema.validate(item)
        self.tuples_in += 1
        started = perf_counter()
        outputs = list(self.process(item))
        self.processing_seconds += perf_counter() - started
        self.tuples_out += len(outputs)
        return outputs

    def accept_batch(self, batch: TupleBatch) -> TupleBatch:
        """Validate, process and count a whole batch; used by the engine."""
        if self.input_schema is not None:
            for item in batch:
                self.input_schema.validate(item)
        self.tuples_in += len(batch)
        self.batches_in += 1
        started = perf_counter()
        outputs = self.process_batch(batch)
        self.processing_seconds += perf_counter() - started
        if not isinstance(outputs, TupleBatch):
            outputs = TupleBatch(outputs)
        self.tuples_out += len(outputs)
        return outputs

    def finish(self) -> List[StreamTuple]:
        """Flush and count remaining tuples; used by the engine."""
        outputs = list(self.flush())
        self.tuples_out += len(outputs)
        return outputs

    def reset_counters(self) -> None:
        """Reset the tuples-in / tuples-out / timing statistics."""
        self.tuples_in = 0
        self.tuples_out = 0
        self.batches_in = 0
        self.processing_seconds = 0.0

    # ------------------------------------------------------------------
    # Durability hooks
    # ------------------------------------------------------------------
    def state_snapshot(self) -> Optional[dict]:
        """Return this operator's mutable state, or ``None`` if stateless.

        Stateful operators (window buffers, aggregates, join build
        sides, sinks) override this to return a JSON-like dict whose
        leaves are scalars, nested dicts/lists, and lists of
        :class:`StreamTuple` (serialized by the checkpoint codec via the
        wire format).  The returned dict must be a *copy*: the operator
        keeps running after a checkpoint.
        """
        return None

    def state_restore(self, state: Optional[dict]) -> None:
        """Install a state previously returned by :meth:`state_snapshot`.

        The default accepts only ``None`` (stateless); an operator that
        overrides :meth:`state_snapshot` must override this too.
        """
        if state is not None:
            raise OperatorError(
                f"{self.name!r} ({type(self).__name__}) does not support state restore"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(name={self.name!r})"


class FunctionOperator(Operator):
    """An operator defined by a plain function ``tuple -> iterable of tuples``."""

    def __init__(
        self,
        fn: Callable[[StreamTuple], Iterable[StreamTuple]],
        name: Optional[str] = None,
        input_schema: Optional[Schema] = None,
    ):
        super().__init__(name=name or getattr(fn, "__name__", "FunctionOperator"), input_schema=input_schema)
        self._fn = fn

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        return self._fn(item)


class PassThroughOperator(Operator):
    """An operator that forwards every tuple unchanged.

    Useful as a named junction point in a plan and in tests.
    """

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        yield item

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self._keeps_process_of(PassThroughOperator)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        # Forward the batch object untouched -- but only when ``process``
        # is the identity above; a subclass overriding ``process`` alone
        # must keep per-tuple semantics on the batch path too.
        if self.supports_batch:
            return batch
        return super().process_batch(batch)
