"""Basic deterministic operators: filter, map / project, union, sink.

These are the conventional (certainty-unaware) relational boxes; the
uncertainty-aware selection, aggregation and join operators live in
:mod:`repro.core` and build on the same :class:`Operator` interface.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.distributions import Distribution

from ..batch import TupleBatch
from ..schema import Schema
from ..tuples import StreamTuple
from .base import Operator, OperatorError

__all__ = ["Filter", "Map", "AttributeDeriver", "Union", "CollectSink", "CallbackSink"]


class Filter(Operator):
    """Keep tuples for which ``predicate(tuple)`` is truthy.

    This is an ordinary deterministic selection, e.g. the
    ``object_type(tag_id) = 'flammable'`` predicate of Q2 which applies
    to a deterministic attribute.

    Parameters
    ----------
    predicate:
        Per-tuple predicate; used by both execution paths.
    batch_predicate:
        Optional columnar kernel ``TupleBatch -> boolean mask`` used by
        the batch path instead of calling ``predicate`` per tuple.  It
        must be semantically equivalent to the per-tuple predicate.
    """

    def __init__(
        self,
        predicate: Callable[[StreamTuple], bool],
        name: Optional[str] = None,
        input_schema: Optional[Schema] = None,
        batch_predicate: Optional[Callable[[TupleBatch], Sequence[bool]]] = None,
    ):
        super().__init__(name=name, input_schema=input_schema)
        self._predicate = predicate
        self._batch_predicate = batch_predicate

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        if self._predicate(item):
            yield item

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self._keeps_process_of(Filter)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        if not self.supports_batch:
            return super().process_batch(batch)
        if self._batch_predicate is not None:
            mask = np.asarray(self._batch_predicate(batch), dtype=bool)
            return batch.select(mask)
        predicate = self._predicate
        return TupleBatch([item for item in batch if predicate(item)])


class Map(Operator):
    """Transform each tuple with an arbitrary function returning a tuple."""

    def __init__(
        self,
        fn: Callable[[StreamTuple], StreamTuple],
        name: Optional[str] = None,
        input_schema: Optional[Schema] = None,
    ):
        super().__init__(name=name, input_schema=input_schema)
        self._fn = fn

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        result = self._fn(item)
        if not isinstance(result, StreamTuple):
            raise OperatorError("Map function must return a StreamTuple")
        yield result


class AttributeDeriver(Operator):
    """Add derived attributes computed from existing ones.

    This models the inner Select of Q1, which "simply adds two
    attributes to each tuple": the square-foot ``area`` computed from
    the uncertain location and the ``weight`` looked up from the tag id.

    Parameters
    ----------
    value_functions:
        Mapping from new deterministic attribute name to a function of
        the input tuple.
    uncertain_functions:
        Mapping from new uncertain attribute name to a function of the
        input tuple returning a :class:`Distribution`.
    """

    def __init__(
        self,
        value_functions: Optional[Mapping[str, Callable[[StreamTuple], Any]]] = None,
        uncertain_functions: Optional[Mapping[str, Callable[[StreamTuple], Distribution]]] = None,
        name: Optional[str] = None,
        input_schema: Optional[Schema] = None,
    ):
        super().__init__(name=name, input_schema=input_schema)
        self._value_functions: Dict[str, Callable[[StreamTuple], Any]] = dict(value_functions or {})
        self._uncertain_functions: Dict[str, Callable[[StreamTuple], Distribution]] = dict(
            uncertain_functions or {}
        )
        if not self._value_functions and not self._uncertain_functions:
            raise OperatorError("AttributeDeriver needs at least one derivation function")

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        new_values = {name: fn(item) for name, fn in self._value_functions.items()}
        new_uncertain = {}
        for name, fn in self._uncertain_functions.items():
            dist = fn(item)
            if not isinstance(dist, Distribution):
                raise OperatorError(
                    f"uncertain derivation {name!r} must return a Distribution, got {type(dist).__name__}"
                )
            new_uncertain[name] = dist
        yield item.derive(values=new_values, uncertain=new_uncertain)


class Union(Operator):
    """Merge several upstream streams into one (identity per tuple).

    Because the engine pushes tuples from any upstream operator into
    this box, Union simply forwards whatever it receives; it exists to
    give the merge point a name and statistics.
    """

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        yield item

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self._keeps_process_of(Union)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        if self.supports_batch:
            return batch
        return super().process_batch(batch)


class CollectSink(Operator):
    """Terminal operator collecting every received tuple into a list."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self.results: List[StreamTuple] = []

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        self.results.append(item)
        return ()

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self._keeps_process_of(CollectSink)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        if not self.supports_batch:
            return super().process_batch(batch)
        self.results.extend(batch)
        return TupleBatch()

    def clear(self) -> None:
        self.results.clear()

    def state_snapshot(self) -> dict:
        return {"results": list(self.results)}

    def state_restore(self, state) -> None:
        if state is None:
            raise OperatorError(f"{self.name!r} expected a collected-results state")
        self.results = list(state["results"])


class CallbackSink(Operator):
    """Terminal operator invoking a callback for every received tuple."""

    def __init__(self, callback: Callable[[StreamTuple], None], name: Optional[str] = None):
        super().__init__(name=name)
        self._callback = callback

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        self._callback(item)
        return ()

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self._keeps_process_of(CallbackSink)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        if not self.supports_batch:
            return super().process_batch(batch)
        callback = self._callback
        for item in batch:
            callback(item)
        return TupleBatch()
