"""Operator boxes for the box-arrow stream architecture."""

from .base import FunctionOperator, Operator, OperatorError, PassThroughOperator
from .basic import AttributeDeriver, CallbackSink, CollectSink, Filter, Map, Union

__all__ = [
    "Operator",
    "OperatorError",
    "FunctionOperator",
    "PassThroughOperator",
    "Filter",
    "Map",
    "AttributeDeriver",
    "Union",
    "CollectSink",
    "CallbackSink",
]
