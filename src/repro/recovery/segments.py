"""Crash-hygiene helper for shared-memory ring segments.

Ring segments are named ``repro-ring-<pid>-<hex>`` where ``<pid>`` is
the coordinator process that created them (see
:mod:`repro.runtime.shm`).  A coordinator killed with ``SIGKILL`` never
runs its unlink path, leaving the names behind in ``/dev/shm``;
:func:`reap_stale_segments` removes every segment whose creating
process no longer exists.  ``QuerySession.recover`` calls this so a
crash-recovered service starts with a clean slate.
"""

from __future__ import annotations

import os
import re
from typing import List

__all__ = ["reap_stale_segments"]

# Two shapes (see repro.runtime.shm): bare rings are
# ``repro-ring-<pid>-<hex>``; shard-transport rings append ``-s<shard>``
# plus an ``i``/``o`` direction letter.
_SEGMENT_RE = re.compile(r"^repro-ring-(\d+)-[0-9a-f]+(?:-s\d+[io])?$")
_SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # The pid exists but belongs to another user.
        return True
    return True


def reap_stale_segments() -> List[str]:
    """Unlink ring segments whose creating process is dead.

    Returns the names removed.  Segments belonging to live processes
    (including this one) are never touched; on platforms without a
    ``/dev/shm`` tmpfs this is a no-op.
    """
    if not os.path.isdir(_SHM_DIR):
        return []
    removed: List[str] = []
    for name in os.listdir(_SHM_DIR):
        match = _SEGMENT_RE.match(name)
        if match is None or _pid_alive(int(match.group(1))):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
        except FileNotFoundError:
            continue
        removed.append(name)
    return removed
