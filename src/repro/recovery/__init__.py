"""Durable checkpoint & replay subsystem.

Makes the stream service restartable:

* a ``state_snapshot()``/``state_restore()`` protocol on stateful
  operators, serialized through the columnar wire format
  (:mod:`repro.recovery.state`);
* versioned checkpoint files with full + incremental modes and atomic
  rename-on-commit (:mod:`repro.recovery.checkpoint`);
* a bounded per-query replay log feeding ``SUBSCRIBE ... RESUME <seq>``
  (:mod:`repro.recovery.replay`);
* crash hygiene for leaked shared-memory segments
  (:mod:`repro.recovery.segments`).

The session-level entry points are
:meth:`repro.service.QuerySession.checkpoint` and
:meth:`repro.service.QuerySession.recover`.
"""

from .checkpoint import CheckpointError, CheckpointInfo, CheckpointStore
from .replay import ReplayGapError, ReplayLog
from .segments import reap_stale_segments
from .state import (
    StateError,
    decode_state,
    encode_state,
    restore_engine_ops,
    snapshot_engine_ops,
)

__all__ = [
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointStore",
    "ReplayGapError",
    "ReplayLog",
    "StateError",
    "decode_state",
    "encode_state",
    "snapshot_engine_ops",
    "restore_engine_ops",
    "reap_stale_segments",
]
