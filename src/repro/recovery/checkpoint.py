"""Versioned checkpoint files with full and incremental (delta) modes.

A checkpoint directory holds a sequence of ``ckpt-%08d.rckp`` files.
Each file is

``RCK1`` magic · u32 header length · JSON header · concatenated blobs

The header records the checkpoint id, its mode, the parent id, and a
blob table mapping logical keys (``meta``, ``query/<name>``, ...) to
either an ``offset``/``length`` into this file's blob section or, in a
delta checkpoint, a ``ref`` naming the checkpoint id whose file holds
an identical blob (detected by SHA-256).  Refs always point at the
*original writer* — a delta referencing a blob that its parent itself
borrowed carries the grandparent's id — so resolving a checkpoint opens
at most one extra file per blob, never a chain.

Durability: files are written to a temporary name in the same
directory, fsynced, then published with ``os.replace`` (atomic on
POSIX), so a crash mid-checkpoint leaves the previous checkpoint as
the latest valid one.  Trimming: a ``full`` checkpoint is
self-contained; files may be deleted up to (but not past) the newest
full checkpoint without breaking any newer delta's refs.

Observability sidecars: ``save(..., metrics=snapshot)`` additionally
publishes the metrics-registry snapshot as ``metrics-%08d.json`` next
to the checkpoint file, and ``save(..., history=blob)`` the
:meth:`repro.obs.HistoryRing.to_blob` time series as
``history-%08d.json`` (same atomic-replace discipline, committed
*before* the checkpoint so a published checkpoint always finds its
sidecars).  Recovery reads them back through :meth:`load_metrics` /
:meth:`load_history` to report what the process looked like when the
state was captured — and to keep its metric time series growing across
the crash; a missing sidecar is not an error (older checkpoints have
none).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs

__all__ = ["CheckpointError", "CheckpointInfo", "CheckpointStore"]

_MAGIC = b"RCK1"
_U32 = struct.Struct("<I")
_FILE_RE = re.compile(r"^ckpt-(\d{8})\.rckp$")
_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised for malformed checkpoint files or unusable directories."""


@dataclass(frozen=True)
class CheckpointInfo:
    """Summary of one committed checkpoint."""

    checkpoint_id: int
    mode: str
    parent: Optional[int]
    path: str
    bytes_written: int
    blobs_written: int
    blobs_referenced: int


def _filename(checkpoint_id: int) -> str:
    return f"ckpt-{checkpoint_id:08d}.rckp"


class CheckpointStore:
    """Reads and writes the checkpoint files of one directory."""

    def __init__(self, directory: str):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Directory scan
    # ------------------------------------------------------------------
    def checkpoint_ids(self) -> List[int]:
        """Return committed checkpoint ids, oldest first."""
        ids = []
        for entry in os.listdir(self.directory):
            match = _FILE_RE.match(entry)
            if match:
                ids.append(int(match.group(1)))
        return sorted(ids)

    def latest_id(self) -> Optional[int]:
        ids = self.checkpoint_ids()
        return ids[-1] if ids else None

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def save(
        self,
        blobs: Dict[str, bytes],
        mode: str = "auto",
        metrics: Optional[dict] = None,
        history: Optional[dict] = None,
    ) -> CheckpointInfo:
        """Commit a checkpoint of the given blobs.

        ``mode`` is ``"full"`` (write every blob), ``"delta"`` (write
        only blobs whose content changed since the previous checkpoint,
        reference the rest), or ``"auto"`` (delta when a parent exists,
        full otherwise).  ``metrics`` (a JSON-able dict, typically a
        :meth:`repro.obs.Registry.snapshot`) and ``history`` (a
        :meth:`repro.obs.HistoryRing.to_blob` dict) are published as
        sidecar files beside the checkpoint (see module docs).
        """
        if mode not in ("auto", "full", "delta"):
            raise CheckpointError(f"unknown checkpoint mode {mode!r}")
        parent_id = self.latest_id()
        if mode == "auto":
            mode = "delta" if parent_id is not None else "full"
        if mode == "delta" and parent_id is None:
            mode = "full"
        parent_table: Dict[str, dict] = {}
        if mode == "delta":
            parent_header = self._read_header(parent_id)
            parent_table = parent_header["blobs"]

        checkpoint_id = (parent_id or 0) + 1
        table: Dict[str, dict] = {}
        sections: List[bytes] = []
        offset = 0
        referenced = 0
        for key in sorted(blobs):
            blob = blobs[key]
            digest = hashlib.sha256(blob).hexdigest()
            previous = parent_table.get(key)
            if previous is not None and previous["sha256"] == digest:
                # One-hop ref: carry the original writer's id forward.
                table[key] = {
                    "sha256": digest,
                    "ref": previous.get("ref", parent_id),
                }
                referenced += 1
                continue
            table[key] = {"sha256": digest, "offset": offset, "length": len(blob)}
            sections.append(blob)
            offset += len(blob)

        header = {
            "version": _VERSION,
            "id": checkpoint_id,
            "mode": mode,
            "parent": parent_id,
            "blobs": table,
        }
        encoded_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
        path = os.path.join(self.directory, _filename(checkpoint_id))
        if metrics is not None:
            self._write_sidecar(self._metrics_path(checkpoint_id), metrics)
        if history is not None:
            self._write_sidecar(self._history_path(checkpoint_id), history)
        tmp_path = path + ".tmp"
        with open(tmp_path, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(_U32.pack(len(encoded_header)))
            handle.write(encoded_header)
            for section in sections:
                handle.write(section)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        bytes_written = len(_MAGIC) + 4 + len(encoded_header) + offset
        registry = obs.get_registry()
        registry.counter("repro_checkpoint_saves_total", mode=mode).inc()
        registry.counter("repro_checkpoint_bytes_total").inc(bytes_written)
        registry.gauge("repro_checkpoint_last_id").set(checkpoint_id)
        return CheckpointInfo(
            checkpoint_id=checkpoint_id,
            mode=mode,
            parent=parent_id,
            path=path,
            bytes_written=bytes_written,
            blobs_written=len(sections),
            blobs_referenced=referenced,
        )

    def _metrics_path(self, checkpoint_id: int) -> str:
        return os.path.join(self.directory, f"metrics-{checkpoint_id:08d}.json")

    def _history_path(self, checkpoint_id: int) -> str:
        return os.path.join(self.directory, f"history-{checkpoint_id:08d}.json")

    @staticmethod
    def _write_sidecar(path: str, document: dict) -> None:
        tmp_path = path + ".tmp"
        encoded = json.dumps(document, separators=(",", ":")).encode("utf-8")
        with open(tmp_path, "wb") as handle:
            handle.write(encoded)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)

    @staticmethod
    def _read_sidecar(path: str) -> Optional[dict]:
        try:
            with open(path, "rb") as handle:
                return json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            return None

    def load_metrics(self, checkpoint_id: int) -> Optional[dict]:
        """The metrics-registry snapshot saved with a checkpoint, if any."""
        return self._read_sidecar(self._metrics_path(checkpoint_id))

    def load_history(self, checkpoint_id: int) -> Optional[dict]:
        """The history-ring blob saved with a checkpoint, if any."""
        return self._read_sidecar(self._history_path(checkpoint_id))

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _path(self, checkpoint_id: int) -> str:
        return os.path.join(self.directory, _filename(checkpoint_id))

    def _read_header(self, checkpoint_id: int) -> dict:
        header, _ = self._read_file(checkpoint_id, header_only=True)
        return header

    def _read_file(
        self, checkpoint_id: int, header_only: bool = False
    ) -> Tuple[dict, bytes]:
        path = self._path(checkpoint_id)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            raise CheckpointError(
                f"checkpoint {checkpoint_id} is missing from {self.directory!r} "
                "(a delta in this directory references it; full checkpoints and "
                "everything after them must be kept together)"
            ) from None
        if raw[: len(_MAGIC)] != _MAGIC:
            raise CheckpointError(f"{path!r} is not a checkpoint file")
        (header_len,) = _U32.unpack_from(raw, len(_MAGIC))
        start = len(_MAGIC) + 4
        header = json.loads(raw[start : start + header_len].decode("utf-8"))
        if header.get("version") != _VERSION:
            raise CheckpointError(
                f"{path!r} has checkpoint version {header.get('version')}, "
                f"expected {_VERSION}"
            )
        body = b"" if header_only else raw[start + header_len :]
        return header, body

    def load(self, checkpoint_id: int) -> Tuple[dict, Dict[str, bytes]]:
        """Return ``(header, blobs)`` with every ref resolved."""
        header, body = self._read_file(checkpoint_id)
        blobs: Dict[str, bytes] = {}
        foreign_cache: Dict[int, Tuple[dict, bytes]] = {}
        for key, entry in header["blobs"].items():
            if "ref" in entry:
                writer_id = entry["ref"]
                if writer_id not in foreign_cache:
                    foreign_cache[writer_id] = self._read_file(writer_id)
                writer_header, writer_body = foreign_cache[writer_id]
                writer_entry = writer_header["blobs"].get(key)
                if writer_entry is None or "ref" in writer_entry:
                    raise CheckpointError(
                        f"checkpoint {checkpoint_id} references blob {key!r} in "
                        f"checkpoint {writer_id}, which does not carry it"
                    )
                blob = writer_body[
                    writer_entry["offset"] : writer_entry["offset"] + writer_entry["length"]
                ]
            else:
                blob = body[entry["offset"] : entry["offset"] + entry["length"]]
            if hashlib.sha256(blob).hexdigest() != entry["sha256"]:
                raise CheckpointError(
                    f"checkpoint {checkpoint_id} blob {key!r} failed its integrity check"
                )
            blobs[key] = blob
        return header, blobs

    def load_latest(self) -> Tuple[dict, Dict[str, bytes]]:
        latest = self.latest_id()
        if latest is None:
            raise CheckpointError(f"no checkpoints found in {self.directory!r}")
        return self.load(latest)
