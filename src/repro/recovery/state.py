"""Serialization of operator state dicts for checkpoint files.

Operator :meth:`~repro.streams.Operator.state_snapshot` returns a
JSON-like dict whose leaves may include *lists of stream tuples*
(buffered windows, join build sides, collected results).  This module
encodes such a dict as a compact two-section payload:

``RST1`` magic · u32 header length · JSON header · u32 batch count ·
length-prefixed batch sections

The header is the state dict with every non-empty list of tuples
replaced by a ``{"__batch__": i}`` placeholder referencing the *i*-th
batch section, which is the existing wire format
(:func:`~repro.streams.serialization.encode_batch_wire`) — columnar
when eligible, row framing otherwise — so tuple ids, lineage sets and
distributions round-trip exactly.  Floats use Python's JSON dialect
(``Infinity``/``NaN`` literals), which matters for watermark fields.
"""

from __future__ import annotations

import json
import struct
from typing import Any, List

from repro.streams.batch import TupleBatch
from repro.streams.serialization import decode_batch, encode_batch_wire
from repro.streams.tuples import StreamTuple

__all__ = [
    "StateError",
    "encode_state",
    "decode_state",
    "snapshot_engine_ops",
    "restore_engine_ops",
]

_MAGIC = b"RST1"
_U32 = struct.Struct("<I")

#: Placeholder key marking an extracted tuple list in the JSON header.
_BATCH_KEY = "__batch__"


class StateError(RuntimeError):
    """Raised when a state payload is malformed or mismatches the plan."""


def _extract(value: Any, batches: List[bytes]) -> Any:
    """Replace tuple lists with batch placeholders, depth-first."""
    if isinstance(value, dict):
        return {key: _extract(child, batches) for key, child in value.items()}
    if isinstance(value, (list, tuple)):
        seq = list(value)
        if seq and all(isinstance(item, StreamTuple) for item in seq):
            batches.append(encode_batch_wire(TupleBatch(seq)))
            return {_BATCH_KEY: len(batches) - 1}
        return [_extract(child, batches) for child in seq]
    if isinstance(value, StreamTuple):
        raise StateError(
            "bare StreamTuple in operator state; wrap tuples in lists so the "
            "codec can batch-encode them"
        )
    return value


def _restore(value: Any, batches: List[TupleBatch]) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {_BATCH_KEY}:
            return batches[value[_BATCH_KEY]].to_tuples()
        return {key: _restore(child, batches) for key, child in value.items()}
    if isinstance(value, list):
        return [_restore(child, batches) for child in value]
    return value


def encode_state(state: Any) -> bytes:
    """Encode a state dict (see module docstring for the layout)."""
    batches: List[bytes] = []
    header = json.dumps(_extract(state, batches), separators=(",", ":")).encode("utf-8")
    parts = [_MAGIC, _U32.pack(len(header)), header, _U32.pack(len(batches))]
    for blob in batches:
        parts.append(_U32.pack(len(blob)))
        parts.append(blob)
    return b"".join(parts)


def decode_state(payload: bytes) -> Any:
    """Decode a payload produced by :func:`encode_state`."""
    payload = bytes(payload)
    if payload[: len(_MAGIC)] != _MAGIC:
        raise StateError("payload does not start with the state magic prefix")
    offset = len(_MAGIC)
    (header_len,) = _U32.unpack_from(payload, offset)
    offset += 4
    header = json.loads(payload[offset : offset + header_len].decode("utf-8"))
    offset += header_len
    (count,) = _U32.unpack_from(payload, offset)
    offset += 4
    batches: List[TupleBatch] = []
    for _ in range(count):
        (length,) = _U32.unpack_from(payload, offset)
        offset += 4
        batches.append(decode_batch(payload[offset : offset + length]))
        offset += length
    if offset != len(payload):
        raise StateError("trailing bytes after the declared batch sections")
    return _restore(header, batches)


# ----------------------------------------------------------------------
# Whole-engine snapshots (single-query engines: shard runners, fallback
# and suffix plans).  Multi-query session engines snapshot per query by
# plan fingerprint instead — see ``QuerySession.checkpoint``.
# ----------------------------------------------------------------------
def snapshot_engine_ops(engine) -> List[dict]:
    """Snapshot every operator of a :class:`StreamEngine` in topo order.

    The order is deterministic for two engines built by the same
    compilation path (discovery is a BFS from the registration order),
    which is exactly the recover scenario: the plan is recompiled from
    the same source, then states are re-applied positionally, with the
    operator name at each position verified as a safety net.
    """
    return [
        {"name": op.name, "state": op.state_snapshot()}
        for op in engine._topological_order()
    ]


def restore_engine_ops(engine, entries: List[dict]) -> None:
    """Re-apply :func:`snapshot_engine_ops` output onto a rebuilt engine."""
    ops = engine._topological_order()
    if len(ops) != len(entries):
        raise StateError(
            f"engine has {len(ops)} operators, checkpoint recorded {len(entries)}; "
            "recover with the same query and planner settings as the checkpoint"
        )
    for op, entry in zip(ops, entries):
        if entry["name"] != op.name:
            raise StateError(
                f"operator order mismatch: engine has {op.name!r} where the "
                f"checkpoint recorded {entry['name']!r}"
            )
        op.state_restore(entry["state"])
