"""Bounded per-query replay log of emitted results.

Every result a query's sink emits is appended here and assigned a
monotonically increasing *seq* (starting at 1).  A subscriber that
reconnects with ``SUBSCRIBE ... RESUME <seq>`` is fed exactly the
entries with a larger seq; when the bounded log has already trimmed
past that position the server raises :class:`ReplayGapError` instead of
silently skipping results, so the client can fall back to a snapshot +
full resubscribe.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro import obs
from repro.analysis.sanitize import check as _sanitize_check
from repro.analysis.sanitize import sanitizer_enabled as _sanitizer_enabled
from repro.streams.tuples import StreamTuple

__all__ = ["ReplayLog", "ReplayGapError"]


class ReplayGapError(RuntimeError):
    """A RESUME position older than the oldest retained log entry."""

    def __init__(self, query: str, after_seq: int, first_retained: int):
        super().__init__(
            f"replay log for query {query!r} starts at seq {first_retained}; "
            f"cannot resume after seq {after_seq}"
        )
        self.query = query
        self.after_seq = after_seq
        self.first_retained = first_retained

    @classmethod
    def from_message(cls, message: str) -> ReplayGapError:
        """Rebuild from a server error frame (positions unknown client-side)."""
        error = cls.__new__(cls)
        RuntimeError.__init__(error, message)
        error.query = None
        error.after_seq = None
        error.first_retained = None
        return error


class ReplayLog:
    """Bounded FIFO of ``(seq, result)`` pairs for one query."""

    def __init__(self, capacity: int = 4096, query: str = "?"):
        if capacity < 1:
            raise ValueError(f"replay capacity must be at least 1, got {capacity}")
        self.capacity = int(capacity)
        self.query = query
        self._items: Deque[StreamTuple] = deque()
        #: Number of entries trimmed off the front; the retained entries
        #: cover seqs ``base+1 .. base+len(items)``.
        self._base = 0
        # REPRO_SANITIZE=1 arms seq-monotonicity checks; latched here.
        self._sanitize = _sanitizer_enabled()
        # Seq the sanitizer expects the next append to follow from;
        # re-latched by state_restore (a legitimate seq jump).
        self._san_expected = 0
        registry = obs.get_registry()
        self._appended = registry.counter("repro_replay_appended_total", query=query)
        self._trimmed = registry.counter("repro_replay_trimmed_total", query=query)

    @property
    def last_seq(self) -> int:
        """Seq of the newest result emitted so far (0 before the first)."""
        return self._base + len(self._items)

    @property
    def first_retained(self) -> int:
        """Oldest seq still replayable (``last_seq + 1`` when empty)."""
        return self._base + 1

    def append(self, item: StreamTuple) -> int:
        """Record one emitted result, trimming the oldest past capacity."""
        self._items.append(item)
        self._appended.inc()
        if len(self._items) > self.capacity:
            self._items.popleft()
            self._base += 1
            self._trimmed.inc()
        if self._sanitize:
            _sanitize_check(
                self.last_seq == self._san_expected + 1,
                f"replay log for query {self.query!r}: append moved last_seq "
                f"to {self.last_seq}, expected {self._san_expected + 1}",
            )
            self._san_expected = self.last_seq
        return self.last_seq

    def replay_from(self, after_seq: int) -> List[Tuple[int, StreamTuple]]:
        """Return ``(seq, result)`` for every entry with seq > ``after_seq``.

        Raises :class:`ReplayGapError` when entries in that range have
        been trimmed.  ``after_seq == last_seq`` returns an empty list.
        """
        after_seq = int(after_seq)
        if after_seq > self.last_seq:
            raise ReplayGapError(self.query, after_seq, self.first_retained)
        if after_seq < self._base:
            raise ReplayGapError(self.query, after_seq, self.first_retained)
        skip = after_seq - self._base
        entries = [
            (self._base + skip + offset + 1, item)
            for offset, item in enumerate(list(self._items)[skip:])
        ]
        if self._sanitize and entries:
            _sanitize_check(
                entries[0][0] == after_seq + 1,
                f"replay log for query {self.query!r}: replay after seq "
                f"{after_seq} starts at {entries[0][0]}, expected {after_seq + 1}",
            )
            _sanitize_check(
                all(
                    later == earlier + 1
                    for (earlier, _), (later, _) in zip(entries, entries[1:])
                ),
                f"replay log for query {self.query!r}: replayed seqs are not "
                "strictly consecutive",
            )
        return entries

    def state_snapshot(self) -> dict:
        return {"base": self._base, "items": list(self._items)}

    def state_restore(self, state: dict) -> None:
        self._base = int(state["base"])
        self._items = deque(state["items"])
        while len(self._items) > self.capacity:
            self._items.popleft()
            self._base += 1
        self._san_expected = self.last_seq
