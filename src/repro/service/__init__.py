"""Continuous-query service layer.

:class:`QuerySession` hosts many named continuous queries — CQL text
(:mod:`repro.cql`) or fluent :class:`~repro.plan.Stream` pipelines — in
one shared :class:`~repro.streams.engine.StreamEngine`, with
cross-query subplan sharing, dynamic register/drop/pause/resume, and
per-query sinks and statistics.  See :mod:`repro.service.session`.
"""

from .session import BoxReport, QuerySession, RegisteredQuery, ServiceError

__all__ = ["QuerySession", "RegisteredQuery", "BoxReport", "ServiceError"]
