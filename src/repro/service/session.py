"""`QuerySession`: a continuous-query service over one shared engine.

The paper's setting is a long-running stream processor that *hosts*
declarative continuous queries: users register CQL text (or fluent
:class:`~repro.plan.Stream` pipelines) against named input streams,
results accumulate per query, and queries come and go while the engine
keeps running.  A :class:`QuerySession` provides exactly that surface:

>>> session = QuerySession()
>>> session.create_stream("rfid", uncertain=("weight",), family="gaussian")
>>> session.register("q1", "SELECT SUM(weight) FROM rfid [ROWS 100]")
>>> session.push_many("rfid", tuples)
>>> session.results("q1")

**Cross-query subplan sharing.**  Registration compiles the query's
optimized logical plan node-by-node, but before lowering a node it
looks its *structural fingerprint* (:mod:`repro.plan.fingerprint`) up
in the session-wide box table: if another registered query already
lowered an identical subtree — same source, same filters, same window,
in the same order — the existing physical operator chain is reused and
the new query's sink simply taps it.  The shared prefix then executes
**once** per input tuple no matter how many queries consume it
(visible in :meth:`explain` and :meth:`statistics`).  Boxes are
ref-counted by owning query; :meth:`drop` detaches only the boxes the
dropped query owned exclusively, so the remaining queries keep their
operator state (window contents, join buffers) untouched.

**Dynamic attach/detach.**  Queries may be registered and dropped
while data is flowing; a newly attached query starts observing tuples
pushed after its registration (shared stateful boxes contribute their
existing state, exactly as a shared handle would in one plan).

**Pause/resume** gate a query's *sink*: while paused, results arriving
at the sink are discarded (and counted), but shared upstream boxes
keep running for the other queries.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple, Union

from repro import obs
from repro.cql.lowering import lower_query
from repro.plan.builder import Stream
from repro.plan.fingerprint import plan_fingerprints
from repro.plan.nodes import (
    JoinNode,
    LogicalNode,
    LogicalPlan,
    SourceNode,
    topological_nodes,
)
from repro.plan.planner import NodeLowering, Planner
from repro.plan.rewrites import RewriteTrace
from repro.plan.sharding import split_for_sharding
from repro.recovery import CheckpointInfo, CheckpointStore, ReplayLog, reap_stale_segments
from repro.recovery.state import decode_state, encode_state
from repro.runtime.engine import ShardedEngine, ShardedStatistics
from repro.streams.batch import TupleBatch
from repro.streams.engine import OperatorStats, StreamEngine
from repro.streams.operators.base import Operator
from repro.streams.operators.basic import CollectSink
from repro.streams.tuples import StreamTuple, advance_tuple_counter, tuple_counter_mark

__all__ = ["QuerySession", "RegisteredQuery", "ServiceError", "BoxReport"]


class ServiceError(Exception):
    """Raised for query-service misuse (duplicate names, bad drops, ...)."""


class _QuerySink(CollectSink):
    """Per-query result sink with a pause gate, callback and listeners.

    ``callback`` is fixed at registration (the ``on_result`` argument);
    ``listeners`` come and go over the query's lifetime — the network
    service attaches one per subscriber
    (:meth:`QuerySession.add_listener`).
    """

    def __init__(
        self,
        name: str,
        callback: Optional[Callable[[StreamTuple], None]] = None,
        query: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.paused = False
        self.dropped = 0
        self._callback = callback
        self.listeners: List[Callable[[StreamTuple], None]] = []
        #: Bounded result history backing ``SUBSCRIBE ... RESUME``.  The
        #: append happens *before* listeners run, so a listener reading
        #: ``replay.last_seq`` sees the sequence number of the item it
        #: is being handed.
        self.replay: Optional[ReplayLog] = None
        #: End-to-end latency accounting: when a delivery runs under an
        #: active trace context the ingest→sink delay lands here.
        self.query_label = query or name
        self.latency = obs.get_registry().histogram(
            "repro_query_latency_seconds", query=self.query_label
        )
        self.last_trace: Optional[obs.TraceContext] = None
        self.last_delivered_at: Optional[float] = None

    def _emit(self, item: StreamTuple) -> None:
        if self._callback is not None:
            self._callback(item)
        for listener in self.listeners:
            listener(item)

    def _accept(self, item: StreamTuple) -> None:
        if self.replay is not None:
            self.replay.append(item)
        if self._callback is not None or self.listeners:
            self._emit(item)

    def _record_delivery(self, count: int) -> None:
        trace = obs.active()
        if trace is None:
            return
        now = obs.trace_clock()
        self.latency.observe(max(0.0, now - trace.t_ingest), count=count)
        self.last_trace = trace
        self.last_delivered_at = now

    def process(self, item: StreamTuple) -> Iterable[StreamTuple]:
        if self.paused:
            self.dropped += 1
            return ()
        self.results.append(item)
        self._record_delivery(1)
        self._accept(item)
        return ()

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self._keeps_process_of(_QuerySink)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        if not self.supports_batch:
            return super().process_batch(batch)
        if self.paused:
            self.dropped += len(batch)
            return TupleBatch()
        self.results.extend(batch)
        if len(batch):
            self._record_delivery(len(batch))
        if self.replay is not None or self._callback is not None or self.listeners:
            for item in batch:
                self._accept(item)
        return TupleBatch()


@dataclass
class _SharedBox:
    """One physical box plus the queries that own (use) it."""

    op: Operator
    node: LogicalNode  # representative logical node (first registrant's)
    owners: List[str]
    #: Arrows wired *into* this box: (parent operator, connect target).
    #: The target differs from ``op`` only for joins, whose inputs go
    #: through port adapters.
    inbound: List[Tuple[Operator, Operator]]

    def add_owner(self, name: str) -> None:
        if name not in self.owners:
            self.owners.append(name)


@dataclass
class _Registered:
    name: str
    text: Optional[str]
    plan: LogicalPlan
    optimized: LogicalPlan
    rewrites: List[RewriteTrace]
    fingerprints: List[Hashable]  # topo order over the optimized plan
    sink: _QuerySink
    root_fingerprint: Hashable
    strategy_decisions: list
    #: Set when the query runs in its own sharded runtime instead of the
    #: session's shared engine (``QuerySession(workers=N)``).
    sharded: Optional[ShardedEngine] = None


@dataclass(frozen=True)
class BoxReport:
    """One physical box in a statistics report, with its owners."""

    stats: OperatorStats
    owners: Tuple[str, ...]

    @property
    def shared(self) -> bool:
        return len(self.owners) > 1


class RegisteredQuery:
    """Handle returned by :meth:`QuerySession.register`."""

    def __init__(self, session: QuerySession, name: str):
        self._session = session
        self.name = name

    @property
    def results(self) -> List[StreamTuple]:
        return self._session.results(self.name)

    @property
    def sharded(self) -> bool:
        """True when this query runs in its own sharded worker pool."""
        return self._session.is_sharded(self.name)

    def take(self) -> List[StreamTuple]:
        return self._session.take(self.name)

    def explain(self) -> str:
        return self._session.explain(self.name)

    def statistics(self) -> List[BoxReport]:
        return self._session.statistics(self.name)

    def observed_stats(self) -> Dict:
        """Latency histogram and per-operator rates (see session method)."""
        return self._session.observed_stats(self.name)

    def pause(self) -> None:
        self._session.pause(self.name)

    def resume(self) -> None:
        self._session.resume(self.name)

    def drop(self) -> None:
        self._session.drop(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RegisteredQuery({self.name!r})"


class QuerySession:
    """Hosts many named continuous queries in one shared engine.

    Parameters
    ----------
    planner:
        The :class:`~repro.plan.Planner` used to optimize and lower
        registered queries (rewrites, cost model).
    batch_size:
        When set, :meth:`push_many` runs the engine's batch path with
        this chunk size; ``None`` (default) runs tuple-at-a-time.
    optimize:
        Apply the planner's rewrite rules to registered queries.
    functions:
        UDFs available to every registered CQL query (individual
        ``register`` calls can add more).
    workers:
        When positive, queries whose plans the partition-aware planner
        pass can split (:func:`repro.plan.sharding.split_for_sharding`)
        transparently run in their own
        :class:`~repro.runtime.ShardedEngine` with this many worker
        processes; pushes into their sources are routed to the shards
        and merged results land in the query's sink exactly as for
        engine-hosted queries.  Unshardable queries keep running in the
        shared engine.  Sharded queries do not participate in
        cross-query subplan sharing (each owns its worker pool).
    shard_backend / shard_chunk_size:
        Backend (``"process"`` or ``"inline"``) and chunk size for the
        sharded runtime.
    shard_remote_shards:
        TCP addresses (``"host:port"``) of running
        :class:`~repro.net.shard.ShardServer` processes; a sharded
        query's highest shard slots connect there instead of forking
        (see ``ShardedEngine(remote_shards=...)``).  A shard server
        accepts one coordinator at a time, so sessions hosting several
        shardable queries should leave this empty and wire remote
        shards per :class:`~repro.runtime.ShardedEngine` instead.
    """

    def __init__(
        self,
        planner: Optional[Planner] = None,
        batch_size: Optional[int] = None,
        optimize: bool = True,
        functions: Optional[Mapping[str, Callable]] = None,
        workers: int = 0,
        shard_backend: str = "process",
        shard_chunk_size: int = 1024,
        shard_remote_shards: Iterable[str] = (),
        replay_capacity: int = 4096,
        trace_sample: Optional[int] = None,
        history_capacity: int = 512,
        history_interval: float = 0.0,
    ):
        if workers < 0:
            raise ServiceError(f"workers must be non-negative, got {workers}")
        if replay_capacity < 0:
            raise ServiceError(
                f"replay_capacity must be non-negative, got {replay_capacity}"
            )
        if trace_sample is not None:
            # Set before any sharded query forks workers, so both sides
            # of the fork make identical sampling decisions.
            obs.set_trace_sample(trace_sample)
        self.engine = StreamEngine(batch_size=batch_size)
        self._planner = planner or Planner()
        self._batch_size = batch_size
        self._optimize = optimize
        self._functions: Dict[str, Callable] = dict(functions or {})
        self._workers = workers
        self._shard_backend = shard_backend
        self._shard_chunk_size = shard_chunk_size
        self._shard_remote_shards = tuple(shard_remote_shards)
        self._replay_capacity = replay_capacity
        self._streams: Dict[str, SourceNode] = {}  # locked source declarations
        self._declared: set = set()  # names declared via create_stream
        self._entries: Dict[str, Operator] = {}  # engine entry ops
        self._boxes: Dict[Hashable, _SharedBox] = {}
        self._queries: Dict[str, _Registered] = {}
        #: source name -> sharded queries reading it (push-path index;
        #: push runs per tuple, so no per-push scan over all queries).
        self._sharded_by_source: Dict[str, List[_Registered]] = {}
        self._closed = False
        #: Set by :meth:`recover`: the metrics snapshot saved with the
        #: restored checkpoint (``None`` for fresh sessions).
        self.recovered_metrics: Optional[Dict] = None
        #: Set by :meth:`recover`: the history blob saved with the
        #: restored checkpoint (also replayed into :attr:`history`).
        self.recovered_history: Optional[Dict] = None
        # Flight-recorder layers 2 and 3: the metrics time-series ring
        # and the health engine evaluating its rules off it.  Ticks are
        # recorded synchronously (record_tick / health_tick) and, when
        # history_interval > 0, by a daemon recorder thread.
        self.history = obs.HistoryRing(capacity=history_capacity)
        self.health = obs.HealthEngine(self.history)
        self._history_interval = float(history_interval)
        self._recorder_stop = threading.Event()
        self._recorder_thread: Optional[threading.Thread] = None
        if self._history_interval > 0:
            self._recorder_thread = threading.Thread(
                target=self._recorder_loop, daemon=True, name="repro-obs-recorder"
            )
            self._recorder_thread.start()

    # ------------------------------------------------------------------
    # Stream & function registry
    # ------------------------------------------------------------------
    def create_stream(
        self,
        name: str,
        values: Optional[Iterable[str]] = None,
        uncertain=None,
        family: Optional[str] = None,
        rate_hint: Optional[float] = None,
    ) -> Stream:
        """Declare a named input stream; returns a fluent handle on it.

        Declared streams give CQL queries schema checking and
        uncertain-attribute classification, give the cost model its
        family/rate/selectivity hints, and persist across query drops.
        The returned :class:`~repro.plan.Stream` handle can be extended
        fluently and registered — the programmatic escape hatch.
        """
        if name in self._streams:
            raise ServiceError(f"stream {name!r} is already declared")
        handle = Stream.source(
            name, values=values, uncertain=uncertain, family=family, rate_hint=rate_hint
        )
        self._streams[name] = handle.node  # type: ignore[assignment]
        self._declared.add(name)
        return handle

    def create_function(self, name: str, fn: Callable) -> None:
        """Register a UDF usable from every CQL query in this session."""
        if not callable(fn):
            raise ServiceError(f"function {name!r} must be callable")
        self._functions[name] = fn

    @property
    def streams(self) -> List[str]:
        """Names of all known input streams (declared or adopted)."""
        return sorted(self._streams)

    @property
    def queries(self) -> List[str]:
        """Names of the currently registered queries."""
        return sorted(self._queries)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def analyze(
        self,
        query: str,
        functions: Optional[Mapping[str, Callable]] = None,
    ) -> list:
        """Semantically analyze CQL text against this session's schemas.

        Returns the list of :class:`repro.analysis.Diagnostic` findings
        (errors and warnings) without registering anything.  This is the
        same pass :meth:`register` runs under ``strict=True`` and the
        server surfaces in REGISTER reply headers.
        """
        from repro.analysis.semantic import analyze_query

        merged = dict(self._functions)
        merged.update(functions or {})
        return analyze_query(query, sources=self._streams, functions=merged)

    def register(
        self,
        name: str,
        query: Union[str, Stream, LogicalPlan],
        functions: Optional[Mapping[str, Callable]] = None,
        on_result: Optional[Callable[[StreamTuple], None]] = None,
        strict: bool = False,
    ) -> RegisteredQuery:
        """Register a continuous query under ``name`` and start it.

        ``query`` is CQL text, a fluent :class:`~repro.plan.Stream`, or
        a single-output :class:`~repro.plan.LogicalPlan`.  Subplans
        structurally identical to already-registered queries attach to
        the existing physical boxes instead of new ones.
        ``on_result`` is called for every tuple the query emits (in
        addition to collection in :meth:`results`).

        ``strict=True`` runs the CQL semantic analyzer first and raises
        :class:`repro.analysis.AnalysisError` when it reports errors
        (typo'd columns, deterministic ``=`` on uncertain attributes,
        broken windows, ...), instead of letting the query lower into
        something silently wrong.
        """
        if name in self._queries:
            raise ServiceError(f"a query named {name!r} is already registered")
        text: Optional[str] = None
        if isinstance(query, str):
            text = query
            if strict:
                from repro.analysis import AnalysisError, errors

                found = errors(self.analyze(query, functions))
                if found:
                    raise AnalysisError(found)
            merged = dict(self._functions)
            merged.update(functions or {})
            plan = lower_query(query, sources=self._streams, functions=merged)
        elif isinstance(query, Stream):
            plan = query.plan()
        elif isinstance(query, LogicalPlan):
            plan = query
            plan.validate()
        else:
            raise ServiceError(
                f"register() takes CQL text, a Stream or a LogicalPlan, "
                f"got {type(query).__name__}"
            )
        if len(plan.outputs) != 1:
            raise ServiceError(
                "register one query per output; use several register() calls "
                "for multi-output plans"
            )
        if self._optimize:
            optimized, traces = self._planner.optimize(plan)
            optimized.validate()
        else:
            optimized, traces = plan, []

        self._adopt_sources(optimized)

        if self._workers:
            decision = split_for_sharding(optimized, self._planner.cost_model)
            if decision.shardable:
                return self._register_sharded(
                    name, text, plan, optimized, traces, on_result
                )

        overrides = {src: ("session-source", src) for src in self._streams}
        fingerprints = plan_fingerprints(optimized.outputs, source_overrides=overrides)

        nodes = topological_nodes(optimized.outputs)
        lowering = NodeLowering(self._planner.cost_model, nodes)
        created: List[Hashable] = []
        try:
            for node in nodes:
                self._attach_node(node, fingerprints, lowering, name, created)
            sink = self._make_sink(name, on_result)
            root = optimized.outputs[0]
            self._boxes[fingerprints[id(root)]].op.connect(sink)
            self.engine.register(sink)
            self.engine.validate()
        except Exception:
            self._rollback(name, created)
            raise

        self._queries[name] = _Registered(
            name=name,
            text=text,
            plan=plan,
            optimized=optimized,
            rewrites=list(traces),
            fingerprints=[fingerprints[id(n)] for n in nodes],
            sink=sink,
            root_fingerprint=fingerprints[id(root)],
            strategy_decisions=list(lowering.strategy_decisions),
        )
        return RegisteredQuery(self, name)

    def _make_sink(
        self, name: str, on_result: Optional[Callable[[StreamTuple], None]]
    ) -> _QuerySink:
        sink = _QuerySink(name=f"sink:{name}", callback=on_result, query=name)
        if self._replay_capacity:
            sink.replay = ReplayLog(self._replay_capacity, query=name)
        return sink

    def _register_sharded(
        self,
        name: str,
        text: Optional[str],
        plan: LogicalPlan,
        optimized: LogicalPlan,
        traces,
        on_result: Optional[Callable[[StreamTuple], None]],
    ) -> RegisteredQuery:
        """Run a shardable query in its own worker pool (see ``workers=``)."""
        sink = self._make_sink(name, on_result)
        sharded = ShardedEngine(
            optimized,
            workers=self._workers,
            backend=self._shard_backend,
            chunk_size=self._shard_chunk_size,
            mode="auto",
            batch_size=self._batch_size,
            planner=self._planner,
            optimize=False,  # the session already ran the rewrite rules
            sink=sink,
            remote_shards=self._shard_remote_shards,
        )
        registered = _Registered(
            name=name,
            text=text,
            plan=plan,
            optimized=optimized,
            rewrites=list(traces),
            fingerprints=[],
            sink=sink,
            root_fingerprint=None,
            strategy_decisions=[],
            sharded=sharded,
        )
        self._queries[name] = registered
        for source in sharded.sources:
            self._sharded_by_source.setdefault(source, []).append(registered)
        return RegisteredQuery(self, name)

    def _adopt_sources(self, plan: LogicalPlan) -> None:
        """Lock in (or check against) the session's source declarations."""
        for source in plan.sources:
            locked = self._streams.get(source.name)
            if locked is None:
                self._streams[source.name] = source
                continue
            if locked is source:
                continue
            open_decl = (
                source.values is None
                and source.uncertain is None
                and source.family is None
                and source.rate_hint is None
                and source.stats is None
            )
            if open_decl:
                continue  # an undeclared reference adopts the locked schema
            fp_new = next(iter(plan_fingerprints((source,)).values()))
            fp_old = next(iter(plan_fingerprints((locked,)).values()))
            if fp_new != fp_old:
                raise ServiceError(
                    f"stream {source.name!r} is already declared with a "
                    "different schema; reuse the session's declaration "
                    "(see QuerySession.create_stream)"
                )

    def _attach_node(
        self,
        node: LogicalNode,
        fingerprints: Dict[int, Hashable],
        lowering: NodeLowering,
        owner: str,
        created: List[Hashable],
    ) -> None:
        fingerprint = fingerprints[id(node)]
        box = self._boxes.get(fingerprint)
        if box is not None:
            box.add_owner(owner)
            return
        if isinstance(node, SourceNode):
            entry = self._entries.get(node.name)
            if entry is None:
                entry = lowering.source_operator(node)
                self.engine.add_source(node.name, entry)
                self._entries[node.name] = entry
            self._boxes[fingerprint] = _SharedBox(entry, node, [owner], [])
            created.append(fingerprint)
            return
        op = lowering.lower(node)
        inbound: List[Tuple[Operator, Operator]] = []
        if isinstance(node, JoinNode):
            left_op = self._boxes[fingerprints[id(node.left)]].op
            right_op = self._boxes[fingerprints[id(node.right)]].op
            left_port, right_port = op.left_port(), op.right_port()
            left_op.connect(left_port)
            right_op.connect(right_port)
            inbound = [(left_op, left_port), (right_op, right_port)]
        else:
            for child in node.inputs:
                child_op = self._boxes[fingerprints[id(child)]].op
                child_op.connect(op)
                inbound.append((child_op, op))
        self.engine.register(op)
        self._boxes[fingerprint] = _SharedBox(op, node, [owner], inbound)
        created.append(fingerprint)

    def _rollback(self, owner: str, created: List[Hashable]) -> None:
        """Undo a failed registration: detach everything it created."""
        for fingerprint in reversed(created):
            box = self._boxes.get(fingerprint)
            if box is None:
                continue
            if box.owners == [owner] or not box.owners:
                if isinstance(box.node, SourceNode) and box.node.name in self._declared:
                    # Streams declared via create_stream keep their entry
                    # box and schema declaration, exactly as in drop().
                    box.owners = []
                else:
                    self._detach_box(fingerprint, box)
            else:
                box.owners = [o for o in box.owners if o != owner]
        # Boxes that pre-existed may have gained this owner before the
        # failure; scrub it.
        for box in self._boxes.values():
            box.owners = [o for o in box.owners if o != owner]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _query(self, name: str) -> _Registered:
        try:
            return self._queries[name]
        except KeyError as exc:
            known = ", ".join(sorted(self._queries)) or "none"
            raise ServiceError(
                f"no query named {name!r} is registered (registered: {known})"
            ) from exc

    def drop(self, name: str) -> None:
        """Drop a query: detach its sink and exclusively-owned boxes.

        Boxes shared with other queries lose this query as an owner but
        keep running with their state; the dropped query's exclusive
        suffix is disconnected from them and unregistered.  Declared
        streams persist even when their last query is dropped.
        """
        query = self._query(name)
        if query.sharded is not None:
            query.sharded.close()
            del self._queries[name]
            for readers in self._sharded_by_source.values():
                if query in readers:
                    readers.remove(query)
            return
        root_box = self._boxes[query.root_fingerprint]
        root_box.op.disconnect(query.sink)
        self.engine.unregister(query.sink)
        for fingerprint in reversed(query.fingerprints):
            box = self._boxes.get(fingerprint)
            if box is None:
                continue
            box.owners = [o for o in box.owners if o != name]
            if not box.owners:
                if isinstance(box.node, SourceNode) and box.node.name in self._declared:
                    continue  # declared streams persist unowned
                self._detach_box(fingerprint, box)
        del self._queries[name]

    def _detach_box(self, fingerprint: Hashable, box: _SharedBox) -> None:
        for parent, target in box.inbound:
            parent.disconnect(target)
        if isinstance(box.node, SourceNode):
            self.engine.remove_source(box.node.name)
            self._entries.pop(box.node.name, None)
            self._streams.pop(box.node.name, None)
        else:
            self.engine.unregister(box.op)
        self._boxes.pop(fingerprint, None)

    def pause(self, name: str) -> None:
        """Stop collecting this query's results (discarded while paused)."""
        self._query(name).sink.paused = True

    def resume(self, name: str) -> None:
        """Resume collecting this query's results."""
        self._query(name).sink.paused = False

    def is_paused(self, name: str) -> bool:
        return self._query(name).sink.paused

    def is_sharded(self, name: str) -> bool:
        """Whether a registered query runs in its own sharded runtime."""
        return self._query(name).sharded is not None

    # ------------------------------------------------------------------
    # Data flow
    # ------------------------------------------------------------------
    def _sharded_readers(self, source: str) -> List[_Registered]:
        return self._sharded_by_source.get(source, [])

    def _known_sources(self) -> set:
        known = set(self._entries)
        for source, readers in self._sharded_by_source.items():
            if readers:
                known.add(source)
        return known

    def _check_source(self, source: str) -> None:
        if source in self._entries or self._sharded_by_source.get(source):
            return
        known = ", ".join(sorted(self._known_sources())) or "none"
        raise ServiceError(
            f"unknown source {source!r} (known: {known}); register a query "
            "reading it first"
        )

    def push(self, source: str, item: StreamTuple) -> None:
        """Push one tuple into a named source (tuple-at-a-time path)."""
        self._check_source(source)
        if source in self._entries:
            self.engine.push(source, item)
        for query in self._sharded_by_source.get(source, ()):
            query.sharded.push(source, item)

    def push_many(
        self,
        source: str,
        items: Iterable[StreamTuple],
        batch_size: Optional[int] = None,
        trace: Optional[obs.TraceContext] = None,
    ) -> None:
        """Push many tuples (batch path when the session has a batch size).

        Each call is one ingested chunk for latency accounting: a trace
        context (minted here unless the caller — e.g. the network server
        — supplies one stamped at receipt) is active for the duration of
        the push, so query sinks record ingest→delivery latency and the
        sharded runtime stamps outbound chunk batches with it.
        """
        self._check_source(source)
        readers = self._sharded_readers(source)
        if readers and not isinstance(items, (list, tuple)):
            items = list(items)  # several consumers each need the full stream
        ctx = trace if trace is not None else obs.new_trace()
        previous = obs.activate(ctx)
        # Root span of a sampled trace: every stage span downstream
        # (encode, ship, exec, merge, deliver) parents to its
        # deterministic id, so the exported tree hangs off one node.
        traced = obs.sampled_trace(ctx)
        root_id = obs.root_span_id(ctx.trace_id) if traced else None
        previous_parent = obs.activate_parent(root_id) if traced else None
        t0 = obs.trace_clock() if traced else 0.0
        try:
            if source in self._entries:
                self.engine.push_many(source, items, batch_size=batch_size)
            for query in readers:
                query.sharded.push_many(source, items)
        finally:
            if traced:
                obs.record_span(
                    "session.push",
                    "session",
                    ctx.trace_id,
                    t0,
                    obs.trace_clock(),
                    span_id=root_id,
                    parent_id=previous_parent,
                )
                obs.activate_parent(previous_parent)
            obs.activate(previous)

    def flush(self) -> None:
        """Close out all partial windows (emits their pending results).

        The session keeps running: this is a checkpoint, not a
        shutdown — pushing more tuples afterwards starts fresh windows.
        Sharded queries drain their worker pipelines.
        """
        self.engine.finish()
        for query in self._queries.values():
            if query.sharded is not None:
                query.sharded.finish()

    def close(self) -> None:
        """Shut the session down: stop every sharded query's workers.

        Engine-hosted queries need no teardown; sharded ones hold
        worker processes and queues.  Idempotent; the session is also a
        context manager (``with QuerySession(workers=4) as session:``).
        Call :meth:`flush` first if pending partial windows should
        still be emitted.
        """
        if self._closed:
            return
        self._closed = True
        self._recorder_stop.set()
        if self._recorder_thread is not None:
            self._recorder_thread.join(timeout=2.0)
            self._recorder_thread = None
        for query in self._queries.values():
            if query.sharded is not None:
                query.sharded.close()

    # ------------------------------------------------------------------
    # Flight recorder: history ticks and health evaluation
    # ------------------------------------------------------------------
    def record_tick(self, t: Optional[float] = None) -> None:
        """Record one registry snapshot into the session's history ring."""
        self.history.record(obs.get_registry().snapshot(), t=t)

    def health_tick(self, now: Optional[float] = None) -> List[obs.HealthRule]:
        """Record a tick and evaluate the health rules against the ring.

        Returns the rules that newly transitioned into ``firing`` (their
        registered :meth:`on_alert` callbacks have already run).  The
        HEALTH wire verb calls this, so polling health keeps the ring
        fed even when no recorder thread runs.
        """
        self.record_tick(t=now)
        return self.health.evaluate(now=now)

    def on_alert(self, callback: Callable[[obs.HealthRule], None]) -> None:
        """Invoke ``callback(rule)`` whenever a health rule starts firing.

        This is the actuation hook telemetry-driven management plugs
        into (the adaptive repartitioner reads backpressure directly;
        coarser reactions — shedding a subscriber, re-planning a stale
        query — subscribe here).
        """
        self.health.on_alert(callback)

    def stage_timings(self, name: Optional[str] = None) -> Dict[str, float]:
        """Coordinator pipeline stage seconds, summed over sharded queries.

        With ``name``, just that query's :meth:`ShardedEngine.stage_timings`.
        """
        totals: Dict[str, float] = {}
        queries = [self._query(name)] if name is not None else self._queries.values()
        for query in queries:
            if query.sharded is None:
                continue
            for stage, seconds in query.sharded.stage_timings().items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals

    def _recorder_loop(self) -> None:
        while not self._recorder_stop.wait(self._history_interval):
            try:
                self.health_tick()
            except Exception:  # noqa: BLE001 - the recorder must survive races
                pass

    def __enter__(self) -> QuerySession:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Result listeners
    # ------------------------------------------------------------------
    def add_listener(self, name: str, listener: Callable[[StreamTuple], None]) -> None:
        """Call ``listener`` for every future result of query ``name``.

        Unlike the ``on_result`` registration callback, listeners attach
        and detach over a running query — the network service uses one
        per subscriber.  Listeners see results from the attach point on
        (no replay) and are not called while the query is paused.
        """
        self._query(name).sink.listeners.append(listener)

    def remove_listener(self, name: str, listener: Callable[[StreamTuple], None]) -> None:
        """Detach a listener added by :meth:`add_listener` (idempotent)."""
        query = self._queries.get(name)
        if query is None:
            return  # the query was dropped; its sink (and listener) are gone
        try:
            query.sink.listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self, name: str) -> List[StreamTuple]:
        """All results collected for a query so far."""
        return list(self._query(name).sink.results)

    def take(self, name: str) -> List[StreamTuple]:
        """Drain and return a query's collected results."""
        sink = self._query(name).sink
        drained = list(sink.results)
        sink.results.clear()
        return drained

    # ------------------------------------------------------------------
    # Persistence-lite: snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """Serialize the session's declarative state to a JSON-able dict.

        Captures the streams declared via :meth:`create_stream` (name,
        attributes, family, rate hint, per-column statistics) and every
        query registered *as CQL text* — the text is already retained —
        plus its paused flag, in registration order.  Queries registered
        as ``Stream``/``LogicalPlan`` objects carry arbitrary closures
        and are listed under ``"unsupported"`` instead of serialized;
        UDFs likewise must be re-supplied to :meth:`restore`.
        """
        streams = []
        for stream_name in sorted(self._declared):
            node = self._streams.get(stream_name)
            if node is None:  # pragma: no cover - declared streams persist
                continue
            streams.append(
                {
                    "name": node.name,
                    "values": sorted(node.values) if node.values is not None else None,
                    "uncertain": sorted(node.uncertain)
                    if node.uncertain is not None
                    else None,
                    "family": node.family,
                    "rate_hint": node.rate_hint,
                    "stats": [
                        [stat.attribute, stat.family, stat.a, stat.b]
                        for stat in node.stats or ()
                    ],
                }
            )
        queries = []
        unsupported = []
        for query_name, query in self._queries.items():
            if query.text is None:
                unsupported.append(query_name)
                continue
            queries.append(
                {
                    "name": query_name,
                    "text": query.text,
                    "paused": query.sink.paused,
                }
            )
        return {
            "version": 1,
            "streams": streams,
            "queries": queries,
            "unsupported": sorted(unsupported),
            # Runtime configuration: restore() recreates the sharded
            # runtime as configured here unless explicitly overridden.
            "workers": self._workers,
            "shard_backend": self._shard_backend,
            "shard_chunk_size": self._shard_chunk_size,
            "shard_remote_shards": list(self._shard_remote_shards),
        }

    @classmethod
    def restore(
        cls,
        snapshot: Mapping,
        planner: Optional[Planner] = None,
        batch_size: Optional[int] = None,
        optimize: bool = True,
        functions: Optional[Mapping[str, Callable]] = None,
        workers: Optional[int] = None,
        shard_backend: Optional[str] = None,
        shard_chunk_size: Optional[int] = None,
        shard_remote_shards: Optional[Iterable[str]] = None,
        replay_capacity: Optional[int] = None,
    ) -> QuerySession:
        """Rebuild a session from :meth:`snapshot` output.

        Stream declarations are re-created and the CQL queries
        re-registered (and re-paused) in their snapshot order.  UDFs are
        code, not state — pass them in ``functions`` under the same
        names the query texts use.  Operator state (window contents,
        collected results) is *not* part of the snapshot: the restored
        session starts fresh, which is the intended restart semantics.

        The sharded-runtime configuration (``workers``, backend, chunk
        size, remote shard addresses) is part of the snapshot, so a
        ``QuerySession(workers=4)`` restores sharded rather than
        silently downgrading to one process; pass the corresponding
        keyword to override (e.g. ``workers=0`` to force a
        single-process restore).  Snapshot remote-shard addresses are
        re-dialled at registration — if the shard servers are gone,
        restoring fails loudly rather than quietly forking locally
        (pass ``shard_remote_shards=()`` to accept the local fallback).
        """
        version = snapshot.get("version")
        if version != 1:
            raise ServiceError(f"unsupported session snapshot version {version!r}")
        session = cls(
            planner=planner,
            batch_size=batch_size,
            optimize=optimize,
            functions=functions,
            workers=snapshot.get("workers", 0) if workers is None else workers,
            shard_backend=(
                snapshot.get("shard_backend", "process")
                if shard_backend is None
                else shard_backend
            ),
            shard_chunk_size=(
                snapshot.get("shard_chunk_size", 1024)
                if shard_chunk_size is None
                else shard_chunk_size
            ),
            shard_remote_shards=(
                snapshot.get("shard_remote_shards", ())
                if shard_remote_shards is None
                else shard_remote_shards
            ),
            replay_capacity=4096 if replay_capacity is None else replay_capacity,
        )
        for decl in snapshot.get("streams", ()):
            stats = {attr: (family, a, b) for attr, family, a, b in decl.get("stats", ())}
            uncertain = decl.get("uncertain")
            if uncertain is not None and stats:
                uncertain = {name: stats.get(name) for name in uncertain}
            session.create_stream(
                decl["name"],
                values=decl.get("values"),
                uncertain=uncertain,
                family=decl.get("family"),
                rate_hint=decl.get("rate_hint"),
            )
        for query in snapshot.get("queries", ()):
            session.register(query["name"], query["text"])
            if query.get("paused"):
                session.pause(query["name"])
        return session

    # ------------------------------------------------------------------
    # Result replay (SUBSCRIBE ... RESUME)
    # ------------------------------------------------------------------
    def last_result_seq(self, name: str) -> int:
        """Sequence number of the last result query ``name`` emitted.

        Results are numbered from 1 in emission order, per query; 0
        means the query has emitted nothing yet.
        """
        log = self._query(name).sink.replay
        return log.last_seq if log is not None else 0

    def replay_from(self, name: str, after_seq: int) -> List[Tuple[int, StreamTuple]]:
        """Return the ``(seq, result)`` pairs emitted after ``after_seq``.

        Raises :class:`~repro.recovery.ReplayGapError` when the bounded
        replay log has already trimmed past ``after_seq`` — the caller
        can no longer be given a gap-free resume and should re-read the
        query's results from scratch.
        """
        query = self._query(name)
        if query.sink.replay is None:
            raise ServiceError(
                f"query {name!r} keeps no replay log "
                "(the session was created with replay_capacity=0)"
            )
        return query.sink.replay.replay_from(after_seq)

    # ------------------------------------------------------------------
    # Durability: checkpoint / recover
    # ------------------------------------------------------------------
    def _query_state(self, query: _Registered) -> Dict:
        """One query's full mutable state as a state-codec-ready dict."""
        state: Dict
        if query.sharded is not None:
            # Quiesce *first*: draining in-flight chunks delivers their
            # merged results into the sink, which must be captured below.
            state = {"kind": "sharded", "sharded": query.sharded.state_snapshot()}
        else:
            ops = []
            for fingerprint in query.fingerprints:
                box = self._boxes[fingerprint]
                ops.append({"name": box.op.name, "state": box.op.state_snapshot()})
            state = {"kind": "engine", "ops": ops}
        state["sink"] = {
            "results": list(query.sink.results),
            "dropped": query.sink.dropped,
        }
        state["replay"] = (
            query.sink.replay.state_snapshot()
            if query.sink.replay is not None
            else None
        )
        return state

    def checkpoint(self, directory: str, mode: str = "auto") -> CheckpointInfo:
        """Quiesce and write a durable checkpoint of the whole session.

        Sharded queries drain their in-flight chunks (without closing
        windows) and snapshot every shard over the worker transports;
        engine-hosted queries snapshot their operator chains in place.
        The checkpoint is committed atomically — a crash mid-write
        leaves the previous checkpoint as the latest valid one.  With
        ``mode="delta"`` (or ``"auto"`` after the first checkpoint)
        only blobs whose content changed are rewritten; the rest are
        references into earlier files.  :meth:`recover` restores the
        latest checkpoint of the directory.
        """
        if self._closed:
            raise ServiceError("cannot checkpoint a closed session")
        declarative = self.snapshot()
        if declarative["unsupported"]:
            names = ", ".join(declarative["unsupported"])
            raise ServiceError(
                f"cannot checkpoint queries registered from Stream/LogicalPlan "
                f"objects ({names}); register them as CQL text"
            )
        blobs: Dict[str, bytes] = {}
        for name, query in self._queries.items():
            blobs[f"query/{name}"] = encode_state(self._query_state(query))
        meta = {
            "session": declarative,
            "tuple_counter": tuple_counter_mark(),
            "batch_size": self._batch_size,
            "optimize": self._optimize,
            "replay_capacity": self._replay_capacity,
        }
        blobs["meta"] = json.dumps(meta, separators=(",", ":")).encode("utf-8")
        # The registry snapshot and the history ring ride along as
        # sidecars so recovery can report what the process observed up
        # to the captured state — and keep its time series growing from
        # there instead of restarting blind.
        t0 = obs.trace_clock()
        info = CheckpointStore(directory).save(
            blobs,
            mode=mode,
            metrics=obs.get_registry().snapshot(),
            history=self.history.to_blob() if len(self.history) else None,
        )
        obs.record_span("checkpoint.commit", "checkpoint", 0, t0, obs.trace_clock())
        return info

    @classmethod
    def recover(
        cls,
        directory: str,
        planner: Optional[Planner] = None,
        functions: Optional[Mapping[str, Callable]] = None,
        workers: Optional[int] = None,
        shard_backend: Optional[str] = None,
        shard_chunk_size: Optional[int] = None,
        shard_remote_shards: Optional[Iterable[str]] = None,
    ) -> QuerySession:
        """Rebuild a session from the latest checkpoint in ``directory``.

        Re-registers every query, restores all operator state (window
        contents, aggregate accumulators, join buffers, in-flight merge
        state), collected results and replay logs, and advances the
        global tuple-id counter past every id the checkpoint recorded
        so new tuples never collide with restored lineage.  Tuples
        pushed into the recovered session continue exactly where the
        checkpoint left off.  UDFs are code, not state — pass them in
        ``functions`` under the names the query texts use.  Stale
        shared-memory ring segments left by crashed worker processes
        are reaped as a side effect.

        The worker count is part of the checkpoint; overriding
        ``workers`` is only valid when it does not change whether (and
        how wide) a query shards.
        """
        store = CheckpointStore(directory)
        header, blobs = store.load_latest()
        meta = json.loads(blobs["meta"].decode("utf-8"))
        # Advance the tuple counter before re-registering: forked shard
        # workers inherit it, and every tuple created from here on must
        # outrank the ids the checkpoint carries.
        advance_tuple_counter(int(meta["tuple_counter"]))
        reap_stale_segments()
        session = cls.restore(
            meta["session"],
            planner=planner,
            batch_size=meta.get("batch_size"),
            optimize=meta.get("optimize", True),
            functions=functions,
            workers=workers,
            shard_backend=shard_backend,
            shard_chunk_size=shard_chunk_size,
            shard_remote_shards=shard_remote_shards,
            replay_capacity=int(meta.get("replay_capacity", 4096)),
        )
        restored_boxes: set = set()
        for name, query in session._queries.items():
            payload = blobs.get(f"query/{name}")
            if payload is None:  # pragma: no cover - defensive
                continue
            state = decode_state(payload)
            query.sink.results = list(state["sink"]["results"])
            query.sink.dropped = int(state["sink"]["dropped"])
            if state.get("replay") is not None and query.sink.replay is not None:
                query.sink.replay.state_restore(state["replay"])
            if state["kind"] == "sharded":
                if query.sharded is None:
                    raise ServiceError(
                        f"query {name!r} was checkpointed sharded but recovered "
                        "into the shared engine; recover with the checkpoint's "
                        "worker configuration"
                    )
                query.sharded.state_restore(state["sharded"])
                continue
            if query.sharded is not None:
                raise ServiceError(
                    f"query {name!r} was checkpointed engine-hosted but "
                    "recovered sharded; recover with the checkpoint's worker "
                    "configuration"
                )
            entries = state["ops"]
            if len(entries) != len(query.fingerprints):
                raise ServiceError(
                    f"query {name!r} recompiled to {len(query.fingerprints)} "
                    f"boxes but its checkpoint recorded {len(entries)}; the "
                    "checkpoint belongs to a different build of this query"
                )
            for fingerprint, entry in zip(query.fingerprints, entries):
                box = session._boxes[fingerprint]
                if id(box) in restored_boxes:
                    continue  # shared box already restored by an earlier query
                restored_boxes.add(id(box))
                if box.op.name != entry["name"]:
                    raise ServiceError(
                        f"query {name!r} box {box.op.name!r} does not match "
                        f"checkpointed box {entry['name']!r}"
                    )
                box.op.state_restore(entry["state"])
        #: Metrics-registry snapshot taken when the checkpoint was
        #: written (``None`` for checkpoints predating the sidecar):
        #: what the lost process had observed up to the restored state.
        session.recovered_metrics = store.load_metrics(int(header["id"]))
        session.recovered_history = store.load_history(int(header["id"]))
        if session.recovered_history is not None:
            # Replay the persisted ticks into the fresh ring: history
            # timestamps are CLOCK_MONOTONIC (system-wide since boot),
            # so ticks recorded after recovery continue monotonically
            # from the restored ones across a crash of the old process.
            session.history = obs.HistoryRing.from_blob(
                session.recovered_history, capacity=session.history.capacity
            )
            session.health.history = session.history
        return session

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def statistics(self, name: Optional[str] = None) -> List[BoxReport]:
        """Per-box statistics with ownership.

        With a query name: that query's boxes in dataflow order (shared
        boxes report *all* their owners, so a shared chain is visible
        as one box with several owners rather than duplicated
        counters).  Without: every box in the session.
        """
        if name is not None:
            query = self._query(name)
            if query.sharded is not None:
                return self._sharded_reports(query)
            boxes = [
                self._boxes[fp] for fp in query.fingerprints if fp in self._boxes
            ]
        else:
            boxes = list(self._boxes.values())
        reports = [
            BoxReport(
                stats=OperatorStats(
                    name=box.op.name,
                    tuples_in=box.op.tuples_in,
                    tuples_out=box.op.tuples_out,
                    batches_in=box.op.batches_in,
                    seconds=box.op.processing_seconds,
                ),
                owners=tuple(box.owners),
            )
            for box in boxes
        ]
        if name is None:
            for query in self._queries.values():
                if query.sharded is not None:
                    reports.extend(self._sharded_reports(query))
        return reports

    def _sharded_reports(self, query: _Registered) -> List[BoxReport]:
        """Per-shard boxes (names prefixed ``shard<i>/``) plus coordinator."""
        stats = query.sharded.statistics()
        reports: List[BoxReport] = []
        for shard in sorted(stats.shards):
            for row in stats.shards[shard]:
                renamed = OperatorStats(
                    name=f"shard{shard}/{row.name}",
                    tuples_in=row.tuples_in,
                    tuples_out=row.tuples_out,
                    batches_in=row.batches_in,
                    seconds=row.seconds,
                )
                reports.append(BoxReport(stats=renamed, owners=(query.name,)))
        for row in stats.coordinator:
            reports.append(BoxReport(stats=row, owners=(query.name,)))
        return reports

    def observed_stats(self, name: str) -> Dict:
        """Observability report for one query: latency plus operator rates.

        Combines the sink's end-to-end ingest→delivery latency histogram
        (populated whenever pushes run under a trace context — always,
        since :meth:`push_many` mints one) with per-operator throughput:
        mean seconds per batch and, for selective boxes, the observed
        pass rate ``tuples_out / tuples_in``.  Works identically for
        engine-hosted and sharded queries (sharded operators report per
        shard, names prefixed ``shard<i>/``).
        """
        query = self._query(name)
        latency = query.sink.latency
        operators = []
        for report in self.statistics(name):
            stats = report.stats
            operators.append(
                {
                    "name": stats.name,
                    "tuples_in": stats.tuples_in,
                    "tuples_out": stats.tuples_out,
                    "batches_in": stats.batches_in,
                    "seconds": stats.seconds,
                    "seconds_per_batch": (
                        stats.seconds / stats.batches_in if stats.batches_in else None
                    ),
                    "pass_rate": (
                        stats.tuples_out / stats.tuples_in if stats.tuples_in else None
                    ),
                }
            )
        last = query.sink.last_trace
        return {
            "query": name,
            "sharded": query.sharded is not None,
            "latency": {
                "count": latency.count,
                "mean": latency.mean,
                **latency.percentiles((0.5, 0.95, 0.99)),
            },
            "last_trace": (
                {
                    "trace_id": last.trace_id,
                    "t_ingest": last.t_ingest,
                    "delivered_at": query.sink.last_delivered_at,
                }
                if last is not None
                else None
            ),
            "operators": operators,
        }

    def shard_statistics(self, name: str) -> ShardedStatistics:
        """Raw per-shard statistics of a sharded query."""
        query = self._query(name)
        if query.sharded is None:
            raise ServiceError(
                f"query {name!r} runs in the shared engine, not sharded "
                "(register it in a session with workers > 0)"
            )
        return query.sharded.statistics()

    def explain(self, name: Optional[str] = None) -> str:
        """Explain one query (with sharing annotations) or the session."""
        if name is not None:
            return self._explain_query(self._query(name))
        lines = ["QuerySession", "============"]
        lines.append(f"streams: {', '.join(self.streams) or '(none)'}")
        described = []
        for query_name in self.queries:
            query = self._queries[query_name]
            if query.sharded is not None:
                described.append(f"{query_name} (sharded x{query.sharded.workers})")
            else:
                described.append(query_name)
        lines.append(f"queries: {', '.join(described) or '(none)'}")
        shared = [box for box in self._boxes.values() if len(box.owners) > 1]
        lines.append(f"physical boxes: {len(self._boxes)} ({len(shared)} shared)")
        for box in shared:
            lines.append(f"- {box.op.name} shared by {', '.join(sorted(box.owners))}")
        return "\n".join(lines)

    def _explain_query(self, query: _Registered) -> str:
        lines = [f"query {query.name}"]
        if query.sink.paused:
            lines[0] += " (paused)"
        lines.append("=" * len(lines[0]))
        if query.text is not None:
            lines.append(query.text.strip())
            lines.append("")
        lines.append("Logical plan")
        lines.append("------------")
        lines.append(query.optimized.explain())
        lines.append("")
        lines.append("Rewrites")
        lines.append("--------")
        if query.rewrites:
            lines.extend(f"- {t.rule}: {t.description}" for t in query.rewrites)
        else:
            lines.append("(none applied)")
        if query.strategy_decisions:
            lines.append("")
            lines.append("Cost model")
            lines.append("----------")
            for decision in query.strategy_decisions:
                lines.append(
                    f"- strategy for {decision.node_label}: "
                    f"{decision.choice.strategy.name} ({decision.choice.reason})"
                )
        if query.sharded is not None:
            lines.append("")
            lines.append(query.sharded.explain())
            return "\n".join(lines)
        lines.append("")
        lines.append("Physical boxes")
        lines.append("--------------")
        for fingerprint in query.fingerprints:
            box = self._boxes.get(fingerprint)
            if box is None:  # pragma: no cover - defensive
                continue
            others = sorted(o for o in box.owners if o != query.name)
            tag = f"shared with {', '.join(others)}" if others else "exclusive"
            lines.append(f"- {box.op.name} <- {box.node.label()}  [{tag}]")
        return "\n".join(lines)
