"""Exponential distribution.

Exponentials model positive-valued quantities such as inter-reading
delays of a mobile RFID reader or dwell times of objects on a shelf.
They also have a simple closed-form characteristic function, which
makes them useful members of the "common continuous distributions"
toolbox that the CF-based aggregation algorithms rely on.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from .base import DistributionError, ScalarDistribution, as_rng

__all__ = ["Exponential"]


class Exponential(ScalarDistribution):
    """An exponential distribution with rate ``lam`` (mean ``1/lam``)."""

    __slots__ = ("lam",)

    def __init__(self, lam: float):
        if not np.isfinite(lam) or lam <= 0.0:
            raise DistributionError(f"exponential rate must be positive and finite, got {lam}")
        self.lam = float(lam)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(x >= 0.0, self.lam * np.exp(-self.lam * np.maximum(x, 0.0)), 0.0)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where(x >= 0.0, 1.0 - np.exp(-self.lam * np.maximum(x, 0.0)), 0.0)
        return float(out) if out.ndim == 0 else out

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile level must be in (0, 1), got {q}")
        return -math.log(1.0 - q) / self.lam

    def mean(self) -> float:
        return 1.0 / self.lam

    def variance(self) -> float:
        return 1.0 / (self.lam ** 2)

    def sample(self, size: int = 1, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        return rng.exponential(1.0 / self.lam, size=size)

    def support(self) -> Tuple[float, float]:
        return (0.0, self.quantile(1.0 - 1e-12))

    def characteristic_function(self, t):
        t = np.asarray(t, dtype=float)
        out = self.lam / (self.lam - 1j * t)
        return complex(out) if out.ndim == 0 else out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Exponential(lam={self.lam:.6g})"
