"""Characteristic-function algebra for sums of independent variables.

This module implements the core statistical machinery of Section 5.1:

* The characteristic function (CF) of a sum of independent random
  variables is the *product* of the summands' CFs.  For common
  continuous distributions the summand CFs have closed forms, so the
  product is cheap to evaluate.
* **CF inversion** expresses the exact result distribution with a
  single integral (Gil-Pelaez / Fourier inversion), in contrast to the
  ``n - 1`` nested integrals of the pairwise-convolution approach.
* **CF approximation** fits a Gaussian or a mixture of Gaussians to the
  closed-form CF of the sum, avoiding the inversion integral entirely
  and achieving the best speed/accuracy balance in the paper's Table 2.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from .base import Distribution, DistributionError
from .empirical import HistogramDistribution
from .gaussian import Gaussian
from .mixture import GaussianMixture

__all__ = [
    "SumCharacteristicFunction",
    "invert_cf_to_histogram",
    "fit_gaussian_to_cf",
    "fit_mixture_to_cf",
    "cf_distance",
]


class SumCharacteristicFunction:
    """The characteristic function of a sum of independent summands.

    Parameters
    ----------
    summands:
        The independent :class:`Distribution` objects being summed.
        Each must expose :meth:`characteristic_function`; common
        parametric families provide closed forms and empirical
        distributions fall back to numerical integration.
    """

    def __init__(self, summands: Sequence[Distribution]):
        summands = list(summands)
        if not summands:
            raise DistributionError("a sum needs at least one summand")
        self.summands = summands
        self._mean = float(sum(float(np.asarray(d.mean()).ravel()[0]) for d in summands))
        self._variance = float(sum(float(np.asarray(d.variance()).ravel()[0]) for d in summands))
        if self._variance <= 0:
            raise DistributionError("sum of summand variances must be positive")

    @property
    def mean(self) -> float:
        """Exact mean of the sum (sum of summand means)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Exact variance of the sum (sum of summand variances)."""
        return self._variance

    @property
    def std(self) -> float:
        return math.sqrt(self._variance)

    def __call__(self, t: np.ndarray | float) -> np.ndarray | complex:
        """Evaluate the product CF at ``t``."""
        scalar = np.ndim(t) == 0
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.ones(ts.shape, dtype=complex)
        for dist in self.summands:
            out *= np.asarray(dist.characteristic_function(ts), dtype=complex)
        return complex(out[0]) if scalar else out

    def standardized(self) -> Callable[[np.ndarray], np.ndarray]:
        """Return the CF of the standardised sum ``(S - mean) / std``."""
        mean, std = self._mean, self.std

        def cf(t: np.ndarray) -> np.ndarray:
            ts = np.asarray(t, dtype=float) / std
            return np.asarray(self(ts), dtype=complex) * np.exp(-1j * np.asarray(t) * mean / std)

        return cf


def invert_cf_to_histogram(
    cf: SumCharacteristicFunction,
    n_bins: int = 256,
    n_frequencies: int = 2048,
    support_sigmas: float = 10.0,
) -> HistogramDistribution:
    """Numerically invert a characteristic function into a histogram.

    Uses the Fourier inversion formula

    ``f(x) = (1 / 2 pi) * Integral exp(-i t x) phi(t) dt``

    evaluated by trapezoidal quadrature on a truncated frequency grid.
    The frequency cut-off is chosen from the sum's standard deviation so
    that the neglected tail of ``phi`` is negligible for smooth
    distributions (the CF of a distribution with standard deviation
    ``sigma`` decays on the scale ``1 / sigma``).

    This is the "CF (inversion)" algorithm of Table 2: exact up to the
    numerical quadrature, but noticeably slower than CF approximation
    because of the single (dense) inversion integral per window.
    """
    if n_bins < 8:
        raise ValueError("n_bins must be at least 8")
    if n_frequencies < 64:
        raise ValueError("n_frequencies must be at least 64")
    mean, std = cf.mean, cf.std
    half_width = support_sigmas * std
    xs = np.linspace(mean - half_width, mean + half_width, n_bins + 1)
    centers = 0.5 * (xs[:-1] + xs[1:])

    t_max = 40.0 / std
    ts = np.linspace(-t_max, t_max, n_frequencies)
    phi = np.asarray(cf(ts), dtype=complex)
    # Outer product: rows are frequencies, columns are evaluation points.
    kernel = np.exp(-1j * np.outer(ts, centers))
    integrand = kernel * phi[:, None]
    densities = np.real(np.trapezoid(integrand, ts, axis=0)) / (2.0 * math.pi)
    densities = np.maximum(densities, 0.0)
    if not np.any(densities > 0):
        raise DistributionError("CF inversion produced an all-zero density; widen the grid")
    return HistogramDistribution(xs, densities)


def _cumulants_from_cf(
    cf: Callable[[np.ndarray], np.ndarray], scale: float
) -> tuple[float, float]:
    """Estimate the first two cumulants from a CF by finite differences.

    The cumulant generating function is ``log phi(t)``; its first and
    second derivatives at zero give ``i * mean`` and ``-variance``.
    ``scale`` sets the finite-difference step relative to the spread of
    the distribution.
    """
    h = 1e-4 / max(scale, 1e-12)
    ts = np.array([-2 * h, -h, 0.0, h, 2 * h])
    phi = np.asarray(cf(ts), dtype=complex)
    log_phi = np.log(phi)
    first = (log_phi[3] - log_phi[1]) / (2 * h)
    second = (log_phi[3] - 2 * log_phi[2] + log_phi[1]) / (h * h)
    mean = float(np.imag(first))
    variance = float(-np.real(second))
    return mean, variance


def fit_gaussian_to_cf(cf: SumCharacteristicFunction) -> Gaussian:
    """Fit a Gaussian to the characteristic function of a sum.

    Matching the Gaussian CF ``exp(i mu t - sigma^2 t^2 / 2)`` to the
    product CF at small ``t`` amounts to matching the first two
    cumulants, which for a sum of independent variables are simply the
    sums of the summand means and variances.  We use the exact cumulant
    sums when available and fall back to numerical cumulants otherwise.
    """
    mean, variance = cf.mean, cf.variance
    if not np.isfinite(mean) or not np.isfinite(variance) or variance <= 0:
        mean, variance = _cumulants_from_cf(cf, scale=1.0)
    if variance <= 0:
        raise DistributionError("cannot fit a Gaussian to a CF with non-positive variance")
    return Gaussian(mean, math.sqrt(variance))


def fit_mixture_to_cf(
    cf: SumCharacteristicFunction,
    n_components: int = 2,
    n_frequencies: int = 64,
    max_iter: int = 200,
) -> GaussianMixture:
    """Fit a Gaussian mixture to a characteristic function by least squares.

    The mixture parameters are found by minimising the squared error
    between the mixture CF and the target CF on a frequency grid whose
    extent is matched to the spread of the sum.  A single-component fit
    reduces to :func:`fit_gaussian_to_cf`.
    """
    if n_components < 1:
        raise ValueError("n_components must be at least 1")
    base = fit_gaussian_to_cf(cf)
    if n_components == 1:
        return GaussianMixture.single(base)

    from scipy.optimize import least_squares

    std = cf.std
    ts = np.linspace(-4.0 / std, 4.0 / std, n_frequencies)
    target = np.asarray(cf(ts), dtype=complex)

    # Parameterise: logits for weights, means, log-sigmas.
    init_means = base.mu + base.sigma * np.linspace(-0.5, 0.5, n_components)
    init_log_sigmas = np.full(n_components, math.log(base.sigma))
    init_logits = np.zeros(n_components)
    x0 = np.concatenate([init_logits, init_means, init_log_sigmas])

    def unpack(x: np.ndarray) -> GaussianMixture:
        logits = x[:n_components]
        means = x[n_components : 2 * n_components]
        sigmas = np.exp(np.clip(x[2 * n_components :], -30.0, 30.0))
        weights = np.exp(logits - logits.max())
        weights = weights / weights.sum()
        return GaussianMixture(weights, means, np.maximum(sigmas, 1e-9))

    def residuals(x: np.ndarray) -> np.ndarray:
        mixture = unpack(x)
        phi = np.asarray(mixture.characteristic_function(ts), dtype=complex)
        diff = phi - target
        return np.concatenate([diff.real, diff.imag])

    result = least_squares(residuals, x0, max_nfev=max_iter, xtol=1e-10, ftol=1e-10)
    return unpack(result.x)


def cf_distance(
    a: Distribution, b: Distribution, scale: float, n_frequencies: int = 128
) -> float:
    """Return an L2 distance between two CFs on a matched frequency grid.

    Useful as a cheap diagnostic of how well an approximation captures a
    target distribution without inverting either CF.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    ts = np.linspace(-4.0 / scale, 4.0 / scale, n_frequencies)
    phi_a = np.asarray(a.characteristic_function(ts), dtype=complex)
    phi_b = np.asarray(b.characteristic_function(ts), dtype=complex)
    return float(np.sqrt(np.mean(np.abs(phi_a - phi_b) ** 2)))
