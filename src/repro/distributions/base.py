"""Base classes for continuous random-variable distributions.

The paper models every uncertain data item as a *continuous random
variable* whose uncertainty is described by a probability density
function (pdf).  Every distribution used by the stream system -- in T
operators, in relational operators, and in final results -- implements
the :class:`Distribution` interface defined here.

The interface is intentionally richer than scipy's frozen
distributions: stream operators need characteristic functions (for the
CF-based aggregation algorithms of Section 5.1), cheap moment access
(for CLT approximations), support bounds (for numerical inversion
grids) and confidence regions (for final-result reporting), all behind
one uniform API.
"""

from __future__ import annotations

import abc
import math
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "Distribution",
    "DistributionError",
    "UnsupportedOperationError",
    "ScalarDistribution",
]


class DistributionError(Exception):
    """Base error for distribution construction or evaluation problems."""


class UnsupportedOperationError(DistributionError):
    """Raised when a distribution cannot support a requested operation.

    For example, asking for a closed-form characteristic function of an
    arbitrary empirical distribution, or a quantile of a distribution
    that only supports sampling.
    """


class Distribution(abc.ABC):
    """Abstract continuous distribution carried inside stream tuples.

    Concrete subclasses must implement :meth:`pdf`, :meth:`mean`,
    :meth:`variance` and :meth:`sample`.  The remaining methods have
    sensible numerical defaults but may be overridden with closed forms
    for efficiency (the whole point of the paper's CF-based algorithms
    is that common continuous distributions admit closed forms).
    """

    #: Number of dimensions of the random variable (1 for scalars).
    ndim: int = 1

    # ------------------------------------------------------------------
    # Core interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the probability density function at ``x``."""

    @abc.abstractmethod
    def mean(self) -> float | np.ndarray:
        """Return the expected value."""

    @abc.abstractmethod
    def variance(self) -> float | np.ndarray:
        """Return the variance (scalar) or covariance matrix (vector)."""

    @abc.abstractmethod
    def sample(self, size: int = 1, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``size`` samples from the distribution."""

    # ------------------------------------------------------------------
    # Derived quantities with numerical fallbacks
    # ------------------------------------------------------------------
    def std(self) -> float:
        """Return the standard deviation (scalar distributions only)."""
        var = self.variance()
        if np.ndim(var) > 0:
            raise UnsupportedOperationError("std() is only defined for scalar distributions")
        return math.sqrt(float(var))

    def cdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the cumulative distribution function at ``x``.

        The default implementation integrates the pdf numerically over
        the distribution support; subclasses with closed forms should
        override it.
        """
        lo, hi = self.support()
        scalar = np.ndim(x) == 0
        xs = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.empty_like(xs)
        for i, xi in enumerate(xs):
            if xi <= lo:
                out[i] = 0.0
            else:
                upper = min(xi, hi)
                grid = np.linspace(lo, upper, 2049)
                out[i] = float(np.trapezoid(self.pdf(grid), grid))
        out = np.clip(out, 0.0, 1.0)
        return float(out[0]) if scalar else out

    def quantile(self, q: float) -> float:
        """Return the ``q``-quantile by bisection over the cdf."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile level must be in (0, 1), got {q}")
        lo, hi = self.support()
        if not np.isfinite(lo):
            lo = float(self.mean()) - 20.0 * self.std()
        if not np.isfinite(hi):
            hi = float(self.mean()) + 20.0 * self.std()
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.cdf(mid) < q:
                lo = mid
            else:
                hi = mid
            if hi - lo < 1e-12 * (1.0 + abs(mid)):
                break
        return 0.5 * (lo + hi)

    def support(self) -> Tuple[float, float]:
        """Return ``(lower, upper)`` bounds of (effectively) all the mass.

        The default is a wide interval around the mean; distributions
        with bounded support override this.
        """
        mu = float(np.asarray(self.mean()).ravel()[0])
        sigma = self.std()
        return (mu - 12.0 * sigma, mu + 12.0 * sigma)

    def characteristic_function(self, t: np.ndarray | float) -> np.ndarray | complex:
        """Evaluate the characteristic function ``E[exp(itX)]`` at ``t``.

        The default evaluates the defining integral numerically over the
        support.  Common distributions override this with closed forms,
        which is what makes the CF-based aggregation algorithms of
        Section 5.1 fast.
        """
        lo, hi = self.support()
        grid = np.linspace(lo, hi, 4097)
        dens = np.asarray(self.pdf(grid), dtype=float)
        scalar = np.ndim(t) == 0
        ts = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.empty(ts.shape, dtype=complex)
        for i, ti in enumerate(ts):
            out[i] = np.trapezoid(dens * np.exp(1j * ti * grid), grid)
        return complex(out[0]) if scalar else out

    def confidence_region(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Return a central interval containing ``confidence`` of the mass.

        This is the "confidence region" the paper proposes to report to
        end applications instead of (or alongside) the full pdf.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {confidence}")
        alpha = (1.0 - confidence) / 2.0
        return (self.quantile(alpha), self.quantile(1.0 - alpha))

    def log_pdf(self, x: np.ndarray | float) -> np.ndarray | float:
        """Evaluate the log density, guarding against zero density."""
        dens = self.pdf(x)
        with np.errstate(divide="ignore"):
            return np.log(np.maximum(dens, 1e-300))

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def prob_greater_than(self, threshold: float) -> float:
        """Return ``P[X > threshold]``.

        Used by probabilistic selection predicates, e.g. the
        ``Having sum(weight) > 200`` clause of query Q1.
        """
        return float(1.0 - self.cdf(threshold))

    def prob_less_than(self, threshold: float) -> float:
        """Return ``P[X < threshold]``."""
        return float(self.cdf(threshold))

    def prob_in_interval(self, low: float, high: float) -> float:
        """Return ``P[low <= X <= high]``."""
        if high < low:
            raise ValueError("interval upper bound must not be below lower bound")
        return float(self.cdf(high) - self.cdf(low))

    def error_bounds(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Return (mean, half-width) error-bound style summary."""
        lo, hi = self.confidence_region(confidence)
        return (float(np.asarray(self.mean()).ravel()[0]), 0.5 * (hi - lo))


class ScalarDistribution(Distribution):
    """Marker base class for one-dimensional distributions."""

    ndim = 1


def as_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` (generator, seed, or ``None``) into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def weighted_mean_and_variance(
    values: Sequence[float] | np.ndarray, weights: Sequence[float] | np.ndarray
) -> Tuple[float, float]:
    """Return the weighted mean and (biased) weighted variance.

    These are exactly the KL-optimal Gaussian parameters for a weighted
    sample (Section 4.3 of the paper): ``mu = sum w_i x_i`` and
    ``sigma^2 = sum w_i (x_i - mu)^2`` for normalised weights.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError("values and weights must have matching shapes")
    if values.size == 0:
        raise ValueError("cannot compute moments of an empty sample")
    total = float(weights.sum())
    if total <= 0.0:
        raise ValueError("weights must sum to a positive value")
    w = weights / total
    mu = float(np.dot(w, values))
    var = float(np.dot(w, (values - mu) ** 2))
    return mu, var


def normalize_weights(weights: Iterable[float]) -> np.ndarray:
    """Return weights normalised to sum to one.

    Raises :class:`DistributionError` if the weights are all zero or
    any weight is negative, which would indicate a broken particle
    filter update.
    """
    arr = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=float)
    if arr.size == 0:
        raise DistributionError("cannot normalise an empty weight vector")
    if np.any(arr < 0):
        raise DistributionError("weights must be non-negative")
    total = arr.sum()
    if total <= 0:
        raise DistributionError("weights must not all be zero")
    return arr / total
