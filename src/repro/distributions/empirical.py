"""Sample-based (empirical) distributions.

Two empirical representations are central to the paper:

* :class:`ParticleDistribution` -- a weighted sample ``{(x_i, w_i)}``
  as produced by particle-filter inference inside a T operator
  (Section 4.1).  Shipping these particles downstream is possible but
  expensive; Section 4.3 compresses them into Gaussians or Gaussian
  mixtures.

* :class:`HistogramDistribution` -- a discretised density over equal
  width bins, used by the histogram-based sampling baseline of
  Section 5.1 (following Ge & Zdonik) and to represent numerically
  inverted characteristic functions.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from .base import (
    DistributionError,
    ScalarDistribution,
    as_rng,
    normalize_weights,
    weighted_mean_and_variance,
)

__all__ = ["ParticleDistribution", "HistogramDistribution"]


class ParticleDistribution(ScalarDistribution):
    """A weighted-sample representation of a scalar distribution.

    The pdf is approximated with a Gaussian kernel density estimate
    (needed only for diagnostics and plotting); the moments, sampling,
    and cdf are computed directly from the weighted atoms, which is how
    the stream system actually uses particles.
    """

    __slots__ = ("values", "weights", "_bandwidth")

    def __init__(self, values: Sequence[float], weights: Sequence[float] | None = None):
        values_arr = np.asarray(values, dtype=float)
        if values_arr.ndim != 1 or values_arr.size == 0:
            raise DistributionError("particles must form a non-empty one-dimensional array")
        if weights is None:
            weights_arr = np.full(values_arr.size, 1.0 / values_arr.size)
        else:
            weights_arr = normalize_weights(weights)
            if weights_arr.shape != values_arr.shape:
                raise DistributionError("weights must match particle values in shape")
        self.values = values_arr
        self.weights = weights_arr
        self._bandwidth = self._silverman_bandwidth()

    def _silverman_bandwidth(self) -> float:
        _, var = weighted_mean_and_variance(self.values, self.weights)
        sigma = math.sqrt(max(var, 1e-24))
        n_eff = self.effective_sample_size()
        return 1.06 * sigma * max(n_eff, 1.0) ** (-1.0 / 5.0) + 1e-12

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        xs = np.atleast_1d(x)[..., None]
        z = (xs - self.values) / self._bandwidth
        kernel = np.exp(-0.5 * z * z) / (self._bandwidth * math.sqrt(2.0 * math.pi))
        out = kernel @ self.weights
        return float(out[0]) if x.ndim == 0 else out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        xs = np.atleast_1d(x)
        order = np.argsort(self.values)
        sorted_vals = self.values[order]
        cum = np.cumsum(self.weights[order])
        idx = np.searchsorted(sorted_vals, xs, side="right")
        out = np.where(idx > 0, cum[np.clip(idx - 1, 0, cum.size - 1)], 0.0)
        return float(out[0]) if x.ndim == 0 else out

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile level must be in (0, 1), got {q}")
        order = np.argsort(self.values)
        sorted_vals = self.values[order]
        cum = np.cumsum(self.weights[order])
        idx = int(np.searchsorted(cum, q, side="left"))
        idx = min(idx, sorted_vals.size - 1)
        return float(sorted_vals[idx])

    def mean(self) -> float:
        mu, _ = weighted_mean_and_variance(self.values, self.weights)
        return mu

    def variance(self) -> float:
        _, var = weighted_mean_and_variance(self.values, self.weights)
        return var

    def sample(self, size: int = 1, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        idx = rng.choice(self.values.size, size=size, p=self.weights)
        return self.values[idx]

    def support(self) -> Tuple[float, float]:
        pad = 4.0 * self._bandwidth
        return (float(self.values.min()) - pad, float(self.values.max()) + pad)

    # ------------------------------------------------------------------
    # Particle-specific helpers
    # ------------------------------------------------------------------
    @property
    def n_particles(self) -> int:
        return int(self.values.size)

    def effective_sample_size(self) -> float:
        """Return ``1 / sum(w_i^2)``, the standard ESS of a particle set."""
        return float(1.0 / np.sum(self.weights ** 2))

    def resample(self, size: int | None = None, rng=None) -> ParticleDistribution:
        """Return a uniformly weighted resampled particle set (systematic)."""
        rng = as_rng(rng)
        n = size if size is not None else self.n_particles
        positions = (rng.random() + np.arange(n)) / n
        cum = np.cumsum(self.weights)
        cum[-1] = 1.0
        idx = np.searchsorted(cum, positions)
        return ParticleDistribution(self.values[idx], np.full(n, 1.0 / n))

    def compress(self, size: int, rng=None) -> ParticleDistribution:
        """Return a smaller particle set approximating the same distribution.

        This is the "compression" optimisation of Section 4.1: once a
        particle cloud has stabilised in a small region, fewer particles
        suffice.  We resample down to ``size`` particles.
        """
        if size <= 0:
            raise ValueError("compressed particle count must be positive")
        if size >= self.n_particles:
            return self
        return self.resample(size=size, rng=rng)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ParticleDistribution(n={self.n_particles}, mean={self.mean():.4g})"


class HistogramDistribution(ScalarDistribution):
    """A piecewise-constant density over equal-width bins.

    Parameters
    ----------
    edges:
        Monotonically increasing bin edges of length ``n_bins + 1``.
    densities:
        Non-negative density values per bin; renormalised so the
        histogram integrates to one.
    """

    __slots__ = ("edges", "densities", "_widths", "_probs")

    def __init__(self, edges: Sequence[float], densities: Sequence[float]):
        edges_arr = np.asarray(edges, dtype=float)
        dens_arr = np.asarray(densities, dtype=float)
        if edges_arr.ndim != 1 or edges_arr.size < 2:
            raise DistributionError("histogram needs at least two bin edges")
        if np.any(np.diff(edges_arr) <= 0):
            raise DistributionError("histogram edges must be strictly increasing")
        if dens_arr.shape != (edges_arr.size - 1,):
            raise DistributionError("densities must have one value per bin")
        if np.any(dens_arr < 0) or not np.all(np.isfinite(dens_arr)):
            raise DistributionError("densities must be finite and non-negative")
        widths = np.diff(edges_arr)
        mass = float(np.sum(dens_arr * widths))
        if mass <= 0:
            raise DistributionError("histogram must contain positive total mass")
        self.edges = edges_arr
        self.densities = dens_arr / mass
        self._widths = widths
        self._probs = self.densities * widths

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        n_bins: int = 64,
        weights: Sequence[float] | None = None,
        bounds: Tuple[float, float] | None = None,
    ) -> HistogramDistribution:
        """Build a histogram from (optionally weighted) samples."""
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise DistributionError("cannot build a histogram from an empty sample")
        if bounds is None:
            lo, hi = float(samples.min()), float(samples.max())
            if hi <= lo:
                lo, hi = lo - 0.5, hi + 0.5
            pad = 1e-9 * (hi - lo)
            bounds = (lo - pad, hi + pad)
        counts, edges = np.histogram(samples, bins=n_bins, range=bounds, weights=weights, density=True)
        # Guard against a degenerate all-zero histogram (can happen when
        # every sample falls on an edge due to floating point).
        if not np.any(counts > 0):
            counts = np.full_like(counts, 1.0)
        return cls(edges, counts)

    @classmethod
    def from_distribution(
        cls, dist: ScalarDistribution, n_bins: int = 64, coverage: float = 1.0 - 1e-6
    ) -> HistogramDistribution:
        """Discretise another distribution onto an equal-width grid."""
        lo, hi = dist.support()
        if not np.isfinite(lo) or not np.isfinite(hi):
            lo = dist.quantile((1.0 - coverage) / 2.0)
            hi = dist.quantile(1.0 - (1.0 - coverage) / 2.0)
        edges = np.linspace(lo, hi, n_bins + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        dens = np.maximum(np.asarray(dist.pdf(centers), dtype=float), 0.0)
        if not np.any(dens > 0):
            dens = np.full_like(dens, 1.0)
        return cls(edges, dens)

    # ------------------------------------------------------------------
    # Distribution interface
    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        return int(self.densities.size)

    def centers(self) -> np.ndarray:
        """Return bin mid-points."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    def bin_probabilities(self) -> np.ndarray:
        """Return the probability mass in each bin."""
        return self._probs.copy()

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        xs = np.atleast_1d(x)
        idx = np.searchsorted(self.edges, xs, side="right") - 1
        inside = (xs >= self.edges[0]) & (xs <= self.edges[-1])
        idx = np.clip(idx, 0, self.n_bins - 1)
        out = np.where(inside, self.densities[idx], 0.0)
        return float(out[0]) if x.ndim == 0 else out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        xs = np.atleast_1d(x)
        cum = np.concatenate([[0.0], np.cumsum(self._probs)])
        idx = np.searchsorted(self.edges, xs, side="right") - 1
        idx = np.clip(idx, 0, self.n_bins - 1)
        frac = (xs - self.edges[idx]) / self._widths[idx]
        frac = np.clip(frac, 0.0, 1.0)
        out = cum[idx] + frac * self._probs[idx]
        out = np.where(xs <= self.edges[0], 0.0, out)
        out = np.where(xs >= self.edges[-1], 1.0, out)
        return float(out[0]) if x.ndim == 0 else out

    def mean(self) -> float:
        return float(np.dot(self._probs, self.centers()))

    def variance(self) -> float:
        centers = self.centers()
        mu = float(np.dot(self._probs, centers))
        # Within-bin variance of a uniform over the bin plus between-bin term.
        within = np.dot(self._probs, self._widths ** 2) / 12.0
        between = np.dot(self._probs, (centers - mu) ** 2)
        return float(within + between)

    def sample(self, size: int = 1, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        bins = rng.choice(self.n_bins, size=size, p=self._probs)
        offsets = rng.random(size)
        return self.edges[bins] + offsets * self._widths[bins]

    def support(self) -> Tuple[float, float]:
        return (float(self.edges[0]), float(self.edges[-1]))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"HistogramDistribution(bins={self.n_bins}, mean={self.mean():.4g})"
