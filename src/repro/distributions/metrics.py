"""Distance metrics between result distributions.

The paper's Table 2 calibrates aggregation algorithms against the exact
result distribution using the *variance distance* of Ge & Zdonik
(ICDE 2008).  We implement that metric plus a few standard companions
(Kolmogorov-Smirnov, total variation, Wasserstein-1) so experiments can
report accuracy on several axes.
"""

from __future__ import annotations

import numpy as np

from .base import Distribution

__all__ = [
    "variance_distance",
    "ks_distance",
    "total_variation_distance",
    "wasserstein_distance",
    "common_grid",
]


def common_grid(a: Distribution, b: Distribution, n_points: int = 2048) -> np.ndarray:
    """Return a shared evaluation grid covering both supports."""
    lo_a, hi_a = a.support()
    lo_b, hi_b = b.support()
    lo, hi = min(lo_a, lo_b), max(hi_a, hi_b)
    if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
        raise ValueError("distribution supports must be finite, non-degenerate intervals")
    return np.linspace(lo, hi, n_points)


def variance_distance(a: Distribution, b: Distribution, n_points: int = 2048) -> float:
    """Return the variance distance between two distributions in [0, 1].

    Following Ge & Zdonik, the distance between densities ``f`` and
    ``g`` is ``Integral (f - g)^2 dx / (Integral f^2 dx + Integral g^2 dx)``:
    0 when the densities coincide and 1 when their supports are
    disjoint.
    """
    grid = common_grid(a, b, n_points)
    fa = np.maximum(np.asarray(a.pdf(grid), dtype=float), 0.0)
    fb = np.maximum(np.asarray(b.pdf(grid), dtype=float), 0.0)
    numer = float(np.trapezoid((fa - fb) ** 2, grid))
    denom = float(np.trapezoid(fa ** 2, grid) + np.trapezoid(fb ** 2, grid))
    if denom <= 0:
        raise ValueError("both densities are zero on the evaluation grid")
    return min(max(numer / denom, 0.0), 1.0)


def ks_distance(a: Distribution, b: Distribution, n_points: int = 2048) -> float:
    """Return the Kolmogorov-Smirnov distance ``sup |F_a - F_b|``."""
    grid = common_grid(a, b, n_points)
    ca = np.asarray(a.cdf(grid), dtype=float)
    cb = np.asarray(b.cdf(grid), dtype=float)
    return float(np.max(np.abs(ca - cb)))


def total_variation_distance(a: Distribution, b: Distribution, n_points: int = 2048) -> float:
    """Return the total variation distance ``0.5 * Integral |f_a - f_b| dx``."""
    grid = common_grid(a, b, n_points)
    fa = np.maximum(np.asarray(a.pdf(grid), dtype=float), 0.0)
    fb = np.maximum(np.asarray(b.pdf(grid), dtype=float), 0.0)
    # Quadrature over density discontinuities can overshoot 1 slightly;
    # clamp to the metric's theoretical range.
    return float(min(max(0.5 * np.trapezoid(np.abs(fa - fb), grid), 0.0), 1.0))


def wasserstein_distance(a: Distribution, b: Distribution, n_points: int = 2048) -> float:
    """Return the Wasserstein-1 distance ``Integral |F_a - F_b| dx``."""
    grid = common_grid(a, b, n_points)
    ca = np.asarray(a.cdf(grid), dtype=float)
    cb = np.asarray(b.cdf(grid), dtype=float)
    return float(np.trapezoid(np.abs(ca - cb), grid))
