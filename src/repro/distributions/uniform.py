"""Uniform distribution over an interval.

Uniforms show up in the paper's setting as priors for object locations
before any RFID observation has been made (an object could be anywhere
in the storage area), and as a simple closed-form CF distribution for
testing the characteristic-function machinery.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .base import DistributionError, ScalarDistribution, as_rng

__all__ = ["Uniform"]


class Uniform(ScalarDistribution):
    """A continuous uniform distribution on ``[low, high]``."""

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float):
        if not np.isfinite(low) or not np.isfinite(high):
            raise DistributionError("uniform bounds must be finite")
        if high <= low:
            raise DistributionError(f"uniform requires high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    @property
    def width(self) -> float:
        return self.high - self.low

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.where((x >= self.low) & (x <= self.high), 1.0 / self.width, 0.0)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = np.clip((x - self.low) / self.width, 0.0, 1.0)
        return float(out) if out.ndim == 0 else out

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile level must be in (0, 1), got {q}")
        return self.low + q * self.width

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def variance(self) -> float:
        return self.width ** 2 / 12.0

    def sample(self, size: int = 1, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        return rng.uniform(self.low, self.high, size=size)

    def support(self) -> Tuple[float, float]:
        return (self.low, self.high)

    def characteristic_function(self, t):
        t = np.asarray(t, dtype=float)
        out = np.empty(np.shape(t) if np.ndim(t) else (1,), dtype=complex)
        ts = np.atleast_1d(t)
        nonzero = ts != 0.0
        tz = ts[nonzero]
        out_flat = np.ones(ts.shape, dtype=complex)
        out_flat[nonzero] = (np.exp(1j * tz * self.high) - np.exp(1j * tz * self.low)) / (
            1j * tz * self.width
        )
        out = out_flat
        return complex(out[0]) if np.ndim(t) == 0 else out

    def shift(self, offset: float) -> Uniform:
        """Return the distribution of ``X + offset``."""
        return Uniform(self.low + offset, self.high + offset)

    def scale(self, factor: float) -> Uniform:
        """Return the distribution of ``factor * X`` (factor != 0)."""
        if factor == 0.0:
            raise DistributionError("scaling a Uniform by zero collapses it to a point mass")
        a, b = self.low * factor, self.high * factor
        return Uniform(min(a, b), max(a, b))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Uniform(low={self.low:.6g}, high={self.high:.6g})"
