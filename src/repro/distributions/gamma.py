"""Gamma distribution.

Gamma random variables model skewed positive measurements such as radar
reflectivity and spectral width.  Like the other "common continuous
distributions" of Section 5.1, the Gamma has a closed-form
characteristic function, so sums of independent Gamma-distributed
tuples can be characterised exactly via products of CFs.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np
from scipy import special, stats

from .base import DistributionError, ScalarDistribution, as_rng

__all__ = ["GammaDistribution"]


class GammaDistribution(ScalarDistribution):
    """A Gamma distribution with shape ``k`` and scale ``theta``."""

    __slots__ = ("shape", "scale_param")

    def __init__(self, shape: float, scale: float):
        if not np.isfinite(shape) or shape <= 0.0:
            raise DistributionError(f"gamma shape must be positive and finite, got {shape}")
        if not np.isfinite(scale) or scale <= 0.0:
            raise DistributionError(f"gamma scale must be positive and finite, got {scale}")
        self.shape = float(shape)
        self.scale_param = float(scale)

    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = stats.gamma.pdf(x, a=self.shape, scale=self.scale_param)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = stats.gamma.cdf(x, a=self.shape, scale=self.scale_param)
        return float(out) if out.ndim == 0 else out

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile level must be in (0, 1), got {q}")
        return float(stats.gamma.ppf(q, a=self.shape, scale=self.scale_param))

    def mean(self) -> float:
        return self.shape * self.scale_param

    def variance(self) -> float:
        return self.shape * self.scale_param ** 2

    def sample(self, size: int = 1, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        return rng.gamma(self.shape, self.scale_param, size=size)

    def support(self) -> Tuple[float, float]:
        return (0.0, self.quantile(1.0 - 1e-12))

    def characteristic_function(self, t):
        t = np.asarray(t, dtype=float)
        out = (1.0 - 1j * self.scale_param * t) ** (-self.shape)
        return complex(out) if out.ndim == 0 else out

    def skewness(self) -> float:
        """Return the skewness ``2 / sqrt(k)``."""
        return 2.0 / math.sqrt(self.shape)

    def mode(self) -> float:
        """Return the mode (zero when shape < 1)."""
        if self.shape < 1.0:
            return 0.0
        return (self.shape - 1.0) * self.scale_param

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        out = stats.gamma.logpdf(x, a=self.shape, scale=self.scale_param)
        return float(out) if out.ndim == 0 else out

    def entropy(self) -> float:
        """Return the differential entropy in nats."""
        k, theta = self.shape, self.scale_param
        return k + math.log(theta) + math.lgamma(k) + (1.0 - k) * float(special.digamma(k))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"GammaDistribution(shape={self.shape:.6g}, scale={self.scale_param:.6g})"
