"""Pairwise numerical convolution of continuous distributions.

This module implements the integral-based baseline of Cheng,
Kalashnikov and Prabhakar (SIGMOD 2003) that the paper argues is
infeasible for stream processing: summing ``n`` uncertain tuples by
convolving two variables at a time requires ``n - 1`` (numerical)
convolution integrals.  We build it anyway, both as a correctness
oracle for small windows and as the baseline for the ablation
benchmarks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .base import Distribution, DistributionError
from .empirical import HistogramDistribution

__all__ = ["convolve_pair", "convolve_sequence"]


def _grid_for(dist: Distribution, n_points: int) -> np.ndarray:
    lo, hi = dist.support()
    if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
        raise DistributionError("distribution support must be a finite non-empty interval")
    return np.linspace(lo, hi, n_points)


def convolve_pair(
    a: Distribution, b: Distribution, n_points: int = 512
) -> HistogramDistribution:
    """Numerically convolve two independent scalar distributions.

    Both densities are sampled on uniform grids of ``n_points`` points
    and convolved with a direct discrete convolution, which approximates
    the convolution integral ``f_{A+B}(s) = Integral f_A(x) f_B(s - x) dx``.
    The result is returned as a histogram over the Minkowski sum of the
    two supports.
    """
    if n_points < 16:
        raise ValueError("n_points must be at least 16")
    grid_a = _grid_for(a, n_points)
    grid_b = _grid_for(b, n_points)
    # Use a common step so the discrete convolution is a faithful
    # approximation of the integral.
    step = min(grid_a[1] - grid_a[0], grid_b[1] - grid_b[0])
    grid_a = np.arange(grid_a[0], grid_a[-1] + step, step)
    grid_b = np.arange(grid_b[0], grid_b[-1] + step, step)
    dens_a = np.maximum(np.asarray(a.pdf(grid_a), dtype=float), 0.0)
    dens_b = np.maximum(np.asarray(b.pdf(grid_b), dtype=float), 0.0)
    conv = np.convolve(dens_a, dens_b) * step
    start = grid_a[0] + grid_b[0]
    edges = start + step * np.arange(conv.size + 1) - 0.5 * step
    if not np.any(conv > 0):
        raise DistributionError("convolution produced an all-zero density")
    return HistogramDistribution(edges, conv)


def convolve_sequence(
    dists: Sequence[Distribution], n_points: int = 512, max_bins: int = 4096
) -> HistogramDistribution:
    """Sum independent distributions by repeated pairwise convolution.

    This is the ``n - 1`` integral approach: each step performs one
    numerical convolution.  To keep memory bounded over long windows the
    intermediate histogram is re-binned down to ``max_bins`` bins when
    it grows past that size.
    """
    dists = list(dists)
    if not dists:
        raise DistributionError("cannot sum an empty sequence of distributions")
    if len(dists) == 1:
        only = dists[0]
        if isinstance(only, HistogramDistribution):
            return only
        return HistogramDistribution.from_distribution(only, n_bins=n_points)

    result: HistogramDistribution | Distribution = dists[0]
    for nxt in dists[1:]:
        result = convolve_pair(result, nxt, n_points=n_points)
        if result.n_bins > max_bins:
            result = _rebin(result, max_bins)
    assert isinstance(result, HistogramDistribution)
    return result


def _rebin(hist: HistogramDistribution, n_bins: int) -> HistogramDistribution:
    """Re-bin a histogram onto a coarser equal-width grid."""
    edges = np.linspace(hist.edges[0], hist.edges[-1], n_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    densities = np.maximum(np.asarray(hist.pdf(centers), dtype=float), 0.0)
    if not np.any(densities > 0):
        densities = np.full_like(densities, 1.0)
    return HistogramDistribution(edges, densities)
