"""Continuous random-variable substrate for the uncertainty-aware stream system.

Every uncertain attribute carried by a stream tuple is an instance of
:class:`~repro.distributions.base.Distribution`.  The package provides
the parametric families used throughout the paper (Gaussian, Gaussian
mixture, uniform, exponential, gamma), sample-based representations
(particles, histograms), and the statistical machinery the relational
operators rely on: KL-divergence compression, characteristic-function
algebra with inversion and approximation, pairwise convolution, and
distribution distance metrics.
"""

from .base import (
    Distribution,
    DistributionError,
    ScalarDistribution,
    UnsupportedOperationError,
    as_rng,
    normalize_weights,
    weighted_mean_and_variance,
)
from .characteristic import (
    SumCharacteristicFunction,
    cf_distance,
    fit_gaussian_to_cf,
    fit_mixture_to_cf,
    invert_cf_to_histogram,
)
from .convolution import convolve_pair, convolve_sequence
from .empirical import HistogramDistribution, ParticleDistribution
from .exponential import Exponential
from .gamma import GammaDistribution
from .gaussian import Gaussian, MultivariateGaussian
from .kl import (
    compress_particles,
    fit_gaussian,
    fit_mixture,
    fit_multivariate_gaussian,
    kl_divergence_grid,
    kl_divergence_samples,
)
from .metrics import (
    common_grid,
    ks_distance,
    total_variation_distance,
    variance_distance,
    wasserstein_distance,
)
from .mixture import GaussianMixture, fit_gmm_em, select_components
from .uniform import Uniform

__all__ = [
    "Distribution",
    "DistributionError",
    "ScalarDistribution",
    "UnsupportedOperationError",
    "as_rng",
    "normalize_weights",
    "weighted_mean_and_variance",
    "Gaussian",
    "MultivariateGaussian",
    "GaussianMixture",
    "fit_gmm_em",
    "select_components",
    "Uniform",
    "Exponential",
    "GammaDistribution",
    "ParticleDistribution",
    "HistogramDistribution",
    "SumCharacteristicFunction",
    "invert_cf_to_histogram",
    "fit_gaussian_to_cf",
    "fit_mixture_to_cf",
    "cf_distance",
    "convolve_pair",
    "convolve_sequence",
    "compress_particles",
    "fit_gaussian",
    "fit_mixture",
    "fit_multivariate_gaussian",
    "kl_divergence_grid",
    "kl_divergence_samples",
    "variance_distance",
    "ks_distance",
    "total_variation_distance",
    "wasserstein_distance",
    "common_grid",
]
