"""Gaussian (normal) distributions, scalar and multivariate.

Gaussians are the workhorse parametric family of the paper: particle
clouds are compressed to Gaussians by KL minimisation (Section 4.3),
the CLT approximations produce Gaussians (Sections 4.4 and 5.1), and
the CF-approximation algorithm fits Gaussians / Gaussian mixtures to
the product characteristic function of a sum.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from .base import Distribution, DistributionError, ScalarDistribution, as_rng

__all__ = ["Gaussian", "MultivariateGaussian", "gaussian_cdf"]

_SQRT_2PI = math.sqrt(2.0 * math.pi)
_SQRT_2 = math.sqrt(2.0)


def gaussian_cdf(x, mu, sigma):
    """Gaussian CDF, elementwise over any broadcastable arguments.

    This is the single definition of the erf-based CDF formula; the
    scalar :meth:`Gaussian.cdf` and the vectorised batch kernels
    (probabilistic selection over Gaussian columns) both call it, so
    the tuple and batch execution paths stay bit-identical.
    """
    from scipy.special import erf

    return 0.5 * (1.0 + erf((x - mu) / (sigma * _SQRT_2)))


class Gaussian(ScalarDistribution):
    """A one-dimensional Gaussian ``N(mu, sigma^2)``.

    Parameters
    ----------
    mu:
        Mean of the distribution.
    sigma:
        Standard deviation; must be strictly positive.
    """

    __slots__ = ("mu", "sigma")

    def __init__(self, mu: float, sigma: float):
        if not np.isfinite(mu):
            raise DistributionError(f"Gaussian mean must be finite, got {mu}")
        if not np.isfinite(sigma) or sigma <= 0.0:
            raise DistributionError(f"Gaussian sigma must be positive and finite, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    # -- core interface -------------------------------------------------
    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / self.sigma
        out = np.exp(-0.5 * z * z) / (self.sigma * _SQRT_2PI)
        return float(out) if out.ndim == 0 else out

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        out = gaussian_cdf(x, self.mu, self.sigma)
        return float(out) if out.ndim == 0 else out

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile level must be in (0, 1), got {q}")
        from scipy.special import erfinv

        return self.mu + self.sigma * _SQRT_2 * float(erfinv(2.0 * q - 1.0))

    def mean(self) -> float:
        return self.mu

    def variance(self) -> float:
        return self.sigma ** 2

    def std(self) -> float:
        return self.sigma

    def sample(self, size: int = 1, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        return rng.normal(self.mu, self.sigma, size=size)

    def support(self) -> Tuple[float, float]:
        return (self.mu - 12.0 * self.sigma, self.mu + 12.0 * self.sigma)

    def characteristic_function(self, t):
        t = np.asarray(t, dtype=float)
        out = np.exp(1j * self.mu * t - 0.5 * (self.sigma ** 2) * t * t)
        return complex(out) if out.ndim == 0 else out

    # -- algebra ---------------------------------------------------------
    def shift(self, offset: float) -> Gaussian:
        """Return the distribution of ``X + offset``."""
        return Gaussian(self.mu + offset, self.sigma)

    def scale(self, factor: float) -> Gaussian:
        """Return the distribution of ``factor * X`` (factor != 0)."""
        if factor == 0.0:
            raise DistributionError("scaling a Gaussian by zero collapses it to a point mass")
        return Gaussian(self.mu * factor, self.sigma * abs(factor))

    def convolve(self, other: Gaussian) -> Gaussian:
        """Return the distribution of the sum of two independent Gaussians."""
        if not isinstance(other, Gaussian):
            raise TypeError("convolve expects another Gaussian")
        return Gaussian(self.mu + other.mu, math.hypot(self.sigma, other.sigma))

    def kl_divergence(self, other: Gaussian) -> float:
        """Return ``KL(self || other)`` in nats (closed form)."""
        if not isinstance(other, Gaussian):
            raise TypeError("kl_divergence expects another Gaussian")
        var_ratio = (self.sigma / other.sigma) ** 2
        mean_term = ((self.mu - other.mu) / other.sigma) ** 2
        return 0.5 * (var_ratio + mean_term - 1.0 - math.log(var_ratio))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Gaussian(mu={self.mu:.6g}, sigma={self.sigma:.6g})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Gaussian)
            and math.isclose(self.mu, other.mu, rel_tol=1e-12, abs_tol=1e-12)
            and math.isclose(self.sigma, other.sigma, rel_tol=1e-12, abs_tol=1e-12)
        )

    def __hash__(self) -> int:
        return hash((round(self.mu, 12), round(self.sigma, 12)))


class MultivariateGaussian(Distribution):
    """A multivariate Gaussian ``N(mean, cov)``.

    Used for multi-dimensional uncertain attributes such as the
    ``(x, y, z)`` object location produced by the RFID T operator.
    """

    def __init__(self, mean: Sequence[float], cov: Sequence[Sequence[float]]):
        mean_arr = np.asarray(mean, dtype=float)
        cov_arr = np.asarray(cov, dtype=float)
        if mean_arr.ndim != 1:
            raise DistributionError("mean must be a one-dimensional vector")
        if cov_arr.shape != (mean_arr.size, mean_arr.size):
            raise DistributionError(
                f"covariance shape {cov_arr.shape} does not match mean dimension {mean_arr.size}"
            )
        if not np.allclose(cov_arr, cov_arr.T, atol=1e-10):
            raise DistributionError("covariance matrix must be symmetric")
        # Regularise slightly so nearly-degenerate particle clouds still work.
        jitter = 1e-12 * np.eye(mean_arr.size)
        try:
            chol = np.linalg.cholesky(cov_arr + jitter)
        except np.linalg.LinAlgError as exc:
            raise DistributionError("covariance matrix must be positive definite") from exc
        self._mean = mean_arr
        self._cov = cov_arr
        self._chol = chol
        self.ndim = mean_arr.size
        self._log_norm = -0.5 * (
            mean_arr.size * math.log(2.0 * math.pi) + 2.0 * float(np.sum(np.log(np.diag(chol))))
        )

    # -- core interface -------------------------------------------------
    def pdf(self, x):
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        pts = np.atleast_2d(x)
        diffs = pts - self._mean
        solved = np.linalg.solve(self._chol, diffs.T)
        quad = np.sum(solved ** 2, axis=0)
        out = np.exp(self._log_norm - 0.5 * quad)
        return float(out[0]) if single else out

    def mean(self) -> np.ndarray:
        return self._mean.copy()

    def variance(self) -> np.ndarray:
        return self._cov.copy()

    def covariance(self) -> np.ndarray:
        return self._cov.copy()

    def sample(self, size: int = 1, rng=None) -> np.ndarray:
        rng = as_rng(rng)
        z = rng.standard_normal((size, self.ndim))
        return self._mean + z @ self._chol.T

    def marginal(self, index: int) -> Gaussian:
        """Return the scalar marginal of dimension ``index``."""
        if not 0 <= index < self.ndim:
            raise IndexError(f"dimension index {index} out of range for ndim={self.ndim}")
        return Gaussian(float(self._mean[index]), math.sqrt(float(self._cov[index, index])))

    def mahalanobis(self, x: Sequence[float]) -> float:
        """Return the Mahalanobis distance of ``x`` from the mean."""
        diff = np.asarray(x, dtype=float) - self._mean
        solved = np.linalg.solve(self._chol, diff)
        return float(np.sqrt(np.sum(solved ** 2)))

    def confidence_region(self, confidence: float = 0.95):
        """Return per-dimension central intervals at the given confidence."""
        return [self.marginal(i).confidence_region(confidence) for i in range(self.ndim)]

    def characteristic_function(self, t):
        t = np.asarray(t, dtype=float)
        if t.ndim == 1 and t.size == self.ndim:
            return complex(
                np.exp(1j * np.dot(self._mean, t) - 0.5 * float(t @ self._cov @ t))
            )
        raise ValueError("multivariate CF expects a vector argument of matching dimension")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"MultivariateGaussian(mean={self._mean.tolist()})"
