"""KL-divergence based compression of sample distributions.

Section 4.3: to avoid shipping tens or hundreds of particles in every
tuple, the T operator converts a sample-based tuple-level distribution
``p_hat = {(x_i, w_i)}`` into an approximate parametric distribution
``q`` by minimising ``KL(p_hat || q)``.

* For a Gaussian target the optimum is available in closed form:
  ``mu = sum_i w_i x_i`` and ``sigma^2 = sum_i w_i (x_i - mu)^2``
  (two passes over the sample list).
* For a Gaussian-mixture target, minimising the KL divergence is
  equivalent to maximising the weighted log-likelihood, which we do
  with weighted EM; the number of components is selected by AIC/BIC.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .base import DistributionError, ScalarDistribution, normalize_weights
from .empirical import ParticleDistribution
from .gaussian import Gaussian, MultivariateGaussian
from .mixture import GaussianMixture, fit_gmm_em, select_components

__all__ = [
    "kl_divergence_samples",
    "kl_divergence_grid",
    "fit_gaussian",
    "fit_multivariate_gaussian",
    "fit_mixture",
    "compress_particles",
]


def kl_divergence_samples(
    values: Sequence[float],
    weights: Sequence[float] | None,
    target: ScalarDistribution,
) -> float:
    """Return ``KL(p_hat || target)`` for a weighted sample ``p_hat``.

    This follows the formula in Section 4.3 of the paper:
    ``KL(p_hat||q) = sum_i w_i log(w_i / q(x_i))``.  The value is only
    defined up to the (constant) entropy of the discrete weights, so it
    should be used to *compare* candidate targets for the same sample,
    not as an absolute quantity.
    """
    values = np.asarray(values, dtype=float)
    if weights is None:
        weights_arr = np.full(values.size, 1.0 / max(values.size, 1))
    else:
        weights_arr = normalize_weights(weights)
    if values.size == 0:
        raise DistributionError("cannot compute KL divergence of an empty sample")
    q = np.maximum(np.asarray(target.pdf(values), dtype=float), 1e-300)
    return float(np.sum(weights_arr * (np.log(np.maximum(weights_arr, 1e-300)) - np.log(q))))


def kl_divergence_grid(
    p: ScalarDistribution, q: ScalarDistribution, n_points: int = 2048
) -> float:
    """Return ``KL(p || q)`` by numerical integration on a shared grid."""
    lo_p, hi_p = p.support()
    lo_q, hi_q = q.support()
    lo, hi = min(lo_p, lo_q), max(hi_p, hi_q)
    grid = np.linspace(lo, hi, n_points)
    dens_p = np.maximum(np.asarray(p.pdf(grid), dtype=float), 0.0)
    dens_q = np.maximum(np.asarray(q.pdf(grid), dtype=float), 1e-300)
    mask = dens_p > 0
    integrand = np.zeros_like(dens_p)
    integrand[mask] = dens_p[mask] * (np.log(dens_p[mask]) - np.log(dens_q[mask]))
    return float(np.trapezoid(integrand, grid))


def fit_gaussian(
    values: Sequence[float], weights: Sequence[float] | None = None, min_sigma: float = 1e-9
) -> Gaussian:
    """Return the KL-optimal Gaussian for a weighted sample.

    Two passes over the sample list, exactly as the paper describes:
    the optimal parameters are the weighted mean and weighted variance.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise DistributionError("cannot fit a Gaussian to an empty sample")
    if weights is None:
        weights_arr = np.full(values.size, 1.0 / values.size)
    else:
        weights_arr = normalize_weights(weights)
        if weights_arr.shape != values.shape:
            raise DistributionError("weights must match values in shape")
    mu = float(np.dot(weights_arr, values))
    var = float(np.dot(weights_arr, (values - mu) ** 2))
    return Gaussian(mu, max(math.sqrt(var), min_sigma))


def fit_multivariate_gaussian(
    points: Sequence[Sequence[float]],
    weights: Sequence[float] | None = None,
    min_var: float = 1e-12,
) -> MultivariateGaussian:
    """Return the KL-optimal multivariate Gaussian for weighted points.

    Used to compress multi-dimensional particle clouds, e.g. the
    ``(x, y)`` or ``(x, y, z)`` location particles of an RFID-tagged
    object.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[0] == 0:
        raise DistributionError("points must form a non-empty (n, d) array")
    n, d = pts.shape
    if weights is None:
        w = np.full(n, 1.0 / n)
    else:
        w = normalize_weights(weights)
        if w.shape != (n,):
            raise DistributionError("weights must have one entry per point")
    mean = w @ pts
    centered = pts - mean
    cov = (centered * w[:, None]).T @ centered
    cov += min_var * np.eye(d)
    return MultivariateGaussian(mean, cov)


def fit_mixture(
    values: Sequence[float],
    weights: Sequence[float] | None = None,
    n_components: int | None = None,
    max_components: int = 4,
    criterion: str = "bic",
    rng=None,
) -> GaussianMixture:
    """Fit a Gaussian mixture to a weighted sample.

    If ``n_components`` is given, fit exactly that many components with
    weighted EM; otherwise select the component count with AIC/BIC as
    Section 4.3 prescribes.
    """
    if n_components is not None:
        return fit_gmm_em(values, n_components, weights=weights, rng=rng)
    return select_components(
        values, weights=weights, max_components=max_components, criterion=criterion, rng=rng
    )


def compress_particles(
    particles: ParticleDistribution,
    max_components: int = 3,
    criterion: str = "bic",
    single_component_threshold: float = 0.0,
    rng=None,
) -> ScalarDistribution:
    """Compress a particle distribution into a Gaussian or Gaussian mixture.

    This is the tuple-compression step a T operator applies before
    emitting a tuple.  When ``max_components == 1`` (or the selection
    criterion prefers one component) the result is a plain
    :class:`Gaussian`, which downstream CF-based operators can exploit
    for closed-form computation.

    Parameters
    ----------
    particles:
        The weighted sample produced by inference.
    max_components:
        Upper bound on mixture components to consider.
    criterion:
        ``"aic"`` or ``"bic"``.
    single_component_threshold:
        If the relative improvement of the selected mixture over the
        single Gaussian (measured by sample KL divergence) is below this
        threshold, prefer the cheaper single Gaussian.
    rng:
        Random generator or seed for EM initialisation.
    """
    gaussian = fit_gaussian(particles.values, particles.weights)
    if max_components <= 1:
        return gaussian
    mixture = fit_mixture(
        particles.values,
        particles.weights,
        max_components=max_components,
        criterion=criterion,
        rng=rng,
    )
    if mixture.n_components == 1:
        return gaussian
    if single_component_threshold > 0.0:
        kl_gauss = kl_divergence_samples(particles.values, particles.weights, gaussian)
        kl_mix = kl_divergence_samples(particles.values, particles.weights, mixture)
        if kl_gauss - kl_mix < single_component_threshold * max(abs(kl_gauss), 1e-12):
            return gaussian
    return mixture
